"""Checkpoint-restart of kernel-bypass (GM) applications — the §5 extension."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.net.gm import GmDevice
from repro.vos import DEAD, build_program

# the GM test programs live with the device tests
from ..net import test_gm  # noqa: F401  (registers testapp.gm-* programs)


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=47)
    # GM hardware on blades 0–2 only; blade 3 is ethernet-only
    devices = {i: GmDevice(cluster.node(i).kernel) for i in range(3)}
    manager = Manager.deploy(cluster)
    return cluster, manager, devices


def _launch(cluster, count=40):
    p_srv = cluster.create_pod(cluster.node(0), "gm-srv")
    cluster.create_pod(cluster.node(1), "gm-cli")
    srv = cluster.node(0).kernel.spawn(
        build_program("testapp.gm-echo", port=2, count=count), pod_id="gm-srv")
    cli = cluster.node(1).kernel.spawn(
        build_program("testapp.gm-client", peer_vip=p_srv.vip, peer_port=2,
                      port=2, count=count), pod_id="gm-cli")
    return srv, cli


def _final(cluster, prog):
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == prog and proc.state == DEAD and proc.exit_code == 0:
                return proc
    return None


def test_gm_app_snapshot_midrun(world):
    cluster, manager, _devices = world
    srv, cli = _launch(cluster, count=40)
    holder = {}
    cluster.engine.schedule(0.002, lambda: holder.update(c=manager.checkpoint(
        [("blade0", "gm-srv", "mem"), ("blade1", "gm-cli", "mem")])))
    cluster.engine.run(until=120.0)
    assert holder["c"].finished.result.ok
    client = _final(cluster, "testapp.gm-client")
    assert client is not None and client.regs["acks"] == 40


def test_gm_app_migrates_between_gm_nodes(world):
    """Migrate the server pod onto another GM-equipped blade: the driver
    state (tokens, queues, uncredited sends) moves with it."""
    cluster, manager, _devices = world
    srv, cli = _launch(cluster, count=40)
    holder = {}

    def kick():
        holder["m"] = migrate(manager, [
            ("blade0", "gm-srv", "blade2"),
            ("blade1", "gm-cli", "blade1"),  # client stays put
        ])

    cluster.engine.schedule(0.002, kick)
    cluster.engine.run(until=300.0)
    mig = holder["m"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert "gm-srv" in cluster.node(2).kernel.pods
    client = _final(cluster, "testapp.gm-client")
    assert client is not None and client.regs["acks"] == 40
    # credits fully recovered after the move
    assert client.regs["tokens"] == 16


def test_gm_restore_requires_gm_hardware(world):
    """Restoring onto a node without the device fails cleanly — the
    paper's 'another such device driver' requirement."""
    cluster, manager, _devices = world
    srv, cli = _launch(cluster, count=400)
    holder = {}

    def kick():
        holder["m"] = migrate(manager, [
            ("blade0", "gm-srv", "blade3"),  # blade3 has no GM device
            ("blade1", "gm-cli", "blade2"),
        ], deadline=10.0)

    cluster.engine.schedule(0.002, kick)
    cluster.engine.run(until=120.0)
    mig = holder["m"].finished.result
    assert mig.checkpoint.ok
    assert not mig.restart.ok
    # the failure is reported (with the reason), not timed out
    assert mig.restart.status == "failed"
    assert any("GM device" in e for e in mig.restart.errors)
