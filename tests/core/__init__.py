"""Test package."""
