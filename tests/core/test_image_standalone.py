"""Unit tests for image packing and standalone capture/restore."""

import pytest

from repro.cluster import Cluster
from repro.core.image import PodImage, pack_pod_image
from repro.core.standalone import (
    accounted_memory_bytes,
    activate_pod,
    capture_pod_standalone,
    restore_pod_standalone,
)
from repro.errors import CheckpointError
from repro.vos import BLOCKED, DEAD, build_program, imm, program


@program("testapp.imgapp")
def _imgapp(b, *, ballast):
    b.alloc(imm(ballast), "heap")
    b.syscall("fd", "open", imm("/notes.txt"), imm("w"))
    b.syscall(None, "write", "fd", imm(b"hello"))
    b.syscall("t0", "gettime")
    b.syscall(None, "sleep", imm(10.0))
    b.syscall(None, "write", "fd", imm(b" world"))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


@pytest.fixture
def world():
    cluster = Cluster.build(2, seed=55)
    return cluster


def _suspend_midway(cluster, pod_id="img", ballast=1_000_000):
    pod = cluster.create_pod(cluster.node(0), pod_id)
    proc = cluster.node(0).kernel.spawn(
        build_program("testapp.imgapp", ballast=ballast), pod_id=pod_id)
    cluster.engine.run(until=1.0)  # proc is now asleep with the file open
    pod.suspend()
    cluster.engine.run(until=1.1)
    assert pod.quiescent()
    return pod, proc


def test_capture_contains_processes_files_and_clock(world):
    cluster = world
    pod, proc = _suspend_midway(cluster)
    standalone = capture_pod_standalone(pod)
    assert standalone["pod_id"] == "img"
    assert standalone["vip"] == pod.vip
    assert len(standalone["procs"]) == 1
    image = standalone["procs"][0]
    assert image["vpid"] == 1
    assert image["state"] == BLOCKED
    assert image["blocked_on"]["name"] == "sleep_until"
    (frow,) = standalone["files"]
    assert frow["path"].endswith("/notes.txt")
    assert frow["pos"] == 5  # wrote "hello" so far
    assert standalone["vtime"] == pytest.approx(1.0, abs=0.2)


def test_accounted_memory_drives_image_size(world):
    cluster = world
    pod, _proc = _suspend_midway(cluster, ballast=5_000_000)
    standalone = capture_pod_standalone(pod)
    assert accounted_memory_bytes(standalone) >= 5_000_000
    img = pack_pod_image(standalone, [], [])
    assert img.total_bytes == img.encoded_bytes + img.accounted_bytes
    assert img.accounted_bytes >= 5_000_000
    assert img.encoded_bytes < 100_000  # registers, not ballast


def test_pack_unpack_round_trip(world):
    cluster = world
    pod, _proc = _suspend_midway(cluster)
    standalone = capture_pod_standalone(pod)
    img = pack_pod_image(standalone, [], [{"vpid": 1, "fd": 9, "sock_id": 3}])
    payload = img.unpack()
    assert payload["standalone"]["pod_id"] == "img"
    assert payload["socket_fds"] == [{"vpid": 1, "fd": 9, "sock_id": 3}]


def test_unpack_rejects_wrong_format():
    from repro.core import codec
    bogus = PodImage("x", codec.encode({"format": 99}), 10, 0, 0)
    with pytest.raises(CheckpointError):
        bogus.unpack()


def test_restore_and_activate_completes_the_run(world):
    cluster = world
    pod, proc = _suspend_midway(cluster)
    standalone = capture_pod_standalone(pod)
    pod.destroy()
    cluster.engine.run(until=1.2)

    # restore on the other blade (files live on the SAN, so they exist)
    from repro.pod import Pod
    new_pod = Pod.create(cluster.node(1).kernel, "img", pod.vip, cluster.vnet)
    restored = restore_pod_standalone(new_pod, standalone)
    assert len(restored) == 1
    assert restored[0].vpid == 1  # the virtual identifier is preserved
    assert restored[0] is not proc  # a fresh process on the new kernel
    activate_pod(new_pod)
    cluster.engine.run(until=30.0)
    assert restored[0].state == DEAD and restored[0].exit_code == 0
    # the file got its second write through the restored descriptor
    assert bytes(cluster.san.lookup("/pods/img/notes.txt").data) == b"hello world"


def test_restore_missing_file_fails_cleanly(world):
    cluster = world
    pod, _proc = _suspend_midway(cluster)
    standalone = capture_pod_standalone(pod)
    pod.destroy()
    cluster.san.unlink("/pods/img/notes.txt")
    from repro.errors import RestartError
    from repro.pod import Pod
    new_pod = Pod.create(cluster.node(1).kernel, "img", "10.77.9.9", cluster.vnet)
    with pytest.raises(RestartError, match="notes.txt"):
        restore_pod_standalone(new_pod, standalone)
