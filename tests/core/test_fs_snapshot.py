"""File-system snapshot integration: checkpoint + rollback of files.

The paper pairs process checkpoints with storage-level snapshots instead
of copying file data into images: "a file-system snapshot (if desired)
may be taken immediately prior to reactivating the pod".
"""

import pytest

from repro.cluster import Cluster
from repro.core import Manager
from repro.vos import DEAD, build_program, imm, program


@program("testapp.file-writer")
def _file_writer(b, *, rounds, pause=0.2):
    """Append one record per round to a file in the pod's chroot."""
    b.syscall("fd", "open", imm("/journal.log"), imm("a"))
    with b.for_range("i", imm(0), imm(rounds)):
        b.op("line", lambda i: b"round-%d\n" % i, "i")
        b.syscall(None, "write", "fd", "line")
        b.syscall(None, "sleep", imm(pause))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


@pytest.fixture
def world():
    cluster = Cluster.build(2, seed=77)
    manager = Manager.deploy(cluster)
    return cluster, manager


def test_checkpoint_with_fs_snapshot_captures_file_state(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "fw")
    proc = cluster.node(0).kernel.spawn(
        build_program("testapp.file-writer", rounds=10), pod_id="fw")
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([("blade0", "fw", "mem")],
                                            fs_snapshot=True)

    cluster.engine.schedule(0.5, kick)
    cluster.engine.run(until=30.0)
    assert proc.state == DEAD and proc.exit_code == 0
    result = holder["ckpt"].finished.result
    assert result.ok
    snap_id = result.pods["fw"]["fs_snapshot"]
    assert snap_id is not None
    # the snapshot froze the journal at the checkpoint instant...
    snap = cluster.snapshots.latest("san")
    snap_journal = snap.files["/pods/fw/journal.log"]
    assert 0 < snap_journal.count(b"round-") < 10
    # ...while the live file kept growing afterwards
    live = bytes(cluster.san.lookup("/pods/fw/journal.log").data)
    assert live.count(b"round-") == 10
    assert live.startswith(snap_journal)


def test_restore_snapshot_rolls_files_back(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "fw")
    cluster.node(0).kernel.spawn(
        build_program("testapp.file-writer", rounds=10), pod_id="fw")
    holder = {}
    cluster.engine.schedule(0.5, lambda: holder.update(
        c=manager.checkpoint([("blade0", "fw", "mem")], fs_snapshot=True)))
    cluster.engine.run(until=30.0)
    assert holder["c"].finished.result.ok
    snap = cluster.snapshots.latest("san")
    frozen = snap.files["/pods/fw/journal.log"]
    # roll the SAN back: the journal returns to the checkpoint instant
    cluster.snapshots.restore(cluster.san, snap)
    assert bytes(cluster.san.lookup("/pods/fw/journal.log").data) == frozen


def test_checkpoint_without_snapshot_records_none(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "fw")
    cluster.node(0).kernel.spawn(
        build_program("testapp.file-writer", rounds=3), pod_id="fw")
    holder = {}
    cluster.engine.schedule(0.3, lambda: holder.update(
        c=manager.checkpoint([("blade0", "fw", "mem")])))
    cluster.engine.run(until=30.0)
    result = holder["c"].finished.result
    assert result.ok
    assert result.pods["fw"]["fs_snapshot"] is None
    assert len(cluster.snapshots) == 0
