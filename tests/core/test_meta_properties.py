"""Property-based tests on restart-plan derivation.

For any random application topology, the derived plan must pair every
connection exactly once with complementary connect/accept roles, honor
port inheritance (the accepted side accepts), and compute non-negative
overlap discards consistent with the PCB invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.core.meta import build_pod_meta, connection_key, derive_restart_plan


@st.composite
def topologies(draw):
    """Random pod set with random consistent connections between them."""
    n_pods = draw(st.integers(min_value=2, max_value=6))
    pods = [f"pod{i}" for i in range(n_pods)]
    vips = {p: f"10.77.0.{i + 1}" for i, p in enumerate(pods)}
    n_conns = draw(st.integers(min_value=0, max_value=8))
    records = {p: [] for p in pods}
    sock_id = {p: 10 for p in pods}
    listeners = set()
    for c in range(n_conns):
        a, b = draw(st.lists(st.sampled_from(pods), min_size=2, max_size=2,
                             unique=True))
        # a accepted the connection on a listener port; b initiated
        accept_port = 9000 + draw(st.integers(min_value=0, max_value=3))
        init_port = 32768 + c
        if (a, accept_port) not in listeners:
            listeners.add((a, accept_port))
            records[a].append(_rec(sock_id[a], (vips[a], accept_port), listening=True))
            sock_id[a] += 1
        # consistent PCBs honoring recv_peer >= acked_self on both sides
        sent_b = draw(st.integers(min_value=1001, max_value=5000))
        acked_b = draw(st.integers(min_value=1001, max_value=sent_b))
        recv_a = draw(st.integers(min_value=acked_b, max_value=sent_b))
        sent_a = draw(st.integers(min_value=1001, max_value=5000))
        acked_a = draw(st.integers(min_value=1001, max_value=sent_a))
        recv_b = draw(st.integers(min_value=acked_a, max_value=sent_a))
        records[a].append(_rec(
            sock_id[a], (vips[a], accept_port), remote=(vips[b], init_port),
            origin="accepted",
            pcb={"sent": sent_a, "acked": acked_a, "recv": recv_a}))
        sock_id[a] += 1
        records[b].append(_rec(
            sock_id[b], (vips[b], init_port), remote=(vips[a], accept_port),
            origin="initiated",
            pcb={"sent": sent_b, "acked": acked_b, "recv": recv_b}))
        sock_id[b] += 1
    return {p: build_pod_meta(p, recs) for p, recs in records.items()}


def _rec(sock_id, local, remote=None, listening=False, origin="initiated",
         state="full-duplex", pcb=None):
    return {
        "sock_id": sock_id, "proto": "tcp", "local": local, "remote": remote,
        "listening": listening, "origin": origin, "meta_state": state,
        "pcb": pcb or {"sent": 1001, "acked": 1001, "recv": 1001},
    }


@settings(max_examples=150, deadline=None)
@given(metas=topologies())
def test_plan_pairs_every_connection_once(metas):
    plan = derive_restart_plan(metas)
    roles = {}
    for pod, pod_plan in plan.items():
        for entry in pod_plan["schedule"]:
            key = connection_key(tuple(entry["src"]), tuple(entry["dst"]))
            roles.setdefault(key, []).append(entry["role"])
    for key, rs in roles.items():
        assert sorted(rs) == ["accept", "connect"], f"{key}: {rs}"


@settings(max_examples=150, deadline=None)
@given(metas=topologies())
def test_plan_accepted_side_accepts(metas):
    """Port inheritance: the endpoint created by accept must accept."""
    origin_by = {}
    for pod, table in metas.items():
        for entry in table:
            if entry["dst"] is not None:
                origin_by[(pod, entry["sock_id"])] = entry["origin"]
    plan = derive_restart_plan(metas)
    for pod, pod_plan in plan.items():
        for entry in pod_plan["schedule"]:
            origin = origin_by[(pod, entry["sock_id"])]
            if origin == "accepted":
                assert entry["role"] == "accept"
            else:
                assert entry["role"] == "connect"


@settings(max_examples=150, deadline=None)
@given(metas=topologies())
def test_plan_discards_are_consistent(metas):
    """Discards are non-negative and never exceed the unacked window."""
    pcb_by = {}
    for pod, table in metas.items():
        for entry in table:
            if entry["pcb"] is not None:
                pcb_by[(pod, entry["sock_id"])] = entry["pcb"]
    plan = derive_restart_plan(metas)
    for pod, pod_plan in plan.items():
        for entry in pod_plan["schedule"]:
            pcb = pcb_by[(pod, entry["sock_id"])]
            discard = entry["send_discard"]
            assert discard >= 0
            # cannot discard more than the send queue can hold
            assert discard <= pcb["sent"] - pcb["acked"]


@settings(max_examples=100, deadline=None)
@given(metas=topologies())
def test_plan_listeners_survive(metas):
    listener_count = sum(
        1 for table in metas.values() for e in table if e["state"] == "listening")
    plan = derive_restart_plan(metas)
    assert sum(len(p["listeners"]) for p in plan.values()) == listener_count
