"""Wire framing tests: Manager↔Agent control-channel messages."""


from repro.core.wire import recv_msg, send_msg
from repro.net import Fabric, NetStack
from repro.sim import all_of
from repro.vos import Kernel


def _pair(engine):
    fabric = Fabric(engine)
    ka = Kernel(engine, "a")
    sa = NetStack(ka, fabric, "10.0.0.1")
    kb = Kernel(engine, "b")
    sb = NetStack(kb, fabric, "10.0.0.2")
    return ka, kb


def _exchange(engine, ka, kb, messages):
    """Server echoes each framed message; returns (received, echoed)."""
    received, echoed = [], []

    def server():
        chan = kb.host_channel("srv")
        lfd = yield kb.host_call(chan, "socket", "tcp")
        yield kb.host_call(chan, "bind", lfd, ("10.0.0.2", 7000))
        yield kb.host_call(chan, "listen", lfd, 4)
        fd, _ = yield kb.host_call(chan, "accept", lfd)
        while True:
            msg = yield from recv_msg(kb, chan, fd)
            if msg is None:
                return
            received.append(msg)
            yield from send_msg(kb, chan, fd, {"echo": msg})

    def client():
        chan = ka.host_channel("cli")
        fd = yield ka.host_call(chan, "socket", "tcp")
        yield ka.host_call(chan, "connect", fd, ("10.0.0.2", 7000))
        for msg in messages:
            ok = yield from send_msg(ka, chan, fd, msg)
            assert ok
            reply = yield from recv_msg(ka, chan, fd)
            echoed.append(reply["echo"])
        yield ka.host_call(chan, "close", fd)

    s = engine.spawn(server(), "srv")
    c = engine.spawn(client(), "cli")
    done = all_of([s.finished, c.finished])
    done.add_done_callback(lambda _f: engine.stop())
    engine.run(until=60.0)
    return received, echoed


def test_framed_round_trip(engine):
    ka, kb = _pair(engine)
    messages = [
        {"cmd": "checkpoint", "pod": "p0", "uri": "mem"},
        {"data": b"\x00" * 1000, "n": 42},
        {"nested": {"list": [1, (2, 3)], "f": 2.5}},
    ]
    received, echoed = _exchange(engine, ka, kb, messages)
    assert received == messages
    assert echoed == messages  # client unwraps the {"echo": ...} envelope


def test_large_message_spans_many_segments(engine):
    ka, kb = _pair(engine)
    big = {"blob": b"x" * 300_000}  # > SNDBUF, > MSS
    received, _ = _exchange(engine, ka, kb, [big])
    assert received == [big]


def test_eof_returns_none(engine):
    ka, kb = _pair(engine)

    def server(out):
        chan = kb.host_channel("srv")
        lfd = yield kb.host_call(chan, "socket", "tcp")
        yield kb.host_call(chan, "bind", lfd, ("10.0.0.2", 7001))
        yield kb.host_call(chan, "listen", lfd, 4)
        fd, _ = yield kb.host_call(chan, "accept", lfd)
        msg = yield from recv_msg(kb, chan, fd)
        out.append(msg)

    def client():
        chan = ka.host_channel("cli")
        fd = yield ka.host_call(chan, "socket", "tcp")
        yield ka.host_call(chan, "connect", fd, ("10.0.0.2", 7001))
        # send half a header, then vanish
        yield ka.host_call(chan, "send", fd, b"\x00\x00", 0)
        yield ka.host_call(chan, "close", fd)

    out = []
    engine.spawn(server(out), "srv")
    engine.spawn(client(), "cli")
    engine.run(until=60.0)
    assert out == [None]
