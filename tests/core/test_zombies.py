"""Zombie preservation: exit statuses survive checkpoint-restart.

A child that exits before its parent waits becomes namespace state; the
restored parent's waitpid (re-issued on a different node with different
host pids) must still collect the status.
"""


from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import DEAD, build_program, imm, program


@program("testapp.zombie-parent")
def _parent(b, *, child_code, nap):
    b.syscall("c1", "spawn", imm("testapp.zombie-child"), imm({"code": child_code}), imm({}))
    b.syscall(None, "sleep", imm(nap))  # the child dies; checkpoint lands here
    b.syscall("status", "waitpid", "c1")
    b.halt(imm(0))


@program("testapp.zombie-child")
def _child(b, *, code):
    b.compute(imm(1_000_000))
    b.halt(imm(code))


def test_waitpid_after_restart_collects_zombie_status():
    cluster = Cluster.build(2, seed=101)
    manager = Manager.deploy(cluster)
    cluster.create_pod(cluster.node(0), "zp")
    cluster.node(0).kernel.spawn(
        build_program("testapp.zombie-parent", child_code=42, nap=5.0),
        pod_id="zp")
    holder = {}

    def kick():
        holder["m"] = migrate(manager, [("blade0", "zp", "blade1")])

    cluster.engine.schedule(1.0, kick)  # the child is long dead, unreaped
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    parent = next(p for n in cluster.nodes for p in n.kernel.procs.values()
                  if p.program.name == "testapp.zombie-parent" and p.exit_code == 0)
    assert parent.regs["status"] == 42  # preserved across the migration


def test_waitpid_without_checkpoint_still_works():
    cluster = Cluster.build(1, seed=102)
    cluster.create_pod(cluster.node(0), "zp")
    parent = cluster.node(0).kernel.spawn(
        build_program("testapp.zombie-parent", child_code=7, nap=2.0),
        pod_id="zp")
    cluster.engine.run(until=30.0)
    assert parent.state == DEAD and parent.regs["status"] == 7


def test_new_spawns_after_restore_do_not_reuse_zombie_vpids():
    cluster = Cluster.build(2, seed=103)
    manager = Manager.deploy(cluster)
    pod = cluster.create_pod(cluster.node(0), "zp")
    cluster.node(0).kernel.spawn(
        build_program("testapp.zombie-parent", child_code=3, nap=5.0),
        pod_id="zp")
    holder = {}
    cluster.engine.schedule(1.0, lambda: holder.update(
        m=migrate(manager, [("blade0", "zp", "blade1")])))
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    new_pod = cluster.find_pod("zp")
    assert new_pod.zombies  # the corpse travelled (until reaped... table kept)
    # a fresh allocation must not collide with the zombie's vpid (2)
    assert new_pod.namespace._next_vpid > max(new_pod.zombies)


def test_killed_processes_are_not_zombies():
    """SIGKILL (-9) corpses come from pod teardown, not application
    exits: they must not shadow future statuses."""
    cluster = Cluster.build(1, seed=104)
    pod = cluster.create_pod(cluster.node(0), "zp")
    proc = cluster.node(0).kernel.spawn(
        build_program("testapp.zombie-child", code=0), pod_id="zp")
    from repro.vos import SIGKILL
    cluster.node(0).kernel.send_signal(proc.pid, SIGKILL)
    assert proc.vpid not in pod.zombies
