"""End-to-end coverage of the image pipeline under the full protocol.

The property: whatever filter chain is configured — plain, compress,
delta, or compress∘delta — checkpoint→crash→restart produces a pod whose
application state is checksum-identical to an uncheckpointed run.  Plus
a golden pin that the unfiltered v1 on-disk image format written before
the pipeline existed still restarts, and a small-scale version of the
incremental size-drop acceptance criterion.
"""

import pytest

from repro.cluster import Cluster, FaultInjector, FaultPlan, FaultSpec
from repro.core import Manager, codec, migrate
from repro.core.pipeline import FileSink
from repro.errors import RestartError

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 800
BALLAST = 2_000_000

#: the chains of the round-trip property, by id.
CHAINS = {
    "plain": None,
    "compress": [{"name": "compress", "level": 4}],
    "delta": [{"name": "delta"}],
    "delta+compress": [{"name": "delta"}, {"name": "compress", "level": 4}],
}


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=42)
    manager = Manager.deploy(cluster)
    return cluster, manager


@pytest.mark.parametrize("chain", list(CHAINS), ids=list(CHAINS))
def test_any_chain_restores_checksum_identical_pods(world, chain):
    """Two checkpoints (building a chain), crash, restart, verify sums."""
    cluster, manager = world
    filters = CHAINS[chain]
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    targets = [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")]
    holder = {}

    def kick(i):
        holder[i] = manager.checkpoint(targets, filters=filters)

    def crash_and_restart():
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        holder["restart"] = manager.restart(targets)

    cluster.engine.schedule(0.15, kick, 0)
    cluster.engine.schedule(0.55, kick, 1)
    cluster.engine.schedule(1.0, crash_and_restart)
    cluster.engine.run(until=300.0)
    for i in (0, 1):
        result = holder[i].finished.result
        assert result.ok, result.errors
        if filters:
            assert result.filters["pp-srv"] == filters
    restart = holder["restart"].finished.result
    assert restart.ok, restart.errors
    if chain.startswith("delta"):
        assert restart.max_stat("chain_epochs") == 2
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_filtered_migration_restores_checksums(world):
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ], filters=[{"name": "delta"}, {"name": "compress", "level": 4}])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    # off-node delta degrades to a self-contained full record: the
    # destination restarts from a single image, no chain
    assert mig.restart.max_stat("chain_epochs") == 1
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_golden_v1_file_image_still_restarts(world):
    """The unfiltered on-SAN container is byte-for-byte the pre-pipeline
    format, and an image written that way restarts (the golden pin)."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    targets = [("blade0", "pp-srv", "file:/san/g-srv.img"),
               ("blade1", "pp-cli", "file:/san/g-cli.img")]
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint(targets)

    def check_and_recover():
        # the flushed file must be exactly what the historic writer
        # produced: codec({"data", "accounted", "netstate"}) around a
        # format-1 payload
        image = manager.agents["blade0"].images["pp-srv"]
        golden = codec.encode({
            "data": image.data,
            "accounted": image.accounted_bytes,
            "netstate": image.netstate_bytes,
        })
        on_disk = bytes(cluster.san.lookup("/g-srv.img").data)
        assert on_disk == golden
        assert codec.decode(image.data)["format"] == 1
        # a crash later, the v1 file restarts on different blades
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        holder["restart"] = manager.restart([
            ("blade2", "pp-srv", "file:/san/g-srv.img"),
            ("blade3", "pp-cli", "file:/san/g-cli.img"),
        ])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.schedule(1.5, check_and_recover)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    assert holder["restart"].finished.result.ok, holder["restart"].finished.result.errors
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_partial_container_is_never_accepted_by_the_reader(world):
    """Golden-format pin, negative direction: a container cut short at
    *any* point must be rejected by the v1 reader — a partial flush can
    never masquerade as a restartable image."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint(
            [("blade0", "pp-srv", "file:/san/pin-srv.img"),
             ("blade1", "pp-cli", "file:/san/pin-cli.img")])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    image = manager.agents["blade0"].images["pp-srv"]
    vfs = cluster.node(0).kernel.vfs
    for fraction in (0.05, 0.25, 0.5, 0.9, 0.999):
        sink = FileSink(cluster.san, vfs, "/san/pin-part.img")
        sink.store(image, truncate=fraction)
        with pytest.raises(RestartError):
            sink.load("pp-srv")
        sink.unlink()
    # the intact container still loads (the truncation is what breaks it)
    FileSink(cluster.san, vfs, "/san/pin-srv.img").load("pp-srv")


def test_truncate_fault_leaves_no_restartable_file(world):
    """End-to-end: an injected partial write makes the flush fail, the
    Agent unlinks the junk, and the operation reports the failure —
    nothing half-written stays visible on the SAN."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    FaultInjector(cluster, FaultPlan(seed=0, faults=[
        FaultSpec(kind="truncate_image", phase="agent.flush",
                  node="blade0", fraction=0.4),
    ])).install()
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint(
            [("blade0", "pp-srv", "file:/san/trunc-srv.img"),
             ("blade1", "pp-cli", "file:/san/trunc-cli.img")])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    result = holder["ckpt"].finished.result
    assert not result.ok
    assert any("flush" in e for e in result.errors)
    vfs = cluster.node(0).kernel.vfs
    # neither file survived: the partial one was unlinked by the Agent,
    # the complete sibling was garbage-collected (inconsistent cut)
    assert not FileSink(cluster.san, vfs, "/san/trunc-srv.img").exists()
    assert not FileSink(cluster.san, vfs, "/san/trunc-cli.img").exists()
    assert manager.last_checkpoint is None
    # the application kept running
    cluster.engine.run(until=500.0)
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_incremental_steady_state_images_shrink(world):
    """Small-scale acceptance: after the epoch-0 full image, delta
    checkpoints drop mean image size by well over 40%."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    targets = [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")]
    results = []

    def kick():
        task = manager.checkpoint(targets, filters=[{"name": "delta"}])
        task.finished.add_done_callback(lambda f: results.append(f.result))

    for i in range(4):
        cluster.engine.schedule(0.15 + 0.25 * i, kick)
    cluster.engine.run(until=300.0)
    assert len(results) == 4 and all(r.ok for r in results)
    sizes = [r.max_image_bytes() for r in results]
    steady = sum(sizes[1:]) / len(sizes[1:])
    assert steady < 0.6 * sizes[0], sizes
    # raw size stays at full scale — only the written bytes shrink
    assert results[-1].max_stat("raw_image_bytes") > 0.95 * sizes[0]
    assert final_sums(cluster) == expected_sums(ROUNDS)
