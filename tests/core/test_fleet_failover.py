"""Fleet campaigns across Manager failover, and the recover/drain race.

The campaign ledger family makes a half-finished wave durable: a replica
Manager claims the orphaned campaign and drives only the unfinished
tail.  The per-node op exclusion table makes ``recover()`` and
``drain()`` refuse to race each other over one node's pods.
"""

from repro.cluster.faults import FaultInjector, FaultPlan, FaultSpec, crash_node
from repro.core.manager import Manager
from repro.fleet import (
    FLEET_TIMEOUTS,
    FleetPolicy,
    build_fleet_world,
    drain_task,
    evacuate_campaign,
    resume_campaigns_task,
)
from repro.storage.ledger import OpLedger

LEASE_S = 3.0


def test_replica_resumes_half_done_wave_without_redriving():
    cluster, manager, pods = build_fleet_world(10, 24, seed=5, first_node=1,
                                               last_node=6)
    engine = cluster.engine
    # kill the Manager at the 10th completed unit: mid-campaign, with
    # whole waves durable behind it and a wave half-done in front
    FaultInjector(cluster, FaultPlan(seed=5, faults=[
        FaultSpec(kind="crash_manager", phase="fleet.pod_done",
                  after=9)])).install()
    policy = FleetPolicy(max_inflight=4, lease_s=LEASE_S)
    evac = [f"blade{i}" for i in range(1, 7)]
    state = {"resumed": [], "actions": None}

    def driver():
        camp = evacuate_campaign(manager, evac, policy=policy,
                                 timeouts=FLEET_TIMEOUTS)
        task = camp.run()
        yield engine.timeout(task.finished, 300.0)
        while not manager.crashed:
            yield engine.sleep(0.25)
        yield engine.sleep(LEASE_S + 1.0)
        replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
        # op-level takeover first (resolves the unit orphaned mid-flight),
        # then the campaign-level resume drives the unfinished tail
        yield from replica.takeover_task(timeouts=FLEET_TIMEOUTS,
                                         lease_s=LEASE_S)
        state["actions"] = yield from resume_campaigns_task(
            replica, timeouts=FLEET_TIMEOUTS, lease_s=LEASE_S,
            collect=state["resumed"])

    engine.spawn(driver(), name="drv")
    engine.run(until=600.0)

    assert manager.crashed
    assert state["actions"] is not None and len(state["actions"]) == 1
    (cid, phase_at_claim, status) = state["actions"][0]
    assert status == "ok"
    res = state["resumed"][0]
    assert res.resumed_from == phase_at_claim
    assert res.counts() == {"ok": 24, "failed": 0, "skipped": 0}
    # the units that committed before the crash were not driven again
    resumed_pods = {p for p, o in res.pods.items() if o.resumed}
    adopted_pods = {p for p, o in res.pods.items() if o.adopted}
    driven_pods = {p for p, o in res.pods.items()
                   if not o.resumed and not o.adopted}
    assert len(resumed_pods) >= 10           # at least the pre-crash units
    assert driven_pods                       # and a real unfinished tail
    # this seed crashes the Manager with moves committed at the op level
    # but no durable unit record: the replica adopts them (no re-drive
    # from the stale source, no duplicate migration)
    assert adopted_pods
    for pod_id in adopted_pods:
        out = res.pods[pod_id]
        assert out.status == "ok" and out.op_id > 0
        assert out.downtime == 0.0           # nothing was moved this run
    led = OpLedger(cluster.san)
    recs = [r for r in led.records()
            if r.get("rec") == "campaign" and r.get("phase") == "pod"]
    per_pod = {}
    for r in recs:
        per_pod.setdefault(r["pod"], []).append(r)
    for pod_id in resumed_pods:
        assert len(per_pod[pod_id]) == 1     # exactly one unit record: the
        assert per_pod[pod_id][0]["owner"] == "mgr0"   # original Manager's
    for pod_id in driven_pods | adopted_pods:
        assert per_pod[pod_id][-1]["owner"] == "mgr1"
    for pod_id in adopted_pods:
        assert per_pod[pod_id][-1].get("adopted") is True
    # the resumed outcomes carry the original ops, not re-driven ones
    for pod_id in resumed_pods:
        assert res.pods[pod_id].op_id == per_pod[pod_id][0]["op"]
    # the world is fully evacuated
    for name in evac:
        assert not cluster.node_by_name(name).kernel.pods
    lc = led.replay_campaigns()[cid]
    assert lc.terminal and lc.phase == "commit"
    assert len(lc.done_pods) == 24


def _run(cluster, gen, until=600.0):
    state = {}

    def driver():
        state["res"] = yield from gen
    cluster.engine.spawn(driver(), name="drv")
    cluster.engine.run(until=until)
    return state.get("res")


def test_recover_refused_while_campaign_holds_node():
    """Regression: recover() used to race a concurrent drain over the
    same node's pods; now the campaign's node claim makes the recover
    fail fast, destroying nothing."""
    cluster, manager, pods = build_fleet_world(5, 4, seed=6, first_node=1,
                                               last_node=2)
    targets = [(n, p, f"file:/san/reco-{p}.img") for (n, p) in pods[:2]]

    def scenario():
        res = yield from manager.checkpoint_task(targets, deadline=30.0,
                                                 timeouts=FLEET_TIMEOUTS)
        assert res.ok
        crash_node(cluster, cluster.node_by_name("blade1"))
        # a drain campaign holds blade1 (and blade2, the other involved
        # node is fine): recover must refuse, not destroy-and-restart
        assert manager.claim_nodes(["blade1"], "campaign:9")
        refused = yield from manager.recover_task(timeouts=FLEET_TIMEOUTS)
        assert refused.status == "failed"
        assert "node exclusion refused" in refused.errors[0]
        assert "campaign:9" in refused.errors[0]
        # the refusal destroyed nothing: blade2's pod kept running
        blade2 = cluster.node_by_name("blade2")
        assert pods[1][1] in blade2.kernel.pods
        assert not blade2.kernel.pods[pods[1][1]].suspended
        # once the campaign releases the node, recovery goes through
        manager.release_nodes(["blade1"], "campaign:9")
        res2 = yield from manager.recover_task(timeouts=FLEET_TIMEOUTS)
        assert res2.status == "ok"
        return res2

    res2 = _run(cluster, scenario())
    assert res2 is not None and res2.ok
    # the recovered pods run on surviving blades
    hosts = [n.name for n in cluster.nodes
             if not n.crashed and pods[0][1] in n.kernel.pods]
    assert len(hosts) == 1 and hosts[0] != "blade1"
    # and recover released its own claims on the way out
    for name in ("blade1", "blade2"):
        assert manager.node_claim_holder(name) is None


def test_drain_refused_while_recover_holds_node():
    cluster, manager, _pods = build_fleet_world(4, 4, seed=7, first_node=1,
                                                last_node=2)
    assert manager.claim_nodes(["blade2"], "recover:op42")
    res = _run(cluster, drain_task(manager, "blade2",
                                   policy=FleetPolicy(),
                                   timeouts=FLEET_TIMEOUTS))
    assert res.status == "excluded"
    assert "recover:op42" in res.errors[0]
    # the refused campaign moved nothing
    assert len(cluster.node_by_name("blade2").kernel.pods) == 2


def test_node_claims_are_atomic_and_owner_released():
    cluster, manager, _pods = build_fleet_world(4, 2, seed=8, first_node=1,
                                                last_node=2)
    assert manager.claim_nodes(["blade1"], "campaign:1")
    # all-or-nothing: a batch containing a held node claims nothing
    assert not manager.claim_nodes(["blade1", "blade2"], "campaign:2")
    assert manager.node_claim_holder("blade2") is None
    # only the holder releases
    manager.release_nodes(["blade1"], "campaign:2")
    assert manager.node_claim_holder("blade1") == "campaign:1"
    manager.release_nodes(["blade1"], "campaign:1")
    assert manager.node_claim_holder("blade1") is None
    # re-claiming under the same label is idempotent
    assert manager.claim_nodes(["blade1"], "campaign:3")
    assert manager.claim_nodes(["blade1"], "campaign:3")
    # a crash clears the table (the replica rebuilds its own claims)
    manager.crash()
    assert manager.node_claim_holder("blade1") is None


def test_campaign_avoids_foreign_claimed_destinations():
    cluster, manager, _pods = build_fleet_world(5, 4, seed=9, first_node=1,
                                                last_node=1)
    # blade2/blade3/blade4/blade0 are empty spares; a recover owns blade2
    assert manager.claim_nodes(["blade2"], "recover:op7")
    res = _run(cluster, drain_task(manager, "blade1",
                                   policy=FleetPolicy(max_inflight=2),
                                   timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok"
    for out in res.pods.values():
        assert out.dest != "blade2"          # never lands on a claimed node
    assert not cluster.node_by_name("blade2").kernel.pods
