"""Alternate-receive-queue interposition tests."""

from repro.core.altqueue import AltQueue, active_altqueue, install
from repro.net import Fabric, MSG_OOB, MSG_PEEK, NetStack
from repro.net.sockets import default_poll, default_recvmsg
from repro.vos import Kernel


def _sock(engine, proto="tcp"):
    kernel = Kernel(engine, "n")
    stack = NetStack(kernel, Fabric(engine), "10.0.0.1")
    sock = stack.create_socket(proto)
    if proto == "tcp":
        sock.conn.state = "established"
    return stack, sock


def test_altqueue_served_before_main_queue(engine):
    stack, sock = _sock(engine)
    sock.conn.recv_q.extend(b"NEW")
    install(sock, AltQueue(b"OLD"))
    first = sock.dispatch["recvmsg"](stack, sock, 3, 0)
    second = sock.dispatch["recvmsg"](stack, sock, 3, 0)
    assert first == b"OLD"
    assert second == b"NEW"


def test_altqueue_splices_short_reads(engine):
    """A read larger than the alt queue continues into the main queue so
    restored data never reorders after new data."""
    stack, sock = _sock(engine)
    sock.conn.recv_q.extend(b"newer")
    install(sock, AltQueue(b"old-"))
    got = sock.dispatch["recvmsg"](stack, sock, 9, 0)
    assert got == b"old-newer"


def test_originals_reinstalled_when_drained(engine):
    stack, sock = _sock(engine)
    install(sock, AltQueue(b"xy"))
    assert sock.dispatch["recvmsg"] is not default_recvmsg
    assert sock.dispatch["recvmsg"](stack, sock, 10, 0) == b"xy"
    # depleted: interposition removed to avoid overhead
    assert sock.dispatch["recvmsg"] is default_recvmsg
    assert sock.dispatch["poll"] is default_poll
    assert active_altqueue(sock) is None


def test_altqueue_poll_reports_readable(engine):
    stack, sock = _sock(engine)
    assert "r" not in sock.dispatch["poll"](stack, sock)
    install(sock, AltQueue(b"data"))
    assert "r" in sock.dispatch["poll"](stack, sock)


def test_altqueue_peek_does_not_consume(engine):
    stack, sock = _sock(engine)
    install(sock, AltQueue(b"peekable"))
    assert sock.dispatch["recvmsg"](stack, sock, 4, MSG_PEEK) == b"peek"
    assert sock.dispatch["recvmsg"](stack, sock, 8, 0) == b"peekable"


def test_altqueue_oob_channel(engine):
    stack, sock = _sock(engine)
    install(sock, AltQueue(b"stream", b"!"))
    assert sock.dispatch["recvmsg"](stack, sock, 10, MSG_OOB) == b"!"
    assert sock.dispatch["recvmsg"](stack, sock, 10, 0) == b"stream"
    assert sock.dispatch["recvmsg"] is default_recvmsg


def test_altqueue_release_cleans_up(engine):
    stack, sock = _sock(engine)
    alt = AltQueue(b"unconsumed")
    install(sock, alt)
    sock.dispatch["release"](stack, sock, None)
    assert alt.empty
    assert sock.closed


def test_second_checkpoint_sees_live_altqueue(engine):
    """active_altqueue exposes the queue so a second checkpoint can save
    its state, per the paper."""
    stack, sock = _sock(engine)
    alt = AltQueue(b"pending")
    install(sock, alt)
    assert active_altqueue(sock) is alt
    sock.dispatch["recvmsg"](stack, sock, 7, 0)
    assert active_altqueue(sock) is None


def test_append_for_redirected_send_queue(engine):
    stack, sock = _sock(engine)
    alt = AltQueue(b"mine")
    alt.append(b"+peer-sendq")
    install(sock, alt)
    assert sock.dispatch["recvmsg"](stack, sock, 64, 0) == b"mine+peer-sendq"


def test_empty_altqueue_never_installs(engine):
    stack, sock = _sock(engine)
    install(sock, AltQueue(b"", b""))
    assert sock.dispatch["recvmsg"] is default_recvmsg
