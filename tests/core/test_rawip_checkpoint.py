"""Checkpoint-restart of raw IP sockets (the third protocol of §5)."""


from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import build_program, imm, program

PROTO = 89  # an OSPF-ish protocol number in the port field


@program("testapp.raw-listener")
def _raw_listener(b, *, proto, count):
    b.syscall("fd", "socket", imm("raw"))
    b.syscall(None, "bind", "fd", imm(("default", proto)))
    b.mov("got", imm([]))
    with b.for_range("i", imm(0), imm(count)):
        b.syscall("dg", "recvfrom", "fd", imm(256), imm(0))
        b.op("got", lambda g, dg: g + [bytes(dg[0])], "got", "dg")
    b.halt(imm(0))


@program("testapp.raw-beacon")
def _raw_beacon(b, *, peer, proto, count, period=0.1):
    b.syscall("fd", "socket", imm("raw"))
    b.syscall(None, "bind", "fd", imm(("default", proto)))
    with b.for_range("i", imm(0), imm(count)):
        b.op("msg", lambda i: b"beacon-%03d" % i, "i")
        b.syscall(None, "sendto", "fd", "msg", imm((peer, proto)))
        b.syscall(None, "sleep", imm(period))
    b.halt(imm(0))


def test_raw_ip_sockets_survive_migration():
    """A raw-IP beacon stream: queued raw datagrams at checkpoint are
    restored; in-flight ones are legitimately lost (unreliable)."""
    cluster = Cluster.build(4, seed=71)
    manager = Manager.deploy(cluster)
    p_rx = cluster.create_pod(cluster.node(0), "raw-rx")
    cluster.create_pod(cluster.node(1), "raw-tx")
    count = 12
    rx = cluster.node(0).kernel.spawn(
        build_program("testapp.raw-listener", proto=PROTO, count=count),
        pod_id="raw-rx")
    cluster.node(1).kernel.spawn(
        build_program("testapp.raw-beacon", peer=p_rx.vip, proto=PROTO,
                      count=count), pod_id="raw-tx")
    holder = {}

    def kick():
        holder["m"] = migrate(manager, [
            ("blade0", "raw-rx", "blade2"),
            ("blade1", "raw-tx", "blade3"),
        ])

    cluster.engine.schedule(0.55, kick)  # mid-beacon-stream
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    done = [p for n in cluster.nodes for p in n.kernel.procs.values()
            if p.program.name == "testapp.raw-listener" and p.exit_code == 0]
    assert done, "listener did not complete after migration"
    got = done[0].regs["got"]
    # every beacon arrives in order; at most one may be lost in flight
    # during the freeze (unreliable protocol, the paper's expectation) —
    # but then the listener would still be waiting, so completion means
    # the queued ones were restored and the stream continued
    assert len(got) == count
    indices = [int(m.split(b"-")[1]) for m in got]
    assert indices == sorted(indices)


def test_raw_socket_queue_captured_in_image():
    cluster = Cluster.build(2, seed=72)
    manager = Manager.deploy(cluster)
    p_rx = cluster.create_pod(cluster.node(0), "raw-rx")
    cluster.create_pod(cluster.node(1), "raw-tx")

    @program("testapp.raw-sleepy")
    def _sleepy(b, *, proto):
        b.syscall("fd", "socket", imm("raw"))
        b.syscall(None, "bind", "fd", imm(("default", proto)))
        b.syscall(None, "sleep", imm(5.0))  # datagrams pile up
        b.syscall("dg", "recvfrom", "fd", imm(256), imm(0))
        b.halt(imm(0))

    cluster.node(0).kernel.spawn(
        build_program("testapp.raw-sleepy", proto=PROTO), pod_id="raw-rx")
    cluster.node(1).kernel.spawn(
        build_program("testapp.raw-beacon", peer=p_rx.vip, proto=PROTO,
                      count=3, period=0.05), pod_id="raw-tx")
    holder = {}
    cluster.engine.schedule(1.0, lambda: holder.update(c=manager.checkpoint(
        [("blade0", "raw-rx", "mem"), ("blade1", "raw-tx", "mem")])))
    cluster.engine.run(until=60.0)
    result = holder["c"].finished.result
    assert result.ok
    # the image holds the three queued raw datagrams
    image = manager.agents["blade0"].images["raw-rx"]
    payload = image.unpack()
    raw_recs = [r for r in payload["sockets"] if r["proto"] == "raw"]
    assert len(raw_recs) == 1
    assert len(raw_recs[0]["datagrams"]) == 3
    assert result.pods["raw-rx"]["netstate_bytes"] > 0
