"""Scope boundaries the paper declares: connections leaving the
checkpointed set "are beyond the scope of this paper" — we pin down what
actually happens so the boundary is explicit, not accidental."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import build_program, imm, program


@program("scope.outside-client")
def _outside_client(b, *, server_ip, port):
    """A pod process talking to a *host* service outside any pod."""
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((server_ip, port)))
    b.syscall(None, "send", "fd", imm(b"hello-from-pod"), imm(0))
    b.syscall("reply", "recv", "fd", imm(64), imm(0))
    b.syscall(None, "sleep", imm(5.0))  # checkpoint lands here
    b.syscall("after", "recv", "fd", imm(64), imm(0))
    b.halt(imm(0))


def test_connection_to_external_service_becomes_orphan():
    """Migrating a pod with a connection to an uncheckpointed host
    service: the protocol completes, the connection is restored as a
    dead-peer orphan (unread data + EOF), and the application observes
    a closed connection — not a hang, not a crash."""
    cluster = Cluster.build(3, seed=111)
    manager = Manager.deploy(cluster)

    # a host-level echo service on blade2, outside any pod
    kernel2 = cluster.node(2).kernel

    def host_service():
        chan = kernel2.host_channel("svc")
        lfd = yield kernel2.host_call(chan, "socket", "tcp")
        yield kernel2.host_call(chan, "bind", lfd, (cluster.node(2).ip, 8800))
        yield kernel2.host_call(chan, "listen", lfd, 4)
        fd, _peer = yield kernel2.host_call(chan, "accept", lfd)
        data = yield kernel2.host_call(chan, "recv", fd, 64, 0)
        yield kernel2.host_call(chan, "send", fd, b"ack:" + data, 0)
        # the service never learns about the migration; it keeps the
        # connection open and eventually gives up on its own

    cluster.engine.spawn(host_service(), name="svc")
    cluster.create_pod(cluster.node(0), "outp")
    cluster.node(0).kernel.spawn(
        build_program("scope.outside-client", server_ip=cluster.node(2).ip,
                      port=8800), pod_id="outp")
    holder = {}
    cluster.engine.schedule(1.0, lambda: holder.update(
        m=migrate(manager, [("blade0", "outp", "blade1")])))
    cluster.engine.run(until=120.0)
    mig = holder["m"].finished.result
    assert mig.ok  # the operation itself succeeds
    proc = next(p for n in cluster.nodes for p in n.kernel.procs.values()
                if p.program.name == "scope.outside-client" and p.exit_code == 0)
    assert proc.regs["reply"] == b"ack:hello-from-pod"  # pre-checkpoint data
    # post-restart the external connection is a dead-peer orphan: EOF
    assert proc.regs["after"] == b""


def test_checkpoint_rejects_topologies_with_triple_endpoints():
    from repro.core.meta import build_pod_meta, derive_restart_plan
    from repro.errors import CheckpointError

    rec = {"sock_id": 1, "proto": "tcp", "local": ("a", 1), "remote": ("b", 2),
           "listening": False, "origin": "initiated", "meta_state": "full-duplex",
           "pcb": {"sent": 1, "acked": 1, "recv": 1}}
    metas = {f"p{i}": build_pod_meta(f"p{i}", [dict(rec, sock_id=i)])
             for i in range(3)}
    with pytest.raises(CheckpointError):
        derive_restart_plan(metas)
