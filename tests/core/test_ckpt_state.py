"""Checkpoint-restart under adversarial socket state: queued data,
blocked syscalls, urgent data, UDP, timers."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.net import MSG_OOB
from repro.vos import DEAD, build_program, imm, program

MOD = (1 << 61) - 1


def _roll(acc, msg):
    return (acc * 31 + int.from_bytes(msg, "big")) % MOD


@program("testapp.bulk-sender")
def _bulk_sender(b, *, peer, port, chunks, chunk_bytes):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    with b.for_range("i", imm(0), imm(chunks)):
        b.op("msg", lambda i, n=chunk_bytes: bytes([i % 251]) * n, "i")
        b.syscall(None, "send", "fd", "msg", imm(0))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


@program("testapp.slow-receiver")
def _slow_receiver(b, *, port, total_bytes, compute_per_read=3_000_000):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.mov("got", imm(0))
    b.mov("sum", imm(0))
    b.op("more", lambda g, t=total_bytes: g < t, "got")
    with b.while_("more"):
        b.compute(imm(compute_per_read))  # deliberately slow: queues fill
        b.syscall("m", "recv", "cfd", imm(4096), imm(0))
        b.op("got", lambda g, m: g + len(m), "got", "m")
        b.op("sum", _roll, "sum", "m")
        b.op("more", lambda g, m, t=total_bytes: len(m) > 0 and g < t, "got", "m")
    b.halt(imm(0))


def _expected_stream_state(chunks, chunk_bytes):
    total = b"".join(bytes([i % 251]) * chunk_bytes for i in range(chunks))
    return len(total), total


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=11)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _find(cluster, prog):
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == prog and proc.state == DEAD and proc.exit_code == 0:
                return proc
    return None


def test_migration_with_full_queues_preserves_stream(world):
    """A fast sender and a slow receiver: at migration time the send and
    receive queues are non-empty; the byte stream must survive exactly."""
    cluster, manager = world
    chunks, chunk_bytes = 60, 4096
    total = chunks * chunk_bytes
    p_rx = cluster.create_pod(cluster.node(0), "rx")
    p_tx = cluster.create_pod(cluster.node(1), "tx")
    rx = cluster.node(0).kernel.spawn(
        build_program("testapp.slow-receiver", port=9200, total_bytes=total),
        pod_id="rx")
    tx = cluster.node(1).kernel.spawn(
        build_program("testapp.bulk-sender", peer=p_rx.vip, port=9200,
                      chunks=chunks, chunk_bytes=chunk_bytes),
        pod_id="tx")
    holder = {}

    def kick():
        # verify the scenario really has queued data right now
        stacks = [cluster.node(0).stack, cluster.node(1).stack]
        queued = 0
        for stack in stacks:
            for sock in stack.established.values():
                if sock.proto == "tcp":
                    queued += len(sock.conn.recv_q) + len(sock.conn.send_buf)
        holder["queued"] = queued
        holder["mig"] = migrate(manager, [
            ("blade0", "rx", "blade2"),
            ("blade1", "tx", "blade3"),
        ])

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=600.0)
    assert holder["queued"] > 0, "scenario failed to queue data at checkpoint"
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    receiver = _find(cluster, "testapp.slow-receiver")
    assert receiver is not None
    want_len, want_data = _expected_stream_state(chunks, chunk_bytes)
    assert receiver.regs["got"] == want_len
    # rolling checksum over whatever read-chunking happened is not
    # chunk-invariant, so recompute per the actual reads is impossible;
    # instead check totals plus sender completion
    sender = _find(cluster, "testapp.bulk-sender")
    assert sender is not None


@program("testapp.oob-receiver")
def _oob_receiver(b, *, port):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall("first", "recv", "cfd", imm(16), imm(0))
    b.syscall(None, "sleep", imm(2.0))  # checkpoint lands here
    b.syscall("urgent", "recv", "cfd", imm(16), imm(MSG_OOB))
    b.syscall("rest", "recv", "cfd", imm(16), imm(0))
    b.halt(imm(0))


@program("testapp.oob-sender")
def _oob_sender(b, *, peer, port):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "send", "fd", imm(b"normal-one"), imm(0))
    b.syscall(None, "send", "fd", imm(b"!"), imm(MSG_OOB))
    b.syscall(None, "send", "fd", imm(b"normal-two"), imm(0))
    b.syscall(None, "sleep", imm(60.0))  # stay alive across the migration
    b.halt(imm(0))


def test_urgent_data_survives_migration(world):
    """OOB data queued at checkpoint must be delivered after restart —
    the data peek-based approaches lose."""
    cluster, manager = world
    p_rx = cluster.create_pod(cluster.node(0), "orx")
    cluster.create_pod(cluster.node(1), "otx")
    rx = cluster.node(0).kernel.spawn(
        build_program("testapp.oob-receiver", port=9300), pod_id="orx")
    cluster.node(1).kernel.spawn(
        build_program("testapp.oob-sender", peer=p_rx.vip, port=9300), pod_id="otx")
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "orx", "blade2"),
            ("blade1", "otx", "blade3"),
        ])

    cluster.engine.schedule(1.0, kick)  # during the receiver's sleep
    cluster.engine.run(until=300.0)
    assert holder["mig"].finished.result.ok
    receiver = _find(cluster, "testapp.oob-receiver")
    assert receiver is not None
    # the normal-data stream is coalescing, so check the concatenation
    assert receiver.regs["first"] + receiver.regs["rest"] == b"normal-onenormal-two"
    assert receiver.regs["urgent"] == b"!"


@program("testapp.udp-echo")
def _udp_echo(b, *, port, count):
    """Sequenced echo server that re-acks duplicates (loss-tolerant, as
    any real UDP application must be — "packet loss is an expected
    behavior and should be accounted for by the application")."""
    b.syscall("fd", "socket", imm("udp"))
    b.syscall(None, "bind", "fd", imm(("default", port)))
    b.mov("n", imm(0))
    b.op("more", lambda n, c=count: n < c, "n")
    with b.while_("more"):
        b.syscall("dg", "recvfrom", "fd", imm(256), imm(0))
        b.op("idx", lambda dg: int.from_bytes(dg[0], "big"), "dg")
        b.op("peer", lambda dg: dg[1], "dg")
        b.op("fresh", lambda idx, n: idx == n, "idx", "n")
        with b.if_("fresh"):
            b.op("n", lambda n: n + 1, "n")
        b.op("reply", lambda idx: idx.to_bytes(8, "big"), "idx")
        b.syscall(None, "sendto", "fd", "reply", "peer")
        b.op("more", lambda n, c=count: n < c, "n")
    b.halt(imm(0))


@program("testapp.udp-client")
def _udp_client(b, *, peer, port, count):
    """Stop-and-wait client with a retransmission timeout."""
    b.syscall("fd", "socket", imm("udp"))
    b.syscall(None, "bind", "fd", imm(("default", 9401)))
    b.mov("acks", imm(0))
    with b.for_range("i", imm(0), imm(count)):
        b.op("msg", lambda i: i.to_bytes(8, "big"), "i")
        b.mov("pending", imm(True))
        with b.while_("pending"):
            b.syscall(None, "sendto", "fd", "msg", imm((peer, port)))
            b.op("pollspec", lambda fd: [(fd, "r")], "fd")
            b.syscall("ready", "poll", "pollspec", imm(0.3))
            with b.if_("ready"):
                b.syscall("r", "recvfrom", "fd", imm(256), imm(0))
                b.op("ok", lambda r, i: int.from_bytes(r[0], "big") == i, "r", "i")
                with b.if_("ok"):
                    b.op("acks", lambda a: a + 1, "acks")
                    b.mov("pending", imm(False))
        b.compute(imm(500_000))
    b.halt(imm(0))


def test_udp_application_survives_migration(world):
    """Connectionless sockets: no re-establishment, queues restored
    directly; the request/reply loop continues correctly."""
    cluster, manager = world
    count = 100
    p_srv = cluster.create_pod(cluster.node(0), "usrv")
    cluster.create_pod(cluster.node(1), "ucli")
    cluster.node(0).kernel.spawn(
        build_program("testapp.udp-echo", port=9400, count=count), pod_id="usrv")
    cluster.node(1).kernel.spawn(
        build_program("testapp.udp-client", peer=p_srv.vip, port=9400, count=count),
        pod_id="ucli")
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "usrv", "blade2"),
            ("blade1", "ucli", "blade3"),
        ])

    cluster.engine.schedule(0.01, kick)
    cluster.engine.run(until=300.0)
    assert holder["mig"].finished.result.ok
    server = _find(cluster, "testapp.udp-echo")
    client = _find(cluster, "testapp.udp-client")
    assert server is not None and client is not None
    assert server.regs["n"] == count
    assert client.regs["acks"] == count
