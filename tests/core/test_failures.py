"""Failure semantics: aborted checkpoints, dead agents, crashed managers.

Section 4: "an Agent failure will be readily detected by the Manager as
soon as the connection becomes broken.  Similarly a failure of the
Manager itself will be noted by the Agents.  In both cases, the
operation will be gracefully aborted, and the application will resume
its execution."
"""

import pytest

from repro.cluster import Cluster, crash_node, isolate_node
from repro.core import Manager
from repro.vos import DEAD

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 600


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=99)
    manager = Manager.deploy(cluster)
    return cluster, manager


def test_checkpoint_aborts_when_one_agent_unreachable(world):
    """One participating node is partitioned mid-checkpoint: the Manager
    times out, aborts, and the application keeps running correctly."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        # isolate the client's node just before the checkpoint so the
        # manager can never reach its agent
        isolate_node(cluster, cluster.node(1))
        holder["ckpt"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")],
            deadline=3.0)

    def heal():
        from repro.cluster import heal_node
        heal_node(cluster, cluster.node(1))

    cluster.engine.schedule(0.1, kick)
    cluster.engine.schedule(5.0, heal)
    cluster.engine.run(until=300.0)
    result = holder["ckpt"].finished.result
    assert not result.ok
    assert result.status in ("timeout", "failed")
    # the application recovered (TCP retransmission) and finished right
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_agent_aborts_when_manager_connection_breaks(world):
    """The Agent notices the dead Manager (EOF on the control channel)
    and resumes the suspended pod."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    agent = manager.agents["blade0"]

    # speak the protocol directly, then vanish without sending continue
    kernel = manager.home.kernel

    def rogue_manager():
        from repro.core.wire import recv_msg, send_msg
        from repro.core.agent import AGENT_PORT
        chan = kernel.host_channel("rogue")
        fd = yield kernel.host_call(chan, "socket", "tcp")
        yield kernel.host_call(chan, "connect", fd, (cluster.node(0).ip, AGENT_PORT))
        yield from send_msg(kernel, chan, fd, {
            "cmd": "checkpoint", "pod": "pp-srv", "uri": "mem", "context": "snapshot"})
        msg = yield from recv_msg(kernel, chan, fd)
        assert msg["type"] == "meta"
        # die before sending 'continue'
        yield kernel.host_call(chan, "close", fd)

    def kick():
        cluster.engine.spawn(rogue_manager(), name="rogue")

    cluster.engine.schedule(0.1, kick)
    cluster.engine.run(until=300.0)
    # the pod resumed and the run finished correctly
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_restart_recovers_application_after_node_crash(world):
    """The headline use case: checkpoint periodically, crash a node,
    restart the lost pods elsewhere from shared storage."""
    cluster, manager = world
    # keep the application off blade0: the Manager lives there
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([
            ("blade1", "pp-srv", "file:/san/ft-srv.img"),
            ("blade2", "pp-cli", "file:/san/ft-cli.img"),
        ])

    def crash():
        crash_node(cluster, cluster.node(1))   # takes pp-srv down
        # the surviving peer pod must be stopped too: a restart rolls the
        # *whole* application back to the consistent checkpoint
        cluster.find_pod("pp-cli").destroy()
        holder["restart"] = manager.restart([
            ("blade3", "pp-srv", "file:/san/ft-srv.img"),
            ("blade0", "pp-cli", "file:/san/ft-cli.img"),
        ])

    cluster.engine.schedule(0.1, kick)
    cluster.engine.schedule(1.0, crash)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    assert holder["restart"].finished.result.ok, holder["restart"].finished.result.errors
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_checkpoint_of_unknown_pod_fails_cleanly(world):
    cluster, manager = world
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([("blade0", "ghost", "mem")])

    cluster.engine.schedule(0.1, kick)
    cluster.engine.run(until=30.0)
    result = holder["ckpt"].finished.result
    assert not result.ok
    assert any("ghost" in e for e in result.errors)


def test_restart_with_missing_image_fails_cleanly(world):
    cluster, manager = world
    holder = {}

    def kick():
        holder["restart"] = manager.restart([("blade0", "never-saved", "mem")])

    cluster.engine.schedule(0.1, kick)
    cluster.engine.run(until=30.0)
    result = holder["restart"].finished.result
    assert not result.ok


def test_deadline_abort_resumes_all_pods_and_reaps_protocol_tasks(world):
    """When the deadline expires mid-checkpoint, every Agent's pod must
    be resumed (verified by the Manager itself) and no ``ckpt-*``
    protocol task may be left orphaned in the engine."""
    from repro.core.manager import PhaseTimeouts

    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        isolate_node(cluster, cluster.node(1))
        # generous per-phase timeouts: only the global deadline can fire,
        # exercising the cancel-then-cleanup path
        holder["ckpt"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")],
            deadline=2.0, timeouts=PhaseTimeouts(connect=60.0, barrier=60.0))

    def heal():
        from repro.cluster import heal_node
        heal_node(cluster, cluster.node(1))

    cluster.engine.schedule(0.1, kick)
    cluster.engine.schedule(6.0, heal)
    cluster.engine.run(until=400.0)

    result = holder["ckpt"].finished.result
    assert result.status == "timeout"
    # the abort path verified the reachable pod resumed
    assert result.resumed.get("pp-srv") is True
    # no orphaned protocol tasks: every ckpt-* task was reaped
    leftovers = [t.name for t in cluster.engine.live_tasks()
                 if t.name.startswith("ckpt-") or t.name.startswith("manager-")]
    assert leftovers == [], leftovers
    # neither pod is suspended and the application completed correctly
    for pod in cluster.pods().values():
        assert not pod.suspended
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_recover_restarts_lost_pods_on_surviving_nodes(world):
    """Manager.recover: detect the crashed blade and restart its pods
    elsewhere from last_checkpoint — no manual targets needed."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([
            ("blade1", "pp-srv", "file:/san/rec-srv.img"),
            ("blade2", "pp-cli", "file:/san/rec-cli.img"),
        ])

    def crash():
        crash_node(cluster, cluster.node(1))   # takes pp-srv down
        holder["recover"] = manager.recover()

    cluster.engine.schedule(0.1, kick)
    cluster.engine.schedule(1.0, crash)
    cluster.engine.run(until=400.0)

    assert holder["ckpt"].finished.result.ok
    rec = holder["recover"].finished.result
    assert rec.ok, rec.errors
    # pp-srv moved off the dead blade; pp-cli stayed put
    assert cluster.node_of_pod("pp-srv").name != "blade1"
    assert cluster.node_of_pod("pp-cli").name == "blade2"
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_recover_without_checkpoint_fails_without_side_effects(world):
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    holder = {}

    def kick():
        crash_node(cluster, cluster.node(3))   # empty blade dies
        holder["recover"] = manager.recover()

    cluster.engine.schedule(0.5, kick)
    cluster.engine.run(until=300.0)
    rec = holder["recover"].finished.result
    assert not rec.ok
    assert any("no usable checkpoint" in e for e in rec.errors)
    # the running application was never touched
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)
