"""Distributed test applications for checkpoint-restart integration tests.

The ping-pong pair exchanges strictly alternating 8-byte sequenced
messages with rolling checksums on both sides, so the *combined final
state is a deterministic function of the round count* — regardless of
timing, checkpoints, restarts or migrations in between.  Any divergence
(lost, duplicated, reordered or corrupted bytes) shows up as a checksum
mismatch.
"""

from __future__ import annotations

from repro.vos import imm, program

MOD = (1 << 61) - 1


def roll(acc: int, msg: bytes) -> int:
    """Rolling checksum step (module-level so programs can reference it)."""
    return (acc * 31 + int.from_bytes(msg, "big")) % MOD


def _reply_of(msg: bytes) -> bytes:
    return (int.from_bytes(msg, "big") + 1).to_bytes(8, "big")


def _i2msg(i: int) -> bytes:
    return i.to_bytes(8, "big")


def expected_sums(rounds: int) -> tuple:
    """(client checksum, server checksum) for a correct run."""
    csum = ssum = 0
    for i in range(rounds):
        msg = _i2msg(i)
        ssum = roll(ssum, msg)
        reply = _reply_of(msg)
        csum = roll(csum, reply)
    return csum, ssum


@program("testapp.pp-server")
def _pp_server(b, *, port, rounds, compute=200_000, ballast=0, dirty_rate=0):
    if dirty_rate:
        b.set_dirty_rate(dirty_rate)
    if ballast:
        b.alloc(imm(ballast), "heap")
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(8))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.mov("sum", imm(0))
    with b.for_range("i", imm(0), imm(rounds)):
        b.syscall("m", "recv", "cfd", imm(8), imm(0))
        b.op("sum", roll, "sum", "m")
        b.compute(imm(compute))
        b.op("reply", _reply_of, "m")
        b.syscall(None, "send", "cfd", "reply", imm(0))
    b.syscall(None, "close", "cfd")
    b.halt(imm(0))


@program("testapp.pp-client")
def _pp_client(b, *, server, port, rounds, compute=200_000, ballast=0, dirty_rate=0):
    if dirty_rate:
        b.set_dirty_rate(dirty_rate)
    if ballast:
        b.alloc(imm(ballast), "heap")
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((server, port)))
    b.mov("sum", imm(0))
    with b.for_range("i", imm(0), imm(rounds)):
        b.op("msg", _i2msg, "i")
        b.syscall(None, "send", "fd", "msg", imm(0))
        b.syscall("r", "recv", "fd", imm(8), imm(0))
        b.op("sum", roll, "sum", "r")
        b.compute(imm(compute))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


def launch_pingpong(cluster, *, rounds=1500, port=9100, compute=200_000,
                    ballast=0, dirty_rate=0, server_node=0, client_node=1,
                    server_pod="pp-srv", client_pod="pp-cli"):
    """Start the pair in two pods; returns (server proc, client proc).

    ``dirty_rate`` (bytes rewritten per CPU-second) turns the pair into a
    writing workload for live-migration tests; it is passed through only
    when nonzero so existing checkpoint images keep their exact params.
    """
    from repro.vos import build_program

    extra = {"dirty_rate": dirty_rate} if dirty_rate else {}
    n_srv = cluster.node(server_node)
    n_cli = cluster.node(client_node)
    pod_srv = cluster.create_pod(n_srv, server_pod)
    pod_cli = cluster.create_pod(n_cli, client_pod)
    srv = n_srv.kernel.spawn(
        build_program("testapp.pp-server", port=port, rounds=rounds,
                      compute=compute, ballast=ballast, **extra),
        pod_id=server_pod)
    cli = n_cli.kernel.spawn(
        build_program("testapp.pp-client", server=pod_srv.vip, port=port,
                      rounds=rounds, compute=compute, ballast=ballast, **extra),
        pod_id=client_pod)
    return srv, cli


def final_sums(cluster, server_prog="testapp.pp-server", client_prog="testapp.pp-client"):
    """Collect (client sum, server sum) from wherever the processes ended
    up (post-migration they live on different nodes with new pids)."""
    csum = ssum = None
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == client_prog and proc.exit_code == 0:
                csum = proc.regs["sum"]
            elif proc.program.name == server_prog and proc.exit_code == 0:
                ssum = proc.regs["sum"]
    return csum, ssum
