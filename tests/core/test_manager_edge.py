"""Manager/Agent edge cases and protocol details."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.core.agent import AGENT_PORT
from repro.core.wire import recv_msg, send_msg

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 300


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=31)
    manager = Manager.deploy(cluster)
    return cluster, manager


def test_empty_checkpoint_completes_trivially(world):
    cluster, manager = world
    holder = {}
    cluster.engine.schedule(0.1, lambda: holder.update(c=manager.checkpoint([])))
    cluster.engine.run(until=10.0)
    result = holder["c"].finished.result
    assert result.ok and result.pods == {}


def test_agents_answer_ping(world):
    cluster, manager = world
    kernel = manager.home.kernel

    def pinger():
        chan = kernel.host_channel("ping")
        fd = yield kernel.host_call(chan, "socket", "tcp")
        yield kernel.host_call(chan, "connect", fd, (cluster.node(2).ip, AGENT_PORT))
        yield from send_msg(kernel, chan, fd, {"cmd": "ping"})
        reply = yield from recv_msg(kernel, chan, fd)
        yield kernel.host_call(chan, "close", fd)
        return reply

    reply = cluster.engine.run_task(pinger())
    assert reply == {"type": "pong", "node": "blade2"}


def test_unknown_command_reports_error(world):
    cluster, manager = world
    kernel = manager.home.kernel

    def speaker():
        chan = kernel.host_channel("x")
        fd = yield kernel.host_call(chan, "socket", "tcp")
        yield kernel.host_call(chan, "connect", fd, (cluster.node(1).ip, AGENT_PORT))
        yield from send_msg(kernel, chan, fd, {"cmd": "frobnicate"})
        reply = yield from recv_msg(kernel, chan, fd)
        return reply

    reply = cluster.engine.run_task(speaker())
    assert reply["type"] == "error"
    assert "frobnicate" in reply["error"]


def test_sequential_recovery_is_fine_on_acyclic_topology(world):
    """The two threads matter only for cyclic topologies: a star (the
    ping-pong pair is the trivial case) restores fine sequentially."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ], recovery_mode="sequential")

    cluster.engine.schedule(0.2, kick)
    cluster.engine.run(until=300.0)
    assert holder["mig"].finished.result.ok
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_checkpoint_while_checkpoint_in_progress(world):
    """Two overlapping snapshots of the same pods: both must complete
    (agent sessions serialize on pod suspension naturally)."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        targets = [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")]
        holder["a"] = manager.checkpoint(targets)
        holder["b"] = manager.checkpoint(targets)

    cluster.engine.schedule(0.2, kick)
    cluster.engine.run(until=300.0)
    ra = holder["a"].finished.result
    rb = holder["b"].finished.result
    assert ra.ok and rb.ok, (ra.errors, rb.errors)
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_restart_plan_meta_travels_with_image(world):
    """Restart derives meta from the stored image (no Manager memory
    needed): a *fresh* Manager instance can restart old images."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def snap():
        holder["c"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    def restart_with_fresh_manager():
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        fresh = Manager(cluster, manager.agents, home=cluster.node(2))
        holder["r"] = fresh.restart(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    cluster.engine.schedule(0.2, snap)
    cluster.engine.schedule(1.0, restart_with_fresh_manager)
    cluster.engine.run(until=300.0)
    assert holder["c"].finished.result.ok
    assert holder["r"].finished.result.ok
    assert final_sums(cluster) == expected_sums(ROUNDS)
