"""Codec tests, including property-based round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import decode, encode, encoded_size
from repro.errors import CodecError


def test_scalars_round_trip():
    for obj in (None, True, False, 0, -1, 2**40, -(2**70), 3.5, "héllo", b"\x00\xff"):
        assert decode(encode(obj)) == obj


def test_containers_round_trip():
    obj = {"a": [1, 2, (3, "x")], "b": {"nested": b"bytes"}, "c": None}
    assert decode(encode(obj)) == obj


def test_ndarray_round_trip():
    arr = np.arange(12, dtype=np.float64).reshape(3, 4)
    back = decode(encode(arr))
    assert isinstance(back, np.ndarray)
    assert back.dtype == arr.dtype
    assert np.array_equal(back, arr)


def test_numpy_scalars_become_python_scalars():
    assert decode(encode(np.int64(7))) == 7
    assert decode(encode(np.float64(2.5))) == 2.5


def test_non_string_dict_keys_round_trip():
    obj = {1: "a", (2, "b"): [3], b"k": None}
    assert decode(encode(obj)) == obj


def test_unrepresentable_type_rejected():
    with pytest.raises(CodecError):
        encode(object())


def test_truncated_buffer_rejected():
    data = encode({"k": b"0123456789"})
    with pytest.raises(CodecError):
        decode(data[:-3])


def test_trailing_garbage_rejected():
    with pytest.raises(CodecError):
        decode(encode(1) + b"junk")


def test_unknown_tag_rejected():
    with pytest.raises(CodecError):
        decode(b"Z")


def test_encoded_size_matches():
    obj = {"x": list(range(100))}
    assert encoded_size(obj) == len(encode(obj))


# ---------------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


@settings(max_examples=200, deadline=None)
@given(_values)
def test_round_trip_property(obj):
    assert decode(encode(obj)) == obj


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(["u1", "i4", "i8", "f4", "f8"]),
    st.integers(min_value=0, max_value=50),
)
def test_ndarray_round_trip_property(dtype, n):
    arr = (np.arange(n) * 3).astype(dtype)
    back = decode(encode(arr))
    assert back.dtype == arr.dtype and np.array_equal(back, arr)


@settings(max_examples=100, deadline=None)
@given(_values)
def test_encoding_is_deterministic(obj):
    assert encode(obj) == encode(obj)


def test_errno_round_trip():
    from repro.vos.syscalls import Errno

    obj = {"rc": Errno("ECONNREFUSED", "10.77.0.1:9600")}
    back = decode(encode(obj))
    assert isinstance(back["rc"], Errno)
    assert back["rc"].name == "ECONNREFUSED"
    assert back["rc"].detail == "10.77.0.1:9600"


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=120))
def test_decode_of_arbitrary_bytes_never_crashes_uncontrolled(data):
    """Fuzz: decoding garbage either yields a value (if it happens to be
    well-formed) or raises CodecError — never an uncontrolled exception.
    Checkpoint images may arrive corrupted; the decoder must fail safe."""
    try:
        decode(data)
    except CodecError:
        pass


@settings(max_examples=150, deadline=None)
@given(_values, st.integers(min_value=0, max_value=10_000))
def test_truncation_always_detected(obj, cut):
    """Any strict prefix of a valid encoding is rejected."""
    data = encode(obj)
    if len(data) < 2:
        return
    cut = cut % (len(data) - 1)
    with pytest.raises(CodecError):
        decode(data[:cut + 1]) if data[:cut + 1] != data else None
