"""Time-virtualization tests (Section 5's optional clock/timer rebasing)."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager
from repro.vos import DEAD, build_program, imm, program


@program("testapp.heartbeat")
def _heartbeat(b, *, threshold, work=3.0):
    """An application-level timeout layer: stamp, work, check staleness —
    the pattern the paper says breaks without time virtualization."""
    b.syscall("stamp", "gettime")
    b.syscall(None, "sleep", imm(work))  # checkpoint lands in here
    b.syscall("now", "gettime")
    b.op("elapsed", lambda now, stamp: now - stamp, "now", "stamp")
    b.op("expired", lambda e, t=threshold: e > t, "elapsed")
    b.halt(imm(0))


@program("testapp.timer-user")
def _timer_user(b, *, delay):
    b.syscall("tid", "settimer", imm(delay))
    b.syscall(None, "sleep", imm(1.0))  # checkpoint lands here
    b.syscall("fired", "waittimer", "tid")
    b.syscall("t", "gettime")
    b.halt(imm(0))


@pytest.fixture
def world():
    cluster = Cluster.build(2, seed=3)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _snapshot_then_delayed_restart(cluster, manager, pod_id, gap, **restart_kw):
    """Checkpoint at 0.5s, destroy the pod, restart after ``gap`` seconds."""
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([("blade0", pod_id, "mem")])

    def destroy():
        # the pod dies right after the snapshot so only the restored
        # instance ever completes (otherwise the resumed original would
        # finish too and confound the assertions)
        cluster.find_pod(pod_id).destroy()

    def restart():
        # in-memory images live on the checkpointing node's agent, so the
        # restart happens there too (the pod is gone by then)
        holder["restart"] = manager.restart([("blade0", pod_id, "mem")], **restart_kw)

    cluster.engine.schedule(0.5, kick)
    cluster.engine.schedule(0.8, destroy)
    cluster.engine.schedule(0.5 + gap, restart)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    assert holder["restart"].finished.result.ok
    return holder


def _app_proc(cluster, name):
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == name and proc.state == DEAD and proc.exit_code == 0:
                return proc
    raise AssertionError(f"no completed {name}")


def test_virtualized_clock_hides_the_gap(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "hb")
    cluster.node(0).kernel.spawn(
        build_program("testapp.heartbeat", threshold=5.0), pod_id="hb")
    _snapshot_then_delayed_restart(cluster, manager, "hb", gap=10.0,
                                   time_virtualization=True)
    proc = _app_proc(cluster, "testapp.heartbeat")
    # the app slept 3s; with the clock rebased it must observe ~3s even
    # though >10s of real time passed
    assert proc.regs["elapsed"] == pytest.approx(3.0, abs=0.3)
    assert proc.regs["expired"] is False


def test_unvirtualized_clock_exposes_the_gap(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "hb")
    cluster.node(0).kernel.spawn(
        build_program("testapp.heartbeat", threshold=5.0), pod_id="hb")
    _snapshot_then_delayed_restart(cluster, manager, "hb", gap=10.0,
                                   time_virtualization=False)
    proc = _app_proc(cluster, "testapp.heartbeat")
    # without virtualization the app sees the checkpoint→restart delay
    # and its timeout layer trips — the paper's "undesired effect"
    assert proc.regs["elapsed"] > 5.0
    assert proc.regs["expired"] is True


def test_timers_rearmed_with_remaining_time(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "tm")
    cluster.node(0).kernel.spawn(
        build_program("testapp.timer-user", delay=4.0), pod_id="tm")
    _snapshot_then_delayed_restart(cluster, manager, "tm", gap=8.0,
                                   time_virtualization=True)
    proc = _app_proc(cluster, "testapp.timer-user")
    assert proc.regs["fired"] is True
    # virtual completion time ~= the timer's original 4s expiry
    assert proc.regs["t"] == pytest.approx(4.0, abs=0.5)


def test_timers_fire_immediately_without_virtualization(world):
    cluster, manager = world
    cluster.create_pod(cluster.node(0), "tm")
    cluster.node(0).kernel.spawn(
        build_program("testapp.timer-user", delay=4.0), pod_id="tm")
    holder = _snapshot_then_delayed_restart(cluster, manager, "tm", gap=8.0,
                                            time_virtualization=False)
    proc = _app_proc(cluster, "testapp.timer-user")
    assert proc.regs["fired"] is True
    # real time at completion is shortly after the restart (~8.5s+),
    # i.e. the timer expired "immediately" rather than waiting 4s more
    restart_end = holder["restart"].finished.result.t_end
    assert proc.regs["t"] < restart_end + 1.0
