"""The second-checkpoint-before-drain case.

Section 5: "Clearly, the checkpoint procedure must save the state of the
alternate queue, if applicable (e.g. if a second checkpoint is taken
before the application reads its pending data)."  After a restart, the
restored data sits in an alternate receive queue; a second checkpoint
taken before the application consumes it must capture that queue, and a
restart from the *second* image must still deliver every byte exactly
once, in order.
"""


from repro.cluster import Cluster
from repro.core import Manager
from repro.vos import build_program, imm, program


@program("dblckpt.receiver")
def _receiver(b, *, port, expect, naps):
    """Accept, then alternate long naps with reads — checkpoints land in
    the naps, while data waits in the (alternate) receive queue."""
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.mov("got", imm(b""))
    for nap in naps:
        b.syscall(None, "sleep", imm(nap))
        b.op("more", lambda g, e=expect: len(g) < e, "got")
        with b.while_("more"):
            b.syscall("m", "recv", "cfd", imm(64), imm(0))
            b.op("got", lambda g, m: g + m, "got", "m")
            b.op("more", lambda g, m, e=expect: len(m) == 64 and len(g) < e, "got", "m")
    b.halt(imm(0))


@program("dblckpt.sender")
def _sender(b, *, peer, port, chunks):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    for i, chunk in enumerate(chunks):
        b.syscall(None, "send", "fd", imm(chunk), imm(0))
        b.syscall(None, "sleep", imm(0.4))
    b.syscall(None, "sleep", imm(60.0))
    b.halt(imm(0))


def test_second_checkpoint_captures_the_alternate_queue():
    cluster = Cluster.build(4, seed=141)
    manager = Manager.deploy(cluster)
    chunks = [b"<one>", b"<two>", b"<three>", b"<four>"]
    expect = sum(len(c) for c in chunks)
    p_rx = cluster.create_pod(cluster.node(0), "dq-rx")
    cluster.create_pod(cluster.node(1), "dq-tx")
    cluster.node(0).kernel.spawn(
        build_program("dblckpt.receiver", port=9700, expect=expect,
                      naps=(2.0, 3.0)), pod_id="dq-rx")
    cluster.node(1).kernel.spawn(
        build_program("dblckpt.sender", peer=p_rx.vip, port=9700,
                      chunks=chunks), pod_id="dq-tx")
    holder = {}
    targets = [("blade0", "dq-rx", "mem"), ("blade1", "dq-tx", "mem")]

    # checkpoint #1 at t=1.0: some chunks queued, receiver napping.
    # The snapshot resume installs an alternate receive queue.
    cluster.engine.schedule(1.0, lambda: holder.update(
        c1=manager.checkpoint(targets)))
    # checkpoint #2 at t=1.6: still inside the first nap — the alternate
    # queue from #1 has not been consumed yet and must be captured.
    cluster.engine.schedule(1.6, lambda: holder.update(
        c2=manager.checkpoint(targets)))

    # destroy right after #2 and restart from the SECOND image
    def crash_and_restart():
        if not holder["c2"].finished.done or not holder["c2"].finished.result.ok:
            return
        cluster.find_pod("dq-rx").destroy()
        cluster.find_pod("dq-tx").destroy()
        holder["r"] = manager.restart(targets)

    cluster.engine.schedule(1.9, crash_and_restart)
    cluster.engine.run(until=300.0)

    assert holder["c1"].finished.result.ok
    c2 = holder["c2"].finished.result
    assert c2.ok
    # the second image really carried receive-side data
    image = manager.agents["blade0"].images["dq-rx"]
    recs = [r for r in image.unpack()["sockets"]
            if r["proto"] == "tcp" and not r["listening"]]
    assert any(r["recv_data"] for r in recs), \
        "second checkpoint should capture the (alternate) receive queue"
    assert holder["r"].finished.result.ok

    receiver = next(p for n in cluster.nodes for p in n.kernel.procs.values()
                    if p.program.name == "dblckpt.receiver" and p.exit_code == 0)
    # every byte exactly once, in order, across two checkpoints + restart
    assert receiver.regs["got"] == b"".join(chunks)


def test_three_generations_of_checkpoints():
    """Checkpoint → restart → checkpoint → restart → verify: images of
    restored pods are themselves restorable."""
    cluster = Cluster.build(2, seed=142)
    manager = Manager.deploy(cluster)
    chunks = [b"alpha|", b"beta|", b"gamma|"]
    expect = sum(len(c) for c in chunks)
    p_rx = cluster.create_pod(cluster.node(0), "dq-rx")
    cluster.create_pod(cluster.node(1), "dq-tx")
    cluster.node(0).kernel.spawn(
        build_program("dblckpt.receiver", port=9701, expect=expect,
                      naps=(2.0, 2.0)), pod_id="dq-rx")
    cluster.node(1).kernel.spawn(
        build_program("dblckpt.sender", peer=p_rx.vip, port=9701,
                      chunks=chunks), pod_id="dq-tx")
    targets = [("blade0", "dq-rx", "mem"), ("blade1", "dq-tx", "mem")]
    holder = {}

    def cycle(tag, destroy_first):
        def run():
            if destroy_first:
                cluster.find_pod("dq-rx").destroy()
                cluster.find_pod("dq-tx").destroy()
                holder[tag] = manager.restart(targets)
            else:
                holder[tag] = manager.checkpoint(targets)
        return run

    cluster.engine.schedule(1.0, cycle("c1", False))
    cluster.engine.schedule(1.5, cycle("r1", True))
    cluster.engine.schedule(2.5, cycle("c2", False))
    cluster.engine.schedule(3.0, cycle("r2", True))
    cluster.engine.run(until=300.0)
    for tag in ("c1", "r1", "c2", "r2"):
        assert holder[tag].finished.result.ok, (tag, holder[tag].finished.result.errors)
    receiver = next(p for n in cluster.nodes for p in n.kernel.procs.values()
                    if p.program.name == "dblckpt.receiver" and p.exit_code == 0)
    assert receiver.regs["got"] == b"".join(chunks)
