"""End-to-end coordinated checkpoint-restart tests (the paper's core claims)."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import DEAD

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 800


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=42)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _run_to_completion(cluster, procs, until=300.0):
    cluster.engine.run(until=until)
    for proc in procs:
        assert proc.state == DEAD or proc.exit_code == 0 or True  # inspected below


def test_baseline_pingpong_correct(world):
    cluster, _ = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    cluster.engine.run(until=120.0)
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_snapshot_checkpoint_then_app_completes(world):
    """Checkpoint (snapshot) mid-run: app must finish correctly afterwards."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["task"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=120.0)
    result = holder["task"].finished.result
    assert result.ok, result.errors
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)
    # sub-second checkpoint, network share tiny
    assert result.duration < 1.0
    assert result.max_stat("t_network") < 0.010
    assert result.max_stat("netstate_bytes") < 16384
    assert result.max_image_bytes() > 0


def test_restart_after_crash_on_same_nodes(world):
    """Snapshot, kill the pods (crash), restart from images, verify."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    def crash_and_restart():
        # the pods die (simulated application crash after the snapshot)
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        holder["restart"] = manager.restart(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.schedule(1.0, crash_and_restart)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    restart_result = holder["restart"].finished.result
    assert restart_result.ok, restart_result.errors
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_migration_to_different_nodes(world):
    """Live-migrate both pods to fresh nodes mid-run; verify correctness."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert final_sums(cluster) == expected_sums(ROUNDS)
    # pods now live on the destination nodes
    assert "pp-srv" in cluster.node(2).kernel.pods
    assert "pp-cli" in cluster.node(3).kernel.pods


def test_migration_n_to_m_consolidation(world):
    """N=2 nodes onto M=1 node: pods are independent units of migration."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade2"),
        ])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok
    assert final_sums(cluster) == expected_sums(ROUNDS)
    pods = cluster.node(2).kernel.pods
    assert "pp-srv" in pods and "pp-cli" in pods


def test_migration_with_send_queue_redirect(world):
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ], redirect=True)

    cluster.engine.schedule(0.15, kick)
    cluster.engine.run(until=300.0)
    assert holder["mig"].finished.result.ok
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_repeated_checkpoints(world):
    """Ten evenly spaced snapshots (the paper's measurement protocol)."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    results = []

    def kick(i):
        task = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])
        task.finished.add_done_callback(lambda f: results.append(f.result))

    for i in range(5):
        cluster.engine.schedule(0.1 + 0.25 * i, kick, i)
    cluster.engine.run(until=300.0)
    assert len(results) == 5
    assert all(r.ok for r in results), [r.errors for r in results]
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_checkpoint_to_file_and_restart_from_file(world):
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["ckpt"] = manager.checkpoint([
            ("blade0", "pp-srv", "file:/san/ckpt-srv.img"),
            ("blade1", "pp-cli", "file:/san/ckpt-cli.img"),
        ])

    def crash_and_restart():
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        # restart on *different* nodes, straight from shared storage
        holder["restart"] = manager.restart([
            ("blade2", "pp-srv", "file:/san/ckpt-srv.img"),
            ("blade3", "pp-cli", "file:/san/ckpt-cli.img"),
        ])

    cluster.engine.schedule(0.15, kick)
    cluster.engine.schedule(1.5, crash_and_restart)
    cluster.engine.run(until=300.0)
    assert holder["ckpt"].finished.result.ok
    assert holder["restart"].finished.result.ok, holder["restart"].finished.result.errors
    assert cluster.san.exists("/ckpt-srv.img")
    assert final_sums(cluster) == expected_sums(ROUNDS)
