"""Meta-data table and restart-plan derivation tests."""

import pytest

from repro.core.meta import build_pod_meta, connection_key, derive_restart_plan, remap_addresses
from repro.errors import CheckpointError


def _rec(sock_id, local, remote=None, listening=False, origin="initiated",
         state="full-duplex", pcb=None, proto="tcp"):
    return {
        "sock_id": sock_id, "proto": proto, "local": local, "remote": remote,
        "listening": listening, "origin": origin, "meta_state": state,
        "pcb": pcb or {"sent": 100, "acked": 100, "recv": 100},
    }


def test_connection_key_is_order_independent():
    a, b = ("10.77.0.1", 50), ("10.77.0.2", 60)
    assert connection_key(a, b) == connection_key(b, a)


def test_build_pod_meta_reports_connections_and_listeners():
    records = [
        _rec(1, ("v1", 9000), listening=True),
        _rec(2, ("v1", 9000), remote=("v2", 40000), origin="accepted"),
        _rec(3, ("v1", 40001), remote=("v2", 9001)),
        _rec(4, ("v1", 7000), proto="udp"),  # datagrams are not in the table
    ]
    table = build_pod_meta("pa", records)
    states = [(e["state"], e["sock_id"]) for e in table]
    assert ("listening", 1) in states
    assert ("full-duplex", 2) in states
    assert ("full-duplex", 3) in states
    assert len(table) == 3


def _two_pod_metas(a_pcb=None, b_pcb=None):
    metas = {
        "pa": build_pod_meta("pa", [
            _rec(10, ("va", 9000), listening=True),
            _rec(11, ("va", 9000), remote=("vb", 41000), origin="accepted", pcb=a_pcb),
        ]),
        "pb": build_pod_meta("pb", [
            _rec(20, ("vb", 41000), remote=("va", 9000), origin="initiated", pcb=b_pcb),
        ]),
    }
    return metas


def test_plan_assigns_accept_to_originally_accepted_side():
    plan = derive_restart_plan(_two_pod_metas())
    (entry_a,) = plan["pa"]["schedule"]
    (entry_b,) = plan["pb"]["schedule"]
    assert entry_a["role"] == "accept"    # the paper's port-inheritance rule
    assert entry_b["role"] == "connect"
    assert plan["pa"]["listeners"] == [{"sock_id": 10, "local": ("va", 9000)}]


def test_plan_computes_overlap_discard():
    # pb sent up to 500, pa acknowledged (to pb) meaning pb.acked... model:
    # pa received up to recv=450; pb's acked=400 -> pb must discard 50.
    a_pcb = {"sent": 300, "acked": 300, "recv": 450}
    b_pcb = {"sent": 500, "acked": 400, "recv": 300}
    plan = derive_restart_plan(_two_pod_metas(a_pcb, b_pcb))
    (entry_b,) = plan["pb"]["schedule"]
    assert entry_b["send_discard"] == 450 - 400
    (entry_a,) = plan["pa"]["schedule"]
    assert entry_a["send_discard"] == 0


def test_plan_defers_connecting_singletons():
    metas = {
        "pa": build_pod_meta("pa", [
            _rec(1, ("va", 40000), remote=("vb", 9000), state="connecting"),
        ]),
        "pb": [],
    }
    plan = derive_restart_plan(metas)
    (entry,) = plan["pa"]["schedule"]
    assert entry["role"] == "defer"


def test_plan_orphans_peerless_connections():
    metas = {
        "pa": build_pod_meta("pa", [
            _rec(1, ("va", 40000), remote=("vb", 9000), state="half-duplex"),
        ]),
        "pb": [],
    }
    plan = derive_restart_plan(metas)
    (entry,) = plan["pa"]["schedule"]
    assert entry["role"] == "orphan"


def test_plan_rejects_impossible_topologies():
    # three endpoints claiming one connection cannot happen
    bad = _rec(1, ("va", 1), remote=("vb", 2))
    metas = {"pa": build_pod_meta("pa", [bad]),
             "pb": build_pod_meta("pb", [_rec(2, ("vb", 2), remote=("va", 1))]),
             "pc": build_pod_meta("pc", [_rec(3, ("va", 1), remote=("vb", 2))])}
    with pytest.raises(CheckpointError):
        derive_restart_plan(metas)


def test_remap_addresses_rewrites_endpoint_tuples():
    plan = {"schedule": [{"src": ("10.77.0.1", 50), "dst": ("10.77.0.2", 60)}]}
    out = remap_addresses(plan, {"10.77.0.1": "10.99.0.1"})
    assert out["schedule"][0]["src"] == ("10.99.0.1", 50)
    assert out["schedule"][0]["dst"] == ("10.77.0.2", 60)
