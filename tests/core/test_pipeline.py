"""Unit tests for the staged image pipeline (filters, sinks, costs)."""

import pytest

from repro.cluster import Cluster
from repro.core import codec
from repro.core.image import PodImage, build_payload, pack_pod_image
from repro.core.pipeline import (
    CompressFilter,
    DeltaFilter,
    ImagePipeline,
    PipelineState,
    image_extends_chain,
    negotiate_filters,
    parse_filter_args,
)
from repro.core.standalone import capture_pod_standalone
from repro.errors import CheckpointError
from repro.vos import build_program, imm, program

import numpy as np


@program("testapp.pipeapp")
def _pipeapp(b, *, ballast):
    b.alloc(imm(ballast), "heap")
    b.syscall(None, "sleep", imm(30.0))
    b.halt(imm(0))


@pytest.fixture
def world():
    return Cluster.build(2, seed=7)


def _capture(cluster, pod_id="pipe", ballast=2_000_000, until=1.0):
    pod = cluster.create_pod(cluster.node(0), pod_id)
    cluster.node(0).kernel.spawn(
        build_program("testapp.pipeapp", ballast=ballast), pod_id=pod_id)
    cluster.engine.run(until=until)
    pod.suspend()
    cluster.engine.run(until=until + 0.1)
    assert pod.quiescent()
    return pod, capture_pod_standalone(pod)


def _recapture(cluster, pod, until):
    """Resume, run a little longer, suspend and capture again."""
    pod.resume()
    cluster.engine.run(until=until)
    pod.suspend()
    cluster.engine.run(until=until + 0.1)
    assert pod.quiescent()
    return capture_pod_standalone(pod)


# ---------------------------------------------------------------------------
# empty chain: byte identity with the historic write path
# ---------------------------------------------------------------------------


def test_empty_chain_is_byte_identical(world):
    _pod, standalone = _capture(world)
    legacy = pack_pod_image(standalone, [], [])
    piped = ImagePipeline([]).pack(standalone, [], [])
    assert piped.data == legacy.data
    assert piped.encoded_bytes == legacy.encoded_bytes
    assert piped.accounted_bytes == legacy.accounted_bytes
    assert piped.filters == [] and piped.epoch == 0
    assert codec.decode(piped.data)["format"] == 1


def test_empty_chain_serialize_cost_matches_old_charge(world):
    _pod, standalone = _capture(world)
    bw = 2e9
    image = ImagePipeline([]).pack(standalone, [], [], serialize_bandwidth=bw)
    (cost,) = image.stage_costs
    assert cost["stage"] == "serialize"
    assert cost["seconds"] == pytest.approx(image.total_bytes / bw)


# ---------------------------------------------------------------------------
# compress
# ---------------------------------------------------------------------------


def test_compress_round_trip_and_shrink(world):
    _pod, standalone = _capture(world)
    raw = codec.encode(build_payload(standalone, [], []))
    image = ImagePipeline([CompressFilter(level=4)]).pack(standalone, [], [])
    assert image.filters and image.filters[0]["name"] == "compress"
    assert image.accounted_bytes < image.raw_accounted_bytes
    out = ImagePipeline.reassemble([image])
    assert out.raw == raw
    assert out.full_total_bytes == image.raw_total_bytes
    assert out.decode_seconds > 0


def test_compress_level_bounds():
    with pytest.raises(CheckpointError):
        CompressFilter(level=0)
    with pytest.raises(CheckpointError):
        CompressFilter(level=10)


def test_self_contained_v2_image_unpacks_directly(world):
    _pod, standalone = _capture(world)
    image = ImagePipeline([CompressFilter()]).pack(standalone, [], [])
    payload = image.unpack()
    assert payload["standalone"]["pod_id"] == "pipe"


# ---------------------------------------------------------------------------
# delta
# ---------------------------------------------------------------------------


def test_delta_chain_round_trip_and_shrink(world):
    cluster = world
    pod, first = _capture(cluster)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])
    img0 = pipeline.pack(first, [], [], state=state)
    state.commit(pod.id)
    assert img0.epoch == 0 and not image_extends_chain(img0)

    second = _recapture(cluster, pod, until=2.0)
    img1 = pipeline.pack(second, [], [], state=state)
    state.commit(pod.id)
    assert img1.epoch == 1 and image_extends_chain(img1)
    # steady state: unchanged memory tables charge only the dirty fraction
    assert img1.total_bytes < 0.5 * img0.total_bytes

    out = ImagePipeline.reassemble([img0, img1])
    assert out.raw == codec.encode(build_payload(second, [], []))
    assert out.full_total_bytes == img1.raw_total_bytes


def test_delta_with_compress_composes(world):
    cluster = world
    pod, first = _capture(cluster)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter(), CompressFilter(level=4)])
    img0 = pipeline.pack(first, [], [], state=state)
    state.commit(pod.id)
    second = _recapture(cluster, pod, until=2.0)
    img1 = pipeline.pack(second, [], [], state=state)
    state.commit(pod.id)
    assert [f["name"] for f in img1.filters] == ["delta", "compress"]
    assert img1.total_bytes < img0.total_bytes
    out = ImagePipeline.reassemble([img0, img1])
    assert out.raw == codec.encode(build_payload(second, [], []))


def test_delta_off_node_emits_self_contained_images(world):
    cluster = world
    pod, first = _capture(cluster)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])
    img0 = pipeline.pack(first, [], [], state=state)
    state.commit(pod.id)
    second = _recapture(cluster, pod, until=2.0)
    # chain_local=False is what the Agent uses for agent:// URIs
    img1 = pipeline.pack(second, [], [], state=state, chain_local=False)
    assert not image_extends_chain(img1)
    out = ImagePipeline.reassemble([img1])  # no chain needed
    assert out.raw == codec.encode(build_payload(second, [], []))


def test_chain_dependent_delta_refuses_lone_unpack(world):
    cluster = world
    pod, first = _capture(cluster)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])
    pipeline.pack(first, [], [], state=state)
    state.commit(pod.id)
    second = _recapture(cluster, pod, until=2.0)
    img1 = pipeline.pack(second, [], [], state=state)
    with pytest.raises(CheckpointError, match="delta"):
        img1.unpack()


def test_staged_base_not_visible_until_commit(world):
    """A re-pack before commit (send-queue redirect) must diff against
    the previous epoch, not the first attempt of the current one."""
    cluster = world
    pod, first = _capture(cluster)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])
    pipeline.pack(first, [], [], state=state)
    # no commit: a second pack of the same epoch is still a full image
    img_again = pipeline.pack(first, [], [], state=state)
    assert not image_extends_chain(img_again)
    assert state.epoch(pod.id) == 0


# ---------------------------------------------------------------------------
# negotiation / CLI parsing / counting writer
# ---------------------------------------------------------------------------


def test_negotiation_drops_unknown_and_invalid_stages():
    filters, accepted, rejected = negotiate_filters([
        {"name": "compress", "level": 3},
        {"name": "dedup"},                # unknown stage
        {"name": "compress", "level": 42},  # invalid params
    ])
    assert [f.name for f in filters] == ["compress"]
    assert accepted == [{"name": "compress", "level": 3}]
    assert len(rejected) == 2


def test_parse_filter_args_orders_delta_before_compress():
    assert parse_filter_args(None, False) == []
    assert parse_filter_args(6, True) == [
        {"name": "delta"}, {"name": "compress", "level": 6}]


def test_encoded_size_counts_without_materializing():
    samples = [
        None, True, 123, -(2**70), 3.5, "héllo", b"\x00" * 1000,
        [1, "two", (3, b"four")], {"k": [1, 2], "n": {"deep": None}},
        np.arange(12, dtype=np.float64).reshape(3, 4),
    ]
    for obj in samples:
        assert codec.encoded_size(obj) == len(codec.encode(obj))


def test_pod_image_positional_compat():
    """Pre-pipeline call sites construct PodImage with 5 positional args."""
    img = PodImage("x", b"1234", 4, 10, 2)
    assert img.total_bytes == 14
    assert img.raw_total_bytes == 14
    assert img.filters == [] and img.stage_costs == []
