"""System-level determinism: identical seeds give identical runs.

The simulator's reproducibility discipline (single event queue, FIFO
ties, seeded RNG streams) must survive the full stack — applications,
middleware, checkpoints, migrations.  Any hidden nondeterminism (dict
ordering, id()-keyed structures, wall-clock leakage) shows up here.
"""


from repro.cluster import Cluster
from repro.core import Manager, migrate

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 300


def _run_once(seed):
    cluster = Cluster.build(4, seed=seed)
    cluster.fabric.loss_rate = 0.05  # exercise the RNG path too
    manager = Manager.deploy(cluster)
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["m"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ], deadline=600.0)

    cluster.engine.schedule(0.2, kick)
    cluster.engine.run(until=1200.0)
    mig = holder["m"].finished.result
    assert mig.ok
    return {
        "end": cluster.engine.now,
        "ckpt": mig.checkpoint.duration,
        "restart": mig.restart.duration,
        "images": tuple(sorted(
            (p, s["image_bytes"]) for p, s in mig.checkpoint.pods.items())),
        "dropped": cluster.fabric.dropped_packets,
        "sums": final_sums(cluster),
        "events": cluster.engine.events_executed,
    }


def test_identical_seeds_identical_runs():
    a = _run_once(seed=7)
    b = _run_once(seed=7)
    assert a == b  # bit-identical timing, sizes, loss pattern, events


def test_different_seeds_diverge_in_loss_pattern():
    a = _run_once(seed=7)
    b = _run_once(seed=8)
    assert a["sums"] == b["sums"] == expected_sums(ROUNDS)  # answers agree
    assert a["dropped"] != b["dropped"] or a["end"] != b["end"]
