"""Manager failover at unit scale: replica takeover, lease discipline,
idempotent tombstone-GC, and recover deadlines.

The chaos matrix (tests/chaos/test_failover_chaos.py) sweeps every crash
point × many seeds; these tests pin down the individual mechanisms with
one deterministic scenario each, so a matrix failure has a small test to
bisect against.
"""

from repro.cluster import Cluster, FaultInjector, FaultPlan, FaultSpec
from repro.cluster.faults import crash_node
from repro.core import Manager
from repro.core.manager import PhaseTimeouts
from repro.core.pipeline import FileSink
from repro.storage import OpLedger
from repro.vos import DEAD

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 600
TIGHT = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                      flush=20.0, load=5.0, restart_done=15.0, drain=2.0)
SRV_IMG = "/san/ha-srv.img"
CLI_IMG = "/san/ha-cli.img"


def _world(seed):
    cluster = Cluster.build(4, seed=seed)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _file_targets(cluster):
    return [(cluster.node(1).name, "pp-srv", f"file:{SRV_IMG}"),
            (cluster.node(2).name, "pp-cli", f"file:{CLI_IMG}")]


def _crash_at(cluster, ledger_phase):
    plan = FaultPlan(seed=0, faults=[
        FaultSpec(kind="crash_manager", phase=ledger_phase)])
    return FaultInjector(cluster, plan).install()


def _await_crash_then_takeover(cluster, manager, state, settle=3.0,
                               lease_s=2.0):
    """Driver tail: wait out the crash + lease, deploy a replica,
    run its takeover, and record what it did."""
    engine = cluster.engine
    while not manager.crashed:
        yield engine.sleep(0.25)
    yield engine.sleep(settle)
    replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
    state["replica"] = replica
    state["actions"] = yield from replica.takeover_task(
        timeouts=TIGHT, lease_s=lease_s)


def test_replica_resumes_checkpoint_crashed_after_continue():
    """Crash after the ``continue`` record is durable: the barrier
    release was inevitable, so the replica must finish the op — commit,
    not abort — and the image must be whole."""
    cluster, manager = _world(11)
    _crash_at(cluster, "manager.ledger.continue")
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS,
                               server_node=1, client_node=2)
    engine = cluster.engine
    state = {}

    def driver():
        yield engine.sleep(0.2)
        manager.checkpoint(_file_targets(cluster), timeouts=TIGHT, lease_s=2.0)
        yield from _await_crash_then_takeover(cluster, manager, state)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    assert manager.crashed
    assert state["actions"] == [(1, "continue", "resumed")]
    replica = state["replica"]
    assert replica.last_checkpoint is not None
    assert replica.last_checkpoint.op_id == 1
    # exactly one whole committed image per pod on the SAN
    vfs = cluster.node(0).kernel.vfs
    for path, pod in ((SRV_IMG, "pp-srv"), (CLI_IMG, "pp-cli")):
        assert FileSink(cluster.san, vfs, path).load(pod), \
            f"{pod}: image not durable after resume"
    ops = OpLedger(cluster.san).replay()
    assert ops[1].terminal and ops[1].phase == "commit"
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_replica_aborts_checkpoint_crashed_before_continue():
    """Crash after ``meta`` but before the ``continue`` record: some
    Agent might never have been released, so the replica must abort via
    tombstone-GC — no partial image survives, every pod resumes."""
    cluster, manager = _world(12)
    _crash_at(cluster, "manager.ledger.meta")
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS,
                               server_node=1, client_node=2)
    engine = cluster.engine
    state = {}

    def driver():
        yield engine.sleep(0.2)
        manager.checkpoint(_file_targets(cluster), timeouts=TIGHT, lease_s=2.0)
        yield from _await_crash_then_takeover(cluster, manager, state)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    assert manager.crashed
    assert state["actions"] == [(1, "meta", "aborted")]
    assert state["replica"].last_checkpoint is None
    for path in (SRV_IMG, CLI_IMG):
        assert not cluster.san.exists(path), f"partial image left at {path}"
    assert OpLedger(cluster.san).replay()[1].phase == "aborted"
    # the app was released and ran to the correct answer anyway
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_replica_redrives_orphaned_restart():
    """Crash after the restart ``plan`` record: the replica re-drives
    the restart from the durable plan — the pods come back and the app
    completes, without replanning from scratch."""
    cluster, manager = _world(13)
    _crash_at(cluster, "manager.ledger.plan")  # only crossed by restarts
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS,
                               server_node=1, client_node=2)
    engine = cluster.engine
    targets = _file_targets(cluster)
    state = {}

    def driver():
        yield engine.sleep(0.2)
        task = manager.checkpoint(targets, timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and res is not None and res.ok, res and res.errors
        cluster.find_pod("pp-srv").destroy()
        cluster.find_pod("pp-cli").destroy()
        manager.restart(targets, timeouts=TIGHT, lease_s=2.0)
        yield from _await_crash_then_takeover(cluster, manager, state)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    assert manager.crashed
    assert state["actions"] == [(2, "plan", "redriven")]
    ops = OpLedger(cluster.san).replay()
    assert ops[2].terminal and ops[2].phase == "commit"
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_takeover_respects_live_lease():
    """A takeover before the dead owner's lease expires claims nothing;
    after expiry the same orphan is claimed and resumed."""
    cluster, manager = _world(14)
    _crash_at(cluster, "manager.ledger.continue")
    launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    engine = cluster.engine
    state = {}

    def driver():
        yield engine.sleep(0.2)
        manager.checkpoint(_file_targets(cluster), timeouts=TIGHT, lease_s=5.0)
        while not manager.crashed:
            yield engine.sleep(0.25)
        yield engine.sleep(0.5)      # well inside the 5 s lease
        replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
        state["early"] = yield from replica.takeover_task(
            timeouts=TIGHT, lease_s=5.0)
        yield engine.sleep(6.0)      # now the lease is stale
        state["late"] = yield from replica.takeover_task(
            timeouts=TIGHT, lease_s=5.0)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    assert state["early"] == [], "claimed an op whose lease was still live"
    assert state["late"] == [(1, "continue", "resumed")]


def test_double_abort_gc_is_idempotent():
    """Satellite regression: a replayed gc for an already-aborted op
    (dead Manager sent it, takeover replica sends it again) must not
    roll back an image a *newer* op has committed since."""
    cluster, manager = _world(15)
    launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    engine = cluster.engine
    node1 = cluster.node(1).name
    agent = manager.agents[node1]
    state = {}

    def driver():
        yield engine.sleep(0.2)
        # op 1: a good mem checkpoint of pp-srv
        task = manager.checkpoint([(node1, "pp-srv", "mem")], timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and res.ok, res and res.errors
        # op 2: fails (ghost pod) -> the Manager gc's it, tombstoning
        # op 2 on the Agent and rolling pp-srv's store back
        task = manager.checkpoint([(node1, "pp-srv", "mem"),
                                   (node1, "ghost", "mem")], timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and not res.ok
        # op 3: a fresh good checkpoint commits a newer image
        task = manager.checkpoint([(node1, "pp-srv", "mem")], timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and res.ok, res and res.errors
        state["op3"] = res.op_id
        state["chain"] = list(agent.mem_sink.load("pp-srv"))
        # the replayed abort: gc for op 2 arrives a second time
        yield from manager._send_simple(node1, {
            "cmd": "gc", "op_id": 2, "pods": ["pp-srv"]}, TIGHT)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    assert state["chain"], "op 3 never committed a mem image"
    assert agent.mem_sink.load("pp-srv") == state["chain"], \
        "replayed gc for op 2 rolled back op 3's committed image"
    assert agent.committed_ops.get("pp-srv") == state["op3"]


def test_recover_deadline_expiry_leaves_terminal_ledger():
    """A recover whose deadline expires mid-restart fails — and still
    writes a terminal record, so a later takeover finds no orphan."""
    cluster, manager = _world(16)
    launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    engine = cluster.engine
    state = {}

    def driver():
        yield engine.sleep(0.2)
        task = manager.checkpoint(_file_targets(cluster), timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and res.ok, res and res.errors
        crash_node(cluster, cluster.node(1))
        task = manager.recover(deadline=0.05, timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok
        state["recover"] = res

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    res = state["recover"]
    assert not res.ok and res.status in ("timeout", "failed"), res.status
    ops = OpLedger(cluster.san).replay()
    assert all(op.terminal for op in ops.values()), \
        f"non-terminal ops after failed recover: {ops}"
    # nothing for a replica to claim
    manager.crash()
    replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
    actions = engine.run_task(replica.takeover_task(timeouts=TIGHT,
                                                    lease_s=1.0))
    assert actions == []


def test_replica_reconstructs_last_checkpoint_and_op_ids():
    """A stateless replica rebuilds ``last_checkpoint`` from the newest
    durable commit and allocates op ids above everything in the ledger."""
    cluster, manager = _world(17)
    launch_pingpong(cluster, rounds=ROUNDS, server_node=1, client_node=2)
    engine = cluster.engine
    state = {}

    def driver():
        yield engine.sleep(0.2)
        task = manager.checkpoint(_file_targets(cluster), timeouts=TIGHT)
        ok, res = yield engine.timeout(task.finished, 60.0)
        assert ok and res.ok, res and res.errors
        state["ckpt"] = res
        manager.crash()
        replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
        state["replica"] = replica
        state["actions"] = yield from replica.takeover_task(timeouts=TIGHT,
                                                            lease_s=1.0)

    engine.spawn(driver(), name="drv")
    engine.run(until=240.0)
    replica, ckpt = state["replica"], state["ckpt"]
    assert state["actions"] == []            # a committed op is no orphan
    assert replica.last_checkpoint is not None
    assert replica.last_checkpoint.op_id == ckpt.op_id
    assert replica.last_checkpoint.targets == [tuple(t) for t in ckpt.targets]
    assert replica.new_op_id() > ckpt.op_id
    assert cluster.manager is replica
