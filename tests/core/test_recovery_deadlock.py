"""The ring-topology deadlock claim of Section 4.

"Consider for instance an application connected in a ring topology ...
a deadlock occurs if every node first attempts to accept a connection
from the next node.  To prevent such deadlocks ... we simply divide the
work between two threads of execution."

A K-pod token ring is migrated; two-thread connectivity recovery must
succeed, while the sequential (accept-then-connect) ablation must hang
until the Manager's deadline.
"""

import pytest

from repro.cluster import Cluster, FaultInjector, FaultPlan, FaultSpec
from repro.core import Manager, migrate
from repro.vos import DEAD, build_program, imm, program

K = 4
LAPS = 40


@program("testapp.ring-node")
def _ring_node(b, *, my_port, next_vip, next_port, laps, starter, compute=2_000_000):
    """Accept from the previous node, connect to the next, pass a token."""
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", my_port)))
    b.syscall(None, "listen", "lfd", imm(4))
    # connect forward while accepting backward: applications themselves
    # avoid the bootstrap deadlock by connecting before accepting
    b.syscall("ofd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "ofd", imm((next_vip, next_port)))
    b.syscall("conn", "accept", "lfd")
    b.op("ifd", lambda c: c[0], "conn")
    if starter:
        b.syscall(None, "send", "ofd", imm((0).to_bytes(8, "big")), imm(0))
    # each node performs exactly `laps` receptions; every reception is
    # forwarded except the starter's last, which retires the token —
    # so the ring drains cleanly with no EOF cascade
    with b.for_range("t", imm(0), imm(laps)):
        b.syscall("tok", "recv", "ifd", imm(8), imm(0))
        b.compute(imm(compute))
        b.op("out", lambda tok: (int.from_bytes(tok, "big") + 1).to_bytes(8, "big"), "tok")
        if starter:
            b.op("fwd", lambda t, n=laps: t < n - 1, "t")
            with b.if_("fwd"):
                b.syscall(None, "send", "ofd", "out", imm(0))
        else:
            b.syscall(None, "send", "ofd", "out", imm(0))
    b.mov("tokens", imm(laps))
    if starter:
        b.op("final", lambda tok: int.from_bytes(tok, "big"), "tok")
    b.halt(imm(0))


def _launch_ring(cluster):
    pods = []
    for i in range(K):
        pods.append(cluster.create_pod(cluster.node(i), f"ring{i}"))
    procs = []
    for i in range(K):
        nxt = pods[(i + 1) % K]
        prog = build_program(
            "testapp.ring-node",
            my_port=9500 + i,
            next_vip=nxt.vip,
            next_port=9500 + (i + 1) % K,
            laps=LAPS,
            starter=(i == 0),
        )
        procs.append(cluster.node(i).kernel.spawn(prog, pod_id=f"ring{i}"))
    return pods, procs


@pytest.fixture
def world():
    cluster = Cluster.build(2 * K, seed=5)
    manager = Manager.deploy(cluster)
    return cluster, manager


def test_ring_runs_correctly_without_checkpoint(world):
    cluster, _ = world
    _pods, procs = _launch_ring(cluster)
    cluster.engine.run(until=120.0)
    assert all(p.state == DEAD and p.exit_code == 0 for p in procs)
    # the token visited K*LAPS hops; the starter saw it last
    assert procs[0].regs["final"] == K * LAPS - 1


def test_two_thread_recovery_restores_ring(world):
    cluster, manager = world
    _pods, _procs = _launch_ring(cluster)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            (f"blade{i}", f"ring{i}", f"blade{K + i}") for i in range(K)
        ])

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert mig.checkpoint.max_stat("sockets") >= 3  # listener + in + out
    finals = []
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "testapp.ring-node" and proc.exit_code == 0 \
                    and "final" in proc.regs:
                finals.append(proc.regs["final"])
    assert finals == [K * LAPS - 1]


def _delay_plan():
    """50 ms of extra one-way latency on every link, installed the
    moment connectivity recovery begins — it skews every connect/accept
    arrival order without breaking any connection."""
    return FaultPlan(seed=0, faults=[
        FaultSpec(kind="link_delay", phase="agent.connectivity",
                  seconds=0.05, duration=8.0),
    ])


def test_two_thread_recovery_survives_message_delays(world):
    """Regression: the two-thread connect/accept recovery must stay
    deadlock-free when injected message delays reorder the handshakes —
    the schedule the sequential ablation is known to deadlock on."""
    cluster, manager = world
    _pods, _procs = _launch_ring(cluster)
    FaultInjector(cluster, _delay_plan()).install()
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            (f"blade{i}", f"ring{i}", f"blade{K + i}") for i in range(K)
        ])

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    finals = []
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "testapp.ring-node" and proc.exit_code == 0 \
                    and "final" in proc.regs:
                finals.append(proc.regs["final"])
    assert finals == [K * LAPS - 1]


def test_sequential_recovery_still_deadlocks_under_delays(world):
    """The same delayed-message schedule does not rescue the sequential
    ablation: it hangs at the ring's circular accept wait regardless."""
    cluster, manager = world
    _pods, _procs = _launch_ring(cluster)
    FaultInjector(cluster, _delay_plan()).install()
    holder = {}

    def kick():
        holder["mig"] = migrate(
            manager,
            [(f"blade{i}", f"ring{i}", f"blade{K + i}") for i in range(K)],
            recovery_mode="sequential",
            deadline=10.0,
        )

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.checkpoint.ok
    assert not mig.restart.ok
    assert mig.restart.status == "timeout"


def test_sequential_recovery_deadlocks_on_ring(world):
    """The ablation: accept-before-connect in one thread hangs on a ring
    until the Manager's deadline aborts the restart."""
    cluster, manager = world
    _pods, _procs = _launch_ring(cluster)
    holder = {}

    def kick():
        holder["mig"] = migrate(
            manager,
            [(f"blade{i}", f"ring{i}", f"blade{K + i}") for i in range(K)],
            recovery_mode="sequential",
            deadline=10.0,
        )

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.checkpoint.ok
    assert mig.checkpoint.max_stat("sockets") >= 3
    assert not mig.restart.ok
    assert mig.restart.status == "timeout"
