"""Live (pre-copy) migration: downtime, convergence, and equivalence.

A writing workload (the ping-pong pair with ballast and a dirty rate)
is moved between blades with iterative pre-copy: rounds ship memory
while the pods keep running, then the normal stop-and-copy pass moves
only the residual.  The battery checks the paper-style claims:

* the outage is a small fraction of the whole migration (≥5× smaller),
* round 1 ships the full resident set, later rounds only dirty bytes,
* the round cap and the non-convergence guard both bail out cleanly
  and still migrate correctly via stop-and-copy,
* ``live=False`` behaves exactly like the pre-existing migration path,
* N→M mappings and checksummed application state survive live mode.
"""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import DEAD

from .testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 9000
BALLAST = 256_000_000
DIRTY_RATE = 40_000_000


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=42)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _kick_migrate(cluster, manager, holder, at=0.15, **kw):
    moves = [("blade0", "pp-srv", "blade2"), ("blade1", "pp-cli", "blade3")]
    cluster.engine.schedule(at, lambda: holder.update(
        mig=migrate(manager, moves, **kw)))


def _finished(holder):
    return holder["mig"].finished.result


def test_live_downtime_small_fraction_of_total(world):
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST,
                    dirty_rate=DIRTY_RATE)
    holder = {}
    _kick_migrate(cluster, manager, holder, live=True)
    cluster.engine.run(until=300.0)
    mig = _finished(holder)
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert final_sums(cluster) == expected_sums(ROUNDS)
    assert mig.live and mig.rounds
    # the acceptance criterion: the app was down for at most a fifth of
    # the time the migration took end to end
    assert mig.downtime * 5 <= mig.total_time, (mig.downtime, mig.total_time)
    assert mig.downtime < mig.duration < mig.total_time
    # round 1 moved both full resident sets; later rounds only dirty bytes
    assert mig.rounds[0]["shipped_bytes"] >= 2 * BALLAST
    for rnd in mig.rounds[1:]:
        assert rnd["shipped_bytes"] < mig.rounds[0]["shipped_bytes"]
    assert mig.precopy_bytes == sum(r["shipped_bytes"] for r in mig.rounds)
    # pods ended up on the destinations, and only there
    assert "pp-srv" in cluster.node(2).kernel.pods
    assert "pp-cli" in cluster.node(3).kernel.pods
    assert "pp-srv" not in cluster.node(0).kernel.pods
    assert "pp-cli" not in cluster.node(1).kernel.pods


def test_non_writing_workload_converges_in_one_round(world):
    """Without a dirty rate the working set is clean after round 1, so
    pre-copy converges immediately and the residual is tiny."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST)
    holder = {}
    _kick_migrate(cluster, manager, holder, live=True)
    cluster.engine.run(until=300.0)
    mig = _finished(holder)
    assert mig.ok
    assert final_sums(cluster) == expected_sums(ROUNDS)
    assert len(mig.rounds) == 1 and mig.bailout is None
    assert mig.rounds[0]["dirty_bytes"] <= 1_000_000


def test_round_cap_bailout_still_migrates(world):
    """A cap of 1 cannot converge under a writing workload: the bailout
    is recorded and stop-and-copy finishes the job correctly."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST,
                    dirty_rate=DIRTY_RATE)
    holder = {}
    _kick_migrate(cluster, manager, holder, live=True, precopy_rounds=1,
                  dirty_threshold=1)
    cluster.engine.run(until=300.0)
    mig = _finished(holder)
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert mig.bailout == "round-cap"
    assert len(mig.rounds) == 1
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_non_converging_workload_bails_out(world):
    """Writes faster than the fabric drains: after round 2 the dirty set
    regrew past what the round shipped, so pre-copy gives up early
    instead of burning bandwidth forever."""
    cluster, manager = world
    launch_pingpong(cluster, rounds=9000, ballast=BALLAST,
                    dirty_rate=400_000_000, compute=2_000_000)
    holder = {}
    _kick_migrate(cluster, manager, holder, live=True, precopy_rounds=8)
    cluster.engine.run(until=300.0)
    mig = _finished(holder)
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert mig.bailout == "non-converging"
    assert len(mig.rounds) < 8
    assert final_sums(cluster) == expected_sums(9000)


def test_live_false_matches_plain_migration_exactly():
    """``live=False`` must be the pre-existing migration, bit for bit:
    same checkpoint timing, same image bytes, same final state."""
    results = []
    for kw in ({}, {"live": False, "precopy_rounds": 8}):
        cluster = Cluster.build(4, seed=42)
        manager = Manager.deploy(cluster)
        launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST,
                        dirty_rate=DIRTY_RATE)
        holder = {}
        _kick_migrate(cluster, manager, holder, **kw)
        cluster.engine.run(until=300.0)
        mig = _finished(holder)
        assert mig.ok
        assert final_sums(cluster) == expected_sums(ROUNDS)
        results.append(mig)
    a, b = results
    assert not a.live and not b.live and not a.rounds and not b.rounds
    assert a.checkpoint.pods == b.checkpoint.pods
    assert a.checkpoint.t_start == b.checkpoint.t_start
    assert a.restart.t_end == b.restart.t_end
    # without pre-copy the whole stop-and-copy window is the downtime
    assert a.downtime == a.duration == a.total_time


def test_live_n_to_m_consolidation(world):
    """N=2 source nodes onto M=1 destination, live: pods remain the
    unit of migration and state survives."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS, ballast=BALLAST,
                               dirty_rate=DIRTY_RATE)
    holder = {}
    moves = [("blade0", "pp-srv", "blade2"), ("blade1", "pp-cli", "blade2")]
    cluster.engine.schedule(0.15, lambda: holder.update(
        mig=migrate(manager, moves, live=True)))
    cluster.engine.run(until=300.0)
    mig = _finished(holder)
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    pods = cluster.node(2).kernel.pods
    assert "pp-srv" in pods and "pp-cli" in pods
    assert final_sums(cluster) == expected_sums(ROUNDS)
    for proc in (srv, cli):
        assert proc.state == DEAD
