"""Dirty-delta incremental checkpoints: chain integrity and acceptance.

Three layers:

* a hypothesis property at the pipeline level — an epoch-0 full image
  plus N measured-dirty delta epochs reassembles byte-identical to the
  latest capture, under any random stream of alloc/free/resize/touch
  against a real :class:`~repro.vos.memory.Memory`;
* a simulation regression — live-migration pre-copy rounds and
  incremental checkpoints interleave in one run without corrupting each
  other's dirty baseline (the bug the per-consumer generations fix);
* the PR's acceptance criteria on the writing workload — epoch ≥ 1
  dirty-delta images ≥ 5× smaller than full images, the zero-stall path
  cuts the pod suspend window ≥ 3× at an identical restored state.
"""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, codec
from repro.core.image import build_payload
from repro.core.pipeline import DeltaFilter, ImagePipeline, PipelineState
from repro.harness import run_inc_cell
from repro.vos.memory import Memory

from .testapps import expected_sums, final_sums, launch_pingpong


# ---------------------------------------------------------------------------
# property: full + N dirty-delta epochs restore byte-identical
# ---------------------------------------------------------------------------

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SEGMENTS = ("heap", "grid")
CONSUMER = "ckpt"

_op = st.one_of(
    st.tuples(st.just("alloc"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("free"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("resize"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("touch"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
)


def _apply(m, op):
    kind, seg, n = op
    if kind == "alloc":
        m.alloc(n, seg)
    elif kind == "free":
        m.free(min(n, m.segment(seg)), seg)
    elif kind == "resize":
        m.resize(n, seg)
    elif kind == "touch":
        m.touch(n, seg)


def _standalone(mem: Memory, epoch: int):
    """A minimal pod capture around one real Memory: enough for the
    pipeline (pod_id, per-proc segment tables) plus an epoch-varying
    register file so every capture has distinct payload bytes."""
    return {
        "pod_id": "prop",
        "vip": "10.1.0.1",
        "vtime": float(epoch),
        "time_virtualization": True,
        "procs": [{"vpid": 1, "memory": mem.to_image(),
                   "regs": {"epoch": epoch}}],
        "files": [],
        "timers": [],
        "zombies": {},
    }


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(_op, max_size=12), min_size=1, max_size=6))
def test_dirty_delta_chain_restores_byte_identical(epochs):
    """Epoch-0 full + N measured dirty-delta epochs == the last capture,
    byte for byte, at every link of the chain."""
    mem = Memory(heap=4096)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])

    def snapshot(epoch):
        std = _standalone(mem, epoch)
        proc_dirty = {1: mem.dirty_table(CONSUMER)}
        image = pipeline.pack(std, [], [], state=state, proc_dirty=proc_dirty)
        mem.clear_dirty(CONSUMER)
        state.commit("prop")
        return std, image

    _std0, img0 = snapshot(0)
    chain = [img0]
    for i, batch in enumerate(epochs):
        for op in batch:
            _apply(mem, op)
        std, image = snapshot(i + 1)
        chain.append(image)
        assert image.epoch == i + 1
        out = ImagePipeline.reassemble(list(chain))
        assert out.raw == codec.encode(build_payload(std, [], []))
        # the measured model never charges more than a full image of the
        # current capture
        assert image.accounted_bytes <= image.raw_accounted_bytes


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=12))
def test_untouched_epoch_accounts_near_zero(ops):
    """An epoch where the application wrote nothing is charged (almost)
    nothing, whatever history preceded it — the whole point of measured
    dirty tracking."""
    mem = Memory(heap=1 << 20)
    state = PipelineState()
    pipeline = ImagePipeline([DeltaFilter()])
    for op in ops:
        _apply(mem, op)
    std = _standalone(mem, 0)
    pipeline.pack(std, [], [], state=state,
                  proc_dirty={1: mem.dirty_table(CONSUMER)})
    mem.clear_dirty(CONSUMER)
    state.commit("prop")
    # nothing written since: the next epoch's accounted size is only
    # envelope framing, not memory
    std1 = _standalone(mem, 1)
    img1 = pipeline.pack(std1, [], [], state=state,
                         proc_dirty={1: mem.dirty_table(CONSUMER)})
    state.commit("prop")
    assert img1.accounted_bytes == 0


# ---------------------------------------------------------------------------
# regression: pre-copy and incremental checkpoints interleave safely
# ---------------------------------------------------------------------------


def test_precopy_and_incremental_share_one_run():
    """Pre-copy rounds (``precopy`` consumer) and incremental
    checkpoints (``ckpt`` consumer) interleave in one run; each must
    keep seeing the dirtiness accumulated since *its own* last visit,
    and the delta chain must still restore byte-identical."""
    cluster = Cluster.build(4, seed=11)
    manager = Manager.deploy(cluster)
    launch_pingpong(cluster, rounds=4000, ballast=32_000_000,
                    dirty_rate=16_000_000)
    moves = [("blade0", "pp-srv", "blade2"), ("blade1", "pp-cli", "blade3")]
    targets = [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")]
    out = {"ckpts": [], "rounds": []}

    def driver():
        engine = cluster.engine
        yield engine.sleep(0.3)
        # epoch 0: full base
        res = yield from manager.checkpoint_task(targets,
                                                 filters=[{"name": "delta"}])
        assert res.ok, res.errors
        out["ckpts"].append(res)
        yield engine.sleep(0.2)
        # pre-copy round 1 ships the full resident set
        op = manager.new_op_id()
        stats, errors = yield from manager.precopy_round(moves, 1, op_id=op)
        assert not errors, errors
        out["rounds"].append(stats)
        yield engine.sleep(0.2)
        # incremental epoch 1 — must see writes since epoch 0, not since
        # the pre-copy round's clear
        res = yield from manager.checkpoint_task(targets,
                                                 filters=[{"name": "delta"}])
        assert res.ok, res.errors
        out["ckpts"].append(res)
        # pre-copy round 2, immediately after the checkpoint: must see
        # writes since round 1, not since the checkpoint's clear
        stats, errors = yield from manager.precopy_round(moves, 2, op_id=op)
        assert not errors, errors
        out["rounds"].append(stats)
        yield engine.sleep(0.2)
        # incremental epoch 2 right after the pre-copy clear
        res = yield from manager.checkpoint_task(targets,
                                                 filters=[{"name": "delta"}])
        assert res.ok, res.errors
        out["ckpts"].append(res)

    cluster.engine.spawn(driver(), name="interleave")
    cluster.engine.run(until=120.0)
    assert len(out["ckpts"]) == 3 and len(out["rounds"]) == 2
    assert final_sums(cluster) == expected_sums(4000)

    # each epoch ≥ 1 saw real dirtiness: the writer keeps rewriting, so
    # a baseline clobbered by the pre-copy clear would account ~0 here
    # only if the windows were empty — and far more than the measured
    # window if the clear had been lost entirely
    full = out["ckpts"][0].max_stat("raw_image_bytes")
    for res in out["ckpts"][1:]:
        inc = res.max_stat("image_bytes")
        assert 0 < inc < 0.5 * full, (inc, full)
    # round 2 shipped only the dirtiness since round 1 — nonzero (the
    # interleaved checkpoint's clear didn't steal it) and nowhere near
    # the full resident set (its own round-1 clear held)
    r1 = sum(s["shipped_bytes"] for s in out["rounds"][0].values())
    r2 = sum(s["shipped_bytes"] for s in out["rounds"][1].values())
    assert r2 > 0
    assert r2 < 0.5 * r1, (r2, r1)

    # the chains on both source agents still restore byte-identically
    for node_name, pod_id in (("blade0", "pp-srv"), ("blade1", "pp-cli")):
        agent = manager.agents[node_name]
        chain = agent.pipeline_state.chains[pod_id]
        assert len(chain) == 3
        reassembled = ImagePipeline.reassemble(list(chain))
        assert reassembled.raw == agent.pipeline_state.bases[pod_id]


# ---------------------------------------------------------------------------
# acceptance: generational shrink and the zero-stall suspend window
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def inc_cells():
    return {mode: run_inc_cell(mode)
            for mode in ("full", "delta", "delta-async")}


def test_dirty_delta_epochs_at_least_5x_smaller(inc_cells):
    """Acceptance: with dirty tracking on, every epoch ≥ 1 image is at
    least 5× smaller than the full image."""
    full = inc_cells["full"]
    delta = inc_cells["delta"]
    assert delta.image_sizes[0] == pytest.approx(full.image_sizes[0], rel=0.01)
    for size in delta.image_sizes[1:]:
        assert size * 5 <= full.steady_state_image_size, delta.image_sizes
    assert delta.chain_ok


def test_async_cuts_suspend_window_at_least_3x(inc_cells):
    """Acceptance: the zero-stall path shrinks the pod suspend window
    ≥ 3× against the serial incremental path, and the chain it commits
    still reassembles byte-identical to the agent's full base."""
    serial = inc_cells["delta"]
    zero_stall = inc_cells["delta-async"]
    assert zero_stall.mean_suspend * 3 <= serial.mean_suspend, (
        zero_stall.suspend_windows, serial.suspend_windows)
    assert zero_stall.chain_ok and serial.chain_ok
