"""Checkpoint-restart across every socket state of Section 5's table:
connecting, pending-accept, half-duplex, closed-with-unread-data — plus
peeked datagrams and the full option set."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.net import MSG_PEEK
from repro.vos import DEAD, build_program, imm, program


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=83)
    manager = Manager.deploy(cluster)
    return cluster, manager


def _mig(cluster, manager, holder, pods, at):
    def kick():
        moves = [(cluster.node_of_pod(p).name, p, f"blade{2 + i}")
                 for i, p in enumerate(pods)]
        holder["m"] = migrate(manager, moves)

    cluster.engine.schedule(at, kick)


def _done(cluster, prog):
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == prog and proc.state == DEAD and proc.exit_code == 0:
                return proc
    return None


# ---------------------------------------------------------------------------
# connecting: blocked-in-connect at checkpoint time
# ---------------------------------------------------------------------------


@program("sockstate.late-listener")
def _late_listener(b, *, port, delay):
    """Start listening only after a delay: the peer's connect must wait."""
    b.syscall(None, "sleep", imm(delay))
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall("data", "recv", "cfd", imm(64), imm(0))
    b.halt(imm(0))


@program("sockstate.eager-connector")
def _eager_connector(b, *, peer, port):
    """Connect (retrying) to a listener that does not exist yet."""
    b.mov("pending", imm(True))
    with b.while_("pending"):
        b.syscall("fd", "socket", imm("tcp"))
        b.syscall("rc", "connect", "fd", imm((peer, port)))
        b.op("pending", lambda rc: hasattr(rc, "name"), "rc")
        with b.if_("pending"):
            b.syscall(None, "close", "fd")
            b.syscall(None, "sleep", imm(0.3))
    b.syscall(None, "send", "fd", imm(b"made-it"), imm(0))
    b.halt(imm(0))


def test_connect_in_progress_survives_migration(world):
    """The 'connecting' transient state: the application is mid-connect
    (or between retries) at checkpoint; the re-issued syscall drives the
    handshake after restart."""
    cluster, manager = world
    p_lsn = cluster.create_pod(cluster.node(0), "ss-lsn")
    cluster.create_pod(cluster.node(1), "ss-con")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.late-listener", port=9600, delay=3.0),
        pod_id="ss-lsn")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.eager-connector", peer=p_lsn.vip, port=9600),
        pod_id="ss-con")
    holder = {}
    _mig(cluster, manager, holder, ["ss-lsn", "ss-con"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    listener = _done(cluster, "sockstate.late-listener")
    assert listener is not None
    assert listener.regs["data"] == b"made-it"


# ---------------------------------------------------------------------------
# pending accept: connection established but not yet accepted by the app
# ---------------------------------------------------------------------------


@program("sockstate.slow-acceptor")
def _slow_acceptor(b, *, port, nap):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(8))
    b.syscall(None, "sleep", imm(nap))  # connections pile up meanwhile
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall("data", "recv", "cfd", imm(64), imm(0))
    b.halt(imm(0))


@program("sockstate.early-client")
def _early_client(b, *, peer, port):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "send", "fd", imm(b"queued-early"), imm(0))
    b.syscall(None, "sleep", imm(30.0))
    b.halt(imm(0))


def test_pending_accept_connection_survives_migration(world):
    """A connection sitting in the kernel accept queue (with data!) at
    checkpoint time is re-established and re-queued, so the restored
    application's accept still yields it."""
    cluster, manager = world
    p_acc = cluster.create_pod(cluster.node(0), "ss-acc")
    cluster.create_pod(cluster.node(1), "ss-cli")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.slow-acceptor", port=9601, nap=3.0),
        pod_id="ss-acc")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.early-client", peer=p_acc.vip, port=9601),
        pod_id="ss-cli")
    holder = {}
    _mig(cluster, manager, holder, ["ss-acc", "ss-cli"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    acceptor = _done(cluster, "sockstate.slow-acceptor")
    assert acceptor is not None
    assert acceptor.regs["data"] == b"queued-early"


# ---------------------------------------------------------------------------
# half-duplex and closed-with-unread-data
# ---------------------------------------------------------------------------


@program("sockstate.half-closer")
def _half_closer(b, *, peer, port):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "send", "fd", imm(b"parting-words"), imm(0))
    b.syscall(None, "shutdown", "fd", imm("wr"))  # half-duplex now
    b.syscall("reply", "recv", "fd", imm(64), imm(0))  # still readable
    b.halt(imm(0))


@program("sockstate.half-server")
def _half_server(b, *, port, nap):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall(None, "sleep", imm(nap))  # checkpoint lands here
    b.syscall("data", "recv", "cfd", imm(64), imm(0))
    b.syscall("eof", "recv", "cfd", imm(64), imm(0))
    b.syscall(None, "send", "cfd", imm(b"goodbye"), imm(0))
    b.halt(imm(0))


def test_half_duplex_connection_survives_migration(world):
    """shutdown(WR) before the checkpoint: after restart the server reads
    the unread data, then EOF, and the reverse direction still works."""
    cluster, manager = world
    p_srv = cluster.create_pod(cluster.node(0), "ss-hsrv")
    cluster.create_pod(cluster.node(1), "ss-hcli")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.half-server", port=9602, nap=3.0),
        pod_id="ss-hsrv")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.half-closer", peer=p_srv.vip, port=9602),
        pod_id="ss-hcli")
    holder = {}
    _mig(cluster, manager, holder, ["ss-hsrv", "ss-hcli"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    server = _done(cluster, "sockstate.half-server")
    assert server is not None
    assert server.regs["data"] == b"parting-words"
    assert server.regs["eof"] == b""
    closer = _done(cluster, "sockstate.half-closer")
    assert closer is not None
    assert closer.regs["reply"] == b"goodbye"


# ---------------------------------------------------------------------------
# peeked datagrams (the paper's explicit UDP exception)
# ---------------------------------------------------------------------------


@program("sockstate.peeker")
def _peeker(b, *, port, nap):
    """Peek at a datagram, nap (checkpoint window), then consume it —
    'to preserve the expected semantics, the data in the queue must be
    restored upon restart, since its existence is already part of the
    application's state'."""
    b.syscall("fd", "socket", imm("udp"))
    b.syscall(None, "bind", "fd", imm(("default", port)))
    b.syscall("peeked", "recvfrom", "fd", imm(64), imm(MSG_PEEK))
    b.syscall(None, "sleep", imm(nap))
    b.syscall("real", "recvfrom", "fd", imm(64), imm(0))
    b.halt(imm(0))


@program("sockstate.one-shot")
def _one_shot(b, *, peer, port):
    b.syscall("fd", "socket", imm("udp"))
    b.syscall(None, "sendto", "fd", imm(b"look-at-me"), imm((peer, port)))
    b.syscall(None, "sleep", imm(30.0))
    b.halt(imm(0))


def test_peeked_datagram_survives_migration(world):
    cluster, manager = world
    p_rx = cluster.create_pod(cluster.node(0), "ss-peek")
    cluster.create_pod(cluster.node(1), "ss-shot")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.peeker", port=9603, nap=3.0), pod_id="ss-peek")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.one-shot", peer=p_rx.vip, port=9603),
        pod_id="ss-shot")
    holder = {}
    _mig(cluster, manager, holder, ["ss-peek", "ss-shot"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    peeker = _done(cluster, "sockstate.peeker")
    assert peeker is not None
    assert peeker.regs["peeked"][0] == b"look-at-me"
    assert peeker.regs["real"][0] == b"look-at-me"  # restored, not lost


# ---------------------------------------------------------------------------
# the full option set
# ---------------------------------------------------------------------------


@program("sockstate.optioneer")
def _optioneer(b, *, peer, port, nap):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall(None, "setsockopt", "fd", imm("SO_KEEPALIVE"), imm(1))
    b.syscall(None, "setsockopt", "fd", imm("TCP_KEEPALIVE"), imm(120.0))
    b.syscall(None, "setsockopt", "fd", imm("TCP_STDURG"), imm(1))
    b.syscall(None, "setsockopt", "fd", imm("SO_LINGER"), imm((1, 5)))
    b.syscall(None, "setsockopt", "fd", imm("IP_TOS"), imm(0x10))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "sleep", imm(nap))  # checkpoint lands here
    b.syscall("ka", "getsockopt", "fd", imm("SO_KEEPALIVE"))
    b.syscall("tka", "getsockopt", "fd", imm("TCP_KEEPALIVE"))
    b.syscall("urg", "getsockopt", "fd", imm("TCP_STDURG"))
    b.syscall("lin", "getsockopt", "fd", imm("SO_LINGER"))
    b.syscall("tos", "getsockopt", "fd", imm("IP_TOS"))
    b.halt(imm(0))


@program("sockstate.optioneer-peer")
def _optioneer_peer(b, *, port):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.syscall(None, "sleep", imm(30.0))
    b.halt(imm(0))


def test_entire_option_set_survives_migration(world):
    """'For correctness, the entire set of the parameters is included in
    the saved state' — including the paper's named examples
    TCP_KEEPALIVE and TCP_STDURG."""
    cluster, manager = world
    p_peer = cluster.create_pod(cluster.node(0), "ss-opeer")
    cluster.create_pod(cluster.node(1), "ss-opt")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.optioneer-peer", port=9604), pod_id="ss-opeer")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.optioneer", peer=p_peer.vip, port=9604, nap=3.0),
        pod_id="ss-opt")
    holder = {}
    _mig(cluster, manager, holder, ["ss-opeer", "ss-opt"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    opt = _done(cluster, "sockstate.optioneer")
    assert opt is not None
    assert opt.regs["ka"] == 1
    assert opt.regs["tka"] == 120.0
    assert opt.regs["urg"] == 1
    assert tuple(opt.regs["lin"]) == (1, 5)
    assert opt.regs["tos"] == 0x10


# ---------------------------------------------------------------------------
# blocked poll across restart
# ---------------------------------------------------------------------------


@program("sockstate.poller")
def _poller(b, *, port):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.op("spec", lambda fd: [(fd, "r")], "cfd")
    b.syscall("ready", "poll", "spec", imm(None))  # blocked here at ckpt
    b.syscall("data", "recv", "cfd", imm(64), imm(0))
    b.halt(imm(0))


@program("sockstate.late-talker")
def _late_talker(b, *, peer, port, delay):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "sleep", imm(delay))
    b.syscall(None, "send", "fd", imm(b"after-the-move"), imm(0))
    b.halt(imm(0))


def test_blocked_poll_survives_migration(world):
    cluster, manager = world
    p_srv = cluster.create_pod(cluster.node(0), "ss-poll")
    cluster.create_pod(cluster.node(1), "ss-talk")
    cluster.node(0).kernel.spawn(
        build_program("sockstate.poller", port=9605), pod_id="ss-poll")
    cluster.node(1).kernel.spawn(
        build_program("sockstate.late-talker", peer=p_srv.vip, port=9605,
                      delay=4.0), pod_id="ss-talk")
    holder = {}
    _mig(cluster, manager, holder, ["ss-poll", "ss-talk"], at=1.0)
    cluster.engine.run(until=120.0)
    assert holder["m"].finished.result.ok
    poller = _done(cluster, "sockstate.poller")
    assert poller is not None
    assert poller.regs["ready"] and poller.regs["data"] == b"after-the-move"
