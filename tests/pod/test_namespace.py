"""Unit tests for PID namespaces and the virtual address plane."""

import pytest

from repro.errors import NoSuchProcessError, PodError
from repro.pod import PidNamespace, VNet


class TestPidNamespace:
    def test_assign_sequential_vpids(self):
        ns = PidNamespace()
        assert ns.assign(500) == 1
        assert ns.assign(501) == 2
        assert ns.to_real(1) == 500
        assert ns.to_virtual(501) == 2

    def test_vpids_survive_rebind_to_new_host_pids(self):
        ns = PidNamespace()
        ns.assign(500)  # vpid 1
        # after migration the process gets host pid 900 but keeps vpid 1
        ns2 = PidNamespace()
        ns2.rebind(1, 900)
        assert ns2.to_real(1) == 900
        # new allocations stay above restored vpids
        assert ns2.assign(901) == 2

    def test_drop_host_removes_mapping(self):
        ns = PidNamespace()
        ns.assign(500)
        ns.drop_host(500)
        with pytest.raises(NoSuchProcessError):
            ns.to_real(1)
        assert len(ns) == 0

    def test_duplicate_binds_rejected(self):
        ns = PidNamespace()
        ns.assign(500)
        with pytest.raises(PodError):
            ns.rebind(1, 700)
        with pytest.raises(PodError):
            ns.rebind(5, 500)

    def test_unknown_lookups_raise(self):
        ns = PidNamespace()
        with pytest.raises(NoSuchProcessError):
            ns.to_real(9)
        with pytest.raises(NoSuchProcessError):
            ns.to_virtual(9)


class TestVNet:
    def test_place_resolve_remove(self):
        vnet = VNet()
        vnet.place("10.77.0.1", "10.0.0.3")
        assert vnet.resolve("10.77.0.1") == "10.0.0.3"
        assert vnet.where("10.77.0.1") == "10.0.0.3"
        vnet.remove("10.77.0.1")
        assert vnet.where("10.77.0.1") is None

    def test_real_addresses_resolve_to_themselves(self):
        vnet = VNet()
        assert vnet.resolve("10.0.0.9") == "10.0.0.9"

    def test_move_rehomes_virtual_address(self):
        vnet = VNet()
        vnet.place("10.77.0.1", "10.0.0.3")
        vnet.move("10.77.0.1", "10.0.0.7")
        assert vnet.resolve("10.77.0.1") == "10.0.0.7"

    def test_move_unplaced_rejected(self):
        with pytest.raises(PodError):
            VNet().move("10.77.0.1", "10.0.0.7")

    def test_snapshot_is_a_copy(self):
        vnet = VNet()
        vnet.place("10.77.0.1", "10.0.0.3")
        snap = vnet.snapshot()
        snap["10.77.0.1"] = "tampered"
        assert vnet.resolve("10.77.0.1") == "10.0.0.3"
