"""Test package."""
