"""Pod behaviour tests: namespaces in action, virtual networking,
suspend/resume, interposition overhead."""

import pytest

from repro.cluster import Cluster
from repro.vos import DEAD, imm, program
from repro.vos.signals import SIGKILL


@pytest.fixture
def cluster():
    return Cluster.build(2, seed=7)


@program("test.pod-spin")
def _spin(b, *, seconds=1.0):
    b.syscall(None, "sleep", imm(seconds))
    b.halt(imm(0))


@program("test.pod-getpid")
def _getpid(b):
    b.syscall("mypid", "getpid")
    b.syscall(None, "sleep", imm(5.0))
    b.halt(imm(0))


@program("test.pod-parent")
def _parent(b):
    b.syscall("child", "spawn", imm("test.pod-spin"), imm({"seconds": 0.1}), imm({}))
    b.syscall("status", "waitpid", "child")
    b.halt(imm(0))


@program("test.pod-killer")
def _killer(b, *, victim):
    b.syscall("r", "kill", imm(victim), imm(SIGKILL))
    b.halt(imm(0))


def _build_prog(name, **params):
    from repro.vos import build_program
    return build_program(name, **params)


def test_pod_creation_homes_virtual_address(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    assert pod.vip in node.stack.nic.addresses
    assert cluster.vnet.resolve(pod.vip) == node.ip
    assert cluster.find_pod("p0") is pod


def test_duplicate_pod_id_rejected(cluster):
    from repro.errors import PodError
    node = cluster.node(0)
    cluster.create_pod(node, "p0")
    with pytest.raises(PodError):
        cluster.create_pod(node, "p0")


def test_getpid_returns_vpid_inside_pod(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    proc = node.kernel.spawn(_build_prog("test.pod-getpid"), pod_id="p0")
    cluster.engine.run(until=1.0)
    assert proc.vpid == 1
    assert proc.regs["mypid"] == 1  # not the host pid
    assert proc.pid != 1


def test_spawned_children_join_the_pod(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    parent = node.kernel.spawn(_build_prog("test.pod-parent"), pod_id="p0")
    cluster.engine.run()
    assert parent.state == DEAD
    assert parent.regs["child"] == 2  # child got vpid 2
    assert parent.regs["status"] == 0


def test_kill_by_vpid_translates_through_namespace(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    victim = node.kernel.spawn(_build_prog("test.pod-spin", seconds=60.0), pod_id="p0")
    assert victim.vpid == 1
    node.kernel.spawn(_build_prog("test.pod-killer", victim=1), pod_id="p0")
    cluster.engine.run(until=5.0)
    assert victim.state == DEAD and victim.exit_code == -9


def test_suspend_quiesces_and_resume_continues(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    proc = node.kernel.spawn(_build_prog("test.pod-spin", seconds=1.0), pod_id="p0")
    engine = cluster.engine
    engine.schedule(0.2, pod.suspend)
    engine.run(until=0.5)
    assert pod.quiescent()
    assert proc.state != DEAD
    engine.schedule(0.0, pod.resume)
    engine.run()
    assert proc.state == DEAD
    # ~1s sleep + ~0.3s frozen window later wake
    assert engine.now == pytest.approx(1.0, abs=0.05)


def test_destroy_kills_members_and_releases_address(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    proc = node.kernel.spawn(_build_prog("test.pod-spin", seconds=60.0), pod_id="p0")
    vip = pod.vip
    pod.destroy()
    cluster.engine.run(until=1.0)
    assert proc.state == DEAD
    assert vip not in node.stack.nic.addresses
    assert cluster.vnet.where(vip) is None
    assert "p0" not in node.kernel.pods


@program("test.pod-server")
def _pod_server(b, *, port):
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(8))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall("data", "recv", "cfd", imm(1024), imm(0))
    b.syscall(None, "send", "cfd", imm(b"ok"), imm(0))
    b.halt(imm(0))


@program("test.pod-client")
def _pod_client(b, *, server_vip, port, payload):
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((server_vip, port)))
    b.syscall(None, "send", "fd", imm(payload), imm(0))
    b.syscall("reply", "recv", "fd", imm(1024), imm(0))
    b.halt(imm(0))


def test_cross_node_pods_communicate_via_virtual_addresses(cluster):
    n0, n1 = cluster.node(0), cluster.node(1)
    pod_a = cluster.create_pod(n0, "pa")
    pod_b = cluster.create_pod(n1, "pb")
    srv = n1.kernel.spawn(_build_prog("test.pod-server", port=9000), pod_id="pb")
    cli = n0.kernel.spawn(
        _build_prog("test.pod-client", server_vip=pod_b.vip, port=9000, payload=b"hi"),
        pod_id="pa",
    )
    cluster.engine.run(until=10.0)
    assert srv.state == DEAD and cli.state == DEAD
    assert srv.regs["data"] == b"hi"
    assert cli.regs["reply"] == b"ok"
    # the connection was made on virtual addresses
    assert any(k[1].ip == pod_b.vip for k in n1.stack.established)


def test_interposition_charges_extra_cycles(cluster):
    """A pod process's syscalls take longer than a host process's."""
    from repro.vos import build_program

    node_plain = cluster.node(0)
    node_pod = cluster.node(1)
    cluster.create_pod(node_pod, "pp")

    def build():
        from repro.vos.program import ProgramBuilder
        b = ProgramBuilder("syscall-burner")
        with b.for_range("i", imm(0), imm(2000)):
            b.syscall(None, "getpid")
        b.halt(imm(0))
        return b.build()

    p_plain = node_plain.kernel.spawn(build())
    p_pod = node_pod.kernel.spawn(build(), pod_id="pp")
    engine = cluster.engine
    engine.run()
    assert p_plain.state == DEAD and p_pod.state == DEAD
    # both did the same work; measure used wall time via syscall accounting:
    # interposed syscalls burn INTERPOSE_CYCLES extra each, so the pod
    # process must have finished later in simulated time. We proxy via
    # cpu_cycles equality + completion order assertions on kernels.
    assert p_plain.cpu_cycles == p_pod.cpu_cycles  # user-mode work identical


@program("test.pod-fs")
def _pod_fs(b):
    b.syscall("fd", "open", imm("/scratch.txt"), imm("w"))
    b.syscall(None, "write", "fd", imm(b"pod data"))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


def test_pod_filesystem_is_chrooted_on_shared_storage(cluster):
    node = cluster.node(0)
    pod = cluster.create_pod(node, "p0")
    node.kernel.spawn(_build_prog("test.pod-fs"), pod_id="p0")
    cluster.engine.run(until=1.0)
    # the file landed under the pod's chroot on the SAN (so a migrated
    # pod sees it from any node), not on the node-local root fs
    assert cluster.san.exists("/pods/p0/scratch.txt")
    assert not node.kernel.vfs.root.exists("/scratch.txt")
    # visible through the other node's VFS too
    other = cluster.node(1)
    fs, inner = other.kernel.vfs.resolve("/scratch.txt", chroot=pod.chroot)
    assert fs is cluster.san and fs.exists(inner)
