"""Seeded chaos at fleet-campaign wave boundaries.

Each seed drives one episode (see repro.cluster.chaos.run_fleet_chaos):
a cluster of idle pods runs one seeded scenario — drain a blade,
evacuate two, or checkpoint the whole fleet — while a seeded fault plan
fires at the ``fleet.*`` wave crossings (blade crashes, link drops and
delays, hangs), sometimes plus a ``crash_manager`` mid-campaign that
forces a replica to claim and finish the half-done wave.  The episode
audits:

FC1  no fleet pod is lost or duplicated (loss only when a blade it
     plausibly lived on crashed),
FC2  a tripped failure threshold really halts the campaign (no retries
     after the trip, bounded stragglers),
FC3  overlapping unit attempts never exceed ``max_inflight``, across
     the original run and any resumed one,
FC5  ok pods run unsuspended/unfirewalled off the evacuated set, failed
     moves leave the pod home, and ledger campaigns end terminal.

FC4 — determinism — is this file's own oracle: the same seed must
reproduce the episode byte for byte.

``CHAOS_SEED_BUCKET=k/n`` (CI matrix) restricts a worker to the seeds
with ``seed % n == k``.
"""

import os

import pytest

from repro.cluster.chaos import FLEET_FAULT_KINDS, run_fleet_chaos
from repro.cluster.faults import FLEET_PHASES, FaultPlan

N_SEEDS = 24
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("seed", SEEDS)
def test_fleet_invariants_hold(seed):
    report = run_fleet_chaos(seed)
    assert report.campaign is not None, f"seed {seed}: no campaign result"
    assert report.violations == [], (
        f"seed {seed} violated invariants "
        f"(replay with run_fleet_chaos({seed})):\n"
        + "\n".join(report.violations)
        + f"\nscenario: {report.scenario} targets: {report.targets}"
        + f"\nplan: {report.plan}\ncampaign: {report.campaign}"
        + f"\nfired: {report.fired}")


def test_same_seed_identical_episode():
    a = run_fleet_chaos(18, trace_spans=True)
    b = run_fleet_chaos(18, trace_spans=True)
    assert a.trace == b.trace
    assert a.fired == b.fired
    assert a.campaign == b.campaign
    assert a.span_dump == b.span_dump
    # the assembled campaign trace and its SLO report extend the
    # determinism oracle: byte-identical across same-seed runs
    assert a.assembled == b.assembled
    assert a.assembled_chrome == b.assembled_chrome
    assert a.slo == b.slo
    assert a.violations == b.violations == []


def test_crash_seed_assembles_one_complete_campaign_trace():
    # seed 18 crashes the Manager mid-campaign; the assembled trace must
    # still be a single tree accounting for every pod-unit the ledger
    # knows about, stitched across both incarnations (FC6)
    import json

    from repro.obs.validate import validate_campaign, validate_chrome

    report = run_fleet_chaos(18, trace_spans=True)
    assert report.manager_crashed
    assert report.violations == []
    assert report.assembled is not None
    assert validate_campaign(report.assembled) == []
    header = json.loads(report.assembled.splitlines()[0])
    assert header["coverage"]["complete"]
    assert len(header["owners"]) == 2          # both incarnations appear
    assert validate_chrome(json.loads(report.assembled_chrome)) == []
    assert report.slo["ok"] and report.slo["schema"] == 1
    assert any(v["rule"] == "coverage" for v in report.slo["verdicts"])


def test_manager_crash_seed_resumes_campaign():
    # seed 18 draws a crash_manager fault that fires mid-campaign; the
    # replica must claim the orphaned campaign and finish it cleanly
    report = run_fleet_chaos(18)
    assert report.manager_crashed
    assert report.resume, "replica never resumed the campaign"
    assert all(status in ("ok", "partial", "halted")
               for (_cid, _phase, status) in report.resume)
    assert report.campaign[0] in ("ok", "partial", "halted")
    assert report.violations == []


def test_fleet_plans_draw_from_fleet_phases():
    plan = FaultPlan.random(11, ["blade0", "blade1"], phases=FLEET_PHASES,
                            kinds=FLEET_FAULT_KINDS)
    assert plan.faults, "empty fault plan"
    for spec in plan.faults:
        assert spec.phase in FLEET_PHASES
        assert spec.kind in FLEET_FAULT_KINDS
