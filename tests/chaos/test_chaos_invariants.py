"""Seeded chaos schedules hold the protocol's safety invariants.

Each seed drives one full episode (see repro.cluster.chaos): a
checksummed distributed application, a sequence of coordinated
checkpoints, a seeded random fault schedule fired at protocol phase
boundaries, and — when a blade crashes — a recovery from the last good
checkpoint.  The episode audits:

I1  a failed operation leaves every surviving pod running,
I2  no partial image is ever visible as restartable,
I3  the last good checkpoint is never corrupted,
I4  the single synchronization point is preserved.

``CHAOS_SEED_BUCKET=k/n`` (CI matrix) restricts a worker to the seeds
with ``seed % n == k``.
"""

import os

import pytest

from repro.cluster.chaos import run_chaos

N_SEEDS = 30
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold(seed):
    report = run_chaos(seed)
    assert report.ops, f"seed {seed}: driver issued no operations"
    assert report.violations == [], (
        f"seed {seed} violated invariants (replay with run_chaos({seed})):\n"
        + "\n".join(report.violations)
        + f"\nplan: {report.plan}\nops: {report.ops}\nfired: {report.fired}")


@pytest.mark.skipif(bool(_bucket), reason="coverage audit needs the full seed set")
def test_seed_set_covers_fault_space():
    """The fixed seed matrix exercises every fault kind and at least one
    crash-recovery episode — otherwise green runs prove too little."""
    kinds = set()
    recoveries = 0
    clean_finishes = 0
    for seed in SEEDS:
        report = run_chaos(seed)
        kinds.update(f[1] for f in report.fired)
        recoveries += sum(1 for kind, _id, _st in report.ops if kind == "recover")
        clean_finishes += int(report.app_finished)
    assert kinds == {"crash_node", "link_drop", "link_delay", "san_stall",
                     "truncate_image", "hang"}, f"unexercised kinds: {kinds}"
    assert recoveries >= 1, "no seed exercised crash recovery"
    assert clean_finishes >= N_SEEDS // 2, "too few episodes ran to completion"
