"""Chaos episodes are reproducible: same seed, same event trace.

This is the property that makes a red chaos run debuggable — the
failing seed replays to the identical fault schedule and the identical
sequence of phase crossings, timestamps included.
"""

from repro.cluster.chaos import run_chaos
from repro.cluster.faults import CHECKPOINT_PHASES, FaultPlan


def test_same_seed_same_plan():
    a = FaultPlan.random(40, ["blade0", "blade1"])
    b = FaultPlan.random(40, ["blade0", "blade1"])
    assert a.describe() == b.describe()
    for spec in a.faults:
        assert spec.phase in CHECKPOINT_PHASES or spec.kind == "truncate_image"


def test_same_seed_identical_trace():
    # seed 7 fires several faults (see the invariants suite); two runs
    # must agree event for event, timestamps included
    a = run_chaos(7)
    b = run_chaos(7)
    assert a.trace == b.trace
    assert a.fired == b.fired
    assert a.ops == b.ops
    assert a.violations == b.violations == []


def test_different_seeds_diverge():
    a = run_chaos(5)
    b = run_chaos(6)
    assert (a.plan, a.trace) != (b.plan, b.trace)
