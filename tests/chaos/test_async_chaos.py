"""Seeded chaos against the zero-stall (async) incremental checkpoint path.

Each seed drives one episode (see repro.cluster.chaos.run_async_chaos):
a checksummed ping-pong pair with a writing working set, a sequence of
``async_ckpt=True`` incremental (delta-filter) checkpoints, and a seeded
fault schedule that fires both at the classic checkpoint phase
boundaries and at the new async crossings (capture end, post-resume
encode, overlapped write-out).  The episode audits:

A1  a failed op leaves every surviving pod running,
A2  no partial image container is ever visible as restartable,
A3  every committed in-memory delta chain reassembles byte-identically
    to the Agent's committed full base,
A4  rolling checksums are exact whenever the application finishes.

``CHAOS_SEED_BUCKET=incremental`` (CI matrix) selects this battery.
"""

import os

import pytest

from repro.cluster.chaos import run_async_chaos
from repro.cluster.faults import ASYNC_CKPT_PHASES, CHECKPOINT_PHASES, FaultPlan

N_SEEDS = 16
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket and "/" in _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("seed", SEEDS)
def test_async_invariants_hold(seed):
    report = run_async_chaos(seed)
    assert report.ops, f"seed {seed}: no checkpoint ran"
    assert report.violations == [], (
        f"seed {seed} violated invariants "
        f"(replay with run_async_chaos({seed})):\n"
        + "\n".join(report.violations)
        + f"\nplan: {report.plan}\nops: {report.ops}"
        + f"\nfired: {report.fired}")


def test_same_seed_identical_episode():
    a = run_async_chaos(5, trace_spans=True)
    b = run_async_chaos(5, trace_spans=True)
    assert a.trace == b.trace
    assert a.fired == b.fired
    assert a.ops == b.ops
    assert a.span_dump == b.span_dump
    assert a.violations == b.violations == []


def test_async_plans_draw_from_async_phases():
    plan = FaultPlan.random(13, ["blade0", "blade1"],
                            phases=CHECKPOINT_PHASES + ASYNC_CKPT_PHASES)
    assert plan.faults, "empty fault plan"
    for spec in plan.faults:
        assert spec.phase in CHECKPOINT_PHASES + ASYNC_CKPT_PHASES


@pytest.mark.skipif(bool(_bucket), reason="coverage audit needs the full seed set")
def test_seed_set_exercises_async_crossings():
    """The fixed seed matrix lands at least one fault on an async-only
    phase, commits at least one op, and fails at least one op — so the
    battery covers both halves of the async failure semantics."""
    async_hits = commits = failures = 0
    for seed in SEEDS:
        report = run_async_chaos(seed)
        if any(f[2] in ASYNC_CKPT_PHASES for f in report.fired):
            async_hits += 1
        commits += sum(1 for op in report.ops if op[2] == "ok")
        failures += sum(1 for op in report.ops if op[2] != "ok")
    assert async_hits >= 1, "no seed fired a fault at an async crossing"
    assert commits >= 1, "no seed committed an async checkpoint"
    assert failures >= 1, "no seed failed an async checkpoint"
