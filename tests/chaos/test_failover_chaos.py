"""Manager-failover chaos: kill the Manager at every ledger crossing.

Each episode (see :func:`repro.cluster.chaos.run_failover_chaos`) runs a
checksummed distributed application, drives a coordinated checkpoint,
and fires ``crash_manager`` exactly at one ``manager.ledger.*`` phase
crossing — between "this phase's record is durable" and "the next
phase's actions run".  A supervisor deploys a replica Manager that scans
the ledger, claims the orphaned op, and resumes or aborts it; the
episode audits F1–F6 (ledger terminal, no partial image, pods resumed,
continuity op succeeds, checksums correct, orphan resolved).

The matrix is every :data:`repro.cluster.faults.MANAGER_PHASES` crash
point × ``N_SEEDS`` seeds.  ``CHAOS_SEED_BUCKET=k/n`` (CI matrix)
restricts a worker to the seeds with ``seed % n == k``.
"""

import os

import pytest

from repro.cluster.chaos import run_failover_chaos
from repro.cluster.faults import MANAGER_PHASES

N_SEEDS = 20
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("crash_phase", MANAGER_PHASES)
def test_failover_matrix(crash_phase):
    """Every seed × this crash point: the replacement Manager resumes or
    cleanly aborts the in-flight op and the world stays consistent."""
    for seed in SEEDS:
        report = run_failover_chaos(seed, crash_phase)
        assert report.manager_crashed, (
            f"seed {seed} @ {crash_phase}: crash_manager never fired")
        assert report.violations == [], (
            f"seed {seed} @ {crash_phase} violated invariants (replay with "
            f"run_failover_chaos({seed}, {crash_phase!r})):\n"
            + "\n".join(report.violations)
            + f"\nops: {report.ops}\ntakeover: {report.takeover}"
            + f"\nfired: {report.fired}")


@pytest.mark.skipif(bool(_bucket), reason="outcome audit needs the full seed set")
def test_matrix_covers_both_recovery_modes():
    """The matrix must exercise both takeover outcomes: ops committed by
    the replica (crash after the continue record) and ops aborted
    through the tombstone-GC path (crash before it) — a matrix that
    only ever aborts proves half the design."""
    outcomes = set()
    for crash_phase in MANAGER_PHASES:
        report = run_failover_chaos(0, crash_phase)
        outcomes.update(o for (_op, _ph, o) in (report.takeover or []))
    assert "resumed" in outcomes, f"no cell resumed an orphan: {outcomes}"
    assert "aborted" in outcomes, f"no cell aborted an orphan: {outcomes}"


@pytest.mark.parametrize("crash_phase", ["manager.ledger.continue",
                                         "manager.ledger.meta",
                                         "manager.ledger.abort"])
def test_failover_deterministic(crash_phase):
    """Same (seed, crash point) → byte-identical fault trace and span
    dump across the crash, takeover and continuity op."""
    for seed in (0, 7):
        a = run_failover_chaos(seed, crash_phase, trace_spans=True)
        b = run_failover_chaos(seed, crash_phase, trace_spans=True)
        assert a.trace == b.trace, f"seed {seed}: fault trace diverged"
        assert a.fired == b.fired, f"seed {seed}: fired faults diverged"
        assert a.span_dump == b.span_dump, f"seed {seed}: span dump diverged"
        assert a.takeover == b.takeover, f"seed {seed}: takeover diverged"
