"""Seeded chaos against the content-addressed checkpoint store.

Each seed drives one episode (see repro.cluster.chaos.run_cas_chaos): a
checksummed ping-pong pair checkpointed repeatedly into the CAS at fixed
per-pod paths — every op extends or replaces the same generation chain —
with the delta filter and the zero-stall path mixed in, while a seeded
fault plan fires at the checkpoint boundaries plus the CAS crossings
(chunk write, index commit, tombstone GC).  The episode audits:

C1  a failed op leaves every surviving pod running,
C2  a published recipe is never partial: it loads and reassembles,
C3  the restored chain is byte-identical to a committed prefix of the
    Agent's in-memory ground truth,
C4  rolling checksums are exact whenever the application finishes,
C5  after a final orphan sweep the index balances exactly: no staged
    leftovers, no leaked chunk, no dangling ref.

``CHAOS_SEED_BUCKET=cas`` (CI matrix) selects this battery.
"""

import os

import pytest

from repro.cluster.chaos import run_cas_chaos
from repro.cluster.faults import CAS_PHASES, CHECKPOINT_PHASES, FaultPlan

N_SEEDS = 16
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket and "/" in _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("seed", SEEDS)
def test_cas_invariants_hold(seed):
    report = run_cas_chaos(seed)
    assert report.ops, f"seed {seed}: no checkpoint ran"
    assert report.violations == [], (
        f"seed {seed} violated invariants "
        f"(replay with run_cas_chaos({seed})):\n"
        + "\n".join(report.violations)
        + f"\nplan: {report.plan}\nops: {report.ops}"
        + f"\nfired: {report.fired}")


def test_same_seed_identical_episode():
    a = run_cas_chaos(3, trace_spans=True)
    b = run_cas_chaos(3, trace_spans=True)
    assert a.trace == b.trace
    assert a.fired == b.fired
    assert a.ops == b.ops
    assert a.span_dump == b.span_dump
    assert a.store_stats == b.store_stats
    assert a.violations == b.violations == []


def test_cas_plans_draw_from_cas_phases():
    plan = FaultPlan.random(11, ["blade0", "blade1"],
                            phases=CHECKPOINT_PHASES + CAS_PHASES)
    assert plan.faults, "empty fault plan"
    for spec in plan.faults:
        assert spec.phase in CHECKPOINT_PHASES + CAS_PHASES


@pytest.mark.skipif(bool(_bucket), reason="coverage audit needs the full seed set")
def test_seed_set_exercises_cas_crossings():
    """The fixed seed matrix lands at least one fault on a CAS-only
    crossing, commits at least one op, fails at least one op, and sees
    the store reclaim bytes — so the battery covers stage/publish,
    rollback, and the GC protocol."""
    cas_hits = commits = failures = reclaims = 0
    for seed in SEEDS:
        report = run_cas_chaos(seed)
        if any(f[2] in CAS_PHASES for f in report.fired):
            cas_hits += 1
        commits += sum(1 for op in report.ops if op[2] == "ok")
        failures += sum(1 for op in report.ops if op[2] != "ok")
        if report.store_stats.get("gc_reclaimed_bytes", 0) > 0:
            reclaims += 1
    assert cas_hits >= 1, "no seed faulted a CAS crossing"
    assert commits >= 1, "no seed committed a checkpoint"
    assert failures >= 1, "no seed failed a checkpoint"
    assert reclaims >= 1, "no seed exercised the GC reclaim path"
