"""Seeded chaos inside live-migration pre-copy rounds.

Each seed drives one episode (see repro.cluster.chaos.run_migration_chaos):
a checksummed ping-pong pair with a writing working set, a live migration
of both pods to fresh blades, and a seeded fault schedule fired at
pre-copy phase boundaries.  The episode audits:

M1  exactly one copy of each pod exists afterwards — on the destination
    when the migration committed, still running on the source when it
    aborted (never both, never zero on surviving blades),
M2  the application's rolling checksums are exact whenever it finishes.

``CHAOS_SEED_BUCKET=k/n`` (CI matrix) restricts a worker to the seeds
with ``seed % n == k``.
"""

import os

import pytest

from repro.cluster.chaos import MIGRATION_FAULT_KINDS, run_migration_chaos
from repro.cluster.faults import PRECOPY_PHASES, FaultPlan

N_SEEDS = 24
SEEDS = list(range(N_SEEDS))
_bucket = os.environ.get("CHAOS_SEED_BUCKET")
if _bucket:
    _k, _n = (int(x) for x in _bucket.split("/"))
    SEEDS = [s for s in SEEDS if s % _n == _k]


@pytest.mark.parametrize("seed", SEEDS)
def test_migration_invariants_hold(seed):
    report = run_migration_chaos(seed)
    assert report.migration is not None, f"seed {seed}: no migration ran"
    assert report.violations == [], (
        f"seed {seed} violated invariants "
        f"(replay with run_migration_chaos({seed})):\n"
        + "\n".join(report.violations)
        + f"\nplan: {report.plan}\nmigration: {report.migration}"
        + f"\nfired: {report.fired}")


def test_same_seed_identical_episode():
    a = run_migration_chaos(3, trace_spans=True)
    b = run_migration_chaos(3, trace_spans=True)
    assert a.trace == b.trace
    assert a.fired == b.fired
    assert a.migration == b.migration
    assert a.span_dump == b.span_dump
    assert a.violations == b.violations == []


def test_precopy_plans_draw_from_precopy_phases():
    plan = FaultPlan.random(11, ["blade0", "blade1"], phases=PRECOPY_PHASES,
                            kinds=MIGRATION_FAULT_KINDS)
    assert plan.faults, "empty fault plan"
    for spec in plan.faults:
        assert spec.phase in PRECOPY_PHASES
        assert spec.kind in MIGRATION_FAULT_KINDS


@pytest.mark.skipif(bool(_bucket), reason="coverage audit needs the full seed set")
def test_seed_set_covers_migration_fault_space():
    """The fixed seed matrix exercises every migration fault kind, at
    least one aborted migration (source kept), at least one committed
    one (destination only), and at least one multi-round pre-copy."""
    kinds = set()
    commits = aborts = multi_round = 0
    for seed in SEEDS:
        report = run_migration_chaos(seed)
        kinds.update(f[1] for f in report.fired)
        if report.migrated_ok:
            commits += 1
        else:
            aborts += 1
        if report.migration and report.migration[3] >= 2:
            multi_round += 1
    assert kinds == set(MIGRATION_FAULT_KINDS), f"unexercised kinds: {kinds}"
    assert commits >= 1, "no seed committed a live migration"
    assert aborts >= 1, "no seed exercised an aborted live migration"
    assert multi_round >= 1, "no seed ran more than one pre-copy round"
