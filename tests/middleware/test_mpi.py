"""Mini-MPI middleware tests: bootstrap, p2p, collectives, daemons."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.middleware import (
    emit_allreduce,
    emit_barrier,
    emit_bcast,
    emit_finalize,
    emit_gather,
    emit_init,
    emit_recv,
    emit_recv_any,
    emit_reduce,
    emit_scatter,
    emit_send,
    launch_spmd,
)
from repro.vos import imm, program


@program("mw.p2p")
def _p2p(b, *, rank, nprocs, vips):
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    if rank == 0:
        b.mov("payload", imm({"x": 42, "arr": b"abc"}))
        emit_send(b, 1, "payload")
        emit_recv(b, 1, "reply")
    elif rank == 1:
        emit_recv(b, 0, "got")
        b.op("reply_val", lambda g: g["x"] * 2, "got")
        emit_send(b, 0, "reply_val")
        b.mov("reply", imm(None))
    emit_finalize(b)
    b.halt(imm(0))


@program("mw.collectives")
def _collectives(b, *, rank, nprocs, vips):
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    # bcast an array from root
    if rank == 0:
        b.op("data", lambda: np.arange(8, dtype=np.float64))
    else:
        b.mov("data", imm(None))
    emit_bcast(b, "data", rank=rank, size=nprocs)
    # allreduce of rank
    b.mov("mine", imm(rank))
    emit_allreduce(b, "mine", "total", op="sum", rank=rank, size=nprocs)
    # reduce max to root
    b.op("sq", lambda r: r * r, "mine")
    emit_reduce(b, "sq", "maxsq", op="max", rank=rank, size=nprocs)
    # gather ranks at root
    emit_gather(b, "mine", "everyone", rank=rank, size=nprocs)
    # scatter a list from root
    if rank == 0:
        b.op("tolist", lambda n=nprocs: [i * 10 for i in range(n)])
    else:
        b.mov("tolist", imm(None))
    emit_scatter(b, "tolist", "myshare", rank=rank, size=nprocs)
    emit_barrier(b, rank=rank, size=nprocs)
    b.op("datasum", lambda d: float(d.sum()), "data")
    emit_finalize(b)
    b.halt(imm(0))


@program("mw.anysource")
def _anysource(b, *, rank, nprocs, vips):
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    if rank == 0:
        b.mov("seen", imm([]))
        for _ in range(nprocs - 1):
            emit_recv_any(b, "val", "src")
            b.op("seen", lambda s, v, who: sorted(s + [(who, v)]), "seen", "val", "src")
    else:
        b.syscall(None, "sleep", imm(0.01 * rank))
        b.mov("msg", imm(rank * 100))
        emit_send(b, 0, "msg")
    emit_finalize(b)
    b.halt(imm(0))


def _run_spmd(nprocs, prog, nodes=None, until=120.0):
    cluster = Cluster.build(max(nprocs, 2), seed=21)
    handle = launch_spmd(
        cluster, prog, nprocs,
        lambda rank, vips: {"rank": rank, "nprocs": nprocs, "vips": vips},
        name="t", nodes=nodes)
    cluster.engine.run(until=until)
    assert handle.ok(cluster), "application did not complete cleanly"
    return cluster, handle


def test_p2p_round_trip():
    cluster, handle = _run_spmd(2, "mw.p2p")
    (reply0, _none) = handle.results(cluster, "reply")
    assert reply0 == 84


@pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
def test_collectives(nprocs):
    cluster, handle = _run_spmd(nprocs, "mw.collectives")
    totals = handle.results(cluster, "total")
    assert totals == [sum(range(nprocs))] * nprocs  # allreduce everywhere
    datasums = handle.results(cluster, "datasum")
    assert datasums == [float(np.arange(8).sum())] * nprocs  # bcast worked
    maxsq = handle.results(cluster, "maxsq")
    assert maxsq[0] == (nprocs - 1) ** 2  # reduce at root
    everyone = handle.results(cluster, "everyone")
    assert everyone[0] == list(range(nprocs))  # gather at root
    myshare = handle.results(cluster, "myshare")
    assert myshare == [i * 10 for i in range(nprocs)]  # scatter


def test_any_source_collects_all_workers():
    cluster, handle = _run_spmd(4, "mw.anysource")
    seen = handle.results(cluster, "seen")[0]
    assert seen == [(1, 100), (2, 200), (3, 300)]


def test_multiple_ranks_per_node():
    """Two pods per dual-CPU blade — the paper's 16-node configuration."""
    nprocs = 4
    cluster = Cluster.build(2, ncpus=2, seed=21)
    handle = launch_spmd(
        cluster, "mw.collectives", nprocs,
        lambda rank, vips: {"rank": rank, "nprocs": nprocs, "vips": vips},
        name="t2", nodes=[0, 0, 1, 1])
    cluster.engine.run(until=120.0)
    assert handle.ok(cluster)
    assert handle.results(cluster, "total") == [6, 6, 6, 6]
