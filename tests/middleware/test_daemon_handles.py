"""AppHandle / launcher unit tests."""

import pytest

from repro.cluster import Cluster
from repro.errors import PodError
from repro.middleware import checkpoint_targets, launch_spmd
from repro.vos import imm, program


@program("mwdaemon.trivial")
def _trivial(b, *, rank, nprocs, vips, result=0):
    b.mov("answer", imm(result + rank))
    b.halt(imm(0))


@program("mwdaemon.failing")
def _failing(b, *, rank, nprocs, vips):
    b.halt(imm(1))  # nonzero exit propagates through the daemon


def test_handle_tracks_pods_and_results():
    cluster = Cluster.build(2, seed=121)
    handle = launch_spmd(
        cluster, "mwdaemon.trivial", 2,
        lambda rank, vips: {"rank": rank, "nprocs": 2, "vips": vips, "result": 10},
        name="h")
    assert handle.pod_ids == ["h-0", "h-1"]
    cluster.engine.run(until=30.0)
    assert handle.ok(cluster)
    assert handle.results(cluster, "answer") == [10, 11]
    assert [p.id for p in handle.pods(cluster)] == ["h-0", "h-1"]


def test_daemon_propagates_app_failure():
    cluster = Cluster.build(1, seed=122)
    handle = launch_spmd(
        cluster, "mwdaemon.failing", 1,
        lambda rank, vips: {"rank": rank, "nprocs": 1, "vips": vips},
        name="f")
    cluster.engine.run(until=30.0)
    assert not handle.ok(cluster)  # exit code 1 propagated


def test_checkpoint_targets_follow_pods():
    cluster = Cluster.build(2, seed=123)
    handle = launch_spmd(
        cluster, "mwdaemon.trivial", 2,
        lambda rank, vips: {"rank": rank, "nprocs": 2, "vips": vips},
        name="t", nodes=[0, 1])
    targets = checkpoint_targets(handle, cluster, uri="mem")
    assert targets == [("blade0", "t-0", "mem"), ("blade1", "t-1", "mem")]


def test_handle_pods_raise_when_pod_gone():
    cluster = Cluster.build(1, seed=124)
    handle = launch_spmd(
        cluster, "mwdaemon.trivial", 1,
        lambda rank, vips: {"rank": rank, "nprocs": 1, "vips": vips},
        name="g")
    cluster.find_pod("g-0").destroy()
    with pytest.raises(PodError):
        handle.pods(cluster)
