"""Test package."""
