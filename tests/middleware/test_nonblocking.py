"""Nonblocking mini-MPI tests: matching, unexpected queues, checkpoints."""

import pytest

from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.middleware import (
    emit_finalize,
    emit_init,
    emit_irecv,
    emit_isend,
    emit_recv,
    emit_req_list,
    emit_req_value,
    emit_send,
    emit_waitall,
    launch_spmd,
)
from repro.vos import imm, program


@program("nb.exchange")
def _exchange(b, *, rank, nprocs, vips, rounds):
    """All-pairs nonblocking exchange: every rank irecvs from everyone,
    isends to everyone,每 round with round-stamped payloads."""
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    peers = [p for p in range(nprocs) if p != rank]
    b.mov("collected", imm([]))
    with b.for_range("r", imm(0), imm(rounds)):
        emit_req_list(b, "reqs")
        for p in peers:
            emit_irecv(b, "reqs", src=p, tag="x")
        b.op("payload", lambda r, me=rank: (me, r), "r")
        for p in peers:
            emit_isend(b, p, "payload", tag="x")
        emit_waitall(b, "reqs")
        for i, p in enumerate(peers):
            emit_req_value(b, "reqs", i, f"v{i}")
        b.op("collected", lambda c, *vs: c + [sorted(vs)], "collected",
             *[f"v{i}" for i in range(len(peers))])
    emit_finalize(b)
    b.halt(imm(0))


@pytest.mark.parametrize("nprocs", [2, 3, 5])
def test_all_pairs_exchange(nprocs):
    rounds = 4
    cluster = Cluster.build(max(nprocs, 2), seed=131)
    handle = launch_spmd(
        cluster, "nb.exchange", nprocs,
        lambda rank, vips: {"rank": rank, "nprocs": nprocs, "vips": vips,
                            "rounds": rounds},
        name="nb")
    cluster.engine.run(until=300.0)
    assert handle.ok(cluster)
    for rank, collected in enumerate(handle.results(cluster, "collected")):
        peers = sorted(p for p in range(nprocs) if p != rank)
        for r, got in enumerate(collected):
            assert got == [(p, r) for p in peers]


@program("nb.mixed")
def _mixed(b, *, rank, nprocs, vips):
    """Blocking and nonblocking receives interleave on one connection:
    the unexpected queue must route frames to the right consumer."""
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    peer = 1 - rank
    if rank == 0:
        # send B first, then A: the receiver wants A first
        b.mov("mb", imm("bee"))
        emit_send(b, peer, "mb", tag="B")
        b.mov("ma", imm("aye"))
        emit_send(b, peer, "ma", tag="A")
        b.mov("got_a", imm(None))
        b.mov("got_b", imm(None))
    else:
        emit_recv(b, peer, "got_a", tag="A")   # parks the B frame
        emit_req_list(b, "reqs")
        emit_irecv(b, "reqs", src=peer, tag="B")
        emit_waitall(b, "reqs")                # resolved from the parked frame
        emit_req_value(b, "reqs", 0, "got_b")
    emit_finalize(b)
    b.halt(imm(0))


def test_blocking_and_nonblocking_share_the_unexpected_queue():
    cluster = Cluster.build(2, seed=132)
    handle = launch_spmd(
        cluster, "nb.mixed", 2,
        lambda rank, vips: {"rank": rank, "nprocs": 2, "vips": vips},
        name="mx")
    cluster.engine.run(until=60.0)
    assert handle.ok(cluster)
    assert handle.results(cluster, "got_a") == [None, "aye"]
    assert handle.results(cluster, "got_b") == [None, "bee"]


def test_exchange_survives_migration():
    """The engine's state (request lists, unexpected queues) lives in
    registers: it checkpoints and migrates like everything else."""
    nprocs, rounds = 3, 30
    cluster = Cluster.build(6, seed=133)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "nb.exchange", nprocs,
        lambda rank, vips: {"rank": rank, "nprocs": nprocs, "vips": vips,
                            "rounds": rounds},
        name="nbm")
    holder = {}

    def kick():
        moves = [(cluster.node_of_pod(p).name, p, f"blade{3 + i}")
                 for i, p in enumerate(handle.pod_ids)]
        holder["m"] = migrate(manager, moves)

    cluster.engine.schedule(0.02, kick)
    cluster.engine.run(until=300.0)
    assert holder["m"].finished.result.ok
    assert handle.ok(cluster)
    for rank, collected in enumerate(handle.results(cluster, "collected")):
        peers = sorted(p for p in range(nprocs) if p != rank)
        assert collected == [[(p, r) for p in peers] for r in range(rounds)]
