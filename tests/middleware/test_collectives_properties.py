"""Property-based tests for collective algorithms.

The tree/rank arithmetic must be correct for *every* world size, not
just the paper's; these run real collectives over randomized sizes and
payloads and compare against the obvious sequential reference.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.middleware import launch_spmd
from repro.middleware.collectives import _tree_children
from repro.vos import imm, program


@program("mwprop.allops")
def _allops(b, *, rank, nprocs, vips, payload):
    from repro.middleware import (
        emit_allreduce, emit_bcast, emit_gather, emit_init, emit_finalize,
        emit_scatter,
    )

    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    if rank == 0:
        b.mov("data", imm(payload))
    else:
        b.mov("data", imm(None))
    emit_bcast(b, "data", rank=rank, size=nprocs)
    b.op("mine", lambda d, r=rank: d + r, "data")
    emit_allreduce(b, "mine", "total", op="sum", rank=rank, size=nprocs)
    emit_gather(b, "mine", "all", rank=rank, size=nprocs)
    if rank == 0:
        b.op("tolist", lambda n=nprocs: [i * 3 + 1 for i in range(n)])
    else:
        b.mov("tolist", imm(None))
    emit_scatter(b, "tolist", "share", rank=rank, size=nprocs)
    emit_finalize(b)
    b.halt(imm(0))


# full engine runs are not cheap: bound the examples
@settings(max_examples=10, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=7),
       payload=st.integers(min_value=-1000, max_value=1000))
def test_collectives_for_any_world_size(nprocs, payload):
    cluster = Cluster.build(max(nprocs, 2), seed=61)
    handle = launch_spmd(
        cluster, "mwprop.allops", nprocs,
        lambda rank, vips: {"rank": rank, "nprocs": nprocs, "vips": vips,
                            "payload": payload},
        name="cp")
    cluster.engine.run(until=300.0)
    assert handle.ok(cluster)
    expect_total = sum(payload + r for r in range(nprocs))
    assert handle.results(cluster, "total") == [expect_total] * nprocs
    assert handle.results(cluster, "all")[0] == [payload + r for r in range(nprocs)]
    assert handle.results(cluster, "share") == [i * 3 + 1 for i in range(nprocs)]


@settings(max_examples=300, deadline=None)
@given(size=st.integers(min_value=1, max_value=64),
       root=st.integers(min_value=0, max_value=63),
       rank=st.integers(min_value=0, max_value=63))
def test_binomial_tree_is_a_tree(size, root, rank):
    """Every rank except the root has exactly one parent, children are
    consistent with parents, and the tree reaches everyone."""
    root %= size
    rank %= size
    parent, children = _tree_children(rank, size, root)
    if rank == root:
        assert parent is None
    else:
        assert parent is not None and 0 <= parent < size
        # the parent lists this rank among its children
        _pp, pchildren = _tree_children(parent, size, root)
        assert rank in pchildren
    for child in children:
        cp, _cc = _tree_children(child, size, root)
        assert cp == rank


@settings(max_examples=100, deadline=None)
@given(size=st.integers(min_value=1, max_value=64),
       root=st.integers(min_value=0, max_value=63))
def test_binomial_tree_spans_all_ranks(size, root):
    root %= size
    seen = set()
    frontier = [root]
    while frontier:
        node = frontier.pop()
        assert node not in seen  # acyclic
        seen.add(node)
        _p, children = _tree_children(node, size, root)
        frontier.extend(children)
    assert seen == set(range(size))
