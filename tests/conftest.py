"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Engine


@pytest.fixture
def engine() -> Engine:
    """A fresh deterministic engine for each test."""
    return Engine(seed=1234)
