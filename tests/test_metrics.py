"""Metrics and formatting tests."""

import pytest

from repro.metrics import Fig5Cell, Fig6Cell, fmt_bytes, fmt_seconds, print_table


def test_fig5_overhead_percent():
    cell = Fig5Cell("CPI", 4, base_time=10.0, zapc_time=10.5)
    assert cell.overhead_pct == pytest.approx(5.0)
    assert Fig5Cell("CPI", 4, 0.0, 1.0).overhead_pct == 0.0


def test_fig6_means_and_max():
    cell = Fig6Cell("BT", 4)
    cell.checkpoint_times = [0.1, 0.3]
    cell.network_ckpt_times = [0.001, 0.003]
    cell.image_sizes = [100, 200]
    cell.netstate_sizes = [10, 50, 20]
    assert cell.mean_checkpoint == pytest.approx(0.2)
    assert cell.mean_network_ckpt == pytest.approx(0.002)
    assert cell.mean_image_size == 150
    assert cell.max_netstate == 50


def test_fig6_empty_defaults():
    cell = Fig6Cell("X", 1)
    assert cell.mean_checkpoint == 0.0
    assert cell.mean_image_size == 0
    assert cell.max_netstate == 0


def test_fmt_seconds():
    assert "ms" in fmt_seconds(0.05)
    assert "s" in fmt_seconds(2.0)


def test_fmt_bytes():
    assert fmt_bytes(500).strip().endswith("B")
    assert "KB" in fmt_bytes(5_000)
    assert "MB" in fmt_bytes(5_000_000)
    assert "GB" in fmt_bytes(5_000_000_000)
    assert "MB" not in fmt_bytes(5_000_000_000)


def test_print_table_renders_all_rows(capsys):
    text = print_table("T", ("a", "bee"), [(1, "x"), (22, "yyyy")])
    out = capsys.readouterr().out
    assert "== T ==" in out
    assert "22" in out and "yyyy" in out
    assert text in out


def test_print_table_empty_rows():
    text = print_table("Empty", ("col",), [])
    assert "Empty" in text


def test_fig6_phase_times():
    cell = Fig6Cell("CPI", 2)
    cell.add_phase_time("suspend", 0.010)
    cell.add_phase_time("suspend", 0.030)
    cell.add_phase_time("barrier", 0.002)
    assert cell.mean_phase("suspend") == pytest.approx(0.020)
    assert cell.mean_phase("barrier") == pytest.approx(0.002)
    assert cell.mean_phase("netstate") == 0.0  # never recorded
