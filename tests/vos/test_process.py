"""Unit tests for the process interpreter and image round-trips."""

import pytest

from repro.errors import VosError
from repro.vos.process import Process, REASON_HALT, REASON_QUANTUM, REASON_SYSCALL
from repro.vos.program import ProgramBuilder, build_program, imm, program


def _mul(a, b):
    return a * b


def _make(builder_fn, name="anon", **regs):
    b = ProgramBuilder(name)
    builder_fn(b)
    return Process(1, b.build(), regs=regs)


def test_straight_line_arithmetic():
    def body(b):
        b.mov("x", imm(6))
        b.op("y", _mul, "x", imm(7))
        b.halt(imm(0))

    p = _make(body)
    used, reason, code = p.step(10_000)
    assert reason == REASON_HALT and code == 0
    assert p.regs["y"] == 42
    assert used > 0 and p.cpu_cycles == used


def test_falling_off_end_is_clean_exit():
    def body(b):
        b.mov("x", imm(1))

    p = _make(body)
    _, reason, code = p.step(10_000)
    assert reason == REASON_HALT and code == 0


def test_compute_splits_across_quanta():
    def body(b):
        b.compute(imm(10_000))
        b.halt(imm(3))

    p = _make(body)
    used1, reason1, _ = p.step(4_000)
    assert reason1 == REASON_QUANTUM and used1 == 4_000
    assert p.compute_remaining > 0
    used2, reason2, _ = p.step(4_000)
    assert reason2 == REASON_QUANTUM
    _, reason3, code = p.step(4_000)
    assert reason3 == REASON_HALT and code == 3


def test_syscall_traps_with_resolved_args():
    def body(b):
        b.mov("n", imm(128))
        b.syscall("out", "recv", imm(5), "n", imm(0))
        b.halt(imm(0))

    p = _make(body)
    _, reason, req = p.step(10_000)
    assert reason == REASON_SYSCALL
    assert req.name == "recv" and req.args == (5, 128, 0) and req.dst == "out"
    # deliver the result and continue
    p.regs["out"] = b"data"
    _, reason2, _ = p.step(10_000)
    assert reason2 == REASON_HALT


def test_loop_with_while():
    def body(b):
        b.mov("i", imm(0))
        b.op("cc", lambda i: i < 5, "i")
        with b.while_("cc"):
            b.op("i", lambda i: i + 1, "i")
            b.op("cc", lambda i: i < 5, "i")
        b.halt(imm(0))

    p = _make(body)
    _, reason, _ = p.step(1_000_000)
    assert reason == REASON_HALT and p.regs["i"] == 5


def test_for_range_loop():
    def body(b):
        b.mov("acc", imm(0))
        with b.for_range("i", imm(0), imm(10)):
            b.op("acc", lambda acc, i: acc + i, "acc", "i")
        b.halt(imm(0))

    p = _make(body)
    p.step(1_000_000)
    assert p.regs["acc"] == sum(range(10))


def test_if_blocks():
    def body(b):
        b.mov("flag", imm(True))
        b.mov("x", imm(0))
        with b.if_("flag"):
            b.mov("x", imm(1))
        with b.if_("flag", negate=True):
            b.mov("x", imm(2))
        b.halt(imm(0))

    p = _make(body)
    p.step(1_000_000)
    assert p.regs["x"] == 1


def test_call_and_ret():
    def body(b):
        b.mov("x", imm(1))
        b.call("double")
        b.call("double")
        b.halt(imm(0))
        b.label("double")
        b.op("x", _mul, "x", imm(2))
        b.ret()

    p = _make(body)
    _, reason, _ = p.step(1_000_000)
    assert reason == REASON_HALT and p.regs["x"] == 4


def test_ret_with_empty_stack_faults():
    def body(b):
        b.ret()

    p = _make(body)
    with pytest.raises(VosError, match="empty call stack"):
        p.step(1_000)


def test_unset_register_faults_with_context():
    def body(b):
        b.op("y", _mul, "nope", imm(2))

    p = _make(body, name="faulty")
    with pytest.raises(VosError, match="faulty"):
        p.step(1_000)


def test_memory_instructions():
    def body(b):
        b.alloc(imm(4096), "heap")
        b.alloc(imm(100), "grid")
        b.free(imm(96), "heap")
        b.halt(imm(0))

    p = _make(body)
    base = p.memory.rss
    p.step(1_000_000)
    assert p.memory.segment("grid") == 100
    assert p.memory.rss == base + 4096 + 100 - 96


def test_image_round_trip_mid_computation():
    @program("test.proc-image")
    def _build(b, *, n):
        b.mov("acc", imm(0))
        with b.for_range("i", imm(0), imm(n)):
            b.compute(imm(1000))
            b.op("acc", lambda acc, i: acc + i, "acc", "i")
        b.syscall("r", "recv", imm(3), imm(64), imm(0))
        b.halt(imm(0))

    original = Process(42, build_program("test.proc-image", n=50))
    # run partway through the loop
    original.step(7_000)
    assert original.pc != 0
    image = original.to_image()
    clone = Process.from_image(99, image)
    assert clone.pc == original.pc
    assert clone.regs == original.regs
    assert clone.compute_remaining == original.compute_remaining
    assert clone.memory.rss == original.memory.rss
    # both finish with identical results
    for p in (original, clone):
        _, reason, req = p.step(10**9)
        assert reason == REASON_SYSCALL and req.name == "recv"
    assert clone.regs["acc"] == original.regs["acc"]


def test_image_of_blocked_process_keeps_syscall_record():
    @program("test.proc-image-blocked")
    def _build(b):
        b.syscall("r", "recv", imm(3), imm(64), imm(0))
        b.halt(imm(0))

    p = Process(7, build_program("test.proc-image-blocked"))
    _, reason, req = p.step(10_000)
    assert reason == REASON_SYSCALL
    p.state = "blocked"
    p.blocked_on = req
    clone = Process.from_image(8, p.to_image())
    assert clone.state == "blocked"
    assert clone.blocked_on.name == "recv"
    assert clone.blocked_on.args == (3, 64, 0)
    assert clone.blocked_on.dst == "r"
