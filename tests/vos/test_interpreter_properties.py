"""Property-based tests on the interpreter and process images.

The checkpoint correctness story reduces to: (1) a process image
round-trips exactly at *any* interruption point, and (2) execution is
deterministic — the same program reaches the same state regardless of
how it is sliced into quanta.  Both are checked over randomized
programs and slice schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.vos.process import Process, REASON_HALT
from repro.vos.program import build_program, imm, program


def _mix(acc, x):
    return (acc * 1103515245 + x + 12345) % (2**31)


@program("prop.random-walk")
def _random_walk(b, *, ops, seed):
    """A deterministic arithmetic walk parameterized by (ops, seed)."""
    b.mov("acc", imm(seed))
    b.mov("mem", imm(0))
    for i, op in enumerate(ops):
        kind, arg = op
        if kind == 0:
            b.op("acc", _mix, "acc", imm(arg))
        elif kind == 1:
            b.compute(imm(arg * 100))
        elif kind == 2:
            b.alloc(imm(arg), "heap")
            b.op("mem", lambda m, a=arg: m + a, "mem")
        elif kind == 3:
            with b.for_range(f"i{i}", imm(0), imm(arg % 5)):
                b.op("acc", _mix, "acc", f"i{i}")
    b.halt(imm(0))


_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=1000)),
    min_size=1, max_size=12)


def _run_sliced(proc, slices):
    """Step a process with the given quantum schedule until halt."""
    idx = 0
    while True:
        budget = slices[idx % len(slices)]
        idx += 1
        _used, reason, payload = proc.step(budget)
        if reason == REASON_HALT:
            return payload


@settings(max_examples=80, deadline=None)
@given(ops=_ops, seed=st.integers(min_value=0, max_value=2**30),
       slices=st.lists(st.integers(min_value=50, max_value=5000), min_size=1, max_size=4))
def test_execution_is_slice_invariant(ops, seed, slices):
    """Final state is identical whether run in one slice or many."""
    big = Process(1, build_program("prop.random-walk", ops=ops, seed=seed))
    _run_sliced(big, [10**9])
    small = Process(2, build_program("prop.random-walk", ops=ops, seed=seed))
    _run_sliced(small, slices)
    assert small.regs["acc"] == big.regs["acc"]
    assert small.regs["mem"] == big.regs["mem"]
    assert small.memory.rss == big.memory.rss
    assert small.cpu_cycles == big.cpu_cycles


@settings(max_examples=80, deadline=None)
@given(ops=_ops, seed=st.integers(min_value=0, max_value=2**30),
       cut=st.integers(min_value=1, max_value=50_000))
def test_image_round_trip_at_any_interruption_point(ops, seed, cut):
    """Freeze after an arbitrary number of cycles; the restored clone
    must finish with exactly the original's final state."""
    reference = Process(1, build_program("prop.random-walk", ops=ops, seed=seed))
    _run_sliced(reference, [10**9])

    victim = Process(2, build_program("prop.random-walk", ops=ops, seed=seed))
    _used, reason, _payload = victim.step(cut)
    if reason == REASON_HALT:
        clone = victim  # finished before the cut: nothing to restore
    else:
        clone = Process(3, victim.to_image())  # type: ignore[arg-type]
        clone = Process.from_image(3, victim.to_image())
        _run_sliced(clone, [10**9])
    assert clone.regs["acc"] == reference.regs["acc"]
    assert clone.regs["mem"] == reference.regs["mem"]
    assert clone.memory.rss == reference.memory.rss


@settings(max_examples=50, deadline=None)
@given(ops=_ops, seed=st.integers(min_value=0, max_value=2**30))
def test_program_rebuild_is_stable(ops, seed):
    """Registry rebuilds produce instruction-identical programs (the
    property that lets images store only name+params)."""
    p1 = build_program("prop.random-walk", ops=ops, seed=seed)
    p2 = build_program("prop.random-walk", ops=ops, seed=seed)
    assert len(p1.instrs) == len(p2.instrs)
    for a, b in zip(p1.instrs, p2.instrs):
        assert (a.kind, a.dst, a.name, a.target, a.sense) == \
            (b.kind, b.dst, b.name, b.target, b.sense)
