"""Unit tests for accounted memory."""

import pytest

from repro.errors import VosError
from repro.vos.memory import Memory


def test_default_segments_zero():
    m = Memory()
    assert m.rss == 0
    assert m.segment("heap") == 0


def test_alloc_and_free():
    m = Memory()
    m.alloc(1024)
    m.alloc(512, "grid")
    assert m.rss == 1536
    m.free(512, "grid")
    assert m.rss == 1024
    assert m.segment("grid") == 0


def test_free_more_than_allocated_rejected():
    m = Memory()
    m.alloc(100)
    with pytest.raises(VosError):
        m.free(200)


def test_negative_alloc_rejected():
    with pytest.raises(VosError):
        Memory().alloc(-1)


def test_resize_sets_exact_size():
    m = Memory()
    m.alloc(100, "heap")
    m.resize(5000, "heap")
    assert m.segment("heap") == 5000


def test_image_round_trip():
    m = Memory(text=10, data=20, stack=30, heap=40)
    m.alloc(99, "grid")
    clone = Memory.from_image(m.to_image())
    assert clone.rss == m.rss
    assert clone.segment("grid") == 99
