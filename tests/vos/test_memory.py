"""Unit tests for accounted memory."""

import pytest

from repro.errors import VosError
from repro.vos.memory import Memory


def test_default_segments_zero():
    m = Memory()
    assert m.rss == 0
    assert m.segment("heap") == 0


def test_alloc_and_free():
    m = Memory()
    m.alloc(1024)
    m.alloc(512, "grid")
    assert m.rss == 1536
    m.free(512, "grid")
    assert m.rss == 1024
    assert m.segment("grid") == 0


def test_free_more_than_allocated_rejected():
    m = Memory()
    m.alloc(100)
    with pytest.raises(VosError):
        m.free(200)


def test_negative_alloc_rejected():
    with pytest.raises(VosError):
        Memory().alloc(-1)


def test_resize_sets_exact_size():
    m = Memory()
    m.alloc(100, "heap")
    m.resize(5000, "heap")
    assert m.segment("heap") == 5000


def test_image_round_trip():
    m = Memory(text=10, data=20, stack=30, heap=40)
    m.alloc(99, "grid")
    clone = Memory.from_image(m.to_image())
    assert clone.rss == m.rss
    assert clone.segment("grid") == 99


# ---------------------------------------------------------------------------
# dirty tracking
# ---------------------------------------------------------------------------


def test_fresh_memory_fully_dirty():
    m = Memory(heap=1000)
    assert m.dirty_bytes == 1000
    m.clear_dirty()
    assert m.dirty_bytes == 0


def test_touch_saturates_at_segment_size():
    m = Memory(heap=100)
    m.clear_dirty()
    m.touch(60, "heap")
    m.touch(60, "heap")
    assert m.dirty_bytes == 100


def test_touch_default_targets_largest_segment():
    m = Memory(text=10, data=5)
    m.alloc(1000, "grid")
    m.clear_dirty()
    m.touch(64)  # no segment named: the working set (grid) takes the writes
    assert m.dirty_table()["grid"] == 64
    assert m.dirty_bytes == 64


def test_touch_empty_memory_is_noop():
    m = Memory()
    m.clear_dirty()
    m.touch(100)
    m.touch(100, "nowhere")
    assert m.dirty_bytes == 0


def test_restored_memory_fully_dirty():
    m = Memory(heap=500)
    m.clear_dirty()
    clone = Memory.from_image(m.to_image())
    assert clone.dirty_bytes == clone.rss == 500


def test_dirty_never_serialized():
    a = Memory(heap=500)
    b = Memory(heap=500)
    a.clear_dirty()
    b.touch(100, "heap")
    assert a.to_image() == b.to_image()


# ---------------------------------------------------------------------------
# property tests: a random operation stream keeps the invariants
# ---------------------------------------------------------------------------

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SEGMENTS = ("heap", "grid", "stack")

_op = st.one_of(
    st.tuples(st.just("alloc"), st.sampled_from(SEGMENTS),
              st.integers(0, 1 << 20)),
    st.tuples(st.just("free"), st.sampled_from(SEGMENTS),
              st.integers(0, 1 << 20)),
    st.tuples(st.just("resize"), st.sampled_from(SEGMENTS),
              st.integers(0, 1 << 20)),
    st.tuples(st.just("touch"), st.sampled_from(SEGMENTS),
              st.integers(0, 1 << 20)),
    st.tuples(st.just("touch_any"), st.just(""), st.integers(0, 1 << 20)),
    st.tuples(st.just("clear"), st.just(""), st.just(0)),
)


def _apply(m, op):
    kind, seg, n = op
    if kind == "alloc":
        m.alloc(n, seg)
    elif kind == "free":
        m.free(min(n, m.segment(seg)), seg)
    elif kind == "resize":
        m.resize(n, seg)
    elif kind == "touch":
        m.touch(n, seg)
    elif kind == "touch_any":
        m.touch(n)
    elif kind == "clear":
        m.clear_dirty()


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=40))
def test_dirty_bounded_by_rss(ops):
    """No operation stream can make dirty exceed resident bytes —
    per segment and in total."""
    m = Memory(heap=4096)
    for op in ops:
        _apply(m, op)
        table = m.dirty_table()
        for seg, dirty in table.items():
            assert 0 <= dirty <= m.segment(seg), (seg, ops)
        assert m.dirty_bytes <= m.rss


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=40))
def test_clear_dirty_always_zeroes(ops):
    """clear_dirty leaves nothing to re-copy, whatever came before."""
    m = Memory(heap=4096)
    for op in ops:
        _apply(m, op)
    m.clear_dirty()
    assert m.dirty_bytes == 0


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=40))
def test_rss_matches_image_accounting(ops):
    """rss stays the sum of the serialized segment table, and dirty
    tracking never leaks into the image."""
    m = Memory(heap=4096)
    reference = Memory(heap=4096)
    for op in ops:
        _apply(m, op)
        # the reference applies only the size-changing half of the stream
        if op[0] in ("alloc", "free", "resize"):
            _apply(reference, op)
    image = m.to_image()
    assert m.rss == sum(image.values())
    assert image == reference.to_image()
