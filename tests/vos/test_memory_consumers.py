"""Generational dirty tracking: named consumers and transactional clears.

Incremental checkpoints and live-migration pre-copy both ask "what was
written since *my* last visit?" — two different baselines over one
dirty-page stream.  Each consumer (``"ckpt"``, ``"precopy"``, ...) owns
an independent baseline: clearing one never moves another's.  Clears are
transactional (``begin_clear`` / ``commit_clear`` / ``abort_clear``) so
a failed round folds its unacknowledged dirtiness back into the
baseline instead of losing it.
"""

import pytest

from repro.vos.memory import Memory


def test_consumers_have_independent_baselines():
    m = Memory(heap=1000)
    m.clear_dirty("ckpt")
    m.clear_dirty("precopy")
    m.touch(300, "heap")
    m.clear_dirty("precopy")      # the pre-copy round ships the 300
    m.touch(50, "heap")
    # the checkpoint consumer still owes everything since *its* clear
    assert m.dirty_in("ckpt") == 350
    assert m.dirty_in("precopy") == 50


def test_default_consumer_is_a_consumer_like_any_other():
    m = Memory(heap=100)
    m.clear_dirty()
    m.touch(40, "heap")
    m.clear_dirty("other")
    assert m.dirty_bytes == 40     # legacy API maps to the default consumer
    assert m.dirty_in("other") == 0


def test_unseen_consumer_starts_fully_dirty():
    m = Memory(heap=256)
    m.clear_dirty("ckpt")
    # a consumer that never cleared owes the whole resident set
    assert m.dirty_in("fresh") == 256
    assert m.dirty_table("fresh")["heap"] == 256


def test_growth_updates_every_materialized_consumer():
    m = Memory(heap=100)
    m.clear_dirty("a")
    m.clear_dirty("b")
    m.alloc(50, "heap")
    assert m.dirty_in("a") == 50
    assert m.dirty_in("b") == 50
    m.resize(30, "heap")           # shrink clamps dirty to segment size
    assert m.dirty_in("a") <= 30
    assert m.dirty_in("b") <= 30


def test_commit_clear_finalizes_the_new_baseline():
    m = Memory(heap=1000)
    m.clear_dirty("pc")
    m.touch(400, "heap")
    staged = m.begin_clear("pc")
    assert staged == 400
    assert m.dirty_in("pc") == 0   # optimistically cleared while shipping
    m.commit_clear("pc")
    assert m.dirty_in("pc") == 0


def test_abort_clear_restores_the_staged_dirtiness():
    m = Memory(heap=1000)
    m.clear_dirty("pc")
    m.touch(400, "heap")
    m.begin_clear("pc")
    m.touch(100, "heap")           # written while the failed round ran
    m.abort_clear("pc")
    # nothing was acknowledged: the 400 come back, merged saturating
    # with the 100 written meanwhile
    assert m.dirty_in("pc") == 500


def test_abort_clear_saturates_at_segment_size():
    m = Memory(heap=100)
    m.clear_dirty("pc")
    m.touch(80, "heap")
    m.begin_clear("pc")
    m.touch(90, "heap")
    m.abort_clear("pc")
    assert m.dirty_in("pc") == 100  # never more than resident


def test_abort_without_begin_is_noop():
    m = Memory(heap=100)
    m.clear_dirty("pc")
    m.touch(10, "heap")
    m.abort_clear("pc")
    m.commit_clear("pc")
    assert m.dirty_in("pc") == 10


def test_reset_dirty_drops_to_fully_dirty():
    m = Memory(heap=256)
    m.clear_dirty("cow")
    m.touch(10, "heap")
    m.reset_dirty("cow")
    # baseline forgotten: the consumer owes the full resident set again
    assert m.dirty_in("cow") == 256


def test_restored_memory_fully_dirty_for_every_consumer():
    m = Memory(heap=500)
    m.clear_dirty("ckpt")
    clone = Memory.from_image(m.to_image())
    assert clone.dirty_in("ckpt") == 500
    assert clone.dirty_in("precopy") == 500


# ---------------------------------------------------------------------------
# property tests: interleaved consumers never corrupt each other
# ---------------------------------------------------------------------------

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SEGMENTS = ("heap", "grid")
CONSUMERS = ("ckpt", "precopy")

_op = st.one_of(
    st.tuples(st.just("alloc"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("free"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("resize"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("touch"), st.sampled_from(SEGMENTS), st.integers(0, 1 << 16)),
    st.tuples(st.just("clear"), st.sampled_from(CONSUMERS), st.just(0)),
    st.tuples(st.just("begin"), st.sampled_from(CONSUMERS), st.just(0)),
    st.tuples(st.just("commit"), st.sampled_from(CONSUMERS), st.just(0)),
    st.tuples(st.just("abort"), st.sampled_from(CONSUMERS), st.just(0)),
    st.tuples(st.just("reset"), st.sampled_from(CONSUMERS), st.just(0)),
)


def _apply(m, op):
    kind, arg, n = op
    if kind == "alloc":
        m.alloc(n, arg)
    elif kind == "free":
        m.free(min(n, m.segment(arg)), arg)
    elif kind == "resize":
        m.resize(n, arg)
    elif kind == "touch":
        m.touch(n, arg)
    elif kind == "clear":
        m.clear_dirty(arg)
    elif kind == "begin":
        m.begin_clear(arg)
    elif kind == "commit":
        m.commit_clear(arg)
    elif kind == "abort":
        m.abort_clear(arg)
    elif kind == "reset":
        m.reset_dirty(arg)


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=50))
def test_every_consumer_bounded_by_rss(ops):
    """Whatever interleaving of writes, clears and transactions runs,
    no consumer's dirty view exceeds the resident set."""
    m = Memory(heap=4096)
    for op in ops:
        _apply(m, op)
        for consumer in CONSUMERS + ("default",):
            table = m.dirty_table(consumer)
            for seg, dirty in table.items():
                assert 0 <= dirty <= m.segment(seg), (op, consumer, ops)
            assert m.dirty_in(consumer) <= m.rss


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=50), st.integers(0, 1 << 16))
def test_other_consumers_blind_to_foreign_clears(ops, written):
    """A write lands in every baseline; only the consumer that clears
    loses sight of it.  ``ckpt``'s view is computed twice — once with
    and once without a foreign clear storm in between — and must
    match."""
    a = Memory(heap=1 << 20)
    b = Memory(heap=1 << 20)
    for m in (a, b):
        m.clear_dirty("ckpt")
        m.touch(written, "heap")
    # b additionally suffers every precopy-side operation
    for op in ops:
        if op[0] in ("clear", "begin", "commit", "abort", "reset") \
                and op[1] == "ckpt":
            continue
        if op[0] in ("alloc", "free", "resize", "touch"):
            _apply(a, op)
        _apply(b, op)
    assert a.dirty_table("ckpt") == b.dirty_table("ckpt")


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=40))
def test_abort_after_begin_never_loses_bytes(ops):
    """begin→(writes)→abort leaves at least the staged dirtiness (clamped
    to segment size) visible again."""
    m = Memory(heap=1 << 20)
    m.clear_dirty("pc")
    for op in ops:
        if op[0] in ("alloc", "free", "resize", "touch"):
            _apply(m, op)
    before = m.dirty_table("pc")
    m.begin_clear("pc")
    extra = [op for op in ops if op[0] == "touch"]
    for op in extra:
        _apply(m, op)
    m.abort_clear("pc")
    after = m.dirty_table("pc")
    for seg, dirty in before.items():
        assert after.get(seg, 0) >= min(dirty, m.segment(seg)), (seg, ops)
