"""Scheduler tests: fairness, burn slices, exact preemption."""

import pytest

from repro.vos import Kernel, SIGCONT, SIGKILL, SIGSTOP, imm
from repro.vos.process import DEAD
from repro.vos.program import ProgramBuilder
from repro.vos.scheduler import BURN_SLICE_S


def _spin(seconds, hz):
    b = ProgramBuilder("spin")
    b.compute(imm(int(seconds * hz)))
    b.halt(imm(0))
    return b.build()


def test_burn_slices_keep_event_counts_low(engine):
    """A long solo computation must not generate per-quantum events."""
    kernel = Kernel(engine, "n", ncpus=1)
    kernel.spawn(_spin(10.0, kernel.hz))
    engine.run()
    assert engine.now == pytest.approx(10.0, rel=0.01)
    # ~10s / 0.25s burns ≈ 40 slices, far below 10_000 quantum events
    assert engine.events_executed < 200


def test_competition_shrinks_slices_for_fairness(engine):
    """With a contender on the run queue, burns shrink to the quantum so
    round-robin interleaving is preserved."""
    kernel = Kernel(engine, "n", ncpus=1)
    a = kernel.spawn(_spin(0.5, kernel.hz))
    b = kernel.spawn(_spin(0.5, kernel.hz))
    engine.run()
    # serialized total ~1s; both must finish near the end (interleaved),
    # not one at 0.5s and the other at 1.0s
    assert a.exit_time == pytest.approx(1.0, abs=0.3)
    assert b.exit_time == pytest.approx(1.0, abs=0.05)
    assert abs(a.exit_time - b.exit_time) < 0.3


def test_sigstop_preempts_a_burn_exactly(engine):
    """Stopping a burning process freezes it at the signal instant, not
    at the end of the (long) burn slice."""
    kernel = Kernel(engine, "n", ncpus=1)
    proc = kernel.spawn(_spin(10.0, kernel.hz))
    engine.schedule(1.0, kernel.send_signal, proc.pid, SIGSTOP)
    engine.run(until=2.0)  # the queue drains right after the preemption
    assert proc.stopped
    burned = proc.cpu_cycles / kernel.hz
    assert burned == pytest.approx(1.0, abs=0.01)  # not 1.25 (burn cap)
    resumed_at = engine.now
    kernel.send_signal(proc.pid, SIGCONT)
    engine.run()
    assert proc.state == DEAD
    # exactly the 9 unburned seconds remain after the resume
    assert engine.now == pytest.approx(resumed_at + 9.0, abs=0.05)


def test_sigkill_preempts_a_burn(engine):
    kernel = Kernel(engine, "n", ncpus=1)
    proc = kernel.spawn(_spin(10.0, kernel.hz))
    engine.schedule(0.7, kernel.send_signal, proc.pid, SIGKILL)
    engine.run(until=5.0)
    assert proc.state == DEAD and proc.exit_code == -9
    # the CPU freed immediately: another process can use it
    other = kernel.spawn(_spin(0.5, kernel.hz))
    engine.run()
    assert other.state == DEAD
    assert engine.now == pytest.approx(0.7 + 0.5, abs=0.05)


def test_burn_cap_matches_constant(engine):
    """A solo burn runs in BURN_SLICE_S chunks (observable via events)."""
    kernel = Kernel(engine, "n", ncpus=1)
    kernel.spawn(_spin(BURN_SLICE_S * 4, kernel.hz))
    before = engine.events_executed
    engine.run()
    # 4 burn completions + dispatch bookkeeping: an order of ten events
    assert engine.events_executed - before < 40


def test_smp_runs_burns_in_parallel(engine):
    kernel = Kernel(engine, "smp", ncpus=4)
    for _ in range(4):
        kernel.spawn(_spin(2.0, kernel.hz))
    engine.run()
    assert engine.now == pytest.approx(2.0, rel=0.02)
    assert sum(kernel.scheduler.busy_cycles) == pytest.approx(8.0 * kernel.hz, rel=0.02)
