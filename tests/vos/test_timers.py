"""Timer-table unit tests."""

import pytest

from repro.errors import VosError
from repro.vos.timers import Timer, TimerTable


def test_create_assigns_sequential_tids():
    table = TimerTable()
    t1 = table.create(100, 5.0)
    t2 = table.create(100, 6.0)
    assert (t1.tid, t2.tid) == (1, 2)
    assert table.get(1) is t1


def test_adopt_keeps_allocation_ahead():
    table = TimerTable()
    restored = Timer(7, 100, 9.0)
    table.adopt(restored)
    fresh = table.create(100, 1.0)
    assert fresh.tid == 8


def test_adopt_rejects_duplicates():
    table = TimerTable()
    table.adopt(Timer(3, 1, 1.0))
    with pytest.raises(VosError):
        table.adopt(Timer(3, 2, 2.0))


def test_get_missing_raises_maybe_get_does_not():
    table = TimerTable()
    with pytest.raises(VosError):
        table.get(9)
    assert table.maybe_get(9) is None


def test_owned_by_filters_by_pid():
    table = TimerTable()
    table.create(100, 1.0)
    table.create(200, 2.0)
    table.create(100, 3.0)
    owned = table.owned_by({100})
    assert sorted(t.tid for t in owned) == [1, 3]


def test_to_image_records_remaining_virtual_time():
    timer = Timer(5, 100, vexpiry=10.0)
    image = timer.to_image(vnow=7.5)
    assert image["remaining"] == pytest.approx(2.5)
    assert image["vexpiry"] == 10.0
    assert image["fired"] is False
    # past-due timers report zero remaining, never negative
    assert Timer(6, 100, 1.0).to_image(vnow=5.0)["remaining"] == 0.0


def test_remove_is_idempotent():
    table = TimerTable()
    t = table.create(100, 1.0)
    table.remove(t.tid)
    table.remove(t.tid)
    assert table.maybe_get(t.tid) is None
