"""Test package."""
