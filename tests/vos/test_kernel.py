"""Unit tests for the kernel: scheduling, syscalls, signals, timers, fs."""

import pytest

from repro.vos import (
    DEAD,
    Errno,
    Kernel,
    SIGCONT,
    SIGKILL,
    SIGSTOP,
    imm,
    program,
)
from repro.vos.program import ProgramBuilder


@pytest.fixture
def kernel(engine):
    return Kernel(engine, "node0", ncpus=1)


def _prog(builder_fn, name="anon"):
    b = ProgramBuilder(name)
    builder_fn(b)
    return b.build()


# ---------------------------------------------------------------------------
# basic execution / exit
# ---------------------------------------------------------------------------


def test_spawn_run_exit(engine, kernel):
    def body(b):
        b.mov("x", imm(5))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.state == DEAD and proc.exit_code == 0
    assert proc.regs["x"] == 5


def test_compute_advances_simulated_time(engine, kernel):
    def body(b):
        b.compute(imm(int(kernel.hz)))  # one second of CPU
        b.halt(imm(0))

    kernel.spawn(_prog(body))
    engine.run()
    assert engine.now == pytest.approx(1.0, rel=0.01)


def test_two_processes_share_one_cpu(engine, kernel):
    def body(b):
        b.compute(imm(int(kernel.hz * 0.5)))
        b.halt(imm(0))

    kernel.spawn(_prog(body, "a"))
    kernel.spawn(_prog(body, "b"))
    engine.run()
    # serialized on one CPU: total ~1s
    assert engine.now == pytest.approx(1.0, rel=0.02)


def test_two_processes_on_two_cpus_run_in_parallel(engine):
    kernel = Kernel(engine, "smp", ncpus=2)

    def body(b):
        b.compute(imm(int(kernel.hz * 0.5)))
        b.halt(imm(0))

    kernel.spawn(_prog(body, "a"))
    kernel.spawn(_prog(body, "b"))
    engine.run()
    assert engine.now == pytest.approx(0.5, rel=0.02)


# ---------------------------------------------------------------------------
# syscalls
# ---------------------------------------------------------------------------


def test_getpid_and_gettime(engine, kernel):
    def body(b):
        b.syscall("pid", "getpid")
        b.syscall("t", "gettime")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["pid"] == proc.pid
    assert proc.regs["t"] > 0


def test_unknown_syscall_returns_enosys(engine, kernel):
    def body(b):
        b.syscall("r", "frobnicate")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert isinstance(proc.regs["r"], Errno)
    assert proc.regs["r"].name == "ENOSYS"


def test_sleep_blocks_for_duration(engine, kernel):
    def body(b):
        b.syscall(None, "sleep", imm(2.5))
        b.syscall("t", "gettime")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["t"] == pytest.approx(2.5, abs=0.01)


def test_spawn_and_waitpid(engine, kernel):
    @program("test.kernel-child")
    def _child(b, *, code):
        b.compute(imm(100_000))
        b.halt(imm(code))

    def parent(b):
        b.syscall("cpid", "spawn", imm("test.kernel-child"), imm({"code": 7}), imm({}))
        b.syscall("status", "waitpid", "cpid")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(parent))
    engine.run()
    assert proc.regs["status"] == 7


def test_waitpid_on_already_dead_child(engine, kernel):
    @program("test.kernel-child2")
    def _child(b):
        b.halt(imm(3))

    def parent(b):
        b.syscall("cpid", "spawn", imm("test.kernel-child2"), imm({}), imm({}))
        b.syscall(None, "sleep", imm(1.0))  # let the child die first
        b.syscall("status", "waitpid", "cpid")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(parent))
    engine.run()
    assert proc.regs["status"] == 3


def test_kill_unknown_pid_is_esrch(engine, kernel):
    def body(b):
        b.syscall("r", "kill", imm(31337), imm(SIGKILL))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert isinstance(proc.regs["r"], Errno) and proc.regs["r"].name == "ESRCH"


# ---------------------------------------------------------------------------
# signals
# ---------------------------------------------------------------------------


def test_sigstop_freezes_and_sigcont_resumes(engine, kernel):
    def body(b):
        b.compute(imm(int(kernel.hz)))  # 1s of work
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.schedule(0.1, kernel.send_signal, proc.pid, SIGSTOP)
    engine.schedule(2.1, kernel.send_signal, proc.pid, SIGCONT)
    engine.run()
    assert proc.state == DEAD
    # 1s of work + 2s frozen (allow a quantum of slack)
    assert engine.now == pytest.approx(3.0, abs=0.05)


def test_stopped_process_parks_syscall_result(engine, kernel):
    def body(b):
        b.syscall("r", "sleep", imm(1.0))
        b.mov("woke", imm(True))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.schedule(0.5, kernel.send_signal, proc.pid, SIGSTOP)
    engine.run(until=2.0)
    # sleep finished at t=1 but the process is stopped: result parked
    assert proc.stopped and proc.pending_result is not None
    assert "woke" not in proc.regs
    kernel.send_signal(proc.pid, SIGCONT)
    engine.run()
    assert proc.state == DEAD and proc.regs["woke"] is True


def test_sigkill_terminates_blocked_process(engine, kernel):
    def body(b):
        b.syscall(None, "sleep", imm(100.0))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.schedule(0.5, kernel.send_signal, proc.pid, SIGKILL)
    engine.run(until=5.0)
    assert proc.state == DEAD and proc.exit_code == -9


def test_sigstop_of_runnable_process_keeps_it_off_queue(engine, kernel):
    def body(b):
        b.compute(imm(int(kernel.hz * 0.1)))
        b.halt(imm(0))

    # two procs on one cpu; stop the queued one before it runs
    a = kernel.spawn(_prog(body, "a"))
    b2 = kernel.spawn(_prog(body, "b"))
    kernel.send_signal(b2.pid, SIGSTOP)
    engine.run(until=1.0)
    assert a.state == DEAD
    assert b2.state != DEAD and b2.stopped


# ---------------------------------------------------------------------------
# timers
# ---------------------------------------------------------------------------


def test_settimer_waittimer(engine, kernel):
    def body(b):
        b.syscall("tid", "settimer", imm(2.0))
        b.syscall("fired", "waittimer", "tid")
        b.syscall("t", "gettime")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["fired"] is True
    assert proc.regs["t"] == pytest.approx(2.0, abs=0.01)


def test_waittimer_after_fire_completes_immediately(engine, kernel):
    def body(b):
        b.syscall("tid", "settimer", imm(0.5))
        b.syscall(None, "sleep", imm(1.0))
        b.syscall("fired", "waittimer", "tid")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["fired"] is True
    assert engine.now == pytest.approx(1.0, abs=0.05)


def test_canceltimer_wakes_waiter_with_false(engine, kernel):
    def waiter(b):
        b.syscall("tid", "settimer", imm(50.0))
        b.syscall("fired", "waittimer", "tid")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(waiter))

    def cancel():
        # find the timer and cancel it from the outside
        tids = list(kernel.timers._timers)
        assert tids
        kernel.engine.schedule(0.0, lambda: None)
        from repro.vos.kernel import _sys_canceltimer
        _sys_canceltimer(kernel, proc, (tids[0],), False)

    engine.schedule(1.0, cancel)
    engine.run(until=10.0)
    assert proc.regs.get("fired") is False


# ---------------------------------------------------------------------------
# filesystem syscalls
# ---------------------------------------------------------------------------


def test_file_write_then_read(engine, kernel):
    def body(b):
        b.syscall("fd", "open", imm("/tmp.txt"), imm("w"))
        b.syscall("n", "write", "fd", imm(b"hello world"))
        b.syscall(None, "close", "fd")
        b.syscall("fd2", "open", imm("/tmp.txt"), imm("r"))
        b.syscall("data", "read", "fd2", imm(1024))
        b.syscall(None, "close", "fd2")
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["n"] == 11
    assert proc.regs["data"] == b"hello world"


def test_open_missing_file_is_enoent(engine, kernel):
    def body(b):
        b.syscall("r", "open", imm("/missing"), imm("r"))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert isinstance(proc.regs["r"], Errno) and proc.regs["r"].name == "ENOENT"


def test_mkdir_listdir_unlink(engine, kernel):
    def body(b):
        b.syscall(None, "mkdir", imm("/data"))
        b.syscall("fd", "open", imm("/data/a.bin"), imm("w"))
        b.syscall(None, "write", "fd", imm(b"x"))
        b.syscall(None, "close", "fd")
        b.syscall("entries", "listdir", imm("/data"))
        b.syscall(None, "unlink", imm("/data/a.bin"))
        b.syscall("after", "listdir", imm("/data"))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.regs["entries"] == ["a.bin"]
    assert proc.regs["after"] == []


def test_exit_closes_fds(engine, kernel):
    def body(b):
        b.syscall("fd", "open", imm("/f"), imm("w"))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.fds == {}


# ---------------------------------------------------------------------------
# host channels
# ---------------------------------------------------------------------------


def test_host_channel_syscall(engine, kernel):
    chan = kernel.host_channel("agent")

    def task():
        fut = kernel.host_call(chan, "gettime")
        t = yield fut
        return t

    result = engine.run_task(task())
    assert result >= 0


def test_host_channel_rejects_concurrent_calls(engine, kernel):
    from repro.errors import VosError

    chan = kernel.host_channel("agent")
    kernel.host_call(chan, "sleep", 10.0)
    with pytest.raises(VosError):
        kernel.host_call(chan, "gettime")


def test_blocked_probe_reports_stuck_process(engine, kernel):
    @program("test.kernel-stuck")
    def _build(b):
        b.syscall("r", "waitpid", imm(12345))
        b.halt(imm(0))

    # waitpid on a nonexistent pid raises ESRCH -> completes; use a timer wait
    def body(b):
        b.syscall("tid", "settimer", imm(1.0))
        b.syscall(None, "waittimer", imm(999))  # EINVAL -> completes
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert proc.state == DEAD


def test_spawn_of_unknown_program_is_enoent(engine, kernel):
    def body(b):
        b.syscall("r", "spawn", imm("no.such.program"), imm({}), imm({}))
        b.halt(imm(0))

    proc = kernel.spawn(_prog(body))
    engine.run()
    assert isinstance(proc.regs["r"], Errno) and proc.regs["r"].name == "ENOENT"
