"""VFS unit tests: mounts, chroot resolution, file semantics."""

import pytest

from repro.errors import SyscallError
from repro.vos.filesystem import FileSystem, OpenFile, VFS, ensure_dirs, normalize


class TestNormalize:
    def test_absolute(self):
        assert normalize("/a/b") == "/a/b"

    def test_relative_gets_rooted(self):
        assert normalize("a/b") == "/a/b"

    def test_dotdot_collapses(self):
        assert normalize("/a/../b/./c") == "/b/c"

    def test_root(self):
        assert normalize("/") == "/"


class TestFileSystem:
    def test_create_lookup_unlink(self):
        fs = FileSystem("t")
        f = fs.create("/x")
        f.data.extend(b"abc")
        assert bytes(fs.lookup("/x").data) == b"abc"
        fs.unlink("/x")
        with pytest.raises(SyscallError):
            fs.lookup("/x")

    def test_create_requires_parent_dir(self):
        fs = FileSystem("t")
        with pytest.raises(SyscallError):
            fs.create("/no/such/parent")

    def test_mkdir_and_listdir(self):
        fs = FileSystem("t")
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        fs.create("/d/a")
        fs.create("/d/b")
        assert fs.listdir("/d") == ["a", "b", "e"]
        assert fs.listdir("/d/e") == []

    def test_listdir_on_file_fails(self):
        fs = FileSystem("t")
        fs.create("/f")
        with pytest.raises(SyscallError):
            fs.listdir("/f")

    def test_mkdir_over_file_fails(self):
        fs = FileSystem("t")
        fs.create("/f")
        with pytest.raises(SyscallError):
            fs.mkdir("/f")

    def test_transfer_delay_scales(self):
        fs = FileSystem("t", bandwidth=1e6, latency=0.001)
        assert fs.transfer_delay(1_000_000) == pytest.approx(1.001)

    def test_ensure_dirs(self):
        fs = FileSystem("t")
        ensure_dirs(fs, "/a/b/c")
        assert fs.exists("/a/b/c")
        ensure_dirs(fs, "/a/b/c")  # idempotent


class TestOpenFile:
    def test_read_write_positions(self):
        fs = FileSystem("t")
        f = fs.create("/x")
        h = OpenFile(fs, "/x", f, "w")
        assert h.write(b"hello") == 5
        h2 = OpenFile(fs, "/x", f, "r")
        assert h2.read(3) == b"hel"
        assert h2.read(100) == b"lo"
        assert h2.read(10) == b""

    def test_append_mode(self):
        fs = FileSystem("t")
        f = fs.create("/x")
        OpenFile(fs, "/x", f, "w").write(b"one")
        OpenFile(fs, "/x", f, "a").write(b"two")
        assert bytes(f.data) == b"onetwo"

    def test_mode_enforcement(self):
        fs = FileSystem("t")
        f = fs.create("/x")
        with pytest.raises(SyscallError):
            OpenFile(fs, "/x", f, "r").write(b"nope")
        with pytest.raises(SyscallError):
            OpenFile(fs, "/x", f, "w").read(1)

    def test_overwrite_middle(self):
        fs = FileSystem("t")
        f = fs.create("/x")
        h = OpenFile(fs, "/x", f, "w")
        h.write(b"abcdef")
        h.pos = 2
        h.write(b"XY")
        assert bytes(f.data) == b"abXYef"


class TestVFS:
    def test_longest_prefix_mount_wins(self):
        vfs = VFS()
        outer = FileSystem("outer")
        inner = FileSystem("inner")
        vfs.mount("/san", outer)
        vfs.mount("/san/deep", inner)
        fs, path = vfs.resolve("/san/deep/file")
        assert fs is inner and path == "/file"
        fs, path = vfs.resolve("/san/other")
        assert fs is outer and path == "/other"

    def test_chroot_prefixes_paths(self):
        vfs = VFS()
        san = FileSystem("san")
        vfs.mount("/san", san)
        ensure_dirs(san, "/pods/p0")
        fs, path = vfs.resolve("/data.txt", chroot="/san/pods/p0")
        assert fs is san and path == "/pods/p0/data.txt"

    def test_open_creates_through_mounts(self):
        vfs = VFS()
        san = FileSystem("san")
        vfs.mount("/san", san)
        handle = vfs.open("/san/f.bin", "w")
        handle.write(b"z")
        assert san.exists("/f.bin")

    def test_root_paths_stay_on_rootfs(self):
        vfs = VFS()
        vfs.mount("/san", FileSystem("san"))
        fs, path = vfs.resolve("/etc/conf")
        assert fs is vfs.root and path == "/etc/conf"
