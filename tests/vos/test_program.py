"""Unit tests for the mini-ISA builder and program registry."""

import pytest

from repro.errors import VosError
from repro.vos.program import (
    Imm,
    ProgramBuilder,
    build_program,
    imm,
    program,
    registered_programs,
)


def _add(a, b):
    return a + b


def test_builder_emits_and_resolves_labels():
    b = ProgramBuilder("t")
    b.mov("x", imm(0))
    b.label("top")
    b.op("x", _add, "x", imm(1))
    b.op("cc", lambda x: x < 3, "x")
    b.branch_if("cc", "top")
    b.halt(imm(0))
    prog = b.build()
    assert prog.labels["top"] == 1
    branch = prog.instrs[3]
    assert branch.kind == "branch" and branch.target == 1


def test_undefined_label_rejected():
    b = ProgramBuilder("t")
    b.jump("nowhere")
    with pytest.raises(VosError, match="nowhere"):
        b.build()


def test_duplicate_label_rejected():
    b = ProgramBuilder("t")
    b.label("a")
    with pytest.raises(VosError):
        b.label("a")


def test_registry_build_and_params():
    @program("test.registry-demo")
    def _build(b, *, n):
        b.mov("n", imm(n))
        b.halt()

    prog = build_program("test.registry-demo", n=7)
    assert prog.name == "test.registry-demo"
    assert prog.params == {"n": 7}
    assert "test.registry-demo" in registered_programs()


def test_registry_rejects_duplicates():
    @program("test.registry-dup")
    def _build(b):
        b.halt()

    with pytest.raises(VosError):
        @program("test.registry-dup")
        def _build2(b):
            b.halt()


def test_registry_unknown_program():
    with pytest.raises(VosError):
        build_program("test.does-not-exist")


def test_registry_rebuild_is_deterministic():
    @program("test.registry-det")
    def _build(b, *, loops):
        with b.for_range("i", 0, imm(loops)):
            b.compute(imm(10))
        b.halt()

    p1 = build_program("test.registry-det", loops=4)
    p2 = build_program("test.registry-det", loops=4)
    assert len(p1.instrs) == len(p2.instrs)
    assert [i.kind for i in p1.instrs] == [i.kind for i in p2.instrs]
    assert [i.target for i in p1.instrs] == [i.target for i in p2.instrs]


def test_imm_wrapper():
    assert imm(5) == Imm(5)
    assert imm("literal").value == "literal"
