"""CLI front-end tests."""

import pytest

from repro.zapc import main, run_demo


def test_snapshot_demo(capsys):
    assert run_demo("snapshot", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "checkpoint: ok" in out
    assert "answer verified: True" in out


def test_migrate_demo(capsys):
    assert run_demo("migrate", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "restart: ok" in out


def test_recover_demo(capsys):
    assert run_demo("recover", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "checkpoint: ok" in out and "restart: ok" in out


def test_main_exit_codes(capsys):
    assert main(["snapshot", "--app", "CPI", "--nodes", "2", "--scale", "0.1"]) == 0


def test_unsupported_node_count_rejected():
    with pytest.raises(SystemExit):
        run_demo("snapshot", "BT/NAS", 2)
