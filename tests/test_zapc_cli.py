"""CLI front-end tests."""

import pytest

from repro.zapc import main, run_demo


def test_snapshot_demo(capsys):
    assert run_demo("snapshot", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "checkpoint: ok" in out
    assert "answer verified: True" in out


def test_migrate_demo(capsys):
    assert run_demo("migrate", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "restart: ok" in out


def test_recover_demo(capsys):
    assert run_demo("recover", "CPI", 2, scale=0.1) is True
    out = capsys.readouterr().out
    assert "checkpoint: ok" in out and "restart: ok" in out


def test_main_exit_codes(capsys):
    assert main(["snapshot", "--app", "CPI", "--nodes", "2", "--scale", "0.1"]) == 0


def test_unsupported_node_count_rejected():
    with pytest.raises(SystemExit):
        run_demo("snapshot", "BT/NAS", 2)


def test_snapshot_with_chrome_trace_and_metrics(tmp_path, capsys):
    from repro.obs.validate import CHECKPOINT_SPAN_NAMES, validate_file

    trace = tmp_path / "trace.json"
    assert run_demo("snapshot", "CPI", 2, scale=0.1, trace=str(trace),
                    trace_format="chrome", metrics=True) is True
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "phase timeline" in out
    assert "metrics" in out
    assert validate_file(str(trace), require=list(CHECKPOINT_SPAN_NAMES)) == []


def test_snapshot_with_jsonl_trace(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.jsonl"
    assert run_demo("snapshot", "CPI", 2, scale=0.1, trace=str(trace),
                    trace_format="jsonl") is True
    capsys.readouterr()
    lines = trace.read_text().splitlines()
    assert len(lines) > 10
    names = {json.loads(line)["name"] for line in lines}
    assert "manager.checkpoint" in names and "agent.phase.suspend" in names


def test_main_trace_flags(tmp_path, capsys):
    trace = tmp_path / "out.json"
    assert main(["recover", "--app", "CPI", "--nodes", "2", "--scale", "0.1",
                 "--trace", str(trace), "--trace-format", "chrome",
                 "--metrics"]) == 0
    capsys.readouterr()
    assert trace.exists() and trace.stat().st_size > 0
