"""Harness and figures-CLI tests (small scales for speed)."""

import pytest

from repro.harness import (
    APPS,
    build_cluster,
    layout,
    placement,
    run_fig5_cell,
    run_fig5_row,
    run_fig6_cell,
    run_fig6b_cell,
)

SCALE = 0.05


class TestLayout:
    def test_uniprocessor_configs(self):
        assert layout(1) == (1, 1)
        assert layout(8) == (8, 1)
        assert layout(9) == (9, 1)

    def test_sixteen_is_eight_dual_blades(self):
        assert layout(16) == (8, 2)

    def test_unsupported_counts_rejected(self):
        with pytest.raises(ValueError):
            layout(32)

    def test_placement_round_robins_blades(self):
        assert placement(4) == [0, 1, 2, 3]
        assert placement(16) == [i % 8 for i in range(16)]

    def test_build_cluster_shapes(self):
        c = build_cluster(16)
        assert len(c.nodes) == 8
        assert all(n.kernel.ncpus == 2 for n in c.nodes)


class TestAppSpecs:
    def test_all_four_apps_registered(self):
        assert set(APPS) == {"CPI", "BT/NAS", "PETSc", "POV-Ray"}

    def test_bt_requires_square_counts(self):
        assert APPS["BT/NAS"].node_counts == (1, 4, 9, 16)

    def test_work_estimates_scale_down_with_nodes(self):
        for spec in APPS.values():
            t1 = spec.work_seconds(spec.node_counts[0], 1.0)
            tn = spec.work_seconds(spec.node_counts[-1], 1.0)
            assert tn < t1


def test_fig5_cell_runs_and_verifies():
    t = run_fig5_cell("CPI", 2, "zapc", scale=SCALE)
    assert t > 0


def test_fig5_rejects_unknown_system():
    with pytest.raises(ValueError):
        run_fig5_cell("CPI", 2, "docker", scale=SCALE)


def test_fig5_row_base_not_slower():
    cell = run_fig5_row("CPI", 2, scale=SCALE)
    assert cell.zapc_time >= cell.base_time
    assert cell.overhead_pct < 1.0


def test_fig6_cell_collects_checkpoints():
    cell = run_fig6_cell("CPI", 2, scale=0.3, n_checkpoints=3)
    assert 1 <= len(cell.checkpoint_times) <= 3
    assert all(t > 0 for t in cell.checkpoint_times)
    assert cell.mean_image_size > 1_000_000


def test_fig6b_cell_restarts_midrun():
    cell = run_fig6b_cell("CPI", 2, scale=0.3)
    assert cell.restart_time is not None and cell.restart_time > 0
    assert cell.network_restart_time > 0


def test_figures_cli_smoke(capsys):
    from repro.figures import main

    main(["--fig", "5", "--app", "CPI", "--scale", "0.02"])
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "CPI" in out
