"""Unit tests for the discrete-event engine and host tasks."""

import pytest

from repro.errors import DeadlockError, SimError
from repro.sim import Future, all_of


def test_events_run_in_time_order(engine):
    order = []
    engine.schedule(2.0, order.append, "b")
    engine.schedule(1.0, order.append, "a")
    engine.schedule(3.0, order.append, "c")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 3.0


def test_equal_timestamps_run_fifo(engine):
    order = []
    for tag in ("x", "y", "z"):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == ["x", "y", "z"]


def test_cancelled_event_does_not_run(engine):
    order = []
    h = engine.schedule(1.0, order.append, "dead")
    engine.schedule(2.0, order.append, "alive")
    h.cancel()
    engine.run()
    assert order == ["alive"]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimError):
        engine.schedule_at(1.0, lambda: None)


def test_run_until_pauses_clock(engine):
    fired = []
    engine.schedule(10.0, fired.append, 1)
    t = engine.run(until=4.0)
    assert t == 4.0 and fired == []
    engine.run()
    assert fired == [1] and engine.now == 10.0


def test_stop_inside_event(engine):
    order = []

    def first():
        order.append("first")
        engine.stop()

    engine.schedule(1.0, first)
    engine.schedule(2.0, order.append, "second")
    engine.run()
    assert order == ["first"]
    engine.run()
    assert order == ["first", "second"]


def test_max_events_guard(engine):
    def rearm():
        engine.schedule(1.0, rearm)

    engine.schedule(0.0, rearm)
    with pytest.raises(SimError):
        engine.run(max_events=50)


def test_task_sleep_and_return(engine):
    def worker():
        yield engine.sleep(1.0)
        yield engine.sleep(2.0)
        return engine.now

    result = engine.run_task(worker())
    assert result == 3.0


def test_task_waits_on_future(engine):
    fut = Future("data")
    engine.schedule(5.0, fut.set_result, 42)

    def consumer():
        value = yield fut
        return (engine.now, value)

    assert engine.run_task(consumer()) == (5.0, 42)


def test_task_exception_propagates(engine):
    def boom():
        yield engine.sleep(1.0)
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError, match="kaput"):
        engine.run_task(boom())


def test_future_exception_thrown_into_task(engine):
    fut = Future("err")
    engine.schedule(1.0, fut.set_exception, ValueError("bad"))

    def consumer():
        try:
            yield fut
        except ValueError:
            return "caught"
        return "missed"

    assert engine.run_task(consumer()) == "caught"


def test_task_cancel_runs_finally(engine):
    cleaned = []

    def worker():
        try:
            yield engine.sleep(100.0)
        finally:
            cleaned.append(True)

    task = engine.spawn(worker(), "w")
    engine.schedule(1.0, task.cancel)
    engine.run()
    assert cleaned == [True]
    assert task.finished.result is None


def test_all_of_collects_in_order(engine):
    futs = [Future(str(i)) for i in range(3)]
    engine.schedule(3.0, futs[0].set_result, "a")
    engine.schedule(1.0, futs[1].set_result, "b")
    engine.schedule(2.0, futs[2].set_result, "c")

    def waiter():
        results = yield all_of(futs)
        return results

    assert engine.run_task(waiter()) == ["a", "b", "c"]


def test_all_of_empty_resolves_immediately(engine):
    combined = all_of([])
    assert combined.done and combined.result == []


def test_all_of_propagates_first_exception(engine):
    futs = [Future("ok"), Future("bad")]
    engine.schedule(1.0, futs[1].set_exception, RuntimeError("x"))

    def waiter():
        yield all_of(futs)

    with pytest.raises(RuntimeError):
        engine.run_task(waiter())


def test_timeout_expires(engine):
    fut = Future("slow")

    def waiter():
        ok, value = yield engine.timeout(fut, 2.0)
        return ok, value, engine.now

    assert engine.run_task(waiter()) == (False, None, 2.0)


def test_timeout_beaten_by_result(engine):
    fut = Future("fast")
    engine.schedule(1.0, fut.set_result, "hi")

    def waiter():
        ok, value = yield engine.timeout(fut, 5.0)
        return ok, value

    assert engine.run_task(waiter()) == (True, "hi")


def test_future_double_resolve_rejected():
    fut = Future()
    fut.set_result(1)
    with pytest.raises(SimError):
        fut.set_result(2)


def test_deadlock_detection(engine):
    engine.blocked_probes.append(lambda: ["proc-1 blocked in recv"])
    with pytest.raises(DeadlockError, match="proc-1"):
        engine.run(check_deadlock=True)


def test_task_yield_none_is_cooperative(engine):
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    engine.spawn(a(), "a")
    engine.spawn(b(), "b")
    engine.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_task_yielding_garbage_fails(engine):
    def bad():
        yield 42

    with pytest.raises(SimError, match="expected Future"):
        engine.run_task(bad())
