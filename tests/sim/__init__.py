"""Test package."""
