"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import Clock, MICROSECONDS, MILLISECONDS, SECONDS


def test_clock_starts_at_zero():
    assert Clock().now == 0.0


def test_clock_advances_forward():
    c = Clock()
    c.advance_to(1.5)
    assert c.now == 1.5
    c.advance_to(1.5)  # equal time allowed
    assert c.now == 1.5


def test_clock_rejects_backwards_motion():
    c = Clock()
    c.advance_to(2.0)
    with pytest.raises(ValueError):
        c.advance_to(1.0)


def test_time_unit_constants():
    assert SECONDS == 1.0
    assert MILLISECONDS == pytest.approx(1e-3)
    assert MICROSECONDS == pytest.approx(1e-6)
