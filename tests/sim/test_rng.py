"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngHub


def test_same_seed_same_stream_same_draws():
    a = RngHub(seed=7).stream("loss")
    b = RngHub(seed=7).stream("loss")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_by_name():
    hub = RngHub(seed=7)
    x = hub.stream("alpha").random()
    y = hub.stream("beta").random()
    assert x != y


def test_new_stream_does_not_perturb_existing():
    hub1 = RngHub(seed=7)
    s1 = hub1.stream("workload")
    first = s1.random()
    hub2 = RngHub(seed=7)
    hub2.stream("packet-loss")  # extra stream created first
    s2 = hub2.stream("workload")
    assert s2.random() == first


def test_stream_identity_is_cached():
    hub = RngHub(seed=3)
    assert hub.stream("x") is hub.stream("x")


def test_reset_rederives_identically():
    hub = RngHub(seed=9)
    seq = [hub.stream("s").random() for _ in range(3)]
    hub.reset()
    assert [hub.stream("s").random() for _ in range(3)] == seq
