"""Test package."""
