"""Baseline tests: vanilla launches, peek incompleteness, libckpt limits."""

import math

import pytest

from repro.apps import cpi
from repro.baselines import (
    LibCkptRuntime,
    capture_socket_peek,
    deploy_peek_manager,
    emit_ckpt_point,
    launch_spmd_vanilla,
)
from repro.cluster import Cluster
from repro.core import migrate
from repro.core.netckpt import capture_socket
from repro.net import Fabric, NetStack, Segment
from repro.vos import DEAD, Kernel, build_program, imm, program


# ---------------------------------------------------------------------------
# vanilla
# ---------------------------------------------------------------------------


def test_vanilla_cpi_runs_without_pods():
    nprocs = 4
    cluster = Cluster.build(4, seed=8)
    handle = launch_spmd_vanilla(
        cluster, "apps.cpi", nprocs,
        lambda rank, ips: cpi.params_of(rank, ips, nprocs=nprocs,
                                        intervals=100_000, cycles_per_interval=2_000),
        name="vcpi")
    cluster.engine.run(until=300.0)
    assert handle.ok(cluster)
    (pi_val,) = [v for v in handle.results(cluster, "pi") if v is not None]
    assert pi_val == pytest.approx(math.pi, abs=1e-8)
    # really no pods were created
    assert cluster.pods() == {}


def test_vanilla_is_faster_or_equal_to_pods():
    """Pods charge interposition cycles; vanilla must not be slower."""
    from repro.middleware import launch_spmd

    times = {}
    for mode in ("vanilla", "pods"):
        cluster = Cluster.build(2, seed=8)
        kw = dict(intervals=100_000, cycles_per_interval=2_000)
        if mode == "vanilla":
            handle = launch_spmd_vanilla(
                cluster, "apps.cpi", 2,
                lambda rank, ips: cpi.params_of(rank, ips, nprocs=2, **kw),
                name="a")
        else:
            handle = launch_spmd(
                cluster, "apps.cpi", 2,
                lambda rank, vips: cpi.params_of(rank, vips, nprocs=2, **kw),
                name="a")
        cluster.engine.run(until=300.0)
        assert handle.ok(cluster)
        # completion time = when the last daemon died; approximate via
        # engine.now after the run drains
        times[mode] = cluster.engine.now
    assert times["vanilla"] <= times["pods"]


# ---------------------------------------------------------------------------
# peek capture (unit level)
# ---------------------------------------------------------------------------


def _connected_socket(engine):
    kernel = Kernel(engine, "n")
    stack = NetStack(kernel, Fabric(engine), "10.0.0.1")
    sock = stack.create_socket("tcp")
    from repro.net.addr import Endpoint
    sock.local = Endpoint("10.0.0.1", 1000)
    stack.register_established(sock, Endpoint("10.0.0.2", 2000))
    sock.conn.state = "established"
    return stack, sock


def test_peek_misses_backlog_data(engine):
    """The delivered-but-unprocessed backlog segment: ZapC's lock-taking
    read sees it, the peek does not."""
    stack, sock = _connected_socket(engine)
    base = sock.conn.pcb.rcv_nxt
    sock.conn.recv_q.extend(b"processed")
    sock.conn.backlog.append(Segment(seq=base, flags=frozenset({"ACK"}), data=b"+backlogged"))

    peek_rec = capture_socket_peek(stack, sock)
    assert peek_rec["recv_data"] == b"processed"  # backlog lost

    # rebuild the same state and capture completely
    stack2, sock2 = _connected_socket(engine)
    base2 = sock2.conn.pcb.rcv_nxt
    sock2.conn.recv_q.extend(b"processed")
    sock2.conn.backlog.append(Segment(seq=base2, flags=frozenset({"ACK"}), data=b"+backlogged"))
    full_rec = capture_socket(stack2, sock2)
    assert full_rec["recv_data"] == b"processed+backlogged"


def test_peek_misses_oob_data(engine):
    stack, sock = _connected_socket(engine)
    sock.conn.oob.extend(b"!")
    rec = capture_socket_peek(stack, sock)
    assert rec["oob_data"] == b""
    stack2, sock2 = _connected_socket(engine)
    sock2.conn.oob.extend(b"!")
    assert capture_socket(stack2, sock2)["oob_data"] == b"!"


# ---------------------------------------------------------------------------
# peek capture (end to end): urgent data lost across migration
# ---------------------------------------------------------------------------


def test_peek_based_migration_loses_urgent_data():
    """Same scenario as the ZapC OOB test, but with PeekAgents: the
    receiver never gets the urgent byte (it blocks until the run cap)."""
    import importlib
    testapps = importlib.import_module("tests.core.test_ckpt_state")  # noqa: F401 registers programs

    cluster = Cluster.build(4, seed=11)
    manager = deploy_peek_manager(cluster)
    p_rx = cluster.create_pod(cluster.node(0), "orx")
    cluster.create_pod(cluster.node(1), "otx")
    rx = cluster.node(0).kernel.spawn(
        build_program("testapp.oob-receiver", port=9300), pod_id="orx")
    cluster.node(1).kernel.spawn(
        build_program("testapp.oob-sender", peer=p_rx.vip, port=9300), pod_id="otx")
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "orx", "blade2"),
            ("blade1", "otx", "blade3"),
        ])

    cluster.engine.schedule(1.0, kick)
    cluster.engine.run(until=120.0)
    assert holder["mig"].finished.result.ok  # the *protocol* succeeds...
    # ...but the application's data is silently corrupted: the restored
    # receiver finds no urgent byte where ZapC delivers b"!"
    from repro.vos.syscalls import Errno
    restored = [p for n in cluster.nodes for p in n.kernel.procs.values()
                if p.program.name == "testapp.oob-receiver" and p.exit_code == 0
                and "urgent" in p.regs]
    assert restored, "restored receiver should have completed"
    assert isinstance(restored[0].regs["urgent"], Errno)  # the lost data


# ---------------------------------------------------------------------------
# library-level checkpointing
# ---------------------------------------------------------------------------


@program("baseline.lib-app")
def _lib_app(b, *, phases, phase_cycles):
    b.mov("progress", imm(0))
    with b.for_range("i", imm(0), imm(phases)):
        b.compute(imm(phase_cycles))
        b.op("progress", lambda p: p + 1, "progress")
        emit_ckpt_point(b)
    b.halt(imm(0))


def test_libckpt_waits_for_safe_points():
    """Request→capture latency depends on the application phase length —
    the transparency cost ZapC avoids."""
    cluster = Cluster.build(2, seed=4)
    runtime = LibCkptRuntime(cluster)
    phase_cycles = int(0.5 * cluster.node(0).kernel.hz)  # 0.5 s phases
    procs = []
    for i in range(2):
        proc = cluster.node(i).kernel.spawn(
            build_program("baseline.lib-app", phases=6, phase_cycles=phase_cycles))
        runtime.watch(proc, cluster.node(i).kernel)
        procs.append(proc)
    holder = {}

    def kick():
        holder["fut"] = runtime.request()

    cluster.engine.schedule(0.6, kick)  # mid-phase: must wait ~0.4s
    cluster.engine.run(until=60.0)
    ckpt = holder["fut"].result
    assert ckpt.latency > 0.2  # waited for the phase boundary
    assert len(ckpt.states) == 2
    assert all(p.state == DEAD and p.exit_code == 0 for p in procs)


def test_libckpt_restart_does_not_preserve_pids():
    """The §2 restriction: restored processes get fresh identifiers."""
    cluster = Cluster.build(1, seed=4)
    runtime = LibCkptRuntime(cluster)
    kernel = cluster.node(0).kernel
    proc = kernel.spawn(build_program("baseline.lib-app", phases=3,
                                      phase_cycles=1_000_000))
    runtime.watch(proc, kernel)
    holder = {}
    cluster.engine.schedule(0.0001, lambda: holder.update(fut=runtime.request()))
    cluster.engine.run(until=30.0)
    ckpt = holder["fut"].result
    restored = runtime.restart_states(ckpt, kernel)
    assert len(restored) == 1
    assert restored[0].pid != proc.pid  # identifier NOT preserved
    cluster.engine.run(until=60.0)
    assert restored[0].state == DEAD and restored[0].exit_code == 0
    # state did round-trip at the application level
    assert restored[0].regs["progress"] >= 1
