"""Test package."""
