"""The paper's headline capability, end to end: transparent coordinated
checkpoint-restart of unmodified MPI and PVM applications, with answers
verified against sequential references."""

import math

import pytest

from repro.apps import btnas, cpi, petsc_bratu, povray
from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.middleware import checkpoint_targets, launch_master_worker, launch_spmd


def _value(handle, cluster, reg):
    vals = [v for v in handle.results(cluster, reg) if v is not None]
    assert len(vals) == 1, f"expected one {reg}, got {vals}"
    return vals[0]


def test_cpi_snapshot_midrun():
    nprocs = 4
    cluster = Cluster.build(4, seed=33)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.cpi", nprocs,
        lambda rank, vips: cpi.params_of(rank, vips, nprocs=nprocs,
                                         intervals=200_000, cycles_per_interval=40_000),
        name="cpi")
    holder = {}

    def kick():
        holder["t"] = manager.checkpoint(checkpoint_targets(handle, cluster))

    cluster.engine.schedule(0.3, kick)
    cluster.engine.run(until=600.0)
    assert holder["t"].finished.result.ok, holder["t"].finished.result.errors
    assert handle.ok(cluster)
    assert _value(handle, cluster, "pi") == pytest.approx(math.pi, abs=1e-9)


def test_btnas_migrates_midrun():
    nprocs = 4
    cluster = Cluster.build(8, seed=33)
    manager = Manager.deploy(cluster)
    kw = dict(grid=24, iters=20, cycles_per_point=60_000, face_pad=8192)
    handle = launch_spmd(
        cluster, "apps.btnas", nprocs,
        lambda rank, vips: btnas.params_of(rank, vips, nprocs=nprocs, **kw),
        name="bt")
    holder = {}

    def kick():
        moves = [(cluster.node_of_pod(pid).name, pid, f"blade{4 + i}")
                 for i, pid in enumerate(handle.pod_ids)]
        holder["t"] = migrate(manager, moves)

    cluster.engine.schedule(0.5, kick)
    cluster.engine.run(until=600.0)
    mig = holder["t"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert handle.ok(cluster)
    ref_sum, ref_res = btnas.reference_btnas(G=kw["grid"], iters=kw["iters"])
    assert _value(handle, cluster, "checksum") == pytest.approx(ref_sum, rel=1e-12)
    assert handle.results(cluster, "residuals")[0] == pytest.approx(ref_res, rel=1e-9)


def test_bratu_survives_two_checkpoints_and_migration():
    nprocs = 4
    cluster = Cluster.build(8, seed=33)
    manager = Manager.deploy(cluster)
    kw = dict(grid=24, outer=6, sweeps=8, cycles_per_point=40_000)
    handle = launch_spmd(
        cluster, "apps.petsc_bratu", nprocs,
        lambda rank, vips: petsc_bratu.params_of(rank, vips, nprocs=nprocs, **kw),
        name="bratu")
    holder = {}

    def snap():
        holder["snap"] = manager.checkpoint(checkpoint_targets(handle, cluster))

    def move():
        moves = [(cluster.node_of_pod(pid).name, pid, f"blade{4 + i}")
                 for i, pid in enumerate(handle.pod_ids)]
        holder["mig"] = migrate(manager, moves)

    cluster.engine.schedule(0.2, snap)
    cluster.engine.schedule(1.0, move)
    cluster.engine.run(until=600.0)
    assert holder["snap"].finished.result.ok
    assert holder["mig"].finished.result.ok
    assert handle.ok(cluster)
    ref_sum, ref_norms = petsc_bratu.reference_bratu(
        G=kw["grid"], outer=kw["outer"], sweeps=kw["sweeps"])
    assert _value(handle, cluster, "checksum") == pytest.approx(ref_sum, rel=1e-12)
    assert handle.results(cluster, "norms")[0] == pytest.approx(ref_norms, rel=1e-9)


def test_povray_migrates_midrun():
    nworkers = 3
    cluster = Cluster.build(8, seed=33)
    manager = Manager.deploy(cluster)
    kw = dict(width=96, height=64, tile=32)
    handle = launch_master_worker(
        cluster, "apps.povray_master", "apps.povray_worker", nworkers,
        povray.master_params(nworkers=nworkers, **kw),
        lambda task_id, master_vip: povray.worker_params(
            task_id, master_vip, width=kw["width"], height=kw["height"],
            cycles_per_pixel=600_000),
        name="pov")
    holder = {}

    def kick():
        moves = [(cluster.node_of_pod(pid).name, pid, f"blade{4 + i}")
                 for i, pid in enumerate(handle.pod_ids)]
        holder["t"] = migrate(manager, moves)

    cluster.engine.schedule(0.4, kick)
    cluster.engine.run(until=600.0)
    mig = holder["t"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert handle.ok(cluster)
    image = None
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "apps.povray_master" and proc.exit_code == 0:
                image = proc.regs["image"]
    assert image == povray.reference_image(**kw)


def test_cpi_on_dual_cpu_nodes_two_pods_each():
    """The 16-node configuration idea at test scale: 4 endpoints on 2
    dual-CPU blades (one pod per CPU), checkpointed mid-run."""
    nprocs = 4
    cluster = Cluster.build(2, ncpus=2, seed=33)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.cpi", nprocs,
        lambda rank, vips: cpi.params_of(rank, vips, nprocs=nprocs,
                                         intervals=200_000, cycles_per_interval=40_000),
        name="cpi2", nodes=[0, 0, 1, 1])
    holder = {}

    def kick():
        holder["t"] = manager.checkpoint(checkpoint_targets(handle, cluster))

    cluster.engine.schedule(0.2, kick)
    cluster.engine.run(until=600.0)
    assert holder["t"].finished.result.ok
    assert handle.ok(cluster)
    assert _value(handle, cluster, "pi") == pytest.approx(math.pi, abs=1e-9)
