"""Robustness: checkpoint-restart under degraded conditions."""


from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.vos import DEAD

from ..core.testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 400


def test_migration_over_lossy_fabric():
    """20% packet loss during checkpoint streaming, reconnection and
    queue re-send: reliability must come from the protocols, and the
    answers must still be exact."""
    cluster = Cluster.build(4, seed=91)
    cluster.fabric.loss_rate = 0.2
    manager = Manager.deploy(cluster)
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ], deadline=600.0)

    cluster.engine.schedule(0.3, kick)
    cluster.engine.run(until=1200.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert cluster.fabric.dropped_packets > 0  # loss really happened
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_checkpoint_during_network_congestion():
    """Snapshot while a bulk transfer saturates the fabric between the
    same blades: the checkpoint's own control traffic competes but the
    operation still completes sub-second-ish and correctly."""
    cluster = Cluster.build(4, seed=92)
    manager = Manager.deploy(cluster)
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)

    # background bulk noise between blades 2 and 3
    from repro.scenarios import launch_queue_pair
    launch_queue_pair(cluster, chunks=200, chunk_bytes=8192,
                      rx_node=2, tx_node=3, name="noise", port=9999)

    holder = {}
    cluster.engine.schedule(0.3, lambda: holder.update(c=manager.checkpoint(
        [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])))
    cluster.engine.run(until=600.0)
    result = holder["c"].finished.result
    assert result.ok
    assert result.duration < 2.0
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_back_to_back_migrations():
    """Migrate A→B then B→A while running; state survives both hops."""
    cluster = Cluster.build(4, seed=93)
    manager = Manager.deploy(cluster)
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def hop1():
        holder["m1"] = migrate(manager, [
            ("blade0", "pp-srv", "blade2"),
            ("blade1", "pp-cli", "blade3"),
        ])

    def hop2():
        if not holder["m1"].finished.done or not holder["m1"].finished.result.ok:
            return
        holder["m2"] = migrate(manager, [
            ("blade2", "pp-srv", "blade0"),
            ("blade3", "pp-cli", "blade1"),
        ])

    cluster.engine.schedule(0.2, hop1)
    cluster.engine.schedule(1.5, hop2)
    cluster.engine.run(until=600.0)
    assert holder["m1"].finished.result.ok
    assert holder["m2"].finished.result.ok
    assert "pp-srv" in cluster.node(0).kernel.pods
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_concurrent_checkpoints_of_disjoint_applications():
    """Two independent applications checkpointed at the same instant by
    the same Manager: operations must not interfere."""
    cluster = Cluster.build(4, seed=94)
    manager = Manager.deploy(cluster)
    s1, c1 = launch_pingpong(cluster, rounds=ROUNDS, port=9100,
                             server_node=0, client_node=1,
                             server_pod="app1-srv", client_pod="app1-cli")
    s2, c2 = launch_pingpong(cluster, rounds=ROUNDS, port=9101,
                             server_node=2, client_node=3,
                             server_pod="app2-srv", client_pod="app2-cli")
    holder = {}

    def kick():
        holder["a"] = manager.checkpoint(
            [("blade0", "app1-srv", "mem"), ("blade1", "app1-cli", "mem")])
        holder["b"] = manager.checkpoint(
            [("blade2", "app2-srv", "mem"), ("blade3", "app2-cli", "mem")])

    cluster.engine.schedule(0.25, kick)
    cluster.engine.run(until=600.0)
    assert holder["a"].finished.result.ok
    assert holder["b"].finished.result.ok
    for proc in (s1, c1, s2, c2):
        assert proc.state == DEAD and proc.exit_code == 0
    # both apps still correct
    sums1 = (c1.regs["sum"], s1.regs["sum"])
    sums2 = (c2.regs["sum"], s2.regs["sum"])
    assert sums1 == expected_sums(ROUNDS)
    assert sums2 == expected_sums(ROUNDS)


def test_snapshot_of_quiescent_application():
    """Checkpointing pods whose processes already exited must succeed
    (empty images) rather than wedging the Manager."""
    cluster = Cluster.build(2, seed=95)
    manager = Manager.deploy(cluster)
    srv, cli = launch_pingpong(cluster, rounds=5)
    holder = {}

    def late_kick():
        assert srv.state == DEAD and cli.state == DEAD
        holder["c"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")])

    cluster.engine.schedule(30.0, late_kick)
    cluster.engine.run(until=120.0)
    result = holder["c"].finished.result
    assert result.ok
    assert result.max_stat("sockets") == 0
