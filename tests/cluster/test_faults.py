"""The primitive fault injectors: isolate, heal, crash.

The isolate → abort → heal → succeed cycle is the fault-resilience
story in miniature: a partitioned blade makes the coordinated
checkpoint abort cleanly (application untouched), and once the link
heals the very next checkpoint goes through.
"""

import pytest

from repro.cluster import Cluster, crash_node, heal_node, isolate_node
from repro.core import Manager
from repro.vos import DEAD

from ..core.testapps import expected_sums, final_sums, launch_pingpong

ROUNDS = 800


@pytest.fixture
def world():
    cluster = Cluster.build(4, seed=21)
    manager = Manager.deploy(cluster)
    return cluster, manager


def test_isolate_abort_heal_then_checkpoint_succeeds(world):
    """Checkpoint during a partition aborts cleanly; after heal_node the
    same request succeeds, and the application never notices."""
    cluster, manager = world
    srv, cli = launch_pingpong(cluster, rounds=ROUNDS)
    targets = [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")]
    holder = {}

    def part_and_ckpt():
        isolate_node(cluster, cluster.node(1))
        holder["first"] = manager.checkpoint(targets, deadline=3.0)

    def heal_and_retry():
        heal_node(cluster, cluster.node(1))
        holder["second"] = manager.checkpoint(targets, deadline=30.0)

    cluster.engine.schedule(0.1, part_and_ckpt)
    cluster.engine.schedule(30.0, heal_and_retry)
    cluster.engine.run(until=400.0)

    first = holder["first"].finished.result
    assert not first.ok
    assert first.status in ("timeout", "failed")
    second = holder["second"].finished.result
    assert second.ok, second.errors
    assert manager.last_checkpoint is second
    # the application survived both the partition and the retry
    assert srv.state == DEAD and cli.state == DEAD
    assert final_sums(cluster) == expected_sums(ROUNDS)


def test_isolate_is_symmetric_and_heal_restores(world):
    cluster, _ = world
    a, b = cluster.node(0), cluster.node(2)
    isolate_node(cluster, a)
    assert cluster.fabric.is_partitioned(a.ip, b.ip)
    assert cluster.fabric.is_partitioned(b.ip, a.ip)
    heal_node(cluster, a)
    assert not cluster.fabric.is_partitioned(a.ip, b.ip)
    assert not cluster.fabric.is_partitioned(b.ip, a.ip)


def test_crash_node_reaps_its_host_tasks(world):
    """Fail-stop means the node's Agent daemon and sessions die with it —
    nothing named ``...@<node>`` survives in the task registry."""
    cluster, _ = world
    victim = cluster.node(3)
    cluster.engine.run(until=1.0)  # let the agents boot
    assert any(t.name.endswith("@blade3") for t in cluster.engine.live_tasks())
    crash_node(cluster, victim)
    cluster.engine.run(until=2.0)
    assert victim.crashed
    assert not any(t.name.endswith("@blade3") for t in cluster.engine.live_tasks())
    assert victim.kernel.pods == {}
