"""Test package."""
