"""Cluster construction and fault-injection tests."""

import pytest

from repro.cluster import Cluster, NodeSpec, crash_node, heal_node, isolate_node
from repro.errors import PodError
from repro.vos import DEAD, imm, program


@program("test.cluster-sleeper")
def _sleeper(b, *, seconds=60.0):
    b.syscall(None, "sleep", imm(seconds))
    b.halt(imm(0))


def _prog(**params):
    from repro.vos import build_program
    return build_program("test.cluster-sleeper", **params)


def test_build_assigns_distinct_addresses():
    cluster = Cluster.build(4)
    ips = [n.ip for n in cluster.nodes]
    assert len(set(ips)) == 4
    assert cluster.node(2).name == "blade2"
    assert cluster.node_by_name("blade3") is cluster.node(3)


def test_unknown_node_name_raises():
    cluster = Cluster.build(1)
    with pytest.raises(PodError):
        cluster.node_by_name("bladeX")


def test_dual_cpu_spec():
    cluster = Cluster.build(2, ncpus=2)
    assert all(n.kernel.ncpus == 2 for n in cluster.nodes)


def test_custom_spec_applies():
    spec = NodeSpec(ncpus=4, memcpy_bandwidth=1e9)
    cluster = Cluster.build(1, spec=spec)
    assert cluster.node(0).serialize_delay(1e9) == pytest.approx(1.0)


def test_san_is_shared_across_nodes():
    cluster = Cluster.build(2)
    fs_a, inner_a = cluster.node(0).kernel.vfs.resolve("/san/x")
    fs_b, inner_b = cluster.node(1).kernel.vfs.resolve("/san/x")
    assert fs_a is fs_b is cluster.san
    assert inner_a == inner_b == "/x"


def test_pod_vips_are_unique():
    cluster = Cluster.build(2)
    p0 = cluster.create_pod(cluster.node(0), "a")
    p1 = cluster.create_pod(cluster.node(0), "b")
    p2 = cluster.create_pod(cluster.node(1), "c")
    assert len({p0.vip, p1.vip, p2.vip}) == 3


def test_crash_node_kills_processes_and_pods():
    cluster = Cluster.build(2)
    node = cluster.node(0)
    cluster.create_pod(node, "p0")
    proc = node.kernel.spawn(_prog(), pod_id="p0")
    crash_node(cluster, node)
    assert node.crashed
    assert proc.state == DEAD
    with pytest.raises(PodError):
        cluster.find_pod("p0")


def test_isolate_and_heal_node():
    cluster = Cluster.build(3)
    isolate_node(cluster, cluster.node(0))
    assert (cluster.node(0).ip, cluster.node(1).ip) in cluster.fabric._partitions
    heal_node(cluster, cluster.node(0))
    assert (cluster.node(0).ip, cluster.node(1).ip) not in cluster.fabric._partitions
