"""Application correctness: each workload reproduces its sequential
reference across rank counts (small problem sizes for test speed)."""

import math

import numpy as np
import pytest

from repro.apps import btnas, cpi, petsc_bratu, povray
from repro.cluster import Cluster
from repro.middleware import launch_master_worker, launch_spmd


def _run(cluster, handle, until=600.0):
    cluster.engine.run(until=until)
    assert handle.ok(cluster), "application did not finish cleanly"


# ---------------------------------------------------------------------------
# CPI
# ---------------------------------------------------------------------------

CPI_KW = dict(intervals=200_000, cycles_per_interval=2_000)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_cpi_computes_pi(nprocs):
    cluster = Cluster.build(max(nprocs, 2), seed=17)
    handle = launch_spmd(
        cluster, "apps.cpi", nprocs,
        lambda rank, vips: cpi.params_of(rank, vips, nprocs=nprocs, **CPI_KW),
        name="cpi")
    _run(cluster, handle)
    (pi_val,) = [v for v in handle.results(cluster, "pi") if v is not None]
    assert pi_val == pytest.approx(math.pi, abs=1e-9)


def test_cpi_matches_across_world_sizes():
    """The reduction must give the same sum regardless of decomposition."""
    values = []
    for nprocs in (1, 4):
        cluster = Cluster.build(max(nprocs, 2), seed=17)
        handle = launch_spmd(
            cluster, "apps.cpi", nprocs,
            lambda rank, vips: cpi.params_of(rank, vips, nprocs=nprocs, **CPI_KW),
            name="cpi")
        _run(cluster, handle)
        values.append([v for v in handle.results(cluster, "pi") if v is not None][0])
    assert values[0] == pytest.approx(values[1], rel=1e-12)


# ---------------------------------------------------------------------------
# BT/NAS
# ---------------------------------------------------------------------------

BT_KW = dict(grid=24, iters=8, cycles_per_point=20_000, face_pad=4096)


@pytest.mark.parametrize("nprocs", [1, 4, 9])
def test_btnas_matches_reference(nprocs):
    cluster = Cluster.build(max(nprocs, 2), seed=17)
    handle = launch_spmd(
        cluster, "apps.btnas", nprocs,
        lambda rank, vips: btnas.params_of(rank, vips, nprocs=nprocs, **BT_KW),
        name="bt")
    _run(cluster, handle)
    ref_sum, ref_res = btnas.reference_btnas(G=BT_KW["grid"], iters=BT_KW["iters"])
    (checksum,) = [v for v in handle.results(cluster, "checksum") if v is not None]
    assert checksum == pytest.approx(ref_sum, rel=1e-12)
    residuals = handle.results(cluster, "residuals")[0]
    assert residuals == pytest.approx(ref_res, rel=1e-9)


def test_btnas_rejects_non_square_world():
    with pytest.raises(ValueError):
        btnas.params_of(0, ["v"], nprocs=3)
        from repro.vos import build_program
        build_program("apps.btnas", **btnas.params_of(0, ["v"], nprocs=3))
    from repro.vos import build_program
    with pytest.raises(ValueError):
        build_program("apps.btnas", **btnas.params_of(0, ["v", "v2", "v3"], nprocs=3, **BT_KW))


# ---------------------------------------------------------------------------
# PETSc Bratu
# ---------------------------------------------------------------------------

BRATU_KW = dict(grid=24, outer=4, sweeps=6, cycles_per_point=10_000)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_bratu_matches_reference(nprocs):
    cluster = Cluster.build(max(nprocs, 2), seed=17)
    handle = launch_spmd(
        cluster, "apps.petsc_bratu", nprocs,
        lambda rank, vips: petsc_bratu.params_of(rank, vips, nprocs=nprocs, **BRATU_KW),
        name="bratu")
    _run(cluster, handle)
    ref_sum, ref_norms = petsc_bratu.reference_bratu(
        G=BRATU_KW["grid"], outer=BRATU_KW["outer"], sweeps=BRATU_KW["sweeps"])
    (checksum,) = [v for v in handle.results(cluster, "checksum") if v is not None]
    assert checksum == pytest.approx(ref_sum, rel=1e-12)
    norms = handle.results(cluster, "norms")[0]
    assert norms == pytest.approx(ref_norms, rel=1e-9)


def test_bratu_solution_is_nontrivial():
    ref_sum, norms = petsc_bratu.reference_bratu(G=24, outer=4, sweeps=6)
    assert ref_sum > 0  # e^u forcing pushes u positive
    assert norms[0] > norms[-1]  # Picard iteration actually converges


# ---------------------------------------------------------------------------
# POV-Ray
# ---------------------------------------------------------------------------

POV_KW = dict(width=96, height=64, tile=32)


@pytest.mark.parametrize("nworkers", [1, 3, 7])
def test_povray_renders_reference_image(nworkers):
    cluster = Cluster.build(max(nworkers + 1, 2), seed=17)
    handle = launch_master_worker(
        cluster, "apps.povray_master", "apps.povray_worker", nworkers,
        povray.master_params(nworkers=nworkers, **POV_KW),
        lambda task_id, master_vip: povray.worker_params(
            task_id, master_vip, width=POV_KW["width"], height=POV_KW["height"],
            cycles_per_pixel=50_000),
        name="pov")
    _run(cluster, handle)
    masters = [p for p in handle.rank_procs(cluster)]  # workers only
    # find the master by program name
    image = None
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "apps.povray_master" and proc.exit_code == 0:
                image = proc.regs["image"]
    assert image == povray.reference_image(**POV_KW)


def test_povray_dynamic_assignment_balances():
    """With varying tile complexity every worker gets some work."""
    nworkers = 3
    cluster = Cluster.build(nworkers + 1, seed=17)
    handle = launch_master_worker(
        cluster, "apps.povray_master", "apps.povray_worker", nworkers,
        povray.master_params(nworkers=nworkers, **POV_KW),
        lambda task_id, master_vip: povray.worker_params(
            task_id, master_vip, width=POV_KW["width"], height=POV_KW["height"],
            cycles_per_pixel=50_000),
        name="pov2")
    _run(cluster, handle)
    rendered = handle.results(cluster, "rendered")
    assert sum(rendered) == len(povray.make_tiles(**POV_KW))
    assert all(n > 0 for n in rendered)


def test_tile_complexity_varies():
    tiles = povray.make_tiles(256, 192, 64)
    cx = [povray.tile_complexity(t, 256, 192) for t in tiles]
    assert max(cx) > 1.5 * min(cx)
