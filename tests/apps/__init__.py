"""Test package."""
