"""Property battery for the content-addressed checkpoint store.

Three families of invariants, driven by Hypothesis:

* **Reassembly identity** — any byte string survives the chunker, and
  any image stored through :class:`~repro.storage.cas.CasSink` loads
  back byte-identical (and identical to what
  :class:`~repro.core.pipeline.FileSink` restores for the same image).
* **Boundary stability** — the gear hash restarts at every cut, so a
  chunk's boundary depends only on its own bytes: appends never move an
  interior boundary, a suffix edit re-hashes only chunks at or after
  the edit, and a prefix edit resynchronizes within a bounded window.
* **Dedup** — re-storing identical content (a second generation, or the
  same image under another pod's path) stores each chunk exactly once.

Chunk parameters are shrunk (64/256/1024) so short Hypothesis inputs
exercise many chunks.
"""

import pytest

from repro.core.image import PodImage
from repro.storage.cas import (
    CasSink,
    CasStore,
    chunk_bounds,
    chunk_id,
    split_chunks,
)
from repro.storage.san import SharedStorage
from repro.vos.filesystem import FileSystem, VFS

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: tight chunking so kilobyte-scale inputs span many chunks.
MIN, AVG, MAX = 64, 256, 1024

_blob = st.binary(min_size=0, max_size=8192)
_blob1 = st.binary(min_size=1, max_size=8192)


def _world():
    san = SharedStorage()
    vfs = VFS(FileSystem("root"))
    vfs.mount("/san", san)
    return san, vfs


def _image(pod_id, data, accounted=0, epoch=0, filters=None, dirty=None):
    return PodImage(pod_id=pod_id, data=bytes(data),
                    encoded_bytes=len(data), accounted_bytes=accounted,
                    netstate_bytes=0, filters=list(filters or []),
                    epoch=epoch, acct_dirty_bytes=dirty)


# ---------------------------------------------------------------------------
# the chunker
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(_blob)
def test_chunks_reassemble_byte_identical(data):
    chunks = split_chunks(data, MIN, AVG, MAX)
    assert b"".join(chunks) == data
    bounds = chunk_bounds(data, MIN, AVG, MAX)
    # contiguous cover, every chunk within [MIN, MAX] except a final
    # runt forced by end-of-data
    pos = 0
    for i, (off, ln) in enumerate(bounds):
        assert off == pos
        assert ln <= MAX
        if i < len(bounds) - 1:
            assert ln >= MIN
        pos += ln
    assert pos == len(data)


@settings(max_examples=200, deadline=None)
@given(_blob1, _blob1)
def test_appends_never_move_interior_boundaries(a, b):
    """Every bound of ``a`` except the end-of-data one survives the
    append — the hash restart makes cuts depend only on their own
    chunk's bytes."""
    before = chunk_bounds(a, MIN, AVG, MAX)
    after = chunk_bounds(a + b, MIN, AVG, MAX)
    assert before[:-1] == after[:len(before) - 1]


@settings(max_examples=200, deadline=None)
@given(_blob1, st.integers(0, 1 << 30), st.binary(min_size=1, max_size=64))
def test_suffix_edit_rehashes_only_touched_chunks(data, pos_seed, patch):
    """Mutating bytes at offset ``p`` keeps every chunk that ends at or
    before ``p`` byte-identical (same id, same bound)."""
    p = pos_seed % len(data)
    edited = data[:p] + patch + data[p + len(patch):]
    old = split_chunks(data, MIN, AVG, MAX)
    new = split_chunks(edited, MIN, AVG, MAX)
    intact = 0
    off = 0
    for chunk in old:
        if off + len(chunk) > p:
            break
        intact += 1
        off += len(chunk)
    assert new[:intact] == old[:intact]


@settings(max_examples=150, deadline=None, derandomize=True)
@given(st.binary(min_size=2048, max_size=8192),
       st.binary(min_size=1, max_size=128))
def test_prefix_edit_resyncs_within_bounded_window(data, insert):
    """Inserting bytes at the front re-hashes only a bounded prefix:
    boundaries resynchronize and the tail dedups chunk-for-chunk."""
    old_ids = {chunk_id(c) for c in split_chunks(data, MIN, AVG, MAX)}
    new = split_chunks(insert + data, MIN, AVG, MAX)
    fresh = sum(len(c) for c in new if chunk_id(c) not in old_ids)
    # the insert itself, plus a resync window: generous but far below
    # "everything re-hashed" (inputs are ≥ 2 KB)
    assert fresh <= len(insert) + 4 * MAX


# ---------------------------------------------------------------------------
# the sink: reassembly identity and dedup
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(_blob, st.integers(0, 200_000))
def test_sink_roundtrip_byte_identical(data, accounted):
    san, vfs = _world()
    image = _image("pod-a", data, accounted=accounted)
    sink = CasSink(san, vfs, "/san/a.img", chunking=(MIN, AVG, MAX))
    sink.store(image, op_id=1)
    loaded = sink.load("pod-a")
    assert len(loaded) == 1
    assert loaded[0].data == image.data
    assert loaded[0].accounted_bytes == image.accounted_bytes
    assert loaded[0].netstate_bytes == image.netstate_bytes
    assert loaded[0].epoch == image.epoch
    assert CasStore.on(san).audit() == []


@settings(max_examples=100, deadline=None)
@given(_blob, st.integers(0, 200_000))
def test_cas_restores_exactly_what_filesink_restores(data, accounted):
    """Same image through both sinks: restores are field-identical."""
    san, vfs = _world()
    image = _image("pod-a", data, accounted=accounted)
    from repro.core.pipeline import FileSink
    FileSink(san, vfs, "/san/f.img").store(image)
    CasSink(san, vfs, "/san/c.img", chunking=(MIN, AVG, MAX)).store(
        image, op_id=1)
    via_file = FileSink(san, vfs, "/san/f.img").load("pod-a")
    via_cas = CasSink(san, vfs, "/san/c.img").load("pod-a")
    assert len(via_file) == len(via_cas) == 1
    f, c = via_file[0], via_cas[0]
    assert (f.data, f.accounted_bytes, f.netstate_bytes, f.epoch) == \
        (c.data, c.accounted_bytes, c.netstate_bytes, c.epoch)


@settings(max_examples=100, deadline=None)
@given(_blob1, st.integers(0, 200_000))
def test_duplicate_image_stores_each_chunk_once(data, accounted):
    """A second pod checkpointing identical content adds zero stored
    bytes — every chunk (payload and pristine accounted block) hits the
    fleet-wide index."""
    san, vfs = _world()
    store = CasStore.on(san)
    CasSink(san, vfs, "/san/a.img", chunking=(MIN, AVG, MAX)).store(
        _image("pod-a", data, accounted=accounted), op_id=1)
    before = store.stored_bytes
    CasSink(san, vfs, "/san/b.img", chunking=(MIN, AVG, MAX)).store(
        _image("pod-b", data, accounted=accounted), op_id=2)
    assert store.stored_bytes == before
    assert store.audit() == []
    # and both restore independently, byte-identical
    assert CasSink(san, vfs, "/san/a.img").load("pod-a")[0].data == data
    assert CasSink(san, vfs, "/san/b.img").load("pod-b")[0].data == data


@settings(max_examples=60, deadline=None)
@given(_blob1, st.integers(0, 1 << 30), st.binary(min_size=1, max_size=64))
def test_next_generation_stores_only_the_edit(data, pos_seed, patch):
    """Generation 2 = generation 1 with a small edit: the new bytes that
    reach the SAN are bounded by the edit plus the resync window, never
    the whole image."""
    p = pos_seed % len(data)
    edited = data[:p] + patch + data[p + len(patch):]
    san, vfs = _world()
    store = CasStore.on(san)
    sink = CasSink(san, vfs, "/san/g.img", chunking=(MIN, AVG, MAX))
    sink.store(_image("pod-a", data), op_id=1)
    before = store.stored_bytes
    sink.store(_image("pod-a", edited), op_id=2)
    assert store.stored_bytes - before <= len(patch) + 5 * MAX
    assert sink.load("pod-a")[0].data == edited
    assert store.audit() == []
