"""Test package."""
