"""The durable op ledger: append/replay/claim semantics.

The ledger is the whole basis of Manager failover, so its replay has to
be exact under the messy cases a real WAL sees: a torn final line (the
writer died mid-append), duplicate claims racing for one orphan, and
stale leases that must not block a takeover forever.
"""

from repro.storage import LEDGER_PATH, OpLedger, SharedStorage


def _ledger():
    return OpLedger(SharedStorage())


def test_append_and_replay_folds_phases():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [["blade1", "p0", "file:/san/p0.img"]],
                "context": "snapshot", "owner": "mgr0", "lease": 30.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "meta", "owner": "mgr0",
                "lease": 31.0, "t": 1.0, "pods": ["p0"]})
    led.append({"rec": "phase", "op": 1, "phase": "continue", "owner": "mgr0",
                "lease": 32.0, "t": 2.0})
    ops = led.replay()
    assert set(ops) == {1}
    op = ops[1]
    assert op.kind == "checkpoint"
    assert op.phase == "continue"
    assert op.targets == [("blade1", "p0", "file:/san/p0.img")]
    assert op.owner == "mgr0"
    assert op.lease_until == 32.0
    assert op.fields["pods"] == ["p0"]       # per-phase payload merged
    assert not op.terminal
    assert led.next_op_id() == 2


def test_terminal_phases_end_the_op():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "commit", "owner": "mgr0",
                "lease": 6.0, "t": 1.0})
    assert led.replay()[1].terminal
    assert led.orphaned(now=100.0) == []
    assert led.last_committed("checkpoint").op_id == 1


def test_truncated_last_record_is_discarded():
    """A torn tail (writer died mid-append) must not poison the scan:
    every complete record before it still replays."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "meta", "owner": "mgr0",
                "lease": 6.0, "t": 1.0})
    # tear the file mid-way through the last record
    f = led.fs.files[led.path]
    torn = bytes(f.data)[:-9]
    del f.data[:]
    f.data.extend(torn)
    ops = led.replay()
    assert led.skipped == 1
    assert ops[1].phase == "begin"           # the torn meta record is gone
    assert led.next_op_id() == 2             # op ids still monotonic


def test_corrupt_middle_line_is_skipped():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "restart",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led._file().data += b"{not json at all\n"
    led.append({"rec": "phase", "op": 1, "phase": "commit", "owner": "mgr0",
                "lease": 9.0, "t": 2.0})
    ops = led.replay()
    assert led.skipped == 1
    assert ops[1].terminal


def test_duplicate_claim_is_refused_under_live_lease():
    """Two replicas race for one orphan: the first claim wins, the
    second is refused while the winner's lease is live."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "meta", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 3.0, "t": 0.0})
    assert led.claim(1, "mgr1", now=5.0, lease_s=10.0)    # lease expired at 3
    assert not led.claim(1, "mgr2", now=6.0, lease_s=10.0)  # mgr1 holds it
    op = led.replay()[1]
    assert op.owner == "mgr1"
    assert op.claims == ["mgr1"]
    # re-claiming your own op just renews the lease
    assert led.claim(1, "mgr1", now=7.0, lease_s=10.0)
    assert led.replay()[1].lease_until == 17.0


def test_stale_lease_is_claimable():
    """A claim whose holder also died becomes claimable once *its*
    lease expires — leases chain, they do not deadlock."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "continue", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 3.0, "t": 0.0})
    assert led.claim(1, "mgr1", now=4.0, lease_s=5.0)     # mgr1: lease to 9
    assert not led.claim(1, "mgr2", now=8.0, lease_s=5.0)
    assert led.claim(1, "mgr2", now=9.5, lease_s=5.0)     # mgr1's lease stale
    assert led.replay()[1].claims == ["mgr1", "mgr2"]


def test_claim_refuses_unknown_and_terminal_ops():
    led = _ledger()
    assert not led.claim(42, "mgr1", now=0.0, lease_s=5.0)
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 1.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "aborted", "owner": "mgr0",
                "lease": 1.0, "t": 0.5})
    assert not led.claim(1, "mgr1", now=10.0, lease_s=5.0)


def test_orphaned_orders_by_op_id_and_respects_leases():
    led = _ledger()
    for op_id, lease in ((3, 2.0), (1, 2.0), (2, 50.0)):
        led.append({"rec": "op", "op": op_id, "phase": "meta",
                    "kind": "checkpoint", "targets": [], "owner": "mgr0",
                    "lease": lease, "t": 0.0})
    orphans = led.orphaned(now=10.0)
    assert [o.op_id for o in orphans] == [1, 3]   # op 2's lease still live


def test_records_are_deterministic_bytes():
    """Sorted keys + compact separators: the same appends produce the
    same bytes, which is what keeps chaos traces byte-comparable."""
    led_a, led_b = _ledger(), _ledger()
    for led in (led_a, led_b):
        led.append({"t": 0.0, "op": 1, "rec": "op", "phase": "begin",
                    "kind": "checkpoint", "targets": [], "owner": "m",
                    "lease": 1.0})
    assert bytes(led_a.fs.files[LEDGER_PATH].data) == \
        bytes(led_b.fs.files[LEDGER_PATH].data)
    assert b'"lease":1.0' in bytes(led_a.fs.files[LEDGER_PATH].data)


def test_ledger_path_created_on_first_append():
    led = _ledger()
    assert not led.fs.exists(LEDGER_PATH)
    assert led.records() == []               # scanning a missing log is fine
    led.append({"rec": "op", "op": 1, "phase": "begin", "t": 0.0})
    assert led.fs.exists(LEDGER_PATH)


# ---------------------------------------------------------------------------
# the campaign record family (fleet orchestration)
# ---------------------------------------------------------------------------

def _camp(led, phase, cid=1, t=0.0, lease=None, owner="mgr0", **fields):
    led.append(dict({"rec": "campaign", "cid": cid, "phase": phase,
                     "owner": owner, "lease": t + 30.0 if lease is None
                     else lease, "t": t}, **fields))


def _begin(led, cid=1, t=0.0, owner="mgr0"):
    _camp(led, "begin", cid=cid, t=t, owner=owner, kind="drain",
          units=[["blade1", "p0", ""], ["blade1", "p1", ""]],
          waves=[["p0"], ["p1"]],
          policy={"max_inflight": 2, "wave_size": 1, "exclude": ["blade1"]})


def test_campaign_records_fold_to_state():
    led = _ledger()
    _begin(led)
    _camp(led, "wave", t=1.0, wave=0, pods=1)
    _camp(led, "pod", t=2.0, wave=0, pod="p0", status="ok", op=7,
          downtime=0.25, attempts=1)
    _camp(led, "wave-done", t=3.0, wave=0, ok=1, failed=0)
    camps = led.replay_campaigns()
    assert set(camps) == {1}
    camp = camps[1]
    assert camp.kind == "drain"
    assert camp.phase == "wave-done"
    assert camp.units == [("blade1", "p0", ""), ("blade1", "p1", "")]
    assert camp.waves == [["p0"], ["p1"]]
    assert camp.policy["exclude"] == ["blade1"]
    assert camp.pods["p0"]["status"] == "ok"
    assert camp.done_pods == ["p0"]
    assert camp.wave_owners == {0: "mgr0"}
    assert camp.waves_done == [0]
    assert not camp.terminal
    assert led.next_campaign_id() == 2


def test_campaign_terminal_phases():
    led = _ledger()
    for cid, phase in ((1, "commit"), (2, "halted"), (3, "aborted")):
        _begin(led, cid=cid)
        _camp(led, phase, cid=cid, t=5.0)
    camps = led.replay_campaigns()
    assert all(c.terminal for c in camps.values())
    assert led.orphaned_campaigns(now=1000.0) == []


def test_campaign_torn_tail_mid_wave_is_resumable():
    """The Manager died while appending a mid-wave pod record: the torn
    line is discarded and the fold ends at the last durable record —
    exactly the state a resuming replica re-drives from."""
    led = _ledger()
    _begin(led)
    _camp(led, "wave", t=1.0, wave=0, pods=1)
    _camp(led, "pod", t=2.0, wave=0, pod="p0", status="ok", op=7,
          downtime=0.25, attempts=1)
    _camp(led, "pod", t=3.0, wave=1, pod="p1", status="ok", op=8,
          downtime=0.3, attempts=1)
    f = led.fs.files[led.path]
    torn = bytes(f.data)[:-11]               # tear the p1 record mid-line
    del f.data[:]
    f.data.extend(torn)
    camp = led.replay_campaigns()[1]
    assert led.skipped == 1
    assert camp.done_pods == ["p0"]          # p1's outcome never became durable
    assert camp.phase == "pod"
    assert not camp.terminal
    # the campaign is orphanable once its last durable lease expires
    orphans = led.orphaned_campaigns(now=100.0)
    assert [c.cid for c in orphans] == [1]


def test_duplicate_wave_claim_first_writer_wins():
    """Two Managers racing one wave: the first wave record owns it; the
    duplicate is kept in the audit trail but does not steal ownership."""
    led = _ledger()
    _begin(led)
    _camp(led, "wave", t=1.0, wave=0, pods=1, owner="mgr0")
    _camp(led, "wave", t=2.0, wave=0, pods=1, owner="mgr1")
    camp = led.replay_campaigns()[1]
    assert camp.wave_owners == {0: "mgr0"}   # first writer wins
    assert camp.wave_claims == [(0, "mgr0"), (0, "mgr1")]


def test_campaign_claim_respects_live_lease():
    led = _ledger()
    _begin(led, t=0.0)                       # lease runs to t=30
    assert not led.claim_campaign(1, "mgr1", now=10.0, lease_s=5.0)
    assert led.claim_campaign(1, "mgr1", now=31.0, lease_s=5.0)
    assert not led.claim_campaign(2, "mgr1", now=31.0, lease_s=5.0)  # unknown
    camp = led.replay_campaigns()[1]
    assert camp.owner == "mgr1"
    assert camp.claims == ["mgr1"]
    _camp(led, "commit", t=40.0, owner="mgr1")
    assert not led.claim_campaign(1, "mgr2", now=100.0, lease_s=5.0)  # terminal


def test_campaign_records_do_not_disturb_op_replay():
    """The two families share one log: folding one must never leak into
    the other, and id allocation stays per-family."""
    led = _ledger()
    led.append({"rec": "op", "op": 3, "phase": "commit", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 1.0, "t": 0.0})
    _begin(led, cid=7)
    # campaign pod records carry an "op" field (the op that did the
    # work); it must not mint op state or bump the op id allocator
    _camp(led, "pod", cid=7, t=2.0, wave=0, pod="p0", status="ok", op=3,
          downtime=0.1, attempts=1)
    ops = led.replay()
    assert set(ops) == {3}
    assert led.next_op_id() == 4
    assert led.next_campaign_id() == 8
    camps = led.replay_campaigns()
    assert set(camps) == {7}


def test_id_caches_follow_appends():
    """next_op_id / next_campaign_id are O(1) after the first scan: the
    caches track appends instead of re-parsing the log per allocation."""
    led = _ledger()
    assert led.next_op_id() == 1
    assert led.next_campaign_id() == 1
    led.append({"rec": "op", "op": 1, "phase": "begin", "t": 0.0})
    _begin(led, cid=1, t=0.0)
    assert led.next_op_id() == 2
    assert led.next_campaign_id() == 2
    # a second instance over the same file scans fresh and agrees
    other = OpLedger(led.fs)
    assert other.next_op_id() == 2
    assert other.next_campaign_id() == 2
