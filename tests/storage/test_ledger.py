"""The durable op ledger: append/replay/claim semantics.

The ledger is the whole basis of Manager failover, so its replay has to
be exact under the messy cases a real WAL sees: a torn final line (the
writer died mid-append), duplicate claims racing for one orphan, and
stale leases that must not block a takeover forever.
"""

from repro.storage import LEDGER_PATH, OpLedger, SharedStorage


def _ledger():
    return OpLedger(SharedStorage())


def test_append_and_replay_folds_phases():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [["blade1", "p0", "file:/san/p0.img"]],
                "context": "snapshot", "owner": "mgr0", "lease": 30.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "meta", "owner": "mgr0",
                "lease": 31.0, "t": 1.0, "pods": ["p0"]})
    led.append({"rec": "phase", "op": 1, "phase": "continue", "owner": "mgr0",
                "lease": 32.0, "t": 2.0})
    ops = led.replay()
    assert set(ops) == {1}
    op = ops[1]
    assert op.kind == "checkpoint"
    assert op.phase == "continue"
    assert op.targets == [("blade1", "p0", "file:/san/p0.img")]
    assert op.owner == "mgr0"
    assert op.lease_until == 32.0
    assert op.fields["pods"] == ["p0"]       # per-phase payload merged
    assert not op.terminal
    assert led.next_op_id() == 2


def test_terminal_phases_end_the_op():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "commit", "owner": "mgr0",
                "lease": 6.0, "t": 1.0})
    assert led.replay()[1].terminal
    assert led.orphaned(now=100.0) == []
    assert led.last_committed("checkpoint").op_id == 1


def test_truncated_last_record_is_discarded():
    """A torn tail (writer died mid-append) must not poison the scan:
    every complete record before it still replays."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "meta", "owner": "mgr0",
                "lease": 6.0, "t": 1.0})
    # tear the file mid-way through the last record
    f = led.fs.files[led.path]
    torn = bytes(f.data)[:-9]
    del f.data[:]
    f.data.extend(torn)
    ops = led.replay()
    assert led.skipped == 1
    assert ops[1].phase == "begin"           # the torn meta record is gone
    assert led.next_op_id() == 2             # op ids still monotonic


def test_corrupt_middle_line_is_skipped():
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "restart",
                "targets": [], "owner": "mgr0", "lease": 5.0, "t": 0.0})
    led._file().data += b"{not json at all\n"
    led.append({"rec": "phase", "op": 1, "phase": "commit", "owner": "mgr0",
                "lease": 9.0, "t": 2.0})
    ops = led.replay()
    assert led.skipped == 1
    assert ops[1].terminal


def test_duplicate_claim_is_refused_under_live_lease():
    """Two replicas race for one orphan: the first claim wins, the
    second is refused while the winner's lease is live."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "meta", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 3.0, "t": 0.0})
    assert led.claim(1, "mgr1", now=5.0, lease_s=10.0)    # lease expired at 3
    assert not led.claim(1, "mgr2", now=6.0, lease_s=10.0)  # mgr1 holds it
    op = led.replay()[1]
    assert op.owner == "mgr1"
    assert op.claims == ["mgr1"]
    # re-claiming your own op just renews the lease
    assert led.claim(1, "mgr1", now=7.0, lease_s=10.0)
    assert led.replay()[1].lease_until == 17.0


def test_stale_lease_is_claimable():
    """A claim whose holder also died becomes claimable once *its*
    lease expires — leases chain, they do not deadlock."""
    led = _ledger()
    led.append({"rec": "op", "op": 1, "phase": "continue", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 3.0, "t": 0.0})
    assert led.claim(1, "mgr1", now=4.0, lease_s=5.0)     # mgr1: lease to 9
    assert not led.claim(1, "mgr2", now=8.0, lease_s=5.0)
    assert led.claim(1, "mgr2", now=9.5, lease_s=5.0)     # mgr1's lease stale
    assert led.replay()[1].claims == ["mgr1", "mgr2"]


def test_claim_refuses_unknown_and_terminal_ops():
    led = _ledger()
    assert not led.claim(42, "mgr1", now=0.0, lease_s=5.0)
    led.append({"rec": "op", "op": 1, "phase": "begin", "kind": "checkpoint",
                "targets": [], "owner": "mgr0", "lease": 1.0, "t": 0.0})
    led.append({"rec": "phase", "op": 1, "phase": "aborted", "owner": "mgr0",
                "lease": 1.0, "t": 0.5})
    assert not led.claim(1, "mgr1", now=10.0, lease_s=5.0)


def test_orphaned_orders_by_op_id_and_respects_leases():
    led = _ledger()
    for op_id, lease in ((3, 2.0), (1, 2.0), (2, 50.0)):
        led.append({"rec": "op", "op": op_id, "phase": "meta",
                    "kind": "checkpoint", "targets": [], "owner": "mgr0",
                    "lease": lease, "t": 0.0})
    orphans = led.orphaned(now=10.0)
    assert [o.op_id for o in orphans] == [1, 3]   # op 2's lease still live


def test_records_are_deterministic_bytes():
    """Sorted keys + compact separators: the same appends produce the
    same bytes, which is what keeps chaos traces byte-comparable."""
    led_a, led_b = _ledger(), _ledger()
    for led in (led_a, led_b):
        led.append({"t": 0.0, "op": 1, "rec": "op", "phase": "begin",
                    "kind": "checkpoint", "targets": [], "owner": "m",
                    "lease": 1.0})
    assert bytes(led_a.fs.files[LEDGER_PATH].data) == \
        bytes(led_b.fs.files[LEDGER_PATH].data)
    assert b'"lease":1.0' in bytes(led_a.fs.files[LEDGER_PATH].data)


def test_ledger_path_created_on_first_append():
    led = _ledger()
    assert not led.fs.exists(LEDGER_PATH)
    assert led.records() == []               # scanning a missing log is fine
    led.append({"rec": "op", "op": 1, "phase": "begin", "t": 0.0})
    assert led.fs.exists(LEDGER_PATH)
