"""Refcount/GC regressions for the content-addressed store.

The op-keyed tombstone protocol must be safe to replay: a Manager's
direct rollback, the broadcast agent-side ``abort_op``, and a takeover
replica re-running the same tombstone can all land on the same store in
any order.  These tests pin the exact reclaim semantics:

* double-abort and replayed tombstones never drop a chunk still
  referenced by a live generation chain or by another pod,
* retiring a generation releases exactly the unshared chunks,
* an orphaned-stage sweep after Manager failover reclaims exactly the
  stages whose op is no longer live,
* and after every sequence :meth:`~repro.storage.cas.CasStore.audit`
  balances — no leaked chunk, no leaked ref, no dangling recipe.
"""

import pytest

from repro.core.image import PodImage
from repro.errors import RestartError
from repro.storage.cas import CasSink, CasStore
from repro.storage.san import SharedStorage
from repro.vos.filesystem import FileSystem, VFS

MIN, AVG, MAX = 64, 256, 1024


def _world():
    san = SharedStorage()
    vfs = VFS(FileSystem("root"))
    vfs.mount("/san", san)
    return san, vfs


def _sink(san, vfs, path):
    return CasSink(san, vfs, path, chunking=(MIN, AVG, MAX))


def _image(pod_id, data, epoch=0, delta=False):
    filters = [{"name": "delta", "kind": "delta"}] if delta else []
    return PodImage(pod_id=pod_id, data=bytes(data),
                    encoded_bytes=len(data), accounted_bytes=0,
                    netstate_bytes=0, filters=filters, epoch=epoch)


def _payload(seed, n=4096):
    import random
    return random.Random(seed).randbytes(n)


def test_double_abort_keeps_the_restored_generation():
    """Abort of op 2 restores op 1's generation; replaying the same
    tombstone (takeover replica re-running the GC) is a no-op — the
    restored generation carries op 1's id and survives."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    d1, d2 = _payload(1), _payload(2)
    sink.store(_image("pod-a", d1), op_id=1)
    sink.store(_image("pod-a", d2), op_id=2)
    assert store.abort_op(2) > 0
    assert sink.load("pod-a")[0].data == d1
    for _ in range(3):  # replayed tombstone: nothing left to reclaim
        assert store.abort_op(2) == 0
        assert sink.load("pod-a")[0].data == d1
    assert store.audit() == []


def test_abort_never_drops_chunks_shared_with_another_pod():
    """Pods a and b checkpoint identical bytes; aborting b's op must
    leave every shared chunk pinned by a's published recipe."""
    san, vfs = _world()
    store = CasStore.on(san)
    data = _payload(3)
    _sink(san, vfs, "/san/a.img").store(_image("pod-a", data), op_id=1)
    _sink(san, vfs, "/san/b.img").store(_image("pod-b", data), op_id=2)
    assert store.abort_op(2) == 0  # every chunk still shared with pod-a
    assert "/san/b.img" not in store.recipes
    assert _sink(san, vfs, "/san/a.img").load("pod-a")[0].data == data
    assert store.abort_op(2) == 0
    assert store.audit() == []


def test_abort_never_drops_chunks_carried_by_a_live_chain():
    """A delta generation carries the base entry's chunk ids; aborting
    the delta op must release only the delta's own chunks — the base is
    still referenced by the restored generation."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    base, delta = _payload(4, 8192), _payload(5, 512)
    sink.store(_image("pod-a", base), op_id=1)
    base_ids = {cid for cid in store.refs}
    sink.store(_image("pod-a", delta, epoch=1, delta=True), op_id=2)
    store.abort_op(2)
    for cid in base_ids:
        assert cid in store.objects, "base chunk dropped by delta abort"
    chain = sink.load("pod-a")
    assert len(chain) == 1 and chain[0].data == base
    assert store.audit() == []


def test_retiring_a_generation_releases_exactly_the_unshared_chunks():
    """gen3's publish releases gen1 (the one-deep undo keeps gen2):
    bytes unique to gen1 are reclaimed, bytes gen1 shares with later
    generations or another pod survive."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    shared = _payload(6, 4096)
    g1 = shared + _payload(7, 2048)   # tail unique to gen1
    g2 = shared + _payload(8, 2048)
    g3 = shared + _payload(9, 2048)
    sink.store(_image("pod-a", g1), op_id=1)
    after_g1 = set(store.objects)
    sink.store(_image("pod-a", g2), op_id=2)
    g1_unique = after_g1 - set(
        cid for cid in store.refs
        if store.refs[cid] > 1 or cid not in after_g1)
    reclaimed_before = store.gc_reclaimed_bytes
    sink.store(_image("pod-a", g3), op_id=3)  # releases gen1
    assert store.gc_reclaimed_bytes > reclaimed_before
    # exactly gen1's unshared chunks are gone; everything shared lives
    for cid in g1_unique:
        assert cid not in store.objects
    for cid in after_g1 - g1_unique:
        assert cid in store.objects
    # the shared prefix must still be live (gen2 retired + gen3 current)
    assert sink.load("pod-a")[0].data == g3
    assert store.audit() == []
    # footprint bookkeeping balances against the live object set
    assert store.footprint_bytes == sum(o.size
                                        for o in store.objects.values())


def test_orphan_sweep_reclaims_exactly_the_dead_stages():
    """A stage whose op died between stage and publish is reclaimed by
    the failover sweep; stages of live ops and published generations
    are untouched."""
    san, vfs = _world()
    store = CasStore.on(san)
    _sink(san, vfs, "/san/pub.img").store(_image("pod-a", _payload(10)),
                                          op_id=1)
    dead = _sink(san, vfs, "/san/dead.img")
    dead.stage(_image("pod-b", _payload(11)), op_id=2)  # never published
    live = _sink(san, vfs, "/san/live.img")
    live.stage(_image("pod-c", _payload(12)), op_id=3)
    dropped, reclaimed = store.sweep_orphans(live_ops=[1, 3])
    assert dropped == 1 and reclaimed > 0
    assert "/san/dead.img" not in store.pending
    assert "/san/live.img" in store.pending
    live.publish()
    assert _sink(san, vfs, "/san/live.img").load("pod-c") is not None
    assert _sink(san, vfs, "/san/pub.img").load("pod-a") is not None
    assert store.audit() == []


def test_truncated_stage_never_restartable_and_rollback_balances():
    """A fault that cuts the chunk upload short leaves a stage whose
    read-back must fail; rolling the op back reclaims the partial
    upload exactly — no leaked chunk survives."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/t.img")
    sink.stage(_image("pod-a", _payload(13, 8192)), op_id=7, truncate=0.3)
    sink.publish()
    with pytest.raises(RestartError):
        sink.load("pod-a")
    assert store.rollback_path("/san/t.img", 7)
    assert "/san/t.img" not in store.recipes
    assert store.objects == {} and store.refs == {}
    assert store.audit() == []
    # replaying the tombstone after the rollback is a no-op
    assert not store.rollback_path("/san/t.img", 7)


def test_restage_over_stale_pending_keeps_shared_chunks():
    """Re-staging a path over a crashed op's leftover pending stage with
    overlapping content must not drop the shared chunks: the new stage's
    references are taken before the stale recipe is released, so the
    published generation never dangles."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    data = _payload(15, 8192)
    sink.stage(_image("pod-a", data), op_id=1)  # op 1 crashed pre-publish
    sink.stage(_image("pod-a", data), op_id=2)  # retry with the same data
    assert sink.publish(2)
    assert sink.load("pod-a")[0].data == data
    assert store.audit() == []


def test_publish_is_op_keyed():
    """Op A's publish must not promote op B's stage at the same path;
    only the op that staged the pending recipe can swap it in."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    d1, d2 = _payload(16), _payload(17)
    sink.stage(_image("pod-a", d1), op_id=1)
    sink.stage(_image("pod-a", d2), op_id=2)  # op 2 replaced op 1's stage
    assert not sink.publish(1)  # op 1 must not publish op 2's stage
    assert "/san/a.img" not in store.recipes
    assert sink.publish(2)
    assert sink.load("pod-a")[0].data == d2
    assert store.audit() == []


def test_carried_bytes_counted_once_per_published_stage():
    """The chain-carry stat is de-duplicated by cid and folded in only
    when a stage publishes: a retried (re-staged) delta flush must not
    inflate it, and an abandoned stage must not count at all."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    base, delta = _payload(18, 8192), _payload(19, 512)
    sink.store(_image("pod-a", base), op_id=1)
    assert store.carried_bytes == 0
    carried_expected = sum(o.size for o in store.objects.values())
    sink.stage(_image("pod-a", delta, epoch=1, delta=True), op_id=2)
    assert store.carried_bytes == 0  # staged but not yet published
    sink.stage(_image("pod-a", delta, epoch=1, delta=True), op_id=3)
    assert sink.publish(3)  # the retry publishes; one carry, not two
    assert store.carried_bytes == carried_expected
    assert store.audit() == []


def test_unrelated_tombstone_is_a_noop():
    """GC for an op that never touched a path must not disturb the
    published generation there."""
    san, vfs = _world()
    store = CasStore.on(san)
    sink = _sink(san, vfs, "/san/a.img")
    data = _payload(14)
    sink.store(_image("pod-a", data), op_id=1)
    assert not store.rollback_path("/san/a.img", 99)
    assert store.abort_op(99) == 0
    assert sink.load("pod-a")[0].data == data
    assert store.audit() == []
