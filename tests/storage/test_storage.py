"""Shared-storage and snapshot tests."""

import pytest

from repro.errors import ReproError
from repro.storage import SharedStorage, SnapshotManager
from repro.vos.filesystem import FileSystem, ensure_dirs


def test_san_transfer_delay_scales_with_bytes():
    san = SharedStorage()
    d1 = san.flush_delay(10 * 2**20)
    d2 = san.flush_delay(20 * 2**20)
    assert d2 > d1 > 0
    # 200 MB/s: 20 MiB should take about a tenth of a second
    assert d2 == pytest.approx(0.5e-3 + 20 * 2**20 / 200e6)


def test_snapshot_restores_files_and_dirs():
    fs = FileSystem("t")
    ensure_dirs(fs, "/data")
    fs.create("/data/a").data.extend(b"one")
    mgr = SnapshotManager()
    snap = mgr.take(fs, now=1.0)
    # mutate after the snapshot
    fs.create("/data/b").data.extend(b"two")
    fs.files["/data/a"].data.extend(b"-more")
    mgr.restore(fs, snap)
    assert bytes(fs.lookup("/data/a").data) == b"one"
    assert not fs.exists("/data/b")


def test_snapshot_is_isolated_from_later_writes():
    fs = FileSystem("t")
    fs.create("/f").data.extend(b"v1")
    mgr = SnapshotManager()
    snap = mgr.take(fs)
    fs.files["/f"].data.extend(b"v2")
    assert snap.files["/f"] == b"v1"
    assert snap.total_bytes == 2


def test_latest_snapshot_lookup():
    fs = FileSystem("t")
    mgr = SnapshotManager()
    mgr.take(fs, now=1.0)
    s2 = mgr.take(fs, now=2.0)
    assert mgr.latest("t") is s2
    with pytest.raises(ReproError):
        mgr.latest("other")


def test_restore_wrong_fs_rejected():
    a, b = FileSystem("a"), FileSystem("b")
    mgr = SnapshotManager()
    snap = mgr.take(a)
    with pytest.raises(ReproError):
        mgr.restore(b, snap)
