"""Socket-layer tests: options, poll, backlog, dispatch vector, fabric."""

import pytest

from repro.errors import NetError
from repro.net import Fabric, Segment, default_options
from repro.net.sockopt import validate_option
from repro.errors import SyscallError
from repro.vos.syscalls import Errno

from .conftest import run_tasks


# ---------------------------------------------------------------------------
# socket options
# ---------------------------------------------------------------------------


def test_default_options_cover_protocols():
    tcp = default_options("tcp")
    udp = default_options("udp")
    assert "TCP_NODELAY" in tcp and "TCP_NODELAY" not in udp
    assert tcp["SO_RCVBUF"] > 0 and udp["SO_RCVBUF"] > 0
    assert "TCP_STDURG" in tcp  # the paper's example option


def test_validate_rejects_unknown_option():
    with pytest.raises(SyscallError) as ei:
        validate_option("tcp", "SO_MADE_UP", 1)
    assert ei.value.errno == "ENOPROTOOPT"


def test_validate_rejects_tcp_option_on_udp():
    with pytest.raises(SyscallError):
        validate_option("udp", "TCP_NODELAY", 1)


def test_validate_rejects_bad_buffer_size():
    with pytest.raises(SyscallError) as ei:
        validate_option("tcp", "SO_RCVBUF", 0)
    assert ei.value.errno == "EINVAL"


def test_get_set_sockopt_syscalls(engine, hosts):
    a, _ = hosts

    def task(call):
        fd = yield call("socket", "tcp")
        before = yield call("getsockopt", fd, "SO_KEEPALIVE")
        yield call("setsockopt", fd, "SO_KEEPALIVE", 1)
        after = yield call("getsockopt", fd, "SO_KEEPALIVE")
        bad = yield call("getsockopt", fd, "SO_NOPE")
        return before, after, bad

    t = a.task(task)
    ((before, after, bad),) = run_tasks(engine, t)
    assert before == 0 and after == 1
    assert isinstance(bad, Errno) and bad.name == "ENOPROTOOPT"


# ---------------------------------------------------------------------------
# poll
# ---------------------------------------------------------------------------


def test_poll_times_out_empty(engine, hosts):
    a, _ = hosts

    def task(call):
        fd = yield call("socket", "tcp")
        t0 = yield call("gettime")
        ready = yield call("poll", [fd], 1.0)
        t1 = yield call("gettime")
        return ready, t1 - t0

    t = a.task(task)
    ((ready, elapsed),) = run_tasks(engine, t)
    assert ready == []
    assert elapsed == pytest.approx(1.0, abs=0.01)


def test_poll_wakes_on_data(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 6000))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        ready = yield call("poll", [(newfd, "r")], 30.0)
        data = yield call("recv", newfd, 100, 0)
        return ready, data

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 6000))
        yield call("sleep", 0.5)
        yield call("send", fd, b"wake", 0)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (ready, data), _ = run_tasks(engine, srv, cli)
    assert len(ready) == 1 and "r" in ready[0][1]
    assert data == b"wake"


def test_poll_listener_readable_on_pending_accept(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 6001))
        yield call("listen", fd, 8)
        ready = yield call("poll", [fd], 30.0)
        return ready

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 6001))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    ready, _ = run_tasks(engine, srv, cli)
    assert ready and "r" in ready[0][1]


def test_poll_writable_immediately(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 6002))
        yield call("listen", fd, 8)
        yield call("accept", fd)
        yield call("sleep", 10.0)
        return 0

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 6002))
        ready = yield call("poll", [fd], 5.0)
        return ready

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    _, ready = run_tasks(engine, srv, cli, until=30.0)
    assert ready and "w" in ready[0][1]


# ---------------------------------------------------------------------------
# backlog queue semantics
# ---------------------------------------------------------------------------


def _established_pair(engine, hosts, port):
    """Create a connection and return (client socket, server socket)."""
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, port))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        return newfd

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, port))
        return fd

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    run_tasks(engine, srv, cli)
    ((proto, lep, rep), ssock), = [
        (k, s) for k, s in b.stack.established.items() if k[1].port == port
    ]
    csock = a.stack.established[(proto, rep, lep)]
    return csock, ssock


def test_backlog_defers_processing_then_bottom_half_drains(engine, hosts):
    _c, ssock = _established_pair(engine, hosts, 6100)
    seg = Segment(seq=ssock.conn.pcb.rcv_nxt, ack=ssock.conn.pcb.snd_nxt,
                  flags=frozenset({"ACK"}), data=b"backlogged")
    ssock.conn.deliver(seg)
    assert len(ssock.conn.backlog) == 1
    assert bytes(ssock.conn.recv_q) == b""
    engine.run(until=engine.now + 0.001)  # let the bottom half run
    assert ssock.conn.backlog == []
    assert bytes(ssock.conn.recv_q) == b"backlogged"


def test_process_backlog_is_taking_the_socket_lock(engine, hosts):
    _c, ssock = _established_pair(engine, hosts, 6101)
    seg = Segment(seq=ssock.conn.pcb.rcv_nxt, ack=ssock.conn.pcb.snd_nxt,
                  flags=frozenset({"ACK"}), data=b"eager")
    ssock.conn.deliver(seg)
    ssock.conn.process_backlog()  # eager drain, no simulated delay
    assert bytes(ssock.conn.recv_q) == b"eager"


def test_out_of_order_segments_reassemble(engine, hosts):
    _c, ssock = _established_pair(engine, hosts, 6102)
    base = ssock.conn.pcb.rcv_nxt
    ssock.conn.deliver(Segment(seq=base + 3, flags=frozenset({"ACK"}), data=b"DEF"))
    ssock.conn.deliver(Segment(seq=base, flags=frozenset({"ACK"}), data=b"ABC"))
    ssock.conn.process_backlog()
    assert bytes(ssock.conn.recv_q) == b"ABCDEF"
    assert ssock.conn.pcb.rcv_nxt == base + 6


def test_duplicate_segment_is_ignored(engine, hosts):
    _c, ssock = _established_pair(engine, hosts, 6103)
    base = ssock.conn.pcb.rcv_nxt
    ssock.conn.deliver(Segment(seq=base, flags=frozenset({"ACK"}), data=b"XY"))
    ssock.conn.process_backlog()
    ssock.conn.deliver(Segment(seq=base, flags=frozenset({"ACK"}), data=b"XY"))
    ssock.conn.process_backlog()
    assert bytes(ssock.conn.recv_q) == b"XY"


def test_partial_overlap_trimmed(engine, hosts):
    _c, ssock = _established_pair(engine, hosts, 6104)
    base = ssock.conn.pcb.rcv_nxt
    ssock.conn.deliver(Segment(seq=base, flags=frozenset({"ACK"}), data=b"ABCD"))
    ssock.conn.process_backlog()
    # retransmission covering old + new bytes
    ssock.conn.deliver(Segment(seq=base + 2, flags=frozenset({"ACK"}), data=b"CDEF"))
    ssock.conn.process_backlog()
    assert bytes(ssock.conn.recv_q) == b"ABCDEF"


# ---------------------------------------------------------------------------
# dispatch vector
# ---------------------------------------------------------------------------


def test_dispatch_vector_interposition(engine, hosts):
    """Swapping recvmsg changes what recv returns — the ZapC mechanism."""
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 6200))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        yield call("sleep", 0.5)  # let data arrive
        data = yield call("recv", newfd, 100, 0)
        return data

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 6200))
        yield call("send", fd, b"original", 0)
        return 0

    def interpose():
        for sock in b.stack.established.values():
            original = sock.dispatch["recvmsg"]

            def wrapped(stack, s, n, flags, _orig=original):
                value = _orig(stack, s, n, flags)
                return b"[interposed]" + value if isinstance(value, bytes) else value

            sock.dispatch["recvmsg"] = wrapped

    engine.schedule(0.3, interpose)
    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    data, _ = run_tasks(engine, srv, cli)
    assert data == b"[interposed]original"


# ---------------------------------------------------------------------------
# fabric
# ---------------------------------------------------------------------------


def test_fabric_rejects_duplicate_address(engine):
    fabric = Fabric(engine)
    fabric.attach("10.0.0.1")
    with pytest.raises(NetError):
        fabric.attach("10.0.0.1")


def test_nic_alias_and_migration_routing(engine, fabric, hosts):
    a, b = hosts
    a.stack.nic.add_address("10.77.0.9")
    assert fabric.nic_for("10.77.0.9") is a.stack.nic
    a.stack.nic.drop_address("10.77.0.9")
    b.stack.nic.add_address("10.77.0.9")
    assert fabric.nic_for("10.77.0.9") is b.stack.nic


def test_nic_cannot_drop_primary(engine, hosts):
    a, _ = hosts
    with pytest.raises(NetError):
        a.stack.nic.drop_address(a.ip)


def test_partition_blocks_and_heals(engine, fabric, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 6300))
        data, _ = yield call("recvfrom", fd, 100, 0)
        return data

    def client(call):
        fd = yield call("socket", "udp")
        yield call("sendto", fd, b"one", (b.ip, 6300))  # dropped
        yield call("sleep", 1.0)
        yield call("sendto", fd, b"two", (b.ip, 6300))  # delivered
        return 0

    fabric.partition(a.ip, b.ip)
    engine.schedule(0.5, fabric.heal, a.ip, b.ip)
    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    data, _ = run_tasks(engine, srv, cli)
    assert data == b"two"
    assert fabric.dropped_packets == 1


def test_egress_serialization_at_line_rate(engine, fabric, hosts):
    """Back-to-back packets queue behind each other on the egress link."""
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 6301))
        times = []
        for _ in range(3):
            yield call("recvfrom", fd, 70000, 0)
            t = yield call("gettime")
            times.append(t)
        return times

    def client(call):
        fd = yield call("socket", "udp")
        for _ in range(3):
            yield call("sendto", fd, b"p" * 60000, (b.ip, 6301))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    times, _ = run_tasks(engine, srv, cli)
    # 60 KB at 125 MB/s is ~0.5 ms per datagram: arrivals must be spaced
    gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    for gap in gaps:
        assert gap == pytest.approx(60066 / 125e6, rel=0.2)
