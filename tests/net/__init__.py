"""Test package."""
