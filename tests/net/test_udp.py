"""Datagram (UDP / raw IP) behaviour tests."""

from repro.net import MSG_PEEK
from repro.vos.syscalls import Errno

from .conftest import run_tasks


def test_sendto_recvfrom(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7000))
        data, src = yield call("recvfrom", fd, 1024, 0)
        yield call("sendto", fd, b"pong:" + data, src)
        return data

    def client(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (a.ip, 7001))
        yield call("sendto", fd, b"ping", (b.ip, 7000))
        data, src = yield call("recvfrom", fd, 1024, 0)
        return data, src

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    got, (data, src) = run_tasks(engine, srv, cli)
    assert got == b"ping"
    assert data == b"pong:ping"
    assert src == (b.ip, 7000)


def test_connected_udp_send_recv(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7002))
        data, src = yield call("recvfrom", fd, 1024, 0)
        yield call("sendto", fd, b"back", src)
        return data

    def client(call):
        fd = yield call("socket", "udp")
        yield call("connect", fd, (b.ip, 7002))
        yield call("send", fd, b"via-connected", 0)
        data = yield call("recv", fd, 1024, 0)
        return data

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    got, data = run_tasks(engine, srv, cli)
    assert got == b"via-connected"
    assert data == b"back"


def test_datagram_truncation(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7003))
        data, _ = yield call("recvfrom", fd, 4, 0)
        return data

    def client(call):
        fd = yield call("socket", "udp")
        yield call("sendto", fd, b"0123456789", (b.ip, 7003))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    data, _ = run_tasks(engine, srv, cli)
    assert data == b"0123"  # rest of the datagram discarded


def test_udp_peek_preserves_datagram(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7004))
        peeked, _ = yield call("recvfrom", fd, 1024, MSG_PEEK)
        real, _ = yield call("recvfrom", fd, 1024, 0)
        return peeked, real

    def client(call):
        fd = yield call("socket", "udp")
        yield call("sendto", fd, b"lookahead", (b.ip, 7004))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (peeked, real), _ = run_tasks(engine, srv, cli)
    assert peeked == b"lookahead" and real == b"lookahead"
    # the peeked flag matters to checkpoint semantics
    sock = b.stack.bound[("udp", b.ip, 7004)]
    assert sock.conn.peeked is False  # cleared once the queue drained


def test_udp_unreliable_no_retransmit(engine, fabric, hosts):
    a, b = hosts
    fabric.loss_rate = 1.0  # everything dropped

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7005))
        yield call("setsockopt", fd, "O_NONBLOCK", 1)
        yield call("sleep", 2.0)
        r = yield call("recv", fd, 1024, 0)
        return r

    def client(call):
        fd = yield call("socket", "udp")
        yield call("sendto", fd, b"lost", (b.ip, 7005))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    r, _ = run_tasks(engine, srv, cli)
    assert isinstance(r, Errno) and r.name == "EWOULDBLOCK"
    assert fabric.dropped_packets == 1  # and nothing retried


def test_raw_ip_sockets(engine, hosts):
    a, b = hosts
    PROTO_ICMPISH = 42

    def server(call):
        fd = yield call("socket", "raw")
        yield call("bind", fd, (b.ip, PROTO_ICMPISH))
        data, src = yield call("recvfrom", fd, 1024, 0)
        return data, src

    def client(call):
        fd = yield call("socket", "raw")
        yield call("bind", fd, (a.ip, PROTO_ICMPISH))
        yield call("sendto", fd, b"raw-payload", (b.ip, PROTO_ICMPISH))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (data, src), _ = run_tasks(engine, srv, cli)
    assert data == b"raw-payload"
    assert src[0] == a.ip


def test_udp_buffer_overflow_drops(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "udp")
        yield call("bind", fd, (b.ip, 7006))
        yield call("setsockopt", fd, "SO_RCVBUF", 1000)
        yield call("sleep", 2.0)  # let datagrams pile up
        got = []
        yield call("setsockopt", fd, "O_NONBLOCK", 1)
        while True:
            r = yield call("recv", fd, 2048, 0)
            if isinstance(r, Errno):
                break
            got.append(r)
        return got

    def client(call):
        fd = yield call("socket", "udp")
        for i in range(10):
            yield call("sendto", fd, bytes([i]) * 400, (b.ip, 7006))
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    got, _ = run_tasks(engine, srv, cli)
    assert 0 < len(got) < 10  # some delivered, overflow dropped
