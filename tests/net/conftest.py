"""Fixtures and helpers for network-stack tests."""

from __future__ import annotations

import pytest

from repro.net import Fabric, NetStack
from repro.sim import all_of
from repro.vos import Kernel


class Host:
    """A node bundle (kernel + stack) with a convenient syscall driver."""

    def __init__(self, engine, fabric, name, ip, **kw):
        self.engine = engine
        self.kernel = Kernel(engine, name, **kw)
        self.stack = NetStack(self.kernel, fabric, ip)
        self.ip = ip

    def task(self, gen_fn, *args, name="t"):
        """Spawn a host task; ``gen_fn`` receives a fresh syscall channel."""
        chan = self.kernel.host_channel(name)

        def call(sysname, *sysargs):
            return self.kernel.host_call(chan, sysname, *sysargs)

        return self.engine.spawn(gen_fn(call, *args), name=name)


@pytest.fixture
def fabric(engine):
    return Fabric(engine)


@pytest.fixture
def hosts(engine, fabric):
    """Two plain nodes on one fabric."""
    a = Host(engine, fabric, "na", "10.0.0.1")
    b = Host(engine, fabric, "nb", "10.0.0.2")
    return a, b


def run_tasks(engine, *tasks, until=60.0):
    """Drive the engine until every task finishes; return their results."""
    combined = all_of([t.finished for t in tasks])
    combined.add_done_callback(lambda _f: engine.stop())
    engine.run(until=until)
    assert combined.done, f"tasks did not finish by t={engine.now}"
    return combined.result
