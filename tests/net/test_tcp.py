"""TCP behaviour tests: handshake, data, EOF, OOB, retransmit, backlog."""


from repro.net import MSG_OOB, MSG_PEEK
from repro.vos.syscalls import Errno

from .conftest import run_tasks


def _server_echo(call, ip, port, nbytes):
    """Accept one connection, read nbytes, echo them back."""
    fd = yield call("socket", "tcp")
    yield call("bind", fd, (ip, port))
    yield call("listen", fd, 8)
    newfd, peer = yield call("accept", fd)
    got = b""
    while len(got) < nbytes:
        chunk = yield call("recv", newfd, 65536, 0)
        assert not isinstance(chunk, Errno), chunk
        if chunk == b"":
            break
        got += chunk
    yield call("send", newfd, got, 0)
    return got, peer


def _client_send(call, ip, port, payload):
    fd = yield call("socket", "tcp")
    rc = yield call("connect", fd, (ip, port))
    assert rc == 0
    yield call("send", fd, payload, 0)
    got = b""
    while len(got) < len(payload):
        chunk = yield call("recv", fd, 65536, 0)
        if chunk == b"":
            break
        got += chunk
    return got


def test_connect_send_echo(engine, hosts):
    a, b = hosts
    payload = bytes(range(256)) * 4
    srv = b.task(_server_echo, b.ip, 5000, len(payload), name="srv")
    cli = a.task(_client_send, b.ip, 5000, payload, name="cli")
    (srv_got, peer), cli_got = run_tasks(engine, srv, cli)
    assert srv_got == payload
    assert cli_got == payload
    assert peer.ip == a.ip


def test_large_transfer_is_segmented(engine, hosts):
    a, b = hosts
    payload = b"x" * 200_000  # > MSS and > window chunks
    srv = b.task(_server_echo, b.ip, 5001, len(payload), name="srv")
    cli = a.task(_client_send, b.ip, 5001, payload, name="cli")
    (srv_got, _), cli_got = run_tasks(engine, srv, cli)
    assert srv_got == payload and cli_got == payload
    assert b.stack.nic.rx_packets > 10  # really was segmented


def test_accepted_socket_inherits_listener_port(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5002))
        yield call("listen", fd, 8)
        newfd, _peer = yield call("accept", fd)
        name = yield call("getsockname", newfd)
        return name

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5002))
        peername = yield call("getpeername", fd)
        return peername

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    name, peername = run_tasks(engine, srv, cli)
    assert name[1] == 5002  # the paper's port-inheritance property
    assert peername == (b.ip, 5002)


def test_connect_refused_when_no_listener(engine, hosts):
    a, b = hosts

    def client(call):
        fd = yield call("socket", "tcp")
        rc = yield call("connect", fd, (b.ip, 9999))
        return rc

    cli = a.task(client, name="cli")
    (rc,) = run_tasks(engine, cli)
    assert isinstance(rc, Errno) and rc.name == "ECONNREFUSED"


def test_close_delivers_eof(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5003))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        data = yield call("recv", newfd, 100, 0)
        eof = yield call("recv", newfd, 100, 0)
        return data, eof

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5003))
        yield call("send", fd, b"bye", 0)
        yield call("close", fd)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (data, eof), _ = run_tasks(engine, srv, cli)
    assert data == b"bye" and eof == b""


def test_shutdown_wr_leaves_other_direction_open(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5004))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        eof = yield call("recv", newfd, 100, 0)  # client shut down writes
        yield call("send", newfd, b"still-here", 0)  # reverse path works
        return eof

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5004))
        yield call("shutdown", fd, "wr")
        data = yield call("recv", fd, 100, 0)
        return data

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    eof, data = run_tasks(engine, srv, cli)
    assert eof == b""
    assert data == b"still-here"


def test_msg_peek_does_not_consume(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5005))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        peeked = yield call("recv", newfd, 5, MSG_PEEK)
        real = yield call("recv", newfd, 100, 0)
        return peeked, real

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5005))
        yield call("send", fd, b"hello world", 0)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (peeked, real), _ = run_tasks(engine, srv, cli)
    assert peeked == b"hello"
    assert real == b"hello world"


def test_oob_data_separate_channel(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5006))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        normal = yield call("recv", newfd, 100, 0)
        oob = yield call("recv", newfd, 100, MSG_OOB)
        return normal, oob

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5006))
        yield call("send", fd, b"normal", 0)
        yield call("send", fd, b"!", MSG_OOB)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    (normal, oob), _ = run_tasks(engine, srv, cli)
    assert normal == b"normal"
    assert oob == b"!"


def test_oobinline_routes_urgent_into_stream(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        # set on the listener so accepted children inherit it before any
        # urgent data can race ahead of a post-accept setsockopt
        yield call("setsockopt", fd, "SO_OOBINLINE", 1)
        yield call("bind", fd, (b.ip, 5007))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        data = b""
        while b"!" not in data:
            chunk = yield call("recv", newfd, 100, 0)
            data += chunk
        return data

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5007))
        yield call("send", fd, b"ab", 0)
        yield call("send", fd, b"!", MSG_OOB)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    data, _ = run_tasks(engine, srv, cli)
    assert data == b"ab!"


def test_retransmission_through_lossy_fabric(engine, fabric, hosts):
    a, b = hosts
    fabric.loss_rate = 0.2  # drop one in five packets
    payload = b"R" * 50_000
    srv = b.task(_server_echo, b.ip, 5008, len(payload), name="srv")
    cli = a.task(_client_send, b.ip, 5008, payload, name="cli")
    (srv_got, _), cli_got = run_tasks(engine, srv, cli, until=120.0)
    assert srv_got == payload and cli_got == payload
    assert fabric.dropped_packets > 0


def test_netfilter_freeze_then_retransmit_recovers(engine, fabric, hosts):
    a, b = hosts
    payload = b"F" * 30_000
    # Block the client's address on the server node partway through,
    # then unblock: TCP must recover via retransmission.
    engine.schedule(0.0005, b.stack.netfilter.block_ip, a.ip)
    engine.schedule(1.5, b.stack.netfilter.unblock_ip, a.ip)
    srv = b.task(_server_echo, b.ip, 5009, len(payload), name="srv")
    cli = a.task(_client_send, b.ip, 5009, payload, name="cli")
    (srv_got, _), cli_got = run_tasks(engine, srv, cli, until=120.0)
    assert srv_got == payload and cli_got == payload
    assert b.stack.netfilter.dropped > 0


def test_send_blocks_when_buffer_full_then_completes(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5010))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        # read slowly so the sender's buffer fills
        total = b""
        while len(total) < 300_000:
            chunk = yield call("recv", newfd, 8192, 0)
            if chunk == b"":
                break
            total += chunk
        return len(total)

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5010))
        yield call("setsockopt", fd, "SO_SNDBUF", 32768)
        sent = 0
        for _ in range(30):
            n = yield call("send", fd, b"z" * 10_000, 0)
            sent += n
        return sent

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    total, sent = run_tasks(engine, srv, cli, until=120.0)
    assert sent == 300_000 and total == 300_000


def test_nonblocking_recv_returns_ewouldblock(engine, hosts):
    a, b = hosts

    def server(call):
        fd = yield call("socket", "tcp")
        yield call("bind", fd, (b.ip, 5011))
        yield call("listen", fd, 8)
        newfd, _ = yield call("accept", fd)
        yield call("setsockopt", newfd, "O_NONBLOCK", 1)
        r = yield call("recv", newfd, 100, 0)
        return r

    def client(call):
        fd = yield call("socket", "tcp")
        yield call("connect", fd, (b.ip, 5011))
        yield call("sleep", 5.0)
        return 0

    srv = b.task(server, name="srv")
    cli = a.task(client, name="cli")
    r, _ = run_tasks(engine, srv, cli)
    assert isinstance(r, Errno) and r.name == "EWOULDBLOCK"


def test_pcb_invariant_recv_geq_acked(engine, hosts):
    """The overlap invariant the restart fix relies on: recv₁ ≥ acked₂."""
    a, b = hosts
    payload = b"I" * 100_000
    srv = b.task(_server_echo, b.ip, 5012, len(payload), name="srv")
    cli = a.task(_client_send, b.ip, 5012, payload, name="cli")

    violations = []

    def probe():
        for key, sock in list(a.stack.established.items()):
            peer = b.stack.established.get((key[0], key[2], key[1]))
            if peer is None:
                continue
            if peer.conn.pcb.rcv_nxt < sock.conn.pcb.snd_una:
                violations.append((peer.conn.pcb.rcv_nxt, sock.conn.pcb.snd_una))
        if not (srv.done and cli.done):
            engine.schedule(0.001, probe)

    engine.schedule(0.001, probe)
    run_tasks(engine, srv, cli)
    assert violations == []


def test_deterministic_completion_time(fabric_seed=11):
    from repro.sim import Engine
    from repro.net import Fabric
    from .conftest import Host

    times = []
    for _ in range(2):
        engine = Engine(seed=fabric_seed)
        fabric = Fabric(engine, loss_rate=0.05)
        a = Host(engine, fabric, "na", "10.0.0.1")
        b = Host(engine, fabric, "nb", "10.0.0.2")
        payload = b"D" * 20_000
        srv = b.task(_server_echo, b.ip, 5013, len(payload), name="srv")
        cli = a.task(_client_send, b.ip, 5013, payload, name="cli")
        run_tasks(engine, srv, cli, until=120.0)
        times.append(engine.now)
    assert times[0] == times[1]
