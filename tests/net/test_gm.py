"""GM (kernel-bypass) device tests: ports, tokens, reliability, freeze."""

import pytest

from repro.cluster import Cluster
from repro.net.gm import DEFAULT_TOKENS, GmDevice
from repro.vos import DEAD, build_program, imm, program


@pytest.fixture
def world():
    cluster = Cluster.build(2, seed=41)
    devices = [GmDevice(node.kernel) for node in cluster.nodes]
    return cluster, devices


@program("testapp.gm-echo")
def _gm_echo(b, *, port, count):
    b.syscall("fd", "gm_open", imm(port))
    with b.for_range("i", imm(0), imm(count)):
        b.syscall("msg", "gm_recv", "fd")
        b.op("data", lambda m: m[0], "msg")
        b.op("src", lambda m: m[1], "msg")
        b.op("reply", lambda d: b"ack:" + d, "data")
        b.syscall(None, "gm_send", "fd", "src", "reply")
    b.halt(imm(0))


@program("testapp.gm-client")
def _gm_client(b, *, peer_vip, peer_port, port, count):
    b.syscall("fd", "gm_open", imm(port))
    b.mov("acks", imm(0))
    with b.for_range("i", imm(0), imm(count)):
        b.op("msg", lambda i: b"m%d" % i, "i")
        b.syscall(None, "gm_send", "fd", imm((peer_vip, peer_port)), "msg")
        b.syscall("r", "gm_recv", "fd")
        b.op("ok", lambda r, m: r[0] == b"ack:" + m, "r", "msg")
        with b.if_("ok"):
            b.op("acks", lambda a: a + 1, "acks")
        b.compute(imm(200_000))
    b.syscall("tokens", "gm_tokens", "fd")
    b.halt(imm(0))


def _launch_gm_pair(cluster, count=50):
    p_srv = cluster.create_pod(cluster.node(0), "gm-srv")
    cluster.create_pod(cluster.node(1), "gm-cli")
    srv = cluster.node(0).kernel.spawn(
        build_program("testapp.gm-echo", port=2, count=count), pod_id="gm-srv")
    cli = cluster.node(1).kernel.spawn(
        build_program("testapp.gm-client", peer_vip=p_srv.vip, peer_port=2,
                      port=2, count=count), pod_id="gm-cli")
    return srv, cli


def test_gm_request_reply_loop(world):
    cluster, _devices = world
    srv, cli = _launch_gm_pair(cluster, count=50)
    cluster.engine.run(until=60.0)
    assert srv.state == DEAD and cli.state == DEAD
    assert cli.regs["acks"] == 50
    # credits fully returned once everything is acknowledged
    assert cli.regs["tokens"] == DEFAULT_TOKENS


def test_gm_survives_packet_loss(world):
    """Device-level retransmission: messages arrive exactly once even
    with heavy loss (GM's reliability)."""
    cluster, _devices = world
    cluster.fabric.loss_rate = 0.3
    srv, cli = _launch_gm_pair(cluster, count=30)
    cluster.engine.run(until=300.0)
    assert srv.state == DEAD and cli.state == DEAD
    assert cli.regs["acks"] == 30
    assert cluster.fabric.dropped_packets > 0


def test_gm_tokens_throttle_senders(world):
    """A sender without credits blocks until the receiver drains."""
    cluster, devices = world
    p_rx = cluster.create_pod(cluster.node(0), "gm-rx")
    cluster.create_pod(cluster.node(1), "gm-tx")

    @program("testapp.gm-blast")
    def _blast(b, *, peer_vip, peer_port, n):
        b.syscall("fd", "gm_open", imm(3))
        with b.for_range("i", imm(0), imm(n)):
            b.syscall(None, "gm_send", "fd", imm((peer_vip, peer_port)), imm(b"x" * 100))
        b.halt(imm(0))

    @program("testapp.gm-sink")
    def _sink(b, *, n):
        b.syscall("fd", "gm_open", imm(3))
        b.syscall(None, "sleep", imm(1.0))  # let the sender exhaust tokens
        with b.for_range("i", imm(0), imm(n)):
            b.syscall(None, "gm_recv", "fd")
        b.halt(imm(0))

    n = DEFAULT_TOKENS * 3
    rx = cluster.node(0).kernel.spawn(
        build_program("testapp.gm-sink", n=n), pod_id="gm-rx")
    tx = cluster.node(1).kernel.spawn(
        build_program("testapp.gm-blast", peer_vip=p_rx.vip, peer_port=3, n=n),
        pod_id="gm-tx")
    cluster.engine.run(until=60.0)
    assert rx.state == DEAD and tx.state == DEAD
    # the sender must have been throttled across the sink's sleep
    assert tx.exit_time > 1.0


def test_gm_ports_are_per_endpoint(world):
    cluster, devices = world
    dev = devices[0]
    p = dev.open_port("10.77.0.1", 5)
    with pytest.raises(Exception):
        dev.open_port("10.77.0.1", 5)  # EADDRINUSE
    dev.close_port(p)
    dev.open_port("10.77.0.1", 5)  # reusable after close


def test_gm_state_extraction_round_trip(world):
    cluster, devices = world
    dev = devices[0]
    port = dev.open_port("10.77.0.1", 7)
    port.recv_q.append((55, b"queued", "10.77.0.2", 7))
    port.tokens = 3
    port.pending[99] = ("10.77.0.2", 7, b"unacked")
    states = dev.extract_state("10.77.0.1")
    assert len(states) == 1
    dev.close_port(port)
    restored = devices[1].reinstate_state(states)
    new_port = restored[7]
    assert list(new_port.recv_q) == [(55, b"queued", "10.77.0.2", 7)]
    assert new_port.tokens == 3
    assert new_port.pending == {99: ("10.77.0.2", 7, b"unacked")}
