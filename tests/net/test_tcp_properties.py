"""Property-based TCP tests: stream integrity under adversarial delivery.

The checkpoint correctness argument leans on TCP behaving like TCP:
bytes arrive exactly once, in order, regardless of loss, duplication or
reordering on the wire — and the PCB invariant ``recv ≥ acked`` holds
throughout.  These properties drive the protocol directly with
randomized segment schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.net import Fabric, NetStack, Segment
from repro.net.addr import Endpoint
from repro.sim import Engine
from repro.vos import Kernel


def _pair(seed=1, loss=0.0):
    """Two stacks with a hand-established TCP connection between them."""
    engine = Engine(seed=seed)
    fabric = Fabric(engine, loss_rate=loss)
    ka = Kernel(engine, "a")
    sa = NetStack(ka, fabric, "10.0.0.1")
    kb = Kernel(engine, "b")
    sb = NetStack(kb, fabric, "10.0.0.2")
    a = sa.create_socket("tcp")
    a.local = Endpoint("10.0.0.1", 1000)
    sa.register_established(a, Endpoint("10.0.0.2", 2000))
    b = sb.create_socket("tcp")
    b.local = Endpoint("10.0.0.2", 2000)
    sb.register_established(b, Endpoint("10.0.0.1", 1000))
    for s in (a, b):
        s.conn.state = "established"
        s.conn.pcb.snd_una = s.conn.pcb.snd_nxt = s.conn.pcb.rcv_nxt = 1001
    return engine, a, b


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=2000), min_size=1, max_size=12),
    loss=st.sampled_from([0.0, 0.1, 0.3]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_stream_integrity_under_loss(chunks, loss, seed):
    """Whatever is written on one side is read exactly, in order, on the
    other — under random packet loss."""
    engine, a, b = _pair(seed=seed, loss=loss)
    for chunk in chunks:
        a.conn.app_write(chunk)
    engine.run(until=120.0)
    expect = b"".join(chunks)
    b.conn.process_backlog()
    assert bytes(b.conn.recv_q) == expect
    # PCB invariant: the receiver's recv never lags the sender's acked
    assert b.conn.pcb.rcv_nxt >= a.conn.pcb.snd_una
    # and with everything quiesced, the send queue fully drained
    assert len(a.conn.send_buf) == 0


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=3000),
    split=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=8),
    order=st.randoms(use_true_random=False),
)
def test_reassembly_from_arbitrary_segment_order(data, split, order):
    """Segments delivered in any order (with duplicates) reassemble the
    exact stream."""
    engine, _a, b = _pair()
    base = b.conn.pcb.rcv_nxt
    # cut `data` into segments at the given sizes
    segments = []
    pos = 0
    for size in split:
        if pos >= len(data):
            break
        chunk = data[pos:pos + size]
        segments.append(Segment(seq=base + pos, flags=frozenset({"ACK"}), data=chunk))
        pos += len(chunk)
    if pos < len(data):
        segments.append(Segment(seq=base + pos, flags=frozenset({"ACK"}), data=data[pos:]))
    # shuffled delivery plus a duplicated prefix
    shuffled = list(segments)
    order.shuffle(shuffled)
    shuffled += segments[:2]
    for seg in shuffled:
        b.conn.deliver(seg)
    b.conn.process_backlog()
    assert bytes(b.conn.recv_q) == data
    assert b.conn.pcb.rcv_nxt == base + len(data)


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=0, max_size=1500),
    fin_early=st.booleans(),
)
def test_fin_never_skips_data(data, fin_early):
    """A FIN racing ahead of data must not report EOF before the stream
    is complete (the out-of-order FIN fix)."""
    engine, _a, b = _pair()
    base = b.conn.pcb.rcv_nxt
    data_seg = Segment(seq=base, flags=frozenset({"ACK"}), data=data)
    fin_seg = Segment(seq=base + len(data), flags=frozenset({"ACK", "FIN"}))
    if fin_early and data:
        b.conn.deliver(fin_seg)
        b.conn.process_backlog()
        assert not b.conn.fin_rcvd  # EOF withheld: data still missing
        b.conn.deliver(data_seg)
    else:
        b.conn.deliver(data_seg)
        b.conn.deliver(fin_seg)
    b.conn.process_backlog()
    assert bytes(b.conn.recv_q) == data
    assert b.conn.fin_rcvd
    assert b.conn.pcb.rcv_nxt == base + len(data) + 1


@settings(max_examples=30, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=1200), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_bidirectional_streams_are_independent(chunks, seed):
    engine, a, b = _pair(seed=seed)
    for i, chunk in enumerate(chunks):
        (a if i % 2 == 0 else b).conn.app_write(chunk)
    engine.run(until=60.0)
    a.conn.process_backlog()
    b.conn.process_backlog()
    assert bytes(b.conn.recv_q) == b"".join(c for i, c in enumerate(chunks) if i % 2 == 0)
    assert bytes(a.conn.recv_q) == b"".join(c for i, c in enumerate(chunks) if i % 2 == 1)
