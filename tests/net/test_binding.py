"""Port binding and allocation semantics."""

import pytest

from repro.errors import SyscallError
from repro.net import Fabric, NetStack
from repro.vos import Kernel


@pytest.fixture
def stack(engine):
    kernel = Kernel(engine, "n")
    return NetStack(kernel, Fabric(engine), "10.0.0.1")


def test_bind_conflict_is_eaddrinuse(stack):
    a = stack.create_socket("tcp")
    stack.bind_socket(a, "10.0.0.1", 5000)
    b = stack.create_socket("tcp")
    with pytest.raises(SyscallError) as ei:
        stack.bind_socket(b, "10.0.0.1", 5000)
    assert ei.value.errno == "EADDRINUSE"


def test_reuseaddr_permits_rebinding(stack):
    a = stack.create_socket("tcp")
    stack.bind_socket(a, "10.0.0.1", 5001)
    b = stack.create_socket("tcp")
    b.options["SO_REUSEADDR"] = 1
    ep = stack.bind_socket(b, "10.0.0.1", 5001)
    assert ep.port == 5001


def test_double_bind_same_socket_rejected(stack):
    a = stack.create_socket("tcp")
    stack.bind_socket(a, "10.0.0.1", 5002)
    with pytest.raises(SyscallError) as ei:
        stack.bind_socket(a, "10.0.0.1", 5003)
    assert ei.value.errno == "EINVAL"


def test_ephemeral_ports_are_distinct(stack):
    ports = set()
    for _ in range(100):
        s = stack.create_socket("udp")
        ep = stack.bind_socket(s, "10.0.0.1", 0)
        ports.add(ep.port)
    assert len(ports) == 100
    assert all(32768 <= p < 61000 for p in ports)


def test_udp_and_tcp_share_port_numbers(stack):
    """Different protocols have independent port spaces."""
    t = stack.create_socket("tcp")
    stack.bind_socket(t, "10.0.0.1", 5004)
    u = stack.create_socket("udp")
    ep = stack.bind_socket(u, "10.0.0.1", 5004)
    assert ep.port == 5004


def test_unbind_releases_the_port(stack):
    a = stack.create_socket("udp")
    stack.bind_socket(a, "10.0.0.1", 5005)
    stack.unbind(a)
    b = stack.create_socket("udp")
    b2 = stack.create_socket("udp")
    ep = stack.bind_socket(b, "10.0.0.1", 5005)
    assert ep.port == 5005


def test_unknown_protocol_rejected(stack):
    with pytest.raises(SyscallError) as ei:
        stack.create_socket("sctp")
    assert ei.value.errno == "EPROTONOSUPPORT"
