"""Property-based tests on the wave scheduler.

For any unit layout and any ``max_inflight`` / ``wave_size`` setting,
the planner must partition the units exactly (every unit once, order
preserved) with every wave full except possibly the last, target
selection must be the deterministic least-loaded choice, and the
in-flight gate must bound concurrency at its limit while always letting
every waiter through (no lost wakeups, no starvation).
"""

from hypothesis import given, settings, strategies as st

from repro.fleet.scheduler import (
    InflightGate,
    pick_target,
    plan_placements,
    plan_waves,
)
from repro.sim.engine import Engine

units_st = st.lists(
    st.tuples(st.sampled_from([f"blade{i}" for i in range(6)]),
              st.text(alphabet="abcdef", min_size=1, max_size=4),
              st.just("")),
    min_size=0, max_size=40)


@given(units=units_st, wave_size=st.integers(min_value=-2, max_value=9))
@settings(max_examples=200, deadline=None)
def test_plan_waves_partitions_in_order(units, wave_size):
    waves = plan_waves(units, wave_size)
    flat = [u for wave in waves for u in wave]
    assert flat == list(units)          # exact partition, order preserved
    if units:
        size = wave_size if wave_size >= 1 else len(units)
        for wave in waves[:-1]:
            assert len(wave) == size    # only the last wave may be short
        assert 1 <= len(waves[-1]) <= size
    else:
        assert waves == []


@given(load=st.dictionaries(st.sampled_from([f"n{i}" for i in range(8)]),
                            st.integers(min_value=0, max_value=50),
                            max_size=8),
       exclude=st.sets(st.sampled_from([f"n{i}" for i in range(8)])))
@settings(max_examples=200, deadline=None)
def test_pick_target_is_least_loaded_and_deterministic(load, exclude):
    chosen = pick_target(load, exclude=exclude)
    eligible = {n: c for n, c in load.items() if n not in exclude}
    if not eligible:
        assert chosen is None
        return
    assert chosen in eligible
    assert load[chosen] == min(eligible.values())
    assert chosen == pick_target(dict(load), exclude=set(exclude))


@given(units=units_st)
@settings(max_examples=100, deadline=None)
def test_plan_placements_spreads_by_load(units):
    # placements are keyed by pod: keep the first unit per pod id
    seen = set()
    uniq = [u for u in units if not (u[1] in seen or seen.add(u[1]))]
    load = {f"blade{i}": 0 for i in range(6, 9)}
    placed = plan_placements(uniq, dict(load), exclude=())
    assert set(placed) == seen
    counts = {}
    for _pod, dest in placed.items():
        assert dest in load              # all empty-arg units get placed
        counts[dest] = counts.get(dest, 0) + 1
    # equal starting load + reservation-aware draws → balanced
    per_node = [counts.get(n, 0) for n in load]
    assert max(per_node) - min(per_node) <= 1


@given(limit=st.integers(min_value=1, max_value=7),
       n_tasks=st.integers(min_value=0, max_value=30),
       holds=st.lists(st.floats(min_value=0.0, max_value=2.0,
                                allow_nan=False), min_size=0, max_size=30))
@settings(max_examples=60, deadline=None)
def test_inflight_gate_bounds_and_terminates(limit, n_tasks, holds):
    engine = Engine()
    gate = InflightGate(limit)
    state = {"live": 0, "peak": 0, "done": 0}

    def worker(hold_s):
        yield from gate.acquire()
        state["live"] += 1
        state["peak"] = max(state["peak"], state["live"])
        if hold_s > 0.0:
            yield engine.sleep(hold_s)
        else:
            yield None
        state["live"] -= 1
        gate.release()
        state["done"] += 1

    for i in range(n_tasks):
        hold = holds[i % len(holds)] if holds else 0.0
        engine.spawn(worker(hold), name=f"w{i}")
    engine.run(until=500.0)
    assert state["done"] == n_tasks          # every waiter got through
    assert state["peak"] <= limit            # never over the limit
    assert gate.peak == state["peak"]
    assert gate.active == 0
