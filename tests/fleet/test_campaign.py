"""Campaign engine behavior: waves, threshold, retries, budgets, ledger.

All scenarios run the shared idle-pod world (``build_fleet_world``) so
campaigns are deterministic and cheap; see
tests/fleet/test_drain_evacuate.py for the drain/evacuation surface and
tests/chaos/test_fleet_chaos.py for the fault-injected battery.
"""

import pytest

from repro.cluster.faults import FaultInjector, FaultPlan, FaultSpec, crash_node
from repro.fleet import (
    FLEET_TIMEOUTS,
    Campaign,
    FleetPolicy,
    build_fleet_world,
    checkpoint_fleet_task,
)
from repro.storage.ledger import OpLedger


def _run(cluster, gen, until=600.0):
    state = {}

    def driver():
        state["res"] = yield from gen
    cluster.engine.spawn(driver(), name="drv")
    cluster.engine.run(until=until)
    return state.get("res")


def test_checkpoint_fleet_commits_and_resumes_pods():
    cluster, manager, pods = build_fleet_world(4, 9, seed=1, first_node=1,
                                               last_node=3)
    policy = FleetPolicy(max_inflight=3)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok"
    assert res.counts() == {"ok": 9, "failed": 0, "skipped": 0}
    assert res.peak_inflight <= 3
    # snapshot semantics: every pod still runs in place, unsuspended
    for node_name, pod_id in pods:
        node = cluster.node_by_name(node_name)
        assert pod_id in node.kernel.pods
        assert not node.kernel.pods[pod_id].suspended
    # each image landed on the SAN and loads completely
    from repro.core.pipeline import FileSink
    home = cluster.node(0)
    for _node, pod_id in pods:
        sink = FileSink(cluster.san, home.kernel.vfs,
                        f"/san/fleet-c{res.cid}-{pod_id}.img")
        assert sink.exists()
        assert sink.load(pod_id) is not None
    # the ledger folded the campaign to a terminal commit
    lc = OpLedger(cluster.san).replay_campaigns()[res.cid]
    assert lc.terminal and lc.phase == "commit"
    assert len(lc.done_pods) == 9
    assert lc.waves_done == list(range(len(lc.waves)))


def test_wave_barrier_serializes_waves():
    cluster, manager, _pods = build_fleet_world(4, 8, seed=2, first_node=1,
                                                last_node=3)
    policy = FleetPolicy(max_inflight=2, wave_size=2, wave_barrier=True)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok" and len(res.waves) == 4
    for earlier, later in zip(res.waves, res.waves[1:]):
        assert earlier.t_end <= later.t_start  # strict wave serialization


def test_no_barrier_overlaps_waves():
    cluster, manager, _pods = build_fleet_world(4, 8, seed=2, first_node=1,
                                                last_node=3)
    policy = FleetPolicy(max_inflight=4, wave_size=2, wave_barrier=False)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok"
    assert res.peak_inflight > 2    # units from different waves in flight
    windows = [(w.t_start, w.t_end) for w in res.waves]
    assert any(a_end > b_start for (_a, a_end), (b_start, _b)
               in zip(windows, windows[1:]))


def test_threshold_halts_campaign_and_skips_tail():
    cluster, manager, pods = build_fleet_world(5, 12, seed=3, first_node=1,
                                               last_node=4)
    # plan over the full fleet, then kill one populated blade: its units
    # fail instantly ("source node crashed") as the waves reach them
    units = [(node, pod, "") for node, pod in pods]
    crash_node(cluster, cluster.node_by_name("blade2"))
    policy = FleetPolicy(max_inflight=1, wave_size=1, failure_threshold=0.1,
                         retries=0)
    camp = Campaign(manager, "checkpoint", units, policy=policy,
                    timeouts=FLEET_TIMEOUTS)
    res = _run(cluster, camp.run_task())
    assert res.status == "halted"
    assert res.threshold_tripped
    counts = res.counts()
    assert counts["failed"] >= 2          # 12 units, >10% must have failed
    assert counts["skipped"] >= 1         # the tail never launched
    failed_frac = counts["failed"] / len(res.pods)
    assert failed_frac > policy.failure_threshold
    # no retry ran after the halt
    for pod_id, out in res.pods.items():
        if out.status == "skipped":
            assert out.attempts == 0
    lc = OpLedger(cluster.san).replay_campaigns()[res.cid]
    assert lc.phase == "halted" and lc.terminal


def test_failed_unit_is_retried():
    cluster, manager, pods = build_fleet_world(4, 4, seed=4, first_node=1,
                                               last_node=2)
    from repro.obs.metrics import MetricsRegistry
    metrics = MetricsRegistry().install(cluster)
    # first checkpoint attempt of fp0000 times out: its blade is cut off
    # for longer than every phase deadline, then heals
    plan = FaultPlan(seed=0, faults=[
        FaultSpec(kind="link_drop", phase="fleet.pod_start", node="blade1",
                  pod="fp0000", seconds=9.0)])
    FaultInjector(cluster, plan).install()
    policy = FleetPolicy(max_inflight=1, retries=2, retry_backoff=1.0,
                         failure_threshold=1.0)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    out = res.pods["fp0000"]
    assert out.status == "ok"
    assert out.attempts >= 2              # first attempt failed, retry won
    assert res.status == "ok"
    attempts = [e for e in res.events if e[0] == "fp0000"]
    assert [s for (_p, _w, _a, _t0, _t1, s) in attempts][:1] == ["failed"]
    assert metrics.counter("fleet.retries").value >= 1


def test_downtime_budget_trips_are_reported():
    cluster, manager, _pods = build_fleet_world(4, 6, seed=5, first_node=1,
                                                last_node=3)
    policy = FleetPolicy(max_inflight=2, downtime_budget=1e-9)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    # a nanosecond budget trips on every pod, but trips are advisory
    assert res.status == "ok"
    assert sorted(res.budget_trips) == sorted(res.pods)
    assert sum(w.budget_trips for w in res.waves) == len(res.pods)


def test_budget_as_failure_feeds_threshold():
    cluster, manager, _pods = build_fleet_world(4, 6, seed=5, first_node=1,
                                                last_node=3)
    policy = FleetPolicy(max_inflight=2, downtime_budget=1e-9,
                         budget_as_failure=True, failure_threshold=0.0)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    assert res.threshold_tripped
    assert res.status == "halted"


def test_campaign_refused_when_nodes_claimed():
    cluster, manager, _pods = build_fleet_world(4, 4, seed=6, first_node=1,
                                                last_node=2)
    assert manager.claim_nodes(["blade1"], "recover:op99")
    from repro.fleet import drain_campaign
    camp = drain_campaign(manager, "blade1", policy=FleetPolicy(),
                          timeouts=FLEET_TIMEOUTS)
    res = _run(cluster, camp.run_task())
    assert res.status == "excluded"
    assert "node claim refused" in res.errors[0]
    # nothing was journaled for the refused campaign
    assert res.cid not in OpLedger(cluster.san).replay_campaigns()


def test_downtime_distribution_is_nontrivial():
    cluster, manager, _pods = build_fleet_world(4, 14, seed=7, first_node=1,
                                                last_node=3)
    policy = FleetPolicy(max_inflight=4)
    res = _run(cluster, checkpoint_fleet_task(manager, policy=policy,
                                              timeouts=FLEET_TIMEOUTS))
    times = res.downtimes()
    assert len(times) == 14
    # ballast spread (i % 7 steps) must show up as distinct downtimes
    assert len(set(times)) >= 5
    assert res.downtime_percentile(99) >= res.downtime_percentile(50) > 0.0
