"""Drain, evacuation, and the 100-node / 1000-pod campaign.

The tentpole acceptance scenario lives here: a 100-blade cluster with
1000 idle pods is fully evacuated under soft fault injection, with
bounded per-pod downtime and a byte-identical trace per seed.
"""

from repro.cluster.faults import FLEET_PHASES
from repro.fleet import (
    FLEET_TIMEOUTS,
    FleetPolicy,
    build_fleet_world,
    drain_task,
    evacuate_task,
    run_evacuation_demo,
)
from repro.storage.ledger import OpLedger


def _run(cluster, gen, until=3600.0):
    state = {}

    def driver():
        state["res"] = yield from gen
    cluster.engine.spawn(driver(), name="drv")
    cluster.engine.run(until=until)
    return state.get("res")


def test_drain_empties_node_and_releases_claim():
    cluster, manager, pods = build_fleet_world(6, 12, seed=1, first_node=1,
                                               last_node=3)
    res = _run(cluster, drain_task(manager, "blade2",
                                   policy=FleetPolicy(max_inflight=2),
                                   timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok" and res.kind == "drain"
    drained = cluster.node_by_name("blade2")
    assert not drained.kernel.pods
    # every drained pod runs elsewhere, never on the drained node
    for out in res.pods.values():
        assert out.dest is not None and out.dest != "blade2"
        host = cluster.node_by_name(out.dest)
        assert out.pod in host.kernel.pods
        assert not host.kernel.pods[out.pod].suspended
    # the node claim was released at campaign end
    assert manager.node_claim_holder("blade2") is None
    lc = OpLedger(cluster.san).replay_campaigns()[res.cid]
    assert lc.terminal and lc.kind == "drain"


def test_drain_lands_least_loaded_first():
    cluster, manager, _pods = build_fleet_world(8, 12, seed=2, first_node=1,
                                                last_node=2)
    # blades 3..7 and 0 are empty; 6 migrations must spread over them
    res = _run(cluster, drain_task(manager, "blade1",
                                   policy=FleetPolicy(max_inflight=6),
                                   timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok"
    landed = {}
    for out in res.pods.values():
        landed[out.dest] = landed.get(out.dest, 0) + 1
    # 6 pods over 6 empty blades (0, 3..7): at most one each until the
    # loaded blade2 would be cheaper
    assert max(landed.values()) == 1
    assert "blade2" not in landed      # blade2 still holds its own 6 pods


def test_evacuate_never_lands_on_evacuating_set():
    cluster, manager, _pods = build_fleet_world(8, 20, seed=3, first_node=1,
                                                last_node=4)
    evac = ["blade1", "blade2", "blade3"]
    res = _run(cluster, evacuate_task(manager, evac,
                                      policy=FleetPolicy(max_inflight=4),
                                      timeouts=FLEET_TIMEOUTS))
    assert res.status == "ok" and res.kind == "evacuate"
    for name in evac:
        assert not cluster.node_by_name(name).kernel.pods
        assert manager.node_claim_holder(name) is None
    for out in res.pods.values():
        assert out.dest not in evac


def test_evacuation_demo_deterministic_with_faults():
    a = run_evacuation_demo(n_nodes=16, n_pods=48, n_evacuate=12, seed=9,
                            max_inflight=6, n_faults=3, trace_spans=True)
    b = run_evacuation_demo(n_nodes=16, n_pods=48, n_evacuate=12, seed=9,
                            max_inflight=6, n_faults=3, trace_spans=True)
    assert a["result"].status == b["result"].status == "ok"
    assert a["injector"].trace == b["injector"].trace
    assert a["injector"].fired == b["injector"].fired
    from repro.obs import to_jsonl
    assert to_jsonl(a["tracer"]) == to_jsonl(b["tracer"])
    assert a["result"].events == b["result"].events
    assert [w.t_end for w in a["result"].waves] == \
           [w.t_end for w in b["result"].waves]


def test_hundred_node_thousand_pod_evacuation():
    """The acceptance scenario: 100 blades, 1000 pods, 75 blades
    evacuated under seeded soft fault injection."""
    out = run_evacuation_demo(n_nodes=100, n_pods=1000, n_evacuate=75,
                              seed=13, max_inflight=16, n_faults=4)
    res = out["result"]
    assert res.status == "ok"
    assert res.counts() == {"ok": 1000, "failed": 0, "skipped": 0}
    assert res.peak_inflight <= 16
    # faults really fired mid-campaign (soft kinds only)
    assert out["injector"].fired
    assert all(kind in ("hang", "link_delay")
               for (_t, kind, _ph, _n, _p) in out["injector"].fired)
    # every evacuated blade is empty; every pod landed off the set
    cluster = out["cluster"]
    evac = set(out["evacuated"])
    for name in evac:
        assert not cluster.node_by_name(name).kernel.pods
    survivors = [n for n in cluster.nodes if n.name not in evac]
    assert sum(len(n.kernel.pods) for n in survivors) == 1000
    # landing is load-balanced: 1000 pods over 25 spare blades
    counts = sorted(len(n.kernel.pods) for n in survivors)
    assert counts[-1] - counts[0] <= 1
    # bounded per-pod downtime: the distribution is tight and small
    assert 0.0 < res.downtime_percentile(50) <= res.downtime_percentile(99)
    assert res.downtime_percentile(99) < 1.0
    # the whole campaign journaled to a terminal commit
    lc = OpLedger(cluster.san).replay_campaigns()[res.cid]
    assert lc.terminal and lc.phase == "commit"
    assert len(lc.done_pods) == 1000


def test_fleet_phase_crossings_emitted():
    out = run_evacuation_demo(n_nodes=8, n_pods=12, n_evacuate=4, seed=5,
                              max_inflight=4, n_faults=1)
    phases = {ev[1] for ev in out["injector"].trace}
    # the trace records every crossing (agent/manager phases included);
    # all four in-campaign fleet crossings must be among them
    assert {"fleet.wave_start", "fleet.pod_start", "fleet.pod_done",
            "fleet.wave_done"} <= phases
    # the seeded plan itself only draws fleet-phase specs
    assert all(spec.phase in FLEET_PHASES
               for spec in out["injector"].plan.faults)
