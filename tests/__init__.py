"""Test package."""
