"""Campaign-trace assembler tests: ledger skeleton, span stitching,
adopted ops, determinism, and artifact validity.

The seeded chaos batteries never happen to adopt an op mid-campaign
(takeover always lands between units), so the adoption path is pinned
here with a handcrafted ledger: mgr0 opens op 9, crashes, mgr1 claims
and finishes it, and the pod record carries ``adopted: true``.
"""

import json

import pytest

from repro.obs.assemble import (CampaignTrace, TraceNode, assemble_campaign,
                                assemble_campaigns)
from repro.obs.tracer import OP, SpanTracer
from repro.obs.validate import validate_campaign, validate_chrome


class FakeEngine:
    def __init__(self):
        self.now = 0.0


def ledger_records():
    """A two-wave evacuation that survives a Manager crash.

    mgr0 drives wave 0 (pod p0, op 5) then dies with op 9 (pod p1)
    in flight; mgr1 claims the campaign and the orphan op, finishes
    both, and journals p1's outcome with the adopted flag.
    """
    return [
        {"rec": "campaign", "cid": 1, "phase": "begin", "kind": "evacuate",
         "units": [["blade1", "p0", ""], ["blade1", "p1", ""]],
         "waves": [["p0"], ["p1"]],
         "policy": {"max_inflight": 1, "downtime_budget": 0.5},
         "owner": "mgr0", "lease": 30.0, "t": 0.0},
        {"rec": "campaign", "cid": 1, "phase": "wave", "wave": 0,
         "owner": "mgr0", "lease": 31.0, "t": 1.0},
        {"rec": "op", "op": 5, "phase": "begin", "kind": "migrate",
         "targets": [["blade1", "p0", ""]], "owner": "mgr0",
         "lease": 32.0, "t": 1.0},
        {"rec": "phase", "op": 5, "phase": "commit", "owner": "mgr0",
         "t": 3.0},
        {"rec": "campaign", "cid": 1, "phase": "pod", "wave": 0, "pod": "p0",
         "status": "ok", "op": 5, "downtime": 0.2, "attempts": 1,
         "owner": "mgr0", "t": 3.5},
        {"rec": "campaign", "cid": 1, "phase": "wave-done", "wave": 0,
         "owner": "mgr0", "t": 4.0},
        {"rec": "campaign", "cid": 1, "phase": "wave", "wave": 1,
         "owner": "mgr0", "lease": 34.0, "t": 4.5},
        {"rec": "op", "op": 9, "phase": "begin", "kind": "migrate",
         "targets": [["blade1", "p1", ""]], "owner": "mgr0",
         "lease": 35.0, "t": 5.0},
        # mgr0 crashes here; mgr1 claims campaign and orphan op
        {"rec": "campaign-claim", "cid": 1, "owner": "mgr1",
         "lease": 64.0, "t": 6.0},
        {"rec": "claim", "op": 9, "owner": "mgr1", "lease": 66.0, "t": 6.5},
        {"rec": "phase", "op": 9, "phase": "commit", "owner": "mgr1",
         "t": 8.0},
        {"rec": "campaign", "cid": 1, "phase": "pod", "wave": 1, "pod": "p1",
         "status": "ok", "op": 9, "downtime": 0.3, "attempts": 1,
         "adopted": True, "owner": "mgr1", "t": 8.5},
        {"rec": "campaign", "cid": 1, "phase": "wave-done", "wave": 1,
         "owner": "mgr1", "t": 9.0},
        {"rec": "campaign", "cid": 1, "phase": "commit", "owner": "mgr1",
         "t": 9.5},
    ]


def span_dumps():
    """Two incarnations' span dumps: mgr0's episode and mgr1's.

    Op 9's phase span in dump 1 is *loose* — its driving op span died
    with mgr0, so it reaches the tree only through the stamped ``op``
    attr (the failover-stitching path).
    """
    mgr0 = SpanTracer(FakeEngine())
    op5 = mgr0.begin("manager.migrate", category=OP, key=("op", 5),
                     op=5, owner="mgr0")
    mgr0.engine.now = 1.2
    ph = mgr0.begin("agent.phase.suspend", node="blade1", pod="p0",
                    parent=("op", 5))
    mgr0.engine.now = 2.8
    ph.end()
    op5.end()
    dump0 = "\n".join(
        json.dumps(s.to_dict(), sort_keys=True) for s in mgr0.spans) + "\n"
    # dump 1 as a raw span-dict list (exercises the list input path)
    dump1 = [
        {"span": 1, "parent": None, "name": "agent.phase.restore",
         "t0": 6.8, "t1": 7.9, "node": "blade2", "pod": "p1",
         "cat": "phase", "status": "ok", "attrs": {"op": 9, "owner": "mgr1"}},
    ]
    return dump0, dump1


def test_ledger_alone_builds_complete_skeleton():
    trace = assemble_campaign(ledger_records())
    assert trace.cid == 1 and trace.kind == "evacuate"
    assert trace.status == "commit"
    assert trace.owners == ["mgr0", "mgr1"]
    root = trace.root
    assert root.kind == "campaign" and root.name == "fleet.evacuate"
    assert root.t0 == 0.0 and root.t1 == 9.5
    waves = [n for n in root.children if n.kind == "wave"]
    assert [w.attrs["wave"] for w in waves] == [0, 1]
    assert [w.attrs["owner"] for w in waves] == ["mgr0", "mgr0"]
    cov = trace.coverage()
    assert cov["complete"] and cov["in_tree"] == 2 and cov["missing"] == []
    assert trace.ops_in_tree == [5, 9] and trace.ops_unattached == []


def test_adopted_op_is_attached_and_flagged():
    trace = assemble_campaign(ledger_records())
    assert trace.adopted == ["p1"]
    assert trace.coverage()["adopted"] == ["p1"]
    unit = next(u for u in trace.units() if u.pod == "p1")
    assert unit.attrs["adopted"] is True
    opnode = next(n for n in unit.children if n.kind == "op")
    assert opnode.attrs["op"] == 9
    assert opnode.attrs["owner"] == "mgr1"        # the adopter
    assert opnode.attrs["claims"] == ["mgr1"]     # the takeover audit trail


def test_spans_from_both_incarnations_stitch_under_ops():
    trace = assemble_campaign(ledger_records(), dumps=span_dumps())
    unit0 = next(u for u in trace.units() if u.pod == "p0")
    op5 = next(n for n in unit0.children if n.kind == "op")
    names = {n.name: n.src for n in op5.walk()}
    assert names["manager.migrate"] == "span:0"
    assert names["agent.phase.suspend"] == "span:0"
    # the loose phase span joins op 9 through its stamped op attr
    unit1 = next(u for u in trace.units() if u.pod == "p1")
    op9 = next(n for n in unit1.children if n.kind == "op")
    restore = next(n for n in op9.walk() if n.name == "agent.phase.restore")
    assert restore.src == "span:1"
    assert restore.t0 == 6.8 and restore.t1 == 7.9
    # unit bounds stretch to cover the stitched spans
    assert unit1.t1 >= 8.5


def test_stray_recorded_pod_folds_into_the_plan():
    recs = ledger_records()
    recs.insert(-1, {"rec": "campaign", "cid": 1, "phase": "pod", "wave": 7,
                     "pod": "p9", "status": "failed", "owner": "mgr1",
                     "t": 9.2})
    trace = assemble_campaign(recs)
    cov = trace.coverage()
    assert cov["complete"] and "p9" in trace.pods_in_tree
    stray = next(u for u in trace.units() if u.pod == "p9")
    assert stray.status == "failed"


def test_planned_pod_without_outcome_is_unrecorded():
    recs = [r for r in ledger_records()
            if not (r.get("phase") == "pod" and r.get("pod") == "p1")]
    trace = assemble_campaign(recs)
    unit = next(u for u in trace.units() if u.pod == "p1")
    assert unit.status == "unrecorded"
    assert trace.coverage()["complete"]   # planned units still in tree


def test_jsonl_artifact_is_deterministic_and_valid():
    a = assemble_campaign(ledger_records(), dumps=span_dumps()).to_jsonl()
    b = assemble_campaign(ledger_records(), dumps=span_dumps()).to_jsonl()
    assert a == b
    assert validate_campaign(a) == []
    header = json.loads(a.splitlines()[0])
    assert header["schema"] == 1 and header["coverage"]["complete"]
    assert header["nodes"] == len(a.splitlines()) - 1


def test_chrome_export_is_schema_valid():
    trace = assemble_campaign(ledger_records(), dumps=span_dumps())
    doc = trace.to_chrome()
    assert validate_chrome(doc) == []
    lanes = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "thread_name"}
    assert lanes == {"campaign", "p0", "p1"}
    assert trace.dumps_chrome() == trace.dumps_chrome()


def test_assemble_campaign_raises_on_none_and_many():
    with pytest.raises(ValueError):
        assemble_campaign([])
    two = ledger_records() + [
        {"rec": "campaign", "cid": 2, "phase": "begin", "kind": "checkpoint",
         "units": [], "waves": [], "policy": {}, "owner": "mgr0",
         "lease": 9.0, "t": 10.0}]
    with pytest.raises(ValueError):
        assemble_campaign(two)
    assert assemble_campaign(two, cid=2).cid == 2
    assert len(assemble_campaigns(two)) == 2


def test_walk_is_preorder_and_sort_is_stable():
    root = TraceNode(kind="campaign", name="c", t0=0.0, t1=9.0)
    late = TraceNode(kind="wave", name="w1", t0=5.0, t1=6.0)
    early = TraceNode(kind="wave", name="w0", t0=1.0, t1=2.0)
    root.children = [late, early]
    root.sort()
    assert [n.name for n in root.walk()] == ["c", "w0", "w1"]
    trace = CampaignTrace(cid=0, kind="x", status="commit", owners=[],
                          root=root, pods_in_tree=[], pods_missing=["pX"])
    assert not trace.coverage()["complete"]
