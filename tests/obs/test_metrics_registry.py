"""Metrics registry unit tests: instruments, bucketing, determinism."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_monotonic():
    c = Counter("retries")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_last_write_wins():
    g = Gauge("epoch")
    g.set(3)
    g.set(1.5)
    assert g.value == 1.5


def test_histogram_bucketing_against_default_bounds():
    h = Histogram("wait", bounds=DEFAULT_BOUNDS)
    # a value exactly on an edge lands in that edge's bucket (inclusive)
    h.observe(0.0005)
    # just above the edge spills into the next bucket
    h.observe(0.00050001)
    # interior value
    h.observe(0.07)
    # above the last edge → overflow bucket
    h.observe(120.0)
    by_label = dict(h.buckets())
    assert by_label["≤0.0005"] == 1
    assert by_label["≤0.001"] == 1
    assert by_label["≤0.1"] == 1
    assert by_label["+inf"] == 1
    assert h.count == 4
    assert h.total == pytest.approx(0.0005 + 0.00050001 + 0.07 + 120.0)
    assert h.mean == pytest.approx(h.total / 4)
    assert sum(count for _label, count in h.buckets()) == h.count


def test_histogram_rejects_unsorted_or_empty_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(1.0, 0.5))


def test_histogram_custom_bounds_frozen():
    h = Histogram("sizes", bounds=[1.0, 2.0])
    assert h.bounds == (1.0, 2.0)
    h.observe(1.0)
    h.observe(1.5)
    h.observe(9.0)
    assert h.bucket_counts == [1, 1, 1]


def test_registry_get_or_create():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    # existing histogram keeps its original bounds even if re-requested
    assert reg.histogram("h", bounds=(1.0,)).bounds == DEFAULT_BOUNDS


def test_registry_install_sets_cluster_hook():
    class FakeCluster:
        metrics = None

    cluster = FakeCluster()
    reg = MetricsRegistry().install(cluster)
    assert cluster.metrics is reg


def test_snapshot_is_deterministic_and_sorted():
    def build():
        reg = MetricsRegistry()
        reg.counter("z.late").inc(2)
        reg.counter("a.early").inc(1)
        reg.gauge("depth").set(7)
        reg.histogram("wait").observe(0.01)
        reg.histogram("wait").observe(3.0)
        return reg

    a, b = build().snapshot(), build().snapshot()
    assert a == b
    assert list(a["counters"]) == ["a.early", "z.late"]
    assert a["histograms"]["wait"]["count"] == 2


def test_render_produces_tables():
    reg = MetricsRegistry()
    reg.counter("manager.connect_retries").inc(3)
    reg.histogram("manager.backoff_s").observe(0.2)
    text = reg.render()
    assert "counters & gauges" in text
    assert "manager.connect_retries" in text
    assert "histograms" in text
    assert "≤0.5:1" in text
    # empty registry renders to nothing rather than empty tables
    assert MetricsRegistry().render() == ""
