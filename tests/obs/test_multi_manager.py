"""Multi-incarnation traces: one op id driven by two Managers.

A failover redrives an op under the same id: the dead incarnation's
spans stay in the episode dump (closed by the sweep with their
registered outcome) while the successor re-registers the ``("op", id)``
key and drives its own span tree.  These tests pin what the assembler
and exporters rely on: latest key registration wins, per-incarnation
ambient context stamps the right owner, reconciliation holds to ±1 sim
tick on the surviving incarnation, and exporter lane order is stable.
"""

from repro.obs.exporters import dumps_chrome, to_chrome, to_jsonl
from repro.obs.tracer import (OP, PHASE, SIM_TICK_S, SpanTracer,
                              reconcile_op)
from repro.obs.validate import FLEET_SPAN_NAMES, validate_chrome


class FakeEngine:
    def __init__(self):
        self.now = 0.0


def build_episode():
    """One episode tracer spanning a crash: mgr0 drives op 3, dies
    mid-phase; mgr1 rebinds the key and redrives the same op id."""
    tracer = SpanTracer(FakeEngine())
    eng = tracer.engine
    op_a = tracer.begin("manager.checkpoint", category=OP, key=("op", 3),
                        op=3, owner="mgr0")
    tracer.set_context(("op", 3), mspan=op_a.span_id, owner="mgr0")
    tracer.add("manager.phase.connect", 0.0, 0.4, pod="p0",
               parent=op_a, category=PHASE)
    agent_a = tracer.begin("agent.phase.suspend", node="blade1", pod="p0",
                           parent=("op", 3))
    eng.now = 0.9
    agent_a.end()
    op_a.finalize_with("crashed", crashed_at=0.9)   # mgr0 dies here
    eng.now = 2.0
    op_b = tracer.begin("manager.checkpoint", category=OP, key=("op", 3),
                        op=3, owner="mgr1")
    tracer.set_context(("op", 3), mspan=op_b.span_id, owner="mgr1")
    tracer.add("manager.phase.connect", 2.0, 2.5, pod="p0",
               parent=op_b, category=PHASE)
    tracer.add("manager.phase.commit", 2.5, 3.0, pod="p0",
               parent=op_b, category=PHASE)
    agent_b = tracer.begin("agent.phase.suspend", node="blade1", pod="p0",
                           parent=("op", 3))
    eng.now = 3.0
    agent_b.end()
    op_b.end(duration_s=1.0)
    return tracer, op_a, op_b, agent_a, agent_b


def test_latest_key_registration_wins():
    tracer, op_a, op_b, agent_a, agent_b = build_episode()
    assert tracer.find(("op", 3)) is op_b
    assert agent_a.parent_id == op_a.span_id
    assert agent_b.parent_id == op_b.span_id


def test_context_rebind_stamps_per_incarnation_owner():
    tracer, op_a, op_b, agent_a, agent_b = build_episode()
    assert agent_a.attrs["owner"] == "mgr0"
    assert agent_a.attrs["mspan"] == op_a.span_id
    assert agent_b.attrs["owner"] == "mgr1"
    assert agent_b.attrs["mspan"] == op_b.span_id
    assert agent_a.attrs["op"] == agent_b.attrs["op"] == 3


def test_crashed_incarnation_closes_with_registered_outcome():
    tracer, op_a, _op_b, _a, _b = build_episode()
    tracer.engine.now = 3.0
    tracer.close_open()
    assert op_a.status == "crashed"
    assert op_a.attrs["crashed_at"] == 0.9
    assert op_a.t_end == 3.0


def test_surviving_incarnation_reconciles_to_one_tick():
    tracer, op_a, op_b, _a, _b = build_episode()
    assert reconcile_op(tracer, op_b) == []
    # slack is exactly ±1 sim tick around the reported latency
    op_b.attrs["duration_s"] = 1.0 + SIM_TICK_S
    assert reconcile_op(tracer, op_b) == []
    op_b.attrs["duration_s"] = 1.0 + 2.5 * SIM_TICK_S
    assert len(reconcile_op(tracer, op_b)) == 1
    # the crashed incarnation's half-driven op does NOT reconcile: its
    # sweep-closed duration dwarfs its one recorded phase
    tracer.close_open()
    assert len(reconcile_op(tracer, op_a)) == 1


def test_exporter_lane_order_is_stable_across_incarnations():
    tracer, *_ = build_episode()
    doc = to_chrome(tracer)
    metas = [e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "thread_name"]
    # Manager op lane first, then manager→pod lanes, then node lanes —
    # both incarnations share the same lanes, no duplicates
    assert metas == ["manager", "manager→p0", "blade1/p0"]
    assert validate_chrome(doc) == []


def test_multi_incarnation_exports_are_byte_identical():
    t1, *_ = build_episode()
    t2, *_ = build_episode()
    assert to_jsonl(t1) == to_jsonl(t2)
    assert dumps_chrome(t1) == dumps_chrome(t2)


def test_raw_fleet_dump_passes_fleet_validation():
    tracer = SpanTracer(FakeEngine())
    wave = tracer.begin("fleet.wave", category=OP, campaign=1, wave=0)
    tracer.instant("fleet.wave_start", campaign=1, wave=0)
    tracer.instant("fleet.pod_start", pod="p0", campaign=1)
    tracer.engine.now = 1.0
    tracer.instant("fleet.pod_done", pod="p0", campaign=1)
    wave.end()
    doc = to_chrome(tracer)
    assert validate_chrome(doc, require=list(FLEET_SPAN_NAMES)) == []
    problems = validate_chrome(doc, require=["fleet.absent"])
    assert problems == ["required span 'fleet.absent' absent from trace"]


def test_unknown_category_fails_validation():
    tracer = SpanTracer(FakeEngine())
    tracer.begin("x", category="mystery").end()
    doc = to_chrome(tracer)
    assert any("unknown span category 'mystery'" in p
               for p in validate_chrome(doc))
