"""SLO auditor tests: budget rules over constructed campaign traces."""

import json

from repro.obs.assemble import CampaignTrace, TraceNode
from repro.obs.slo import SloBudget, WallProfiler, audit_campaign


def make_trace(downtimes=(0.1, 0.2), status="commit", missing=(),
               attempts=1, block_s=0.05, policy=None):
    """A one-wave campaign with one recorded unit per downtime."""
    root = TraceNode(kind="campaign", name="fleet.evacuate",
                     t0=0.0, t1=10.0, status=status,
                     attrs={"campaign": 1})
    wave = TraceNode(kind="wave", name="fleet.wave", t0=0.0, t1=6.0,
                     attrs={"wave": 0})
    pods = []
    for i, d in enumerate(downtimes):
        pod = f"p{i}"
        unit = TraceNode(kind="unit", name=f"unit.{pod}", pod=pod,
                         t0=0.0, t1=4.0, status="ok",
                         attrs={"downtime": d, "attempts": attempts})
        unit.children.append(TraceNode(
            kind="window", name="agent.net_block", pod=pod,
            t0=1.0, t1=1.0 + block_s))
        wave.children.append(unit)
        pods.append(pod)
    root.children.append(wave)
    return CampaignTrace(
        cid=1, kind="evacuate", status=status, owners=["mgr0"], root=root,
        policy=policy if policy is not None else
        {"downtime_budget": 0.5, "max_inflight": 2},
        pods_in_tree=pods, pods_missing=list(missing))


def verdict(report, rule):
    return next(v for v in report.verdicts if v.rule == rule)


def test_coverage_rule_is_always_on():
    ok = audit_campaign(make_trace(), budget=SloBudget())
    assert [v.rule for v in ok.verdicts] == ["coverage"]
    assert ok.ok
    bad = audit_campaign(make_trace(missing=("p9",)), budget=SloBudget())
    assert not bad.ok
    assert "p9" in verdict(bad, "coverage").detail


def test_budgets_default_to_journaled_policy():
    report = audit_campaign(make_trace())
    rules = {v.rule for v in report.verdicts}
    # policy declares downtime_budget and max_inflight; the inflight
    # rule needs a series export, so only the downtime rule activates
    assert rules == {"coverage", "pod-downtime"}
    assert report.ok
    assert verdict(report, "pod-downtime").budget == 0.5


def test_pod_downtime_rule_names_offenders():
    report = audit_campaign(make_trace(downtimes=(0.1, 0.9, 0.8)))
    v = verdict(report, "pod-downtime")
    assert not v.ok and v.measured == 0.9
    assert "p1" in v.detail and "p2" in v.detail


def test_net_block_wave_retry_and_duration_rules():
    budget = SloBudget(net_block_s=0.01, wave_latency_s=5.0,
                       retry_rate=0.0, campaign_duration_s=8.0)
    report = audit_campaign(make_trace(attempts=3), budget=budget)
    assert not verdict(report, "net-block").ok        # 0.05 > 0.01
    assert not verdict(report, "wave-latency").ok     # 6.0 > 5.0
    v = verdict(report, "retry-rate")
    assert not v.ok and v.measured == 2.0             # (3-1) per unit
    assert not verdict(report, "campaign-duration").ok  # 10.0 > 8.0
    assert len(report.violations()) == 4              # coverage passes


def test_rules_pass_within_budget():
    budget = SloBudget(pod_downtime_s=0.5, net_block_s=0.1,
                       wave_latency_s=7.0, retry_rate=0.0,
                       campaign_duration_s=20.0)
    report = audit_campaign(make_trace(), budget=budget)
    assert report.ok and len(report.verdicts) == 6
    assert report.violations() == []


def test_inflight_cap_reads_series_peak_column():
    series = {"series": {"fleet.inflight.max": [3, None, 8, 2],
                         "fleet.inflight.last": [0, 0, 0, 0]}}
    ok = audit_campaign(make_trace(), budget=SloBudget(max_inflight=8),
                        series=series)
    assert verdict(ok, "inflight-cap").ok
    assert verdict(ok, "inflight-cap").measured == 8.0
    bad = audit_campaign(make_trace(), budget=SloBudget(max_inflight=4),
                         series=series)
    assert not verdict(bad, "inflight-cap").ok
    # no series export: the rule cannot measure, so it does not run
    absent = audit_campaign(make_trace(), budget=SloBudget(max_inflight=4))
    assert "inflight-cap" not in {v.rule for v in absent.verdicts}


def test_unrecorded_units_do_not_count_toward_budgets():
    trace = make_trace(downtimes=(0.1,))
    ghost = TraceNode(kind="unit", name="unit.pX", pod="pX",
                      status="unrecorded", attrs={"downtime": 99.0})
    trace.root.children[0].children.append(ghost)
    report = audit_campaign(
        trace, budget=SloBudget(pod_downtime_s=0.5, retry_rate=0.0))
    assert verdict(report, "pod-downtime").measured == 0.1


def test_report_to_dict_schema_and_dumps():
    report = audit_campaign(make_trace())
    doc = report.to_dict()
    assert doc["schema"] == 1 and doc["cid"] == 1 and doc["ok"] is True
    assert all({"rule", "ok", "measured", "budget", "detail"}
               <= set(v) for v in doc["verdicts"])
    assert json.loads(report.dumps()) == doc
    assert "SLO audit" in report.render()


def test_wall_profiler_accumulates_per_phase():
    wall = WallProfiler()
    with wall.phase("simulate"):
        pass
    with wall.phase("simulate"):
        pass
    with wall.phase("audit"):
        pass
    assert wall.calls == {"simulate": 2, "audit": 1}
    assert wall.total >= 0.0
    doc = wall.to_dict()
    assert set(doc) == {"wall_s", "calls", "total_s"}
    assert list(doc["wall_s"]) == ["audit", "simulate"]   # sorted
    assert "simulator wall time" in wall.render()
