"""Integration tests: real traced checkpoints.

Three properties the subsystem guarantees:

* determinism — two runs of the same seed export byte-identical traces,
  even while a seeded fault plan is firing;
* reconciliation — phase span durations account for the reported
  operation latency (manager lanes) and each pod's local checkpoint
  time (agent lanes) to within one sim tick;
* zero overhead — installing the tracer changes no simulated latency,
  and with neither tracer nor fault injector the trace hooks record
  nothing at all.
"""

import json

import pytest

from repro.cluster import Cluster
from repro.cluster.chaos import run_chaos
from repro.core import Manager, migrate
from repro.obs import (
    SpanTracer,
    phase_sums,
    reconcile_op,
    to_chrome,
    to_jsonl,
    validate_chrome,
)
from repro.obs.tracer import SIM_TICK_S
from repro.obs.validate import CHECKPOINT_SPAN_NAMES

from ..core.testapps import launch_pingpong

ROUNDS = 800


def traced_checkpoint_run(seed: int, trace: bool = True, at: float = 0.15):
    """One snapshot checkpoint over a ping-pong pair; returns
    (tracer, OpResult) — tracer is None when ``trace`` is False."""
    cluster = Cluster.build(4, seed=seed)
    tracer = SpanTracer(cluster.engine).install(cluster) if trace else None
    manager = Manager.deploy(cluster)
    launch_pingpong(cluster, rounds=ROUNDS)
    holder = {}

    def kick():
        holder["task"] = manager.checkpoint([
            ("blade0", "pp-srv", "file:/san/obs-srv.img"),
            ("blade1", "pp-cli", "file:/san/obs-cli.img"),
        ])

    cluster.engine.schedule(at, kick)
    cluster.engine.run(until=120.0)
    result = holder["task"].finished.result
    assert result.ok, result.errors
    return tracer, result


def traced_live_migration_run(seed: int, at: float = 0.15):
    """One live (pre-copy) migration of a writing ping-pong pair;
    returns (tracer, MigrationResult)."""
    cluster = Cluster.build(4, seed=seed)
    tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    launch_pingpong(cluster, rounds=6000, ballast=64_000_000,
                    dirty_rate=48_000_000)
    holder = {}
    cluster.engine.schedule(at, lambda: holder.update(mig=migrate(
        manager,
        [("blade0", "pp-srv", "blade2"), ("blade1", "pp-cli", "blade3")],
        live=True, precopy_rounds=4)))
    cluster.engine.run(until=300.0)
    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    assert mig.rounds, "live migration ran no pre-copy rounds"
    return tracer, mig


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_same_seed_byte_identical_jsonl():
    tr_a, _ = traced_checkpoint_run(7)
    tr_b, _ = traced_checkpoint_run(7)
    dump_a, dump_b = to_jsonl(tr_a), to_jsonl(tr_b)
    assert dump_a == dump_b
    assert len(dump_a.splitlines()) > 20  # a real trace, not a stub


def traced_async_checkpoint_run(seed: int, at: float = 0.15):
    """One zero-stall incremental snapshot over a writing ping-pong
    pair; returns (tracer, OpResult)."""
    cluster = Cluster.build(4, seed=seed)
    tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    launch_pingpong(cluster, rounds=ROUNDS, ballast=16_000_000,
                    dirty_rate=8_000_000)
    holder = {}

    def kick():
        holder["task"] = manager.checkpoint(
            [("blade0", "pp-srv", "mem"), ("blade1", "pp-cli", "mem")],
            filters=[{"name": "delta"}], async_ckpt=True)

    cluster.engine.schedule(at, kick)
    cluster.engine.run(until=120.0)
    result = holder["task"].finished.result
    assert result.ok, result.errors
    return tracer, result


def test_async_checkpoint_same_seed_byte_identical_jsonl():
    """The zero-stall path (capture, post-resume encode, COW charge,
    overlapped flush) is part of the deterministic trace surface."""
    tr_a, res_a = traced_async_checkpoint_run(7)
    tr_b, res_b = traced_async_checkpoint_run(7)
    dump_a, dump_b = to_jsonl(tr_a), to_jsonl(tr_b)
    assert dump_a == dump_b
    assert "agent.post.encode" in dump_a
    for stats in res_a.pods.values():
        assert "t_suspend_window" in stats
        assert stats["t_suspend_window"] < stats["t_local"]
    assert res_a.duration == res_b.duration


def test_async_checkpoint_post_work_outside_commit_phase():
    """Async accounting: the agent's phase spans cover only the suspend
    window (the commit phase ends at resume); the encode rides in a
    ``post``-category span under the same operation."""
    tracer, result = traced_async_checkpoint_run(7)
    op_span = tracer.find(("op", result.op_id))
    sums = phase_sums(tracer, op_span)
    for pod_id, stats in result.pods.items():
        agent_lanes = [total for (actor, pod), total in sums.items()
                       if actor != "manager" and pod == pod_id]
        assert agent_lanes, f"no agent phase lane for {pod_id}"
        assert sum(agent_lanes) == pytest.approx(stats["t_suspend_window"],
                                                 abs=2 * SIM_TICK_S)
    posts = [s for s in tracer.children_of(op_span) if s.category == "post"]
    assert len(posts) == len(result.pods)
    for span in posts:
        assert span.name == "agent.post.encode"
        assert span.duration > 0


def test_live_migration_same_seed_byte_identical_jsonl():
    """Pre-copy rounds are part of the deterministic trace surface."""
    tr_a, _ = traced_live_migration_run(7)
    tr_b, _ = traced_live_migration_run(7)
    dump_a, dump_b = to_jsonl(tr_a), to_jsonl(tr_b)
    assert dump_a == dump_b
    assert "precopy-round" in dump_a
    assert "agent.phase.precopy" in dump_a


def test_live_migration_chrome_args_carry_round_bytes():
    """The exported Chrome trace exposes per-round byte accounting on
    the pre-copy spans, matching the MigrationResult's round log."""
    tracer, mig = traced_live_migration_run(7)
    doc = to_chrome(tracer)
    assert validate_chrome(doc) == []
    rounds = [ev for ev in doc["traceEvents"]
              if ev.get("name") == "manager.phase.precopy-round"
              and ev["ph"] == "B"]  # duration slices export as B/E pairs
    assert rounds, "no pre-copy round spans in the Chrome export"
    for ev in rounds:
        assert "shipped_bytes" in ev["args"] and "dirty_bytes" in ev["args"]
        assert "round" in ev["args"]
    # per (round, pod) the span accounting equals the result's round log
    by_round: dict = {}
    for ev in rounds:
        by_round.setdefault(int(ev["args"]["round"]), []).append(ev)
    for rnd in mig.rounds:
        evs = by_round[rnd["round"]]
        assert sum(int(e["args"]["shipped_bytes"]) for e in evs) \
            == rnd["shipped_bytes"]
        assert sum(int(e["args"]["dirty_bytes"]) for e in evs) \
            == rnd["dirty_bytes"]


def test_different_schedules_diverge():
    """The trace reflects simulated time, not a canned constant."""
    tr_a, _ = traced_checkpoint_run(7, at=0.15)
    tr_b, _ = traced_checkpoint_run(7, at=0.25)
    assert to_jsonl(tr_a) != to_jsonl(tr_b)


def test_chaos_span_dump_identical_under_faults():
    """Determinism holds with an active FaultPlan injecting failures."""
    a = run_chaos(11, rounds=120, until=120.0, trace_spans=True)
    b = run_chaos(11, rounds=120, until=120.0, trace_spans=True)
    assert a.span_dump is not None and a.span_dump == b.span_dump
    assert a.fired == b.fired
    # fault activations show up as spans when any fault fired
    if a.fired:
        cats = {json.loads(line)["cat"] for line in a.span_dump.splitlines()}
        assert "fault" in cats


# ---------------------------------------------------------------------------
# reconciliation & schema
# ---------------------------------------------------------------------------


def test_checkpoint_phases_reconcile_with_latency():
    tracer, result = traced_checkpoint_run(7)
    op = tracer.find(("op", result.op_id))
    assert op is not None
    assert op.attrs["duration_s"] == pytest.approx(result.duration)
    assert reconcile_op(tracer, op) == []
    # agent lanes sum to each pod's locally measured checkpoint time
    lanes = phase_sums(tracer, op)
    for pod_id in ("pp-srv", "pp-cli"):
        agent = [total for (actor, pod), total in lanes.items()
                 if pod == pod_id and actor != "manager"]
        assert len(agent) == 1
        assert agent[0] == pytest.approx(result.pods[pod_id]["t_local"],
                                         abs=SIM_TICK_S)


def test_traced_checkpoint_passes_chrome_schema():
    tracer, _ = traced_checkpoint_run(7)
    doc = to_chrome(tracer)
    assert validate_chrome(doc, require=list(CHECKPOINT_SPAN_NAMES)) == []
    # per-node tracks exist for both pods (one pod per node here)
    lanes = {ev["args"]["name"] for ev in doc["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert {"manager", "blade0/pp-srv", "blade1/pp-cli"} <= lanes


# ---------------------------------------------------------------------------
# zero overhead
# ---------------------------------------------------------------------------


def test_tracer_does_not_perturb_simulated_latency():
    _, traced = traced_checkpoint_run(7, trace=True)
    _, untraced = traced_checkpoint_run(7, trace=False)
    assert traced.duration == untraced.duration  # exact float equality
    assert traced.t_start == untraced.t_start
    for pod_id in ("pp-srv", "pp-cli"):
        assert traced.pods[pod_id]["t_local"] == untraced.pods[pod_id]["t_local"]


def test_chaos_episode_identical_with_and_without_tracer():
    """Tracing changes nothing even under an active fault schedule."""
    traced = run_chaos(11, rounds=120, until=120.0, trace_spans=True)
    bare = run_chaos(11, rounds=120, until=120.0, trace_spans=False)
    assert bare.span_dump is None
    assert traced.ops == bare.ops
    assert traced.fired == bare.fired
    assert traced.trace == bare.trace  # timestamps included
    assert traced.violations == bare.violations


def test_no_tracer_no_injector_records_nothing():
    cluster = Cluster.build(2, seed=3)
    assert cluster.tracer is None and cluster.injector is None
    # every hook is a no-op returning the inert span / nothing
    span = cluster.span("agent.phase.suspend", node="blade0", pod="p")
    assert span.end() is span and span.duration == 0.0
    assert cluster.span_at("stage.serialize", 0.0, 1.0).span_id is None
    # trace() is a generator the protocol drives with `yield from`; with
    # nothing installed it finishes immediately with empty directives
    gen = cluster.trace("manager.op_start", node="blade0")
    with pytest.raises(StopIteration) as stop:
        next(gen)
    assert stop.value.value == {}
    cluster.count("x")
    cluster.observe("y", 1.0)
    cluster.gauge_set("z", 2.0)
    assert cluster.tracer is None and cluster.metrics is None
