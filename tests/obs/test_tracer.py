"""Span tracer unit tests: nesting, keys, no-op path, reconciliation."""

import pytest

from repro.obs.tracer import (
    FAULT,
    MARK,
    NULL_SPAN,
    OP,
    PHASE,
    SIM_TICK_S,
    SpanTracer,
    phase_sums,
    reconcile_op,
)


class FakeEngine:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def tracer():
    return SpanTracer(FakeEngine())


def test_span_records_sim_time_interval(tracer):
    tracer.engine.now = 1.5
    span = tracer.begin("phase.x", node="blade0", pod="p0")
    assert span.open and span.t_start == 1.5
    tracer.engine.now = 2.0
    span.end()
    assert not span.open
    assert span.duration == pytest.approx(0.5)
    assert span.status == "ok"


def test_end_is_idempotent(tracer):
    span = tracer.begin("x")
    tracer.engine.now = 1.0
    span.end()
    tracer.engine.now = 9.0
    span.end(status="late")
    assert span.t_end == 1.0          # first close wins
    assert span.status == "late"      # but status/attrs still update


def test_nesting_via_parent_span(tracer):
    op = tracer.begin("manager.checkpoint", category=OP)
    child = tracer.begin("manager.phase.connect", parent=op)
    grandchild = tracer.begin("stage.serialize", parent=child)
    assert child.parent_id == op.span_id
    assert grandchild.parent_id == child.span_id
    assert [s.span_id for s in tracer.children_of(op)] == [child.span_id]


def test_nesting_via_key_lookup_crosses_actors(tracer):
    # the Manager registers the op under a key; an Agent on another node
    # only knows the op_id from the wire message
    op = tracer.begin("manager.checkpoint", category=OP, key=("op", 7))
    remote = tracer.begin("agent.phase.suspend", node="blade3", parent=("op", 7))
    assert remote.parent_id == op.span_id
    assert tracer.find(("op", 7)) is op
    # an unknown key degrades to no parent, never an error
    orphan = tracer.begin("agent.phase.suspend", parent=("op", 999))
    assert orphan.parent_id is None


def test_span_ids_are_sequential_and_unique(tracer):
    ids = [tracer.begin(f"s{i}").span_id for i in range(5)]
    assert ids == sorted(set(ids))


def test_instant_and_explicit_time_spans(tracer):
    tracer.engine.now = 3.0
    mark = tracer.instant("agent.suspend", node="b0")
    assert mark.category == MARK and mark.duration == 0.0
    fault = tracer.instant("fault.hang", category=FAULT)
    assert fault.category == FAULT
    staged = tracer.add("stage.compress", 1.0, 2.5, node="b0")
    assert staged.t_start == 1.0 and staged.t_end == 2.5


def test_close_open_sweeps_dangling_spans(tracer):
    a = tracer.begin("a")
    b = tracer.begin("b")
    b.end()
    tracer.engine.now = 4.0
    assert tracer.close_open() == 1
    assert a.t_end == 4.0 and a.status == "unclosed"
    assert tracer.close_open() == 0


def test_null_span_is_inert():
    assert NULL_SPAN.end(status="x") is NULL_SPAN
    assert NULL_SPAN.annotate(a=1) is NULL_SPAN
    assert NULL_SPAN.duration == 0.0
    assert NULL_SPAN.open is False


def test_to_dict_rounds_timestamps(tracer):
    tracer.engine.now = 0.1 + 0.2  # 0.30000000000000004
    span = tracer.begin("x")
    span.end()
    d = span.to_dict()
    assert d["t0"] == 0.3 and d["t1"] == 0.3


def test_phase_sums_and_reconcile(tracer):
    op = tracer.begin("manager.checkpoint", category=OP, key=("op", 1), op=1)
    # manager lane: two contiguous phases, 0 → 2.0
    tracer.add("manager.phase.connect", 0.0, 0.5, pod="p0",
               parent=op, category=PHASE)
    tracer.add("manager.phase.commit", 0.5, 2.0, pod="p0",
               parent=op, category=PHASE)
    # agent lane starts later (command receipt)
    tracer.add("agent.phase.suspend", 0.6, 1.9, node="blade1", pod="p0",
               parent=op, category=PHASE)
    tracer.engine.now = 2.0
    op.end(duration_s=2.0)
    sums = phase_sums(tracer, op)
    assert sums[("manager", "p0")] == pytest.approx(2.0)
    assert sums[("blade1", "p0")] == pytest.approx(1.3)
    assert reconcile_op(tracer, op) == []


def test_reconcile_flags_unaccounted_time(tracer):
    op = tracer.begin("manager.checkpoint", category=OP, op=2)
    tracer.add("manager.phase.connect", 0.0, 0.5, pod="p0",
               parent=op, category=PHASE)
    tracer.engine.now = 2.0
    op.end(duration_s=2.0)  # 1.5 s of the op is unaccounted for
    problems = reconcile_op(tracer, op)
    assert len(problems) == 1 and "phase sum" in problems[0]
    # slack is one sim tick, no more
    assert reconcile_op(tracer, op, tolerance=1.5 + SIM_TICK_S) == []


def test_reconcile_requires_manager_phases(tracer):
    op = tracer.begin("manager.restart", category=OP)
    op.end()
    assert "no manager phase spans" in reconcile_op(tracer, op)[0]


# ---------------------------------------------------------------------------
# finalize_with: terminal outcomes for spans a halt strands open
# ---------------------------------------------------------------------------


def test_finalize_with_applies_at_close_open(tracer):
    # a halting campaign cannot end() the unit span of a task it is
    # abandoning; the registered outcome must land at sweep time
    span = tracer.begin("fleet.wave", category=OP)
    span.finalize_with("halted", stop="threshold", failures=3)
    tracer.engine.now = 7.0
    assert tracer.close_open() == 1
    assert span.t_end == 7.0
    assert span.status == "halted"              # not the blanket "unclosed"
    assert span.attrs["stop"] == "threshold"
    assert span.attrs["failures"] == 3


def test_finalize_with_merges_repeat_registrations(tracer):
    span = tracer.begin("x")
    span.finalize_with("halted", a=1)
    span.finalize_with("aborted", b=2)          # newest status wins
    tracer.close_open()
    assert span.status == "aborted"
    assert span.attrs == {"a": 1, "b": 2}


def test_finalize_with_on_closed_span_updates_in_place(tracer):
    span = tracer.begin("x")
    tracer.engine.now = 1.0
    span.end()
    span.finalize_with("halted", stop="threshold")
    assert span.status == "halted" and span.attrs["stop"] == "threshold"
    assert span.t_end == 1.0                    # close time untouched
    assert tracer.close_open() == 0


def test_normal_end_wins_over_pending_outcome(tracer):
    # a task that does finish closes itself; the registered halt
    # outcome must not overwrite the real one
    span = tracer.begin("x")
    span.finalize_with("halted")
    span.end()
    assert span.status == "ok"


def test_null_span_finalize_with_is_inert():
    assert NULL_SPAN.finalize_with("halted", a=1) is NULL_SPAN


# ---------------------------------------------------------------------------
# key context: ambient attrs stamped onto key-parented spans
# ---------------------------------------------------------------------------


def test_key_parent_stamps_key_attr(tracer):
    tracer.begin("manager.checkpoint", category=OP, key=("op", 7))
    child = tracer.begin("agent.phase.suspend", node="b1", parent=("op", 7))
    assert child.attrs["op"] == 7


def test_set_context_attrs_inherited_by_key_parented_spans(tracer):
    op = tracer.begin("manager.checkpoint", category=OP, key=("op", 7))
    tracer.set_context(("op", 7), mspan=op.span_id, owner="mgr0")
    child = tracer.begin("agent.phase.suspend", node="b1", parent=("op", 7))
    assert child.attrs == {"op": 7, "mspan": op.span_id, "owner": "mgr0"}
    # spans parented by Span object (not key) are not stamped
    direct = tracer.begin("stage.serialize", parent=op)
    assert "owner" not in direct.attrs


def test_explicit_attrs_beat_key_context(tracer):
    tracer.begin("manager.checkpoint", category=OP, key=("op", 1))
    tracer.set_context(("op", 1), owner="mgr0")
    span = tracer.begin("agent.phase.suspend", parent=("op", 1), owner="mgr1")
    assert span.attrs["owner"] == "mgr1"


def test_set_context_accumulates_and_overwrites(tracer):
    tracer.set_context(("op", 1), owner="mgr0")
    tracer.set_context(("op", 1), mspan=42)
    tracer.set_context(("op", 1), owner="mgr1")   # takeover rebinds
    span = tracer.begin("x", parent=("op", 1))
    assert span.attrs["owner"] == "mgr1" and span.attrs["mspan"] == 42
