"""Windowed-series tests: bucketing, export shape, registry binding."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.series import DEFAULT_WINDOW_S, SeriesBank


class FakeEngine:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def bank():
    return SeriesBank(FakeEngine(), window_s=1.0)


def test_counter_sums_per_window_and_exports_rate(bank):
    bank.record_counter("bytes", 100)
    bank.engine.now = 0.5
    bank.record_counter("bytes", 100)
    bank.engine.now = 2.25
    bank.record_counter("bytes", 50)
    cols = bank.to_columns()
    assert cols["t"] == [0.0, 1.0, 2.0]
    assert cols["series"]["bytes.rate"] == [200.0, 0.0, 50.0]


def test_gauge_exports_last_carried_and_per_window_max(bank):
    bank.record_gauge("inflight", 3)
    bank.record_gauge("inflight", 8)
    bank.record_gauge("inflight", 2)
    bank.engine.now = 2.0
    bank.record_gauge("inflight", 1)
    series = bank.to_columns()["series"]
    # .last carries the closing value across the silent window; .max
    # keeps the in-window high-water mark (None when silent) — the
    # distinction the inflight-cap SLO rule depends on
    assert series["inflight.last"] == [2, 2, 1]
    assert series["inflight.max"] == [8, None, 1]


def test_hist_exports_percentiles_and_counts(bank):
    for v in (0.1, 0.2, 0.9):
        bank.record_hist("downtime", v)
    bank.engine.now = 1.5
    bank.record_hist("downtime", 0.4)
    series = bank.to_columns(percentiles=(50,))["series"]
    assert series["downtime.p50"] == [0.2, 0.4]
    assert series["downtime.count"] == [3, 1]


def test_columns_are_dense_and_same_length(bank):
    bank.record_counter("a", 1)
    bank.engine.now = 3.7
    bank.record_gauge("g", 2)
    cols = bank.to_columns()
    n = len(cols["t"])
    assert n == 4
    assert all(len(col) == n for col in cols["series"].values())


def test_empty_bank_exports_no_windows(bank):
    cols = bank.to_columns()
    assert cols["t"] == [] and cols["series"] == {}
    assert bank.window_count() == 0


def test_dumps_is_deterministic_json(bank):
    bank.record_counter("a", 1)
    bank.record_gauge("g", 2)
    bank.record_hist("h", 0.5)
    assert bank.dumps() == bank.dumps()
    doc = json.loads(bank.dumps())
    assert doc["schema"] == 1 and doc["window_s"] == 1.0


def test_default_window_width():
    assert SeriesBank(FakeEngine()).window_s == DEFAULT_WINDOW_S


def test_registry_enable_series_binds_existing_and_future_instruments():
    eng = FakeEngine()
    reg = MetricsRegistry()
    pre = reg.counter("pre.bytes")           # created before the bank
    bank = reg.enable_series(eng, window_s=2.0)
    assert reg.series is bank and pre.bank is bank
    pre.inc(4)
    reg.gauge("depth").set(7)                # created after the bank
    eng.now = 3.0
    reg.histogram("wait").observe(0.25)
    series = bank.to_columns()["series"]
    assert series["pre.bytes.rate"] == [2.0, 0.0]
    assert series["depth.last"] == [7, 7]
    assert series["wait.count"] == [0, 1]


def test_unbanked_registry_records_nothing():
    reg = MetricsRegistry()
    reg.counter("c").inc()                   # no bank attached: no error
    assert reg.series is None
