"""Exporter unit tests: JSONL shape, lanes, Chrome schema, validator."""

import json

import pytest

from repro.obs.exporters import (
    dumps_chrome,
    lane_of,
    phase_summary,
    phase_timeline,
    to_chrome,
    to_jsonl,
)
from repro.obs.tracer import FAULT, OP, PHASE, STAGE, WINDOW, SpanTracer
from repro.obs.validate import validate_chrome


class FakeEngine:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def tracer():
    return SpanTracer(FakeEngine())


def checkpoint_like(tracer):
    """A miniature two-pod checkpoint shaped like the real protocol."""
    op = tracer.begin("manager.checkpoint", category=OP, key=("op", 1), op=1)
    for i, (node, pod) in enumerate((("blade1", "p0"), ("blade2", "p1"))):
        tracer.add("manager.phase.connect", 0.0, 0.2, pod=pod,
                   parent=op, category=PHASE)
        base = 0.2 + i * 0.01
        tracer.add("agent.net_block", base, base + 0.5, node=node, pod=pod,
                   parent=op, category=WINDOW)
        phase = tracer.add("agent.phase.suspend", base, base + 0.1,
                           node=node, pod=pod, parent=op, category=PHASE)
        tracer.add("stage.serialize", base, base + 0.05, node=node, pod=pod,
                   parent=phase, category=STAGE)
        tracer.add("manager.phase.commit", 0.2, 0.9, pod=pod,
                   parent=op, category=PHASE)
    tracer.instant("agent.suspend", node="blade1", pod="p0")
    tracer.instant("fault.hang", node="blade2", pod="p1", category=FAULT)
    tracer.engine.now = 1.0
    op.end(duration_s=1.0)
    return op


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def test_jsonl_one_line_per_span_in_id_order(tracer):
    checkpoint_like(tracer)
    text = to_jsonl(tracer)
    assert text.endswith("\n")
    lines = text.splitlines()
    assert len(lines) == len(tracer.spans)
    ids = [json.loads(line)["span"] for line in lines]
    assert ids == sorted(ids)
    # keys are sorted and the encoding is compact (no spaces)
    first = lines[0]
    keys = list(json.loads(first))
    assert keys == sorted(keys)
    assert ": " not in first and ", " not in first


def test_jsonl_closes_dangling_spans(tracer):
    tracer.begin("never.ended")
    tracer.engine.now = 5.0
    record = json.loads(to_jsonl(tracer))
    assert record["t1"] == 5.0
    assert record["status"] == "unclosed"


def test_jsonl_empty_tracer(tracer):
    assert to_jsonl(tracer) == ""


# ---------------------------------------------------------------------------
# lanes
# ---------------------------------------------------------------------------


def test_lane_of_mapping(tracer):
    op = tracer.begin("manager.checkpoint", category=OP)
    assert lane_of(op) == "manager"
    mgr = tracer.begin("manager.phase.meta", pod="p0")
    assert lane_of(mgr) == "manager→p0"
    agent = tracer.begin("agent.phase.suspend", node="blade1", pod="p0")
    assert lane_of(agent) == "blade1/p0"
    bare = tracer.begin("node.probe", node="blade1")
    assert lane_of(bare) == "blade1"


def test_lane_order_manager_first(tracer):
    checkpoint_like(tracer)
    doc = to_chrome(tracer)
    names = {ev["tid"]: ev["args"]["name"]
             for ev in doc["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert names[0] == "manager"
    assert names[1] == "manager→p0"
    assert names[2] == "manager→p1"
    assert set(names.values()) >= {"blade1/p0", "blade2/p1"}


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def test_chrome_doc_passes_validator(tracer):
    checkpoint_like(tracer)
    doc = to_chrome(tracer)
    assert validate_chrome(doc) == []


def test_chrome_events_sorted_and_paired(tracer):
    checkpoint_like(tracer)
    events = [ev for ev in to_chrome(tracer)["traceEvents"] if ev["ph"] != "M"]
    ts = [ev["ts"] for ev in events]
    assert ts == sorted(ts)
    assert len([e for e in events if e["ph"] == "B"]) \
        == len([e for e in events if e["ph"] == "E"])
    # windows export as async pairs, instants as 'i'
    assert {e["ph"] for e in events if e["name"] == "agent.net_block"} == {"b", "e"}
    assert [e["ph"] for e in events if e["name"] == "agent.suspend"] == ["i"]
    assert [e["ph"] for e in events if e["name"] == "fault.hang"] == ["i"]


def test_chrome_zero_duration_becomes_complete_event(tracer):
    span = tracer.begin("blip", node="b0", pod="p0")
    span.end()  # zero sim time elapsed
    events = [ev for ev in to_chrome(tracer)["traceEvents"] if ev["ph"] != "M"]
    assert len(events) == 1 and events[0]["ph"] == "X" and events[0]["dur"] == 0.0


def test_chrome_nesting_order_at_equal_timestamps(tracer):
    # parent and child open at the same instant; child also closes
    # exactly when the next sibling opens — stress the sort keys
    parent = tracer.add("outer", 0.0, 2.0, node="b0", pod="p0", category=PHASE)
    tracer.add("inner.a", 0.0, 1.0, node="b0", pod="p0",
               parent=parent, category=PHASE)
    tracer.add("inner.b", 1.0, 2.0, node="b0", pod="p0",
               parent=parent, category=PHASE)
    doc = to_chrome(tracer)
    assert validate_chrome(doc) == []
    track = [(ev["ph"], ev["name"]) for ev in doc["traceEvents"] if ev["ph"] != "M"]
    assert track == [("B", "outer"), ("B", "inner.a"), ("E", "inner.a"),
                     ("B", "inner.b"), ("E", "inner.b"), ("E", "outer")]


def test_dumps_chrome_deterministic(tracer):
    checkpoint_like(tracer)
    other = SpanTracer(FakeEngine())
    checkpoint_like(other)
    assert dumps_chrome(tracer) == dumps_chrome(other)


# ---------------------------------------------------------------------------
# validator negatives
# ---------------------------------------------------------------------------


def _ev(ph, ts, name="x", tid=0, **extra):
    return dict({"ph": ph, "pid": 1, "tid": tid, "ts": ts, "name": name}, **extra)


def test_validator_rejects_non_document():
    assert validate_chrome([]) != []
    assert validate_chrome({"events": []}) != []


def test_validator_rejects_unsorted_timestamps():
    doc = {"traceEvents": [_ev("i", 5, s="t"), _ev("i", 1, s="t")]}
    assert any("before previous" in p for p in validate_chrome(doc))


def test_validator_rejects_unmatched_pairs():
    doc = {"traceEvents": [_ev("E", 1)]}
    assert any("no open B" in p for p in validate_chrome(doc))
    doc = {"traceEvents": [_ev("B", 1)]}
    assert any("unclosed B" in p for p in validate_chrome(doc))
    doc = {"traceEvents": [_ev("B", 1, name="a"), _ev("E", 2, name="b")]}
    assert any("improper nesting" in p for p in validate_chrome(doc))


def test_validator_rejects_unmatched_async():
    doc = {"traceEvents": [_ev("b", 1, id=9)]}
    assert any("unclosed async" in p for p in validate_chrome(doc))
    doc = {"traceEvents": [_ev("e", 1, id=9)]}
    assert any("never opened" in p for p in validate_chrome(doc))


def test_validator_required_names():
    doc = {"traceEvents": [_ev("i", 1, name="present", s="t")]}
    assert validate_chrome(doc, require=["present"]) == []
    assert any("absent" in p
               for p in validate_chrome(doc, require=["missing.phase"]))


# ---------------------------------------------------------------------------
# text exporters
# ---------------------------------------------------------------------------


def test_phase_timeline_and_summary(tracer, capsys):
    checkpoint_like(tracer)
    timeline = phase_timeline(tracer)
    assert "manager.checkpoint" in timeline
    assert "blade1/p0" in timeline
    assert "stage.serialize" not in timeline
    assert "stage.serialize" in phase_timeline(tracer, include_stages=True)
    summary = phase_summary(tracer)
    assert "agent.phase.suspend" in summary
    capsys.readouterr()
