"""The BSD-style socket layer: sockets, demux, and syscall handlers.

This is "the socket abstraction" the paper leverages for
transport-protocol-independent checkpointing.  Three properties matter:

* every socket carries a full option table accessible through
  ``getsockopt``/``setsockopt`` (see :mod:`repro.net.sockopt`);
* every socket has a **dispatch vector** — a per-socket table mapping
  the interface operations (``recvmsg``, ``poll``, ``sendmsg``,
  ``release``) to implementation functions.  "Interposition is realized
  by altering the socket's dispatch vector": the ZapC alternate receive
  queue swaps entries here and reinstalls the originals once drained;
* protocol machinery hangs off the socket (:class:`~repro.net.tcp.TcpConn`
  or :class:`~repro.net.udp.DatagramConn`) with a small, well-identified
  protocol-control-block for TCP.

One :class:`NetStack` per node owns the NIC, the netfilter table, demux
tables and ephemeral-port allocation, and registers the socket syscalls
with the node kernel.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import SyscallError
from ..vos.kernel import Kernel
from ..vos.syscalls import BLOCK, Complete, Errno
from .addr import ANY_IP, Endpoint
from .fabric import Fabric
from .netfilter import Netfilter
from .packet import Packet, Segment
from .sockopt import default_options, validate_option
from .tcp import CLOSED, ESTABLISHED, LISTEN, SYN_RCVD, TcpConn
from .udp import DatagramConn

#: recv/send flag bits (subset of POSIX).
MSG_PEEK = 0x1
MSG_OOB = 0x2
#: internal flag: a parked recvfrom wants (data, source) back.
_MSG_WANT_SRC = 0x8000

_EPHEMERAL_BASE = 32768


class IdentityVNet:
    """Address translation for host-only setups: virtual == real."""

    def resolve(self, ip: str) -> str:
        """Map a virtual address to the real address hosting it."""
        return ip


class PollWait:
    """One parked poll(2) call spanning several sockets.

    ``entries`` are ``(fd, socket, interest-mask)`` triples; only events
    in the mask (a subset of ``{"r", "w"}``) can complete the poll.
    """

    def __init__(self, proc: Any, entries: List[Tuple[int, "Socket", Set[str]]],
                 timer_handle: Any) -> None:
        self.proc = proc
        self.entries = entries
        self.timer_handle = timer_handle
        self.done = False


class Socket:
    """One communication endpoint (TCP, UDP or raw)."""

    kind = "socket"

    def __init__(self, stack: "NetStack", proto: str, sock_id: int) -> None:
        self.stack = stack
        self.proto = proto
        self.sock_id = sock_id
        self.options: Dict[str, Any] = default_options(proto)
        self.local: Optional[Endpoint] = None
        self.remote: Optional[Endpoint] = None
        self.listening = False
        self.accept_q: List["Socket"] = []
        self.listener: Optional["Socket"] = None
        self.closed = False
        self.was_reset = False
        self.rd_closed = False
        # waiters
        self.recv_waiters: List[Tuple[Any, int, int]] = []
        self.send_waiters: List[Tuple[Any, bytes, int]] = []
        self.accept_waiters: List[Any] = []
        self.connect_waiter: Optional[Any] = None
        self.poll_waiters: List[PollWait] = []
        self._waking_readers = False
        self._waking_writers = False
        # protocol machinery
        self.conn: Any = TcpConn(self) if proto == "tcp" else DatagramConn(self)
        #: the per-socket dispatch vector ZapC interposes on.
        self.dispatch: Dict[str, Any] = {
            "recvmsg": default_recvmsg,
            "sendmsg": default_sendmsg,
            "poll": default_poll,
            "release": default_release,
        }

    # ------------------------------------------------------------------
    # event hooks called by the protocol layer
    # ------------------------------------------------------------------
    def on_readable(self) -> None:
        """Data (or EOF) became available: service readers and pollers.

        Re-entrancy guard: servicing a reader runs ``recvmsg``, which
        processes the backlog, which can raise ``on_readable`` again; the
        outer loop re-checks after every completion, so the nested call
        can simply return.
        """
        if self._waking_readers:
            return
        kernel = self.stack.kernel
        self._waking_readers = True
        try:
            while self.recv_waiters:
                proc, n, flags = self.recv_waiters[0]
                value = self.dispatch["recvmsg"](self.stack, self, n, flags)
                if value is None:
                    break
                self.recv_waiters.pop(0)
                kernel.complete_syscall(proc, value)
        finally:
            self._waking_readers = False
        self._poll_wake()

    def on_writable(self) -> None:
        """Send-buffer space freed: service blocked writers and pollers.

        A parked writer may drain in several steps (its payload can be
        larger than the whole send buffer); the waiter entry tracks the
        bytes already accepted and completes with the full count.
        """
        if self._waking_writers:
            return
        kernel = self.stack.kernel
        self._waking_writers = True
        try:
            while self.send_waiters:
                proc, data, flags, acc = self.send_waiters[0]
                value = self.dispatch["sendmsg"](self.stack, self, data, flags)
                if value is None:
                    break
                if isinstance(value, Errno):
                    self.send_waiters.pop(0)
                    kernel.complete_syscall(proc, value)
                    continue
                if value < len(data):
                    self.send_waiters[0] = (proc, data[value:], flags, acc + value)
                    _trim_blocked_send(proc, data[value:])
                    continue
                self.send_waiters.pop(0)
                kernel.complete_syscall(proc, acc + value)
        finally:
            self._waking_writers = False
        self._poll_wake()

    def on_connected(self) -> None:
        """Active open finished: wake the connector."""
        if self.connect_waiter is not None:
            waiter, self.connect_waiter = self.connect_waiter, None
            self.stack.kernel.complete_syscall(waiter, 0)
        self._poll_wake()

    def on_accept_ready(self) -> None:
        """Passive open finished (this socket is the new child)."""
        listener = self.listener
        if listener is None or listener.closed:
            return
        listener.accept_q.append(self)
        listener._service_accepts()

    def _service_accepts(self) -> None:
        kernel = self.stack.kernel
        while self.accept_waiters and self.accept_q:
            proc = self.accept_waiters.pop(0)
            child = self.accept_q.pop(0)
            fd = _alloc_fd(proc, child)
            kernel.complete_syscall(proc, (fd, child.remote))
        self._poll_wake()

    def on_reset(self) -> None:
        """Connection reset: error out every parked operation."""
        self.was_reset = True
        kernel = self.stack.kernel
        if self.connect_waiter is not None:
            waiter, self.connect_waiter = self.connect_waiter, None
            kernel.complete_syscall(waiter, Errno("ECONNREFUSED", str(self.remote)))
        for proc, _n, _f in self.recv_waiters:
            kernel.complete_syscall(proc, Errno("ECONNRESET"))
        self.recv_waiters.clear()
        for proc, _d, _f in self.send_waiters:
            kernel.complete_syscall(proc, Errno("ECONNRESET"))
        self.send_waiters.clear()
        self._poll_wake()

    def _poll_wake(self) -> None:
        if not self.poll_waiters:
            return
        for pw in list(self.poll_waiters):
            self.stack.service_poll(pw)

    def release(self, kernel: Any, proc: Any) -> None:
        """fd-close entry point: routes through the dispatch vector so
        checkpoint interposition observes the release."""
        self.dispatch["release"](self.stack, self, proc)

    def drop_waiter(self, proc: Any) -> None:
        """Purge ``proc`` from every wait list (process killed)."""
        self.recv_waiters = [w for w in self.recv_waiters if w[0] is not proc]
        self.send_waiters = [w for w in self.send_waiters if w[0] is not proc]
        self.accept_waiters = [w for w in self.accept_waiters if w is not proc]
        if self.connect_waiter is proc:
            self.connect_waiter = None
        self.poll_waiters = [pw for pw in self.poll_waiters if pw.proc is not proc]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Socket(#{self.sock_id} {self.proto} {self.local}->{self.remote})"


# ---------------------------------------------------------------------------
# default dispatch-vector implementations
# ---------------------------------------------------------------------------


def default_recvmsg(stack: "NetStack", sock: Socket, n: int, flags: int) -> Any:
    """Try to satisfy a receive; ``None`` means "would block".

    Taking the socket lock processes the backlog first — the detail that
    makes kernel-path reads complete where peeks are not.
    """
    if sock.proto == "tcp":
        conn: TcpConn = sock.conn
        conn.process_backlog()
        if flags & MSG_OOB:
            if conn.oob:
                take = bytes(conn.oob[:n])
                del conn.oob[:n]
                return take
            return Errno("EWOULDBLOCK", "no urgent data")
        if conn.recv_q:
            if flags & MSG_PEEK:
                conn.peeked = True
                return bytes(conn.recv_q[:n])
            take = bytes(conn.recv_q[:n])
            del conn.recv_q[:n]
            conn.after_app_read()
            return take
        if sock.was_reset:
            return Errno("ECONNRESET")
        if conn.fin_rcvd or sock.rd_closed or conn.state == CLOSED:
            return b""
        if sock.options.get("O_NONBLOCK"):
            return Errno("EWOULDBLOCK")
        return None
    # datagram
    dconn: DatagramConn = sock.conn
    got = dconn.try_recv(n, peek=bool(flags & MSG_PEEK))
    if got is not None:
        if flags & _MSG_WANT_SRC:
            return (got[0], tuple(got[1]))
        return got[0]
    if sock.rd_closed:
        return b""
    if sock.options.get("O_NONBLOCK"):
        return Errno("EWOULDBLOCK")
    return None


def default_sendmsg(stack: "NetStack", sock: Socket, data: bytes, flags: int,
                    queue_if_full: bool = False) -> Any:
    """Try to transmit; returns the byte count *accepted* (possibly short
    of ``len(data)`` when the send buffer fills — the caller loops, as a
    real kernel does inside a blocking send).  ``None`` means nothing
    could be accepted at all (would block)."""
    if sock.proto == "tcp":
        conn: TcpConn = sock.conn
        if conn.state != ESTABLISHED or conn.fin_sent:
            return Errno("EPIPE", "not connected")
        if flags & MSG_OOB:
            return conn.app_write_oob(data)
        room = conn.sndbuf() - len(conn.send_buf)
        if queue_if_full:
            room = len(data)
        if room <= 0:
            if sock.options.get("O_NONBLOCK"):
                return Errno("EWOULDBLOCK")
            return None
        take = min(room, len(data))
        conn.app_write(bytes(data[:take]))
        return take
    dconn: DatagramConn = sock.conn
    if dconn.default_peer is None:
        return Errno("ENOTCONN", "datagram socket has no default peer")
    return dconn.app_send(bytes(data), dconn.default_peer)


def default_poll(stack: "NetStack", sock: Socket) -> Set[str]:
    """Poll readiness for one socket: subset of {'r', 'w'}."""
    events: Set[str] = set()
    if sock.proto == "tcp":
        conn: TcpConn = sock.conn
        conn.process_backlog()
        if conn.recv_q or conn.oob or conn.fin_rcvd or sock.was_reset or sock.rd_closed:
            events.add("r")
        if sock.accept_q:
            events.add("r")
        if conn.state == ESTABLISHED and not conn.fin_sent and len(conn.send_buf) < conn.sndbuf():
            events.add("w")
    else:
        dconn: DatagramConn = sock.conn
        if dconn.recv_q or sock.rd_closed:
            events.add("r")
        events.add("w")
    return events


def default_release(stack: "NetStack", sock: Socket, proc: Any) -> None:
    """Close a socket: FIN for TCP, unregister datagrams."""
    if sock.closed:
        return
    sock.closed = True
    if sock.proto == "tcp":
        conn: TcpConn = sock.conn
        if conn.state in (ESTABLISHED, SYN_RCVD) and sock.remote is not None:
            conn.app_close()
        else:
            conn._cancel_rto()
        if sock.listening:
            stack.unbind(sock)
            for child in sock.accept_q:
                default_release(stack, child, proc)
            sock.accept_q.clear()
        # established demux entries persist so late retransmissions
        # still get ACKed; the fabric-level entry is tiny.
    else:
        stack.unbind(sock)
    # error out anyone still parked on this socket
    kernel = stack.kernel
    for w in sock.recv_waiters:
        kernel.complete_syscall(w[0], Errno("ECONNABORTED"))
    sock.recv_waiters.clear()
    for w in sock.send_waiters:
        kernel.complete_syscall(w[0], Errno("ECONNABORTED"))
    sock.send_waiters.clear()
    for w in sock.accept_waiters:
        kernel.complete_syscall(w, Errno("ECONNABORTED"))
    sock.accept_waiters.clear()


def _alloc_fd(proc: Any, obj: Any) -> int:
    fd = proc.next_fd
    proc.next_fd += 1
    proc.fds[fd] = obj
    return fd


def _trim_blocked_send(proc: Any, remaining: bytes) -> None:
    """Canonicalize a partially-accepted blocking send.

    The accepted prefix now lives in the send queue (and will be part of
    a checkpoint's captured queue); the blocked-syscall record must hold
    only the *remaining* bytes so a post-restart re-issue does not send
    the prefix twice.
    """
    from ..vos.process import SyscallRequest

    req = getattr(proc, "blocked_on", None)
    if req is not None and req.name in ("send", "write") and len(req.args) >= 2:
        args = (req.args[0], bytes(remaining)) + tuple(req.args[2:])
        proc.blocked_on = SyscallRequest(req.name, args, req.dst)


# ---------------------------------------------------------------------------
# the per-node stack
# ---------------------------------------------------------------------------


class NetStack:
    """One node's network stack: NIC + netfilter + demux + syscalls."""

    def __init__(self, kernel: Kernel, fabric: Fabric, primary_ip: str,
                 vnet: Optional[Any] = None) -> None:
        self.kernel = kernel
        self.engine = kernel.engine
        self.fabric = fabric
        self.vnet = vnet if vnet is not None else IdentityVNet()
        self.nic = fabric.attach(primary_ip)
        self.nic.ingress = self._ingress
        self.netfilter = Netfilter()
        self.primary_ip = primary_ip
        self._next_sock_id = 1
        self._next_port = _EPHEMERAL_BASE
        #: (proto, ip, port) -> socket, for listeners and datagram sockets.
        self.bound: Dict[Tuple[str, str, int], Socket] = {}
        #: (proto, local ep, remote ep) -> socket, for TCP connections.
        self.established: Dict[Tuple[str, Endpoint, Endpoint], Socket] = {}
        #: non-socket protocol handlers (kernel-bypass devices register
        #: here): proto name -> callable(packet).
        self.extra_protocols: Dict[str, Any] = {}
        kernel.nic = self.nic
        kernel.netstack = self
        kernel.wait_cancellers.append(self._cancel_waits)
        install_socket_syscalls(kernel, self)

    # ------------------------------------------------------------------
    # socket management
    # ------------------------------------------------------------------
    def create_socket(self, proto: str) -> Socket:
        """Allocate a fresh socket of ``proto`` ("tcp" | "udp" | "raw")."""
        if proto not in ("tcp", "udp", "raw"):
            raise SyscallError("EPROTONOSUPPORT", proto)
        sock = Socket(self, proto, self._next_sock_id)
        self._next_sock_id += 1
        return sock

    def default_ip(self, proc: Any) -> str:
        """The address a socket binds to by default: the pod's virtual
        address for pod processes, the node address for host callers."""
        pod_id = getattr(proc, "pod_id", None)
        if pod_id is not None:
            pod = self.kernel.pods.get(pod_id)
            if pod is not None:
                return pod.vip
        return self.primary_ip

    def alloc_port(self, proto: str, ip: str) -> int:
        """Pick a free ephemeral port on ``ip``."""
        for _ in range(30000):
            port = self._next_port
            self._next_port += 1
            if self._next_port >= 61000:
                self._next_port = _EPHEMERAL_BASE
            if (proto, ip, port) not in self.bound:
                return port
        raise SyscallError("EADDRINUSE", "ephemeral ports exhausted")

    def bind_socket(self, sock: Socket, ip: str, port: int) -> Endpoint:
        """Bind (registering in the demux table); port 0 = ephemeral."""
        if sock.local is not None:
            raise SyscallError("EINVAL", "already bound")
        if port == 0:
            port = self.alloc_port(sock.proto, ip)
        key = (sock.proto, ip, port)
        if key in self.bound and not sock.options.get("SO_REUSEADDR"):
            raise SyscallError("EADDRINUSE", f"{ip}:{port}")
        sock.local = Endpoint(ip, port)
        self.bound[key] = sock
        return sock.local

    def unbind(self, sock: Socket) -> None:
        """Remove a socket's demux entries."""
        if sock.local is not None:
            self.bound.pop((sock.proto, sock.local.ip, sock.local.port), None)
        if sock.remote is not None:
            self.established.pop((sock.proto, sock.local, sock.remote), None)

    def register_established(self, sock: Socket, remote: Endpoint) -> None:
        """Insert a TCP socket into the connection demux."""
        sock.remote = remote
        self.established[(sock.proto, sock.local, remote)] = sock

    def _cancel_waits(self, proc: Any) -> None:
        for sock in list(self.bound.values()) + list(self.established.values()):
            sock.drop_waiter(proc)

    def abort_sockets_of(self, ip: str) -> int:
        """Silently destroy every socket bound to ``ip`` (pod teardown).

        Unlike close, nothing is transmitted — no FIN, no RST, and all
        timers stop.  A destroyed (migrated) pod's old sockets must not
        talk to anyone: their connections have been re-established
        elsewhere with fresh state, and a stale retransmission reaching
        the restored connection would corrupt it.
        """
        count = 0
        for table in (self.bound, self.established):
            for key in [k for k in table if k[1] == ip or (hasattr(k[1], "ip") and k[1].ip == ip)]:
                sock = table.pop(key)
                sock.closed = True
                if sock.proto == "tcp":
                    sock.conn._cancel_rto()
                    if sock.conn._backlog_kick is not None:
                        sock.conn._backlog_kick.cancel()
                        sock.conn._backlog_kick = None
                count += 1
        return count

    # ------------------------------------------------------------------
    # wire I/O
    # ------------------------------------------------------------------
    def transmit(self, sock: Socket, segment: Optional[Segment] = None,
                 payload: bytes = b"", dst: Optional[Endpoint] = None) -> None:
        """Send one packet from ``sock`` (netfilter checked at egress)."""
        target = dst if dst is not None else sock.remote
        if target is None or sock.local is None:
            raise SyscallError("ENOTCONN", "unaddressed transmit")
        pkt = Packet(proto=sock.proto, src=sock.local, dst=target,
                     payload=payload, segment=segment)
        if not self.netfilter.permits(pkt):
            return  # egress blocked (checkpoint freeze)
        pkt.real_src = self.vnet.resolve(sock.local.ip)
        pkt.real_dst = self.vnet.resolve(target.ip)
        self.nic.send(pkt)

    def _ingress(self, pkt: Packet) -> None:
        if not self.netfilter.permits(pkt):
            return  # ingress blocked (checkpoint freeze)
        if pkt.proto == "tcp":
            self._ingress_tcp(pkt)
        elif pkt.proto in self.extra_protocols:
            self.extra_protocols[pkt.proto](pkt)
        else:
            self._ingress_datagram(pkt)

    def _ingress_tcp(self, pkt: Packet) -> None:
        seg = pkt.segment
        key = (pkt.proto, pkt.dst, pkt.src)
        sock = self.established.get(key)
        if sock is not None:
            sock.conn.deliver(seg)
            return
        if seg.has("SYN") and not seg.has("ACK"):
            listener = self.bound.get(("tcp", pkt.dst.ip, pkt.dst.port))
            if listener is None:
                listener = self.bound.get(("tcp", ANY_IP, pkt.dst.port))
            if listener is not None and listener.listening and not listener.closed:
                self._spawn_child(listener, pkt)
                return
        if seg.has("RST"):
            return
        # No home for this segment: refuse actively opened connections.
        if seg.has("SYN"):
            rst = Packet(proto="tcp", src=pkt.dst, dst=pkt.src,
                         segment=Segment(seq=0, ack=seg.seq + 1, flags=frozenset({"RST", "ACK"})))
            rst.real_src = self.vnet.resolve(pkt.dst.ip)
            rst.real_dst = self.vnet.resolve(pkt.src.ip)
            self.nic.send(rst)

    def _spawn_child(self, listener: Socket, pkt: Packet) -> None:
        child = self.create_socket("tcp")
        child.options = dict(listener.options)  # children inherit options
        child.local = Endpoint(pkt.dst.ip, pkt.dst.port)  # inherits the port
        child.listener = listener
        self.register_established(child, pkt.src)
        conn: TcpConn = child.conn
        conn.pcb.rcv_nxt = pkt.segment.seq + 1
        conn.start_passive()

    def _ingress_datagram(self, pkt: Packet) -> None:
        sock = self.bound.get((pkt.proto, pkt.dst.ip, pkt.dst.port))
        if sock is None:
            sock = self.bound.get((pkt.proto, ANY_IP, pkt.dst.port))
        if sock is not None and not sock.closed:
            sock.conn.deliver(pkt.payload, pkt.src)

    # ------------------------------------------------------------------
    # poll support
    # ------------------------------------------------------------------
    def service_poll(self, pw: PollWait) -> None:
        """Re-evaluate a parked poll; complete it when anything is ready."""
        if pw.done:
            return
        ready = []
        for fd, sock, mask in pw.entries:
            events = sock.dispatch["poll"](self, sock) & mask
            if events:
                ready.append((fd, "".join(sorted(events))))
        if ready:
            self._finish_poll(pw, ready)

    def _finish_poll(self, pw: PollWait, result: List[Tuple[int, str]]) -> None:
        pw.done = True
        if pw.timer_handle is not None:
            pw.timer_handle.cancel()
        for _fd, sock, _mask in pw.entries:
            if pw in sock.poll_waiters:
                sock.poll_waiters.remove(pw)
        self.kernel.complete_syscall(pw.proc, result)

    # ------------------------------------------------------------------
    # introspection for the checkpoint layer
    # ------------------------------------------------------------------
    def sockets_of(self, procs: List[Any]) -> List[Tuple[Any, int, Socket]]:
        """All (proc, fd, socket) triples across ``procs``, fd-ordered."""
        out = []
        for proc in procs:
            for fd in sorted(proc.fds):
                obj = proc.fds[fd]
                if isinstance(obj, Socket):
                    out.append((proc, fd, obj))
        return out


# ---------------------------------------------------------------------------
# syscall handlers
# ---------------------------------------------------------------------------


def install_socket_syscalls(kernel: Kernel, stack: NetStack) -> None:
    """Register every socket syscall on ``kernel`` bound to ``stack``."""

    def _sock(proc: Any, fd: int) -> Socket:
        obj = proc.fds.get(fd)
        if not isinstance(obj, Socket):
            raise SyscallError("EBADF", f"fd {fd} is not a socket")
        return obj

    def sys_socket(kern, proc, args, restarted):
        (proto,) = args
        sock = stack.create_socket(proto)
        return Complete(_alloc_fd(proc, sock))

    def sys_bind(kern, proc, args, restarted):
        fd, addr = args
        sock = _sock(proc, fd)
        ip, port = addr
        if ip in ("", None, "default"):
            ip = stack.default_ip(proc)
        ep = stack.bind_socket(sock, ip, int(port))
        return Complete(tuple(ep))

    def sys_listen(kern, proc, args, restarted):
        fd, _backlog = args
        sock = _sock(proc, fd)
        if sock.proto != "tcp":
            raise SyscallError("EOPNOTSUPP", "listen on datagram socket")
        if sock.local is None:
            raise SyscallError("EINVAL", "listen before bind")
        sock.listening = True
        sock.conn.state = LISTEN
        return Complete(0)

    def sys_accept(kern, proc, args, restarted):
        (fd,) = args
        sock = _sock(proc, fd)
        if not sock.listening:
            raise SyscallError("EINVAL", "accept on non-listening socket")
        if sock.accept_q:
            child = sock.accept_q.pop(0)
            newfd = _alloc_fd(proc, child)
            return Complete((newfd, child.remote))
        if sock.options.get("O_NONBLOCK"):
            return Complete(Errno("EWOULDBLOCK"))
        sock.accept_waiters.append(proc)
        return BLOCK

    def sys_connect(kern, proc, args, restarted):
        fd, addr = args
        sock = _sock(proc, fd)
        target = Endpoint(addr[0], int(addr[1]))
        if sock.proto != "tcp":
            sock.conn.default_peer = target
            if sock.local is None:
                stack.bind_socket(sock, stack.default_ip(proc), 0)
            return Complete(0)
        conn: TcpConn = sock.conn
        if conn.state == ESTABLISHED:
            return Complete(0)  # re-issued after restart: already connected
        if conn.state != CLOSED:
            raise SyscallError("EALREADY", "connect in progress")
        if sock.local is None:
            stack.bind_socket(sock, stack.default_ip(proc), 0)
        stack.register_established(sock, target)
        conn.start_connect()
        sock.connect_waiter = proc
        return BLOCK

    def sys_send(kern, proc, args, restarted):
        fd, data, flags = args
        sock = _sock(proc, fd)
        value = sock.dispatch["sendmsg"](stack, sock, data, flags)
        if value is None:
            sock.send_waiters.append((proc, data, flags, 0))
            return BLOCK
        if isinstance(value, int) and not isinstance(value, bool) and value < len(data):
            # partially accepted: block until the rest drains
            sock.send_waiters.append((proc, data[value:], flags, value))
            _trim_blocked_send(proc, data[value:])
            return BLOCK
        return Complete(value)

    def sys_sendto(kern, proc, args, restarted):
        fd, data, addr = args
        sock = _sock(proc, fd)
        if sock.proto == "tcp":
            raise SyscallError("EISCONN", "sendto on stream socket")
        if sock.local is None:
            stack.bind_socket(sock, stack.default_ip(proc), 0)
        return Complete(sock.conn.app_send(bytes(data), Endpoint(addr[0], int(addr[1]))))

    def sys_recv(kern, proc, args, restarted):
        fd, n, flags = args
        sock = _sock(proc, fd)
        value = sock.dispatch["recvmsg"](stack, sock, int(n), int(flags))
        if value is None:
            sock.recv_waiters.append((proc, int(n), int(flags)))
            return BLOCK
        return Complete(value)

    def sys_recvfrom(kern, proc, args, restarted):
        fd, n, flags = args
        sock = _sock(proc, fd)
        if sock.proto == "tcp":
            raise SyscallError("EOPNOTSUPP", "recvfrom on stream socket")
        dconn: DatagramConn = sock.conn
        got = dconn.try_recv(int(n), peek=bool(int(flags) & MSG_PEEK))
        if got is not None:
            return Complete((got[0], tuple(got[1])))
        if sock.options.get("O_NONBLOCK"):
            return Complete(Errno("EWOULDBLOCK"))
        sock.recv_waiters.append((proc, int(n), int(flags) | _MSG_WANT_SRC))
        return BLOCK

    def sys_shutdown(kern, proc, args, restarted):
        fd, how = args
        sock = _sock(proc, fd)
        if how not in ("rd", "wr", "rdwr"):
            raise SyscallError("EINVAL", f"shutdown how={how!r}")
        if "wr" in how or how == "rdwr":
            if sock.proto == "tcp":
                sock.conn.app_close()
        if "rd" in how or how == "rdwr":
            sock.rd_closed = True
            sock.on_readable()  # EOF wakes readers
        return Complete(0)

    def sys_getsockopt(kern, proc, args, restarted):
        fd, name = args
        sock = _sock(proc, fd)
        if name not in sock.options:
            raise SyscallError("ENOPROTOOPT", name)
        return Complete(sock.options[name])

    def sys_setsockopt(kern, proc, args, restarted):
        fd, name, value = args
        sock = _sock(proc, fd)
        sock.options[name] = validate_option(sock.proto, name, value)
        return Complete(0)

    def sys_getsockname(kern, proc, args, restarted):
        (fd,) = args
        sock = _sock(proc, fd)
        if sock.local is None:
            raise SyscallError("EINVAL", "unbound socket")
        return Complete(tuple(sock.local))

    def sys_getpeername(kern, proc, args, restarted):
        (fd,) = args
        sock = _sock(proc, fd)
        if sock.remote is None:
            raise SyscallError("ENOTCONN", "no peer")
        return Complete(tuple(sock.remote))

    def sys_poll(kern, proc, args, restarted):
        """poll(fds, timeout): each fd spec is ``fd`` (interest = rw) or
        ``(fd, "r"|"w"|"rw")``; returns [(fd, events)] or [] on timeout."""
        fds, timeout = args
        entries = []
        for spec in fds:
            if isinstance(spec, (tuple, list)):
                fd, mask = spec
            else:
                fd, mask = spec, "rw"
            entries.append((fd, _sock(proc, fd), set(mask)))
        ready = []
        for fd, sock, mask in entries:
            events = sock.dispatch["poll"](stack, sock) & mask
            if events:
                ready.append((fd, "".join(sorted(events))))
        if ready or timeout == 0:
            return Complete(ready)
        pw = PollWait(proc, entries, None)
        if timeout is not None and timeout > 0:
            pw.timer_handle = kernel.engine.schedule(
                float(timeout), stack._finish_poll, pw, [])
        for _fd, sock, _mask in entries:
            sock.poll_waiters.append(pw)
        return BLOCK

    handlers = {
        "socket": sys_socket,
        "bind": sys_bind,
        "listen": sys_listen,
        "accept": sys_accept,
        "connect": sys_connect,
        "send": sys_send,
        "sendto": sys_sendto,
        "recv": sys_recv,
        "recvfrom": sys_recvfrom,
        "shutdown": sys_shutdown,
        "getsockopt": sys_getsockopt,
        "setsockopt": sys_setsockopt,
        "getsockname": sys_getsockname,
        "getpeername": sys_getpeername,
        "poll": sys_poll,
    }
    for name, handler in handlers.items():
        kernel.register_syscall(name, handler)
