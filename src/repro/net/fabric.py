"""The cluster interconnect: a switched gigabit-Ethernet-like fabric.

Each node attaches one :class:`Nic`.  Transmission occupies the sender's
egress link at line rate (packets serialize behind each other), then a
propagation/switching latency elapses before the destination NIC's
ingress runs.  The fabric supports random loss (for retransmission
tests) and partitions (for the fault-injection experiments).

Defaults follow the paper's testbed: Gigabit Ethernet, ~100 µs one-way
latency through the switch.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..errors import NetError
from ..sim.engine import Engine
from .packet import Packet

#: Gigabit Ethernet payload rate, bytes/second.
DEFAULT_BANDWIDTH = 125e6
#: One-way latency, seconds.
DEFAULT_LATENCY = 100e-6


class Nic:
    """One node's network interface.

    A NIC owns a set of *real* addresses (the primary node address plus
    any aliases) and an ingress callback supplied by the node's network
    stack.  Egress is serialized: consecutive sends queue behind each
    other at line rate.
    """

    def __init__(self, fabric: "Fabric", primary_ip: str) -> None:
        self.fabric = fabric
        self.primary_ip = primary_ip
        self.addresses: Set[str] = {primary_ip}
        self.ingress: Optional[Callable[[Packet], None]] = None
        self._egress_free_at = 0.0
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0

    def add_address(self, ip: str) -> None:
        """Attach an alias address (used when a pod lands on this node)."""
        self.addresses.add(ip)

    def drop_address(self, ip: str) -> None:
        """Detach an alias (pod left the node)."""
        if ip == self.primary_ip:
            raise NetError("cannot drop the primary address")
        self.addresses.discard(ip)

    def send(self, packet: Packet) -> None:
        """Queue a packet for transmission."""
        self.fabric.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Fabric-side entry point for an arriving packet."""
        self.rx_packets += 1
        if self.ingress is not None:
            self.ingress(packet)


class Fabric:
    """The switch connecting all NICs, addressed by real IP."""

    def __init__(
        self,
        engine: Engine,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        loss_rate: float = 0.0,
    ) -> None:
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.loss_rate = float(loss_rate)
        self._nics: Dict[str, Nic] = {}
        self._partitions: Set[Tuple[str, str]] = set()
        #: per-direction extra propagation delay (fault injection).
        self._extra_latency: Dict[Tuple[str, str], float] = {}
        #: extra propagation delay applied to every link (fault injection).
        self.global_extra_latency = 0.0
        self._rng = engine.rng.stream("fabric.loss")
        self.dropped_packets = 0

    # ------------------------------------------------------------------
    def attach(self, primary_ip: str) -> Nic:
        """Create and register a NIC with the given primary address."""
        if primary_ip in self._nics:
            raise NetError(f"address {primary_ip} already attached")
        nic = Nic(self, primary_ip)
        self._nics[primary_ip] = nic
        return nic

    def nic_for(self, real_ip: str) -> Optional[Nic]:
        """Find the NIC currently owning ``real_ip`` (primary or alias)."""
        nic = self._nics.get(real_ip)
        if nic is not None:
            return nic
        for candidate in self._nics.values():
            if real_ip in candidate.addresses:
                return candidate
        return None

    # ------------------------------------------------------------------
    def partition(self, ip_a: str, ip_b: str) -> None:
        """Block traffic between two real addresses (both directions)."""
        self._partitions.add((ip_a, ip_b))
        self._partitions.add((ip_b, ip_a))

    def heal(self, ip_a: str, ip_b: str) -> None:
        """Remove a partition."""
        self._partitions.discard((ip_a, ip_b))
        self._partitions.discard((ip_b, ip_a))

    def is_partitioned(self, ip_a: str, ip_b: str) -> bool:
        """Whether traffic from ``ip_a`` to ``ip_b`` is currently blocked."""
        return (ip_a, ip_b) in self._partitions

    def delay_link(self, ip_a: str, ip_b: str, extra: float) -> None:
        """Add ``extra`` seconds of one-way latency between two addresses
        (both directions) — the message-delay fault."""
        self._extra_latency[(ip_a, ip_b)] = float(extra)
        self._extra_latency[(ip_b, ip_a)] = float(extra)

    def clear_link_delay(self, ip_a: str, ip_b: str) -> None:
        """Undo :meth:`delay_link`."""
        self._extra_latency.pop((ip_a, ip_b), None)
        self._extra_latency.pop((ip_b, ip_a), None)

    # ------------------------------------------------------------------
    def transmit(self, src_nic: Nic, packet: Packet) -> None:
        """Serialize a packet onto the sender's egress link."""
        if not packet.real_dst:
            raise NetError(f"packet without routing address: {packet!r}")
        now = self.engine.now
        start = max(now, src_nic._egress_free_at)
        tx_time = packet.size / self.bandwidth
        src_nic._egress_free_at = start + tx_time
        src_nic.tx_packets += 1
        src_nic.tx_bytes += packet.size
        extra = (self.global_extra_latency
                 + self._extra_latency.get((packet.real_src, packet.real_dst), 0.0))
        arrival = start + tx_time + self.latency + extra
        self.engine.schedule_at(arrival, self._arrive, src_nic, packet)

    def _arrive(self, src_nic: Nic, packet: Packet) -> None:
        if (packet.real_src, packet.real_dst) in self._partitions:
            self.dropped_packets += 1
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.dropped_packets += 1
            return
        dst_nic = self.nic_for(packet.real_dst)
        if dst_nic is None:
            self.dropped_packets += 1  # address currently unowned (mid-migration)
            return
        dst_nic.deliver(packet)
