"""The simulated network: fabric, protocols, sockets, filtering.

A packet-level reimplementation of the transports the paper's network
checkpoint-restart must handle — a TCP-like reliable stream protocol
(sequence numbers, ACKs, retransmission, urgent/OOB data, backlog
queue), UDP, and raw IP — behind a BSD-style socket layer whose
per-socket dispatch vector is the interposition point ZapC alters.
"""

from .addr import ANY_IP, Endpoint, real_ip, virtual_ip
from .fabric import Fabric, Nic
from .netfilter import Netfilter
from .packet import Packet, Segment
from .sockets import (
    IdentityVNet,
    MSG_OOB,
    MSG_PEEK,
    NetStack,
    Socket,
    default_poll,
    default_recvmsg,
    default_release,
    default_sendmsg,
)
from .sockopt import default_options
from .tcp import ESTABLISHED, TcpConn, TcpPcb
from .udp import DatagramConn

__all__ = [
    "ANY_IP",
    "DatagramConn",
    "ESTABLISHED",
    "Endpoint",
    "Fabric",
    "IdentityVNet",
    "MSG_OOB",
    "MSG_PEEK",
    "NetStack",
    "Netfilter",
    "Nic",
    "Packet",
    "Segment",
    "Socket",
    "TcpConn",
    "TcpPcb",
    "default_options",
    "default_poll",
    "default_recvmsg",
    "default_release",
    "default_sendmsg",
    "real_ip",
    "virtual_ip",
]
