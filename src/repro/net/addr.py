"""Addresses and endpoints.

The simulator distinguishes *virtual* addresses (what applications inside
pods see — constant for the life of the pod) from *real* addresses (the
hosting node's NIC — changes on migration).  Both are plain dotted
strings; an :class:`Endpoint` pairs an address with a port.  The mapping
between the two lives in :class:`repro.pod.vnet.VNet`.
"""

from __future__ import annotations

from typing import NamedTuple


class Endpoint(NamedTuple):
    """An (address, port) pair; hashable so it can key demux tables."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


#: The wildcard address (bind to "any").
ANY_IP = "0.0.0.0"


def real_ip(index: int) -> str:
    """Real (node) address for blade ``index``: the paper's cluster LAN."""
    return f"10.0.0.{index + 1}"


def virtual_ip(index: int) -> str:
    """Virtual (pod) address ``index``: the namespace apps see."""
    return f"10.77.0.{index + 1}"
