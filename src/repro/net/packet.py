"""Wire formats: datagrams and TCP segments.

Packets carry *virtual* endpoints end-to-end (what the communicating
sockets believe) plus *real* routing addresses stamped at egress by the
address-translation layer — the simulated form of ZapC transparently
remapping pod virtual addresses onto whatever node currently hosts the
pod.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from .addr import Endpoint

#: Per-packet header overhead charged against link bandwidth (bytes).
HEADER_BYTES = 66  # Ethernet + IP + TCP, roughly

_packet_ids = itertools.count(1)


@dataclass
class Segment:
    """A TCP segment (also reused for the SYN/FIN/RST control packets)."""

    seq: int = 0
    ack: int = 0
    flags: FrozenSet[str] = frozenset()  # subset of {SYN, ACK, FIN, RST, URG}
    data: bytes = b""
    wnd: int = 0

    def has(self, flag: str) -> bool:
        """Whether ``flag`` is set."""
        return flag in self.flags

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fl = ",".join(sorted(self.flags)) or "-"
        return f"Segment(seq={self.seq}, ack={self.ack}, [{fl}], len={len(self.data)})"


@dataclass
class Packet:
    """One unit in flight on the fabric."""

    proto: str  # "tcp" | "udp" | "raw"
    src: Endpoint  # virtual source
    dst: Endpoint  # virtual destination
    payload: bytes = b""  # udp/raw data
    segment: Optional[Segment] = None  # tcp
    real_src: str = ""  # routing addresses, stamped at egress
    real_dst: str = ""
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """Bytes charged against link bandwidth."""
        body = len(self.segment.data) if self.segment is not None else len(self.payload)
        return HEADER_BYTES + body

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        core = repr(self.segment) if self.segment else f"len={len(self.payload)}"
        return f"Packet({self.proto} {self.src}->{self.dst} {core})"
