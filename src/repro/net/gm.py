"""A Myrinet/GM-style kernel-bypass network device.

The paper closes Section 5 noting that "some high performance clusters
employ MPI implementations based on specialized high-speed networks
where it is typical for the applications to bypass the operating system
kernel and directly access the actual device using a dedicated
communication library.  Myrinet combined with the GM library is one
such example.  The ZapC approach can be extended to work in such
environments if two key requirements are met.  First, the library must
be decoupled from the device driver instance ... Second, there must be
some method to extract the state kept by the device driver, as well as
reinstate this state on another such device driver."

This module builds that environment:

* one :class:`GmDevice` per node, reachable over the same fabric (so a
  pod's netfilter freeze covers it) but **not** through the socket
  layer — messages never touch TCP/UDP;
* GM-style *ports* with **send tokens** (GM's credit flow control) and
  receive queues — the state "kept by the device driver";
* reliable delivery via per-message credits and device-level
  retransmission, so in-flight loss during a checkpoint freeze heals
  exactly as the paper's argument requires;
* the two extension hooks ZapC needs: :meth:`GmDevice.extract_state`
  and :meth:`GmDevice.reinstate_state` (used by
  :mod:`repro.core.devckpt`).  Library decoupling comes for free: pod
  processes reach the device only through interposed syscalls, never
  through a captured device pointer.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from ..errors import SyscallError
from ..vos.kernel import Kernel
from ..vos.syscalls import BLOCK, Complete, Errno
from .addr import Endpoint
from .packet import Packet

#: send tokens per port (GM's default-ish credit count).
DEFAULT_TOKENS = 16
#: device-level retransmission period, seconds.
GM_RETRY = 0.1

_msg_ids = itertools.count(1)


class GmPort:
    """One open GM port: the user-level endpoint of the bypass device."""

    kind = "gmport"

    def __init__(self, device: "GmDevice", vip: str, port_num: int) -> None:
        self.device = device
        self.vip = vip
        self.port_num = port_num
        #: received messages awaiting the application:
        #: (msg id, data, src vip, src port).
        self.recv_q: Deque[Tuple[int, bytes, str, int]] = deque()
        #: send credits (receive-buffer slots at the peer); a send
        #: consumes one, returned when the peer's *application* consumes.
        self.tokens = DEFAULT_TOKENS
        #: sent but uncredited messages: msg_id -> (dest vip, dest port, data).
        self.pending: Dict[int, Tuple[str, int, bytes]] = {}
        #: message ids accepted into the queue (dedup on device retry).
        self.seen_ids: set = set()
        #: message ids consumed and credited (re-credit lost-credit retries).
        self.credited_ids: set = set()
        self.recv_waiters: List[Any] = []
        self.token_waiters: List[Tuple[Any, str, int, bytes]] = []
        self.closed = False
        self._retry_handle = None

    def release(self, kernel: Kernel, proc: Any) -> None:
        """fd-close entry point (mirrors the socket layer's)."""
        self.device.close_port(self)

    # -- state extraction (the driver interface ZapC's extension needs) --
    def driver_state(self) -> Dict[str, Any]:
        """Serializable device-driver state for this port."""
        return {
            "vip": self.vip,
            "port_num": self.port_num,
            "tokens": self.tokens,
            "recv_q": [(mid, bytes(d), s, p) for mid, d, s, p in self.recv_q],
            "pending": {str(mid): (dst, dport, bytes(data))
                        for mid, (dst, dport, data) in self.pending.items()},
            "seen_ids": sorted(self.seen_ids),
            "credited_ids": sorted(self.credited_ids),
        }

    def load_driver_state(self, state: Dict[str, Any]) -> None:
        """Reinstate extracted state onto this (fresh) port."""
        self.tokens = int(state["tokens"])
        self.recv_q = deque((int(mid), bytes(d), s, int(p))
                            for mid, d, s, p in state["recv_q"])
        self.pending = {int(mid): (dst, int(dport), bytes(data))
                        for mid, (dst, dport, data) in state["pending"].items()}
        self.seen_ids = set(int(x) for x in state["seen_ids"])
        self.credited_ids = set(int(x) for x in state.get("credited_ids", []))
        if self.pending:
            self.device._arm_retry(self)


class GmDevice:
    """The per-node bypass NIC exposed to pods via syscalls."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.stack = kernel.netstack
        self.engine = kernel.engine
        #: (vip, port number) -> open port.
        self.ports: Dict[Tuple[str, int], GmPort] = {}
        self.stack.extra_protocols["gm"] = self._ingress
        kernel.gm_device = self
        install_gm_syscalls(kernel, self)

    # ------------------------------------------------------------------
    # port lifecycle
    # ------------------------------------------------------------------
    def open_port(self, vip: str, port_num: int) -> GmPort:
        key = (vip, port_num)
        if key in self.ports:
            raise SyscallError("EADDRINUSE", f"gm port {key}")
        port = GmPort(self, vip, port_num)
        self.ports[key] = port
        return port

    def close_port(self, port: GmPort) -> None:
        if port.closed:
            return
        port.closed = True
        if port._retry_handle is not None:
            port._retry_handle.cancel()
            port._retry_handle = None
        self.ports.pop((port.vip, port.port_num), None)
        for waiter in port.recv_waiters:
            self.kernel.complete_syscall(waiter, Errno("ECONNABORTED"))
        port.recv_waiters.clear()
        for waiter, *_rest in port.token_waiters:
            self.kernel.complete_syscall(waiter, Errno("ECONNABORTED"))
        port.token_waiters.clear()

    # ------------------------------------------------------------------
    # wire protocol: data frames and credit returns, over the fabric
    # ------------------------------------------------------------------
    def _transmit(self, port: GmPort, dst_vip: str, dst_port: int,
                  payload: bytes) -> None:
        pkt = Packet(proto="gm", src=Endpoint(port.vip, port.port_num),
                     dst=Endpoint(dst_vip, dst_port), payload=payload)
        if not self.stack.netfilter.permits(pkt):
            return  # frozen for checkpoint: the retry timer will recover
        pkt.real_src = self.stack.vnet.resolve(port.vip)
        pkt.real_dst = self.stack.vnet.resolve(dst_vip)
        self.stack.nic.send(pkt)

    @staticmethod
    def _frame(kind: bytes, msg_id: int, data: bytes = b"") -> bytes:
        return kind + msg_id.to_bytes(8, "big") + data

    def send(self, port: GmPort, dst_vip: str, dst_port: int, data: bytes) -> int:
        """Consume a token and launch a message; returns the message id."""
        msg_id = next(_msg_ids)
        port.tokens -= 1
        port.pending[msg_id] = (dst_vip, dst_port, bytes(data))
        self._transmit(port, dst_vip, dst_port, self._frame(b"D", msg_id, data))
        self._arm_retry(port)
        return msg_id

    def _arm_retry(self, port: GmPort) -> None:
        if port._retry_handle is None and port.pending:
            port._retry_handle = self.engine.schedule(GM_RETRY, self._retry, port)

    def _retry(self, port: GmPort) -> None:
        port._retry_handle = None
        if port.closed:
            return
        for msg_id, (dst, dport, data) in list(port.pending.items()):
            self._transmit(port, dst, dport, self._frame(b"D", msg_id, data))
        self._arm_retry(port)

    def _ingress(self, pkt: Packet) -> None:
        port = self.ports.get((pkt.dst.ip, pkt.dst.port))
        if port is None or port.closed:
            return
        kind = pkt.payload[:1]
        msg_id = int.from_bytes(pkt.payload[1:9], "big")
        if kind == b"D":
            if msg_id in port.seen_ids:
                # retry of a known message: re-credit only if its credit
                # was already issued (and possibly lost); still-queued
                # messages keep the sender throttled
                if msg_id in port.credited_ids:
                    self._transmit(port, pkt.src.ip, pkt.src.port,
                                   self._frame(b"C", msg_id))
                return
            port.seen_ids.add(msg_id)
            port.recv_q.append((msg_id, pkt.payload[9:], pkt.src.ip, pkt.src.port))
            self._service_receivers(port)
        elif kind == b"C":
            if port.pending.pop(msg_id, None) is not None:
                port.tokens += 1
                if not port.pending and port._retry_handle is not None:
                    port._retry_handle.cancel()
                    port._retry_handle = None
                self._service_senders(port)

    # ------------------------------------------------------------------
    # waiter service
    # ------------------------------------------------------------------
    def consume(self, port: GmPort) -> Tuple[bytes, Tuple[str, int]]:
        """App-side dequeue: frees the receive slot and returns a credit."""
        msg_id, data, src_vip, src_port = port.recv_q.popleft()
        port.credited_ids.add(msg_id)
        self._transmit(port, src_vip, src_port, self._frame(b"C", msg_id))
        return data, (src_vip, src_port)

    def _service_receivers(self, port: GmPort) -> None:
        while port.recv_waiters and port.recv_q:
            proc = port.recv_waiters.pop(0)
            self.kernel.complete_syscall(proc, self.consume(port))

    def _service_senders(self, port: GmPort) -> None:
        while port.token_waiters and port.tokens > 0:
            proc, dst_vip, dst_port, data = port.token_waiters.pop(0)
            self.send(port, dst_vip, dst_port, data)
            self.kernel.complete_syscall(proc, len(data))

    # ------------------------------------------------------------------
    # the ZapC extension hooks
    # ------------------------------------------------------------------
    def extract_state(self, vip: str) -> List[Dict[str, Any]]:
        """Extract the driver state of every port owned by ``vip``."""
        return [port.driver_state()
                for (pvip, _n), port in sorted(self.ports.items())
                if pvip == vip]

    def reinstate_state(self, states: List[Dict[str, Any]]) -> Dict[int, GmPort]:
        """Recreate ports from extracted state; returns them by port number."""
        out = {}
        for state in states:
            port = self.open_port(state["vip"], int(state["port_num"]))
            port.load_driver_state(state)
            out[port.port_num] = port
        return out

    def abort_ports_of(self, vip: str) -> None:
        """Silently drop a destroyed pod's ports (migration teardown)."""
        for key in [k for k in self.ports if k[0] == vip]:
            port = self.ports[key]
            port.pending.clear()
            self.close_port(port)


# ---------------------------------------------------------------------------
# syscalls (the "GM library" surface; pods interpose on these like any other)
# ---------------------------------------------------------------------------


def install_gm_syscalls(kernel: Kernel, device: GmDevice) -> None:
    """Register the GM library's syscall surface on ``kernel``."""

    def _port(proc: Any, fd: int) -> GmPort:
        obj = proc.fds.get(fd)
        if not isinstance(obj, GmPort):
            raise SyscallError("EBADF", f"fd {fd} is not a GM port")
        return obj

    def sys_gm_open(kern, proc, args, restarted):
        (port_num,) = args
        vip = device.stack.default_ip(proc)
        port = device.open_port(vip, int(port_num))
        fd = proc.next_fd
        proc.next_fd += 1
        proc.fds[fd] = port
        return Complete(fd)

    def sys_gm_send(kern, proc, args, restarted):
        fd, dst, data = args
        port = _port(proc, fd)
        dst_vip, dst_port = dst
        if port.tokens <= 0:
            port.token_waiters.append((proc, dst_vip, int(dst_port), bytes(data)))
            return BLOCK
        device.send(port, dst_vip, int(dst_port), bytes(data))
        return Complete(len(data))

    def sys_gm_recv(kern, proc, args, restarted):
        (fd,) = args
        port = _port(proc, fd)
        if port.recv_q:
            return Complete(device.consume(port))
        port.recv_waiters.append(proc)
        return BLOCK

    def sys_gm_tokens(kern, proc, args, restarted):
        (fd,) = args
        return Complete(_port(proc, fd).tokens)

    for name, handler in {
        "gm_open": sys_gm_open,
        "gm_send": sys_gm_send,
        "gm_recv": sys_gm_recv,
        "gm_tokens": sys_gm_tokens,
    }.items():
        kernel.register_syscall(name, handler)
