"""A from-scratch reliable transport in the image of TCP.

Implements exactly the mechanisms the paper's network checkpoint-restart
depends on:

* sequence numbers with cumulative ACKs — the protocol control block
  (PCB) tracks ``snd_una`` (= the paper's *acked*), ``snd_nxt`` (*sent*)
  and ``rcv_nxt`` (*recv*), whose relationship ``recv₁ ≥ acked₂`` is the
  invariant behind the send/receive queue overlap fix;
* a send queue holding exactly the un-ACKed + unsent bytes
  ``[snd_una, snd_una + len(send_buf))``;
* an in-order receive queue, an out-of-order reassembly map, and a
  **backlog queue** of delivered-but-unprocessed segments (processed by
  a deferred "bottom half", or eagerly whenever the socket lock is
  taken) — the queue a peek-based capture misses;
* out-of-band (urgent) data kept in a separate buffer unless
  ``SO_OOBINLINE`` — the other data a peek-based capture misses;
* retransmission timers with exponential backoff, which is what makes
  "in-flight data can be safely ignored" true across a checkpoint;
* connection establishment via SYN / SYN+ACK / ACK where an accepted
  socket *inherits the listener's port* — the property that forces the
  restart schedule to recreate shared-port connections through a
  listener.

Window management is simplified (a fixed advertised window derived from
``SO_RCVBUF``, with window-update ACKs when the application drains a
previously-full queue); there is no congestion control, Nagle, or
delayed ACK — none of which the checkpoint mechanisms interact with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .packet import Segment

if TYPE_CHECKING:  # pragma: no cover
    from .sockets import NetStack, Socket

# Connection states.
CLOSED = "closed"
LISTEN = "listen"
SYN_SENT = "syn_sent"
SYN_RCVD = "syn_rcvd"
ESTABLISHED = "established"

#: Initial sequence number (fixed for determinism; real ISNs randomize).
INITIAL_SEQ = 1000
#: Base retransmission timeout, seconds.
RTO_BASE = 0.2
#: Retransmission timeout cap, seconds.
RTO_MAX = 6.4
#: Deferred backlog-processing ("bottom half") delay, seconds.
BACKLOG_DELAY = 20e-6


class TcpPcb:
    """Protocol control block: the minimal protocol-specific state.

    The paper: "a necessary and sufficient condition to ensure correct
    restart of a connection is to capture the recv and acked values on
    both peers ... located in a protocol-control-block (PCB) data
    structure associated with every TCP socket."
    """

    __slots__ = ("snd_una", "snd_nxt", "rcv_nxt", "rto", "peer_wnd")

    def __init__(self) -> None:
        self.snd_una = INITIAL_SEQ  # oldest unacknowledged ("acked" by peer)
        self.snd_nxt = INITIAL_SEQ  # next sequence to send ("sent")
        self.rcv_nxt = INITIAL_SEQ  # next expected from peer ("recv")
        self.rto = RTO_BASE
        self.peer_wnd = 262144

    def snapshot(self) -> Dict[str, int]:
        """The checkpointed PCB fields (sent / acked-by-me / recv)."""
        return {"sent": self.snd_nxt, "acked": self.snd_una, "recv": self.rcv_nxt}


class TcpConn:
    """Per-connection protocol machinery attached to a TCP socket."""

    def __init__(self, sock: "Socket") -> None:
        self.sock = sock
        self.state = CLOSED
        self.pcb = TcpPcb()
        # --- send side ---
        #: bytes [snd_una, snd_una + len) — unacked + unsent data.
        self.send_buf = bytearray()
        self.fin_sent = False
        self.fin_acked = False
        #: seq of our FIN, once sent (it occupies one sequence slot).
        self.fin_seq: Optional[int] = None
        # --- receive side ---
        #: in-order data ready for the application.
        self.recv_q = bytearray()
        #: out-of-order segments awaiting the gap to fill: seq -> bytes.
        self.ooo: Dict[int, bytes] = {}
        #: delivered but unprocessed segments (the Linux backlog queue).
        self.backlog: List[Segment] = []
        self._backlog_kick = None
        #: out-of-band (urgent) bytes, unless SO_OOBINLINE routes them inline.
        self.oob = bytearray()
        self.fin_rcvd = False
        #: a FIN that arrived ahead of missing data; honored only once
        #: the stream catches up (a FIN must not skip rcv_nxt forward).
        self._pending_fin: Optional[int] = None
        self.peeked = False
        # --- timers ---
        self.rto_handle = None
        self.last_adv_wnd = 262144

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def stack(self) -> "NetStack":
        return self.sock.stack

    def mss(self) -> int:
        return int(self.sock.options.get("TCP_MAXSEG", 16384))

    def rcvbuf(self) -> int:
        return int(self.sock.options.get("SO_RCVBUF", 262144))

    def sndbuf(self) -> int:
        return int(self.sock.options.get("SO_SNDBUF", 262144))

    def adv_wnd(self) -> int:
        pending = len(self.recv_q) + sum(len(s.data) for s in self.backlog)
        return max(0, self.rcvbuf() - pending)

    def _emit(self, seg: Segment) -> None:
        """Hand a segment to the stack for transmission."""
        self.last_adv_wnd = seg.wnd
        self.stack.transmit(self.sock, segment=seg)

    def _seg(self, flags: frozenset, seq: int = 0, data: bytes = b"") -> Segment:
        return Segment(seq=seq, ack=self.pcb.rcv_nxt, flags=flags, data=data, wnd=self.adv_wnd())

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def start_connect(self) -> None:
        """Active open: send SYN (which consumes one sequence slot)."""
        self.state = SYN_SENT
        self._emit(self._seg(frozenset({"SYN"}), seq=self.pcb.snd_nxt))
        self.pcb.snd_nxt += 1
        self._arm_rto()

    def start_passive(self) -> None:
        """Passive open from a listener: reply SYN+ACK (state SYN_RCVD).

        The SYN consumes a sequence slot here too — without this, the
        first data pushed by an accepted socket is mis-offset.
        """
        self.state = SYN_RCVD
        self._emit(self._seg(frozenset({"SYN", "ACK"}), seq=self.pcb.snd_nxt))
        self.pcb.snd_nxt += 1
        self._arm_rto()

    # ------------------------------------------------------------------
    # segment arrival: backlog first, then the protocol proper
    # ------------------------------------------------------------------
    def deliver(self, seg: Segment) -> None:
        """NIC-side entry: enqueue on the backlog; a bottom half drains it."""
        self.backlog.append(seg)
        if self._backlog_kick is None:
            self._backlog_kick = self.stack.engine.schedule(BACKLOG_DELAY, self._drain_backlog)

    def _drain_backlog(self) -> None:
        self._backlog_kick = None
        self.process_backlog()

    def process_backlog(self) -> None:
        """Drain the backlog (the effect of taking the socket lock).

        The checkpoint capture path calls this before reading the receive
        queue, which is why ZapC sees backlog data a peek-based approach
        does not.
        """
        if self._backlog_kick is not None:
            self._backlog_kick.cancel()
            self._backlog_kick = None
        while self.backlog:
            seg = self.backlog.pop(0)
            self._process(seg)

    # ------------------------------------------------------------------
    def _process(self, seg: Segment) -> None:
        if seg.has("RST"):
            self._on_rst()
            return
        if self.state == SYN_SENT:
            if seg.has("SYN") and seg.has("ACK"):
                self.pcb.rcv_nxt = seg.seq + 1
                self.pcb.snd_una = seg.ack if seg.ack else self.pcb.snd_una
                self.pcb.snd_nxt = max(self.pcb.snd_nxt, self.pcb.snd_una)
                self.state = ESTABLISHED
                self._cancel_rto()
                self._emit(self._seg(frozenset({"ACK"}), seq=self.pcb.snd_nxt))
                self.sock.on_connected()
            return
        if self.state == SYN_RCVD:
            if seg.has("ACK") and not seg.data:
                self.pcb.snd_una = max(self.pcb.snd_una, seg.ack)
                self.state = ESTABLISHED
                self._cancel_rto()
                self.sock.on_accept_ready()
                return
            # data may arrive piggybacked right after the final ACK is lost;
            # fall through to normal processing which implies establishment.
            if seg.data or seg.has("FIN"):
                self.state = ESTABLISHED
                self._cancel_rto()
                self.sock.on_accept_ready()
        if self.state != ESTABLISHED:
            return
        if seg.has("SYN"):
            # duplicate SYN+ACK retransmission: our ACK was lost; re-ACK it.
            self._emit(self._seg(frozenset({"ACK"}), seq=self.pcb.snd_nxt))
            return

        if seg.has("ACK"):
            self._on_ack(seg.ack, seg.wnd)

        if seg.has("URG") and seg.data:
            self._on_urgent(seg.data)
        elif seg.data:
            self._on_data(seg.seq, seg.data)

        if seg.has("FIN"):
            self._on_fin(seg.seq)

    # -- receiving ------------------------------------------------------
    def _on_data(self, seq: int, data: bytes) -> None:
        pcb = self.pcb
        if seq + len(data) <= pcb.rcv_nxt:
            # pure duplicate — re-ACK so the sender advances
            self._emit(self._seg(frozenset({"ACK"}), seq=pcb.snd_nxt))
            return
        if seq > pcb.rcv_nxt:
            self.ooo[seq] = data
            self._emit(self._seg(frozenset({"ACK"}), seq=pcb.snd_nxt))  # dup-ACK
            return
        if seq < pcb.rcv_nxt:  # partial overlap: trim the stale prefix
            data = data[pcb.rcv_nxt - seq:]
            seq = pcb.rcv_nxt
        self.recv_q.extend(data)
        pcb.rcv_nxt = seq + len(data)
        # absorb any out-of-order chain that is now contiguous
        while pcb.rcv_nxt in self.ooo:
            chunk = self.ooo.pop(pcb.rcv_nxt)
            self.recv_q.extend(chunk)
            pcb.rcv_nxt += len(chunk)
        self._emit(self._seg(frozenset({"ACK"}), seq=pcb.snd_nxt))
        self.sock.on_readable()
        # a parked FIN becomes deliverable once the gap closes
        if self._pending_fin is not None and self._pending_fin <= pcb.rcv_nxt:
            self._on_fin(self._pending_fin)

    def _on_urgent(self, data: bytes) -> None:
        if self.sock.options.get("SO_OOBINLINE"):
            self.recv_q.extend(data)
        else:
            self.oob.extend(data)
        self.sock.on_readable()

    def _on_fin(self, seq: int) -> None:
        if self.fin_rcvd:
            return
        if seq > self.pcb.rcv_nxt:
            # FIN ahead of missing data (the data segment was lost or
            # reordered): remember it, deliver EOF only once the stream
            # catches up — otherwise rcv_nxt would skip past real bytes.
            self._pending_fin = seq
            self._emit(self._seg(frozenset({"ACK"}), seq=self.pcb.snd_nxt))
            return
        self.fin_rcvd = True
        self._pending_fin = None
        self.pcb.rcv_nxt = max(self.pcb.rcv_nxt, seq + 1)
        self._emit(self._seg(frozenset({"ACK"}), seq=self.pcb.snd_nxt))
        self.sock.on_readable()  # EOF is a readable event

    def _on_rst(self) -> None:
        self.state = CLOSED
        self._cancel_rto()
        self.sock.on_reset()

    # -- sending --------------------------------------------------------
    def _on_ack(self, ack: int, wnd: int) -> None:
        pcb = self.pcb
        pcb.peer_wnd = max(wnd, 0)
        if ack > pcb.snd_una:
            acked = ack - pcb.snd_una
            stream_acked = min(acked, len(self.send_buf))
            del self.send_buf[:stream_acked]
            pcb.snd_una = ack
            if self.fin_seq is not None and ack > self.fin_seq:
                self.fin_acked = True
            pcb.rto = RTO_BASE
            self._cancel_rto()
            if pcb.snd_una < pcb.snd_nxt:
                self._arm_rto()
            self.sock.on_writable()
        self.push()

    def app_write(self, data: bytes) -> int:
        """Append application data to the send queue and push.

        Returns the byte count accepted; the caller enforces SO_SNDBUF
        blocking *before* calling.
        """
        self.send_buf.extend(data)
        self.push()
        return len(data)

    def app_write_oob(self, data: bytes) -> int:
        """Send urgent data on its own out-of-band segment."""
        self._emit(Segment(seq=self.pcb.snd_nxt, ack=self.pcb.rcv_nxt,
                           flags=frozenset({"URG", "ACK"}), data=bytes(data), wnd=self.adv_wnd()))
        return len(data)

    def push(self) -> None:
        """Transmit whatever the window and queue allow."""
        pcb = self.pcb
        mss = self.mss()
        while True:
            in_flight = pcb.snd_nxt - pcb.snd_una
            queued = len(self.send_buf) - in_flight
            if queued <= 0:
                break
            if in_flight >= pcb.peer_wnd:
                break
            take = min(queued, mss, pcb.peer_wnd - in_flight)
            off = in_flight
            chunk = bytes(self.send_buf[off:off + take])
            self._emit(Segment(seq=pcb.snd_nxt, ack=pcb.rcv_nxt,
                               flags=frozenset({"ACK"}), data=chunk, wnd=self.adv_wnd()))
            pcb.snd_nxt += take
            self._arm_rto()
        self._maybe_send_fin()

    def _maybe_send_fin(self) -> None:
        pcb = self.pcb
        if self.fin_sent and self.fin_seq is None and pcb.snd_nxt - pcb.snd_una == len(self.send_buf):
            # all stream data transmitted; FIN takes the next slot
            self.fin_seq = pcb.snd_nxt
            self._emit(self._seg(frozenset({"FIN", "ACK"}), seq=pcb.snd_nxt))
            pcb.snd_nxt += 1
            self._arm_rto()

    def app_close(self) -> None:
        """Application close/shutdown(WR): FIN after pending data."""
        if self.fin_sent:
            return
        self.fin_sent = True
        self._maybe_send_fin()

    # -- retransmission ---------------------------------------------------
    def _arm_rto(self) -> None:
        if self.rto_handle is None:
            self.rto_handle = self.stack.engine.schedule(self.pcb.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self.rto_handle is not None:
            self.rto_handle.cancel()
            self.rto_handle = None

    def _on_rto(self) -> None:
        self.rto_handle = None
        pcb = self.pcb
        if self.state == SYN_SENT:
            self._emit(self._seg(frozenset({"SYN"}), seq=pcb.snd_nxt - 1))
        elif self.state == SYN_RCVD:
            self._emit(self._seg(frozenset({"SYN", "ACK"}), seq=pcb.snd_nxt - 1))
        elif pcb.snd_una < pcb.snd_nxt:
            if self.fin_seq is not None and pcb.snd_una >= self.fin_seq:
                self._emit(self._seg(frozenset({"FIN", "ACK"}), seq=self.fin_seq))
            else:
                off = 0
                take = min(len(self.send_buf), self.mss())
                chunk = bytes(self.send_buf[off:off + take])
                if chunk:
                    self._emit(Segment(seq=pcb.snd_una, ack=pcb.rcv_nxt,
                                       flags=frozenset({"ACK"}), data=chunk, wnd=self.adv_wnd()))
                elif self.fin_seq is not None:
                    self._emit(self._seg(frozenset({"FIN", "ACK"}), seq=self.fin_seq))
        else:
            return  # nothing outstanding
        pcb.rto = min(pcb.rto * 2, RTO_MAX)
        self._arm_rto()

    # -- window updates -----------------------------------------------------
    def after_app_read(self) -> None:
        """Send a window update if the queue was previously near-full."""
        if self.state == ESTABLISHED and self.last_adv_wnd < self.mss():
            self._emit(self._seg(frozenset({"ACK"}), seq=self.pcb.snd_nxt))

    # ------------------------------------------------------------------
    # introspection for the checkpoint layer
    # ------------------------------------------------------------------
    def meta_state(self) -> str:
        """The connection-state label used in the checkpoint meta-data.

        One of ``full-duplex``, ``half-duplex``, ``closed`` or
        ``connecting`` — the four states of Section 4's network table.
        """
        if self.state in (SYN_SENT, SYN_RCVD):
            return "connecting"
        if self.fin_sent and self.fin_rcvd:
            return "closed"
        if self.fin_sent or self.fin_rcvd:
            return "half-duplex"
        return "full-duplex"

    def walk_send_queue(self) -> bytes:
        """Non-destructive in-kernel walk of the send buffers.

        "the data is accessed by inspecting the socket's send queue using
        standard in-kernel interface ... without altering the state of
        the send queue itself."
        """
        return bytes(self.send_buf)
