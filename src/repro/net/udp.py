"""Datagram transports: UDP and raw IP.

Unreliable protocols need *no* protocol-specific checkpoint state — a
lost datagram is indistinguishable from legitimate packet loss.  The one
exception the paper calls out: data the application has already *peeked*
at (``MSG_PEEK``) is part of the application's observed state and must
be preserved.  The datagram queue tracks a ``peeked`` flag so both the
ZapC checkpointer (which saves queues regardless) and the test suite can
reason about that case.

Raw IP sockets reuse the same machinery with the port field carrying the
IP protocol number.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple, TYPE_CHECKING

from .addr import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from .sockets import Socket


class DatagramConn:
    """Per-socket datagram state (UDP or raw)."""

    def __init__(self, sock: "Socket") -> None:
        self.sock = sock
        #: queue of (payload, source endpoint), whole-datagram semantics.
        self.recv_q: Deque[Tuple[bytes, Endpoint]] = deque()
        #: default peer set by connect(), enabling plain send/recv.
        self.default_peer: Optional[Endpoint] = None
        #: True once the application peeked at the head of the queue.
        self.peeked = False

    def rcvbuf(self) -> int:
        return int(self.sock.options.get("SO_RCVBUF", 262144))

    def queued_bytes(self) -> int:
        """Total payload bytes waiting in the receive queue."""
        return sum(len(d) for d, _ in self.recv_q)

    # ------------------------------------------------------------------
    def deliver(self, payload: bytes, src: Endpoint) -> None:
        """NIC-side entry: enqueue (dropping when the buffer is full —
        standard UDP behaviour) and wake readers."""
        if self.queued_bytes() + len(payload) > self.rcvbuf():
            return  # silently dropped, as real UDP does
        if self.default_peer is not None and src != self.default_peer:
            return  # connected datagram sockets filter by peer
        self.recv_q.append((payload, src))
        self.sock.on_readable()

    def app_send(self, payload: bytes, dst: Endpoint) -> int:
        """Transmit one datagram."""
        self.sock.stack.transmit(self.sock, payload=payload, dst=dst)
        return len(payload)

    # ------------------------------------------------------------------
    def try_recv(self, n: int, peek: bool = False) -> Optional[Tuple[bytes, Endpoint]]:
        """Dequeue (or peek) one datagram; None when the queue is empty.

        A datagram shorter than requested returns whole; longer is
        truncated (excess discarded), matching SOCK_DGRAM semantics.
        """
        if not self.recv_q:
            return None
        data, src = self.recv_q[0]
        if peek:
            self.peeked = True
        else:
            self.recv_q.popleft()
            if not self.recv_q:
                self.peeked = False
        return data[:n], src
