"""Socket options.

The paper's network checkpoint saves socket parameters through the
standard ``getsockopt``/``setsockopt`` interface: "for correctness, the
entire set of the parameters is included in the saved state".  This
module defines that set (following Stevens' *UNIX Network Programming*,
the reference the paper cites), with defaults and a validation table, so
the checkpointer can enumerate and restore every option generically —
without knowing what any individual option means.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import SyscallError

#: Socket-level options (SOL_SOCKET) with their defaults.
SOCKET_OPTIONS: Dict[str, Any] = {
    "SO_REUSEADDR": 0,
    "SO_KEEPALIVE": 0,
    "SO_LINGER": (0, 0),
    "SO_OOBINLINE": 0,
    "SO_RCVBUF": 262144,
    "SO_SNDBUF": 262144,
    "SO_RCVLOWAT": 1,
    "SO_SNDLOWAT": 1,
    "SO_RCVTIMEO": 0.0,
    "SO_SNDTIMEO": 0.0,
    "SO_BROADCAST": 0,
    "SO_DONTROUTE": 0,
    "SO_PRIORITY": 0,
    "O_NONBLOCK": 0,  # file-status flag, kept here for one-stop capture
}

#: TCP-level options with their defaults.
TCP_OPTIONS: Dict[str, Any] = {
    "TCP_NODELAY": 1,  # the simulator does not model Nagle batching
    "TCP_MAXSEG": 16384,
    "TCP_KEEPALIVE": 7200.0,
    "TCP_KEEPINTVL": 75.0,
    "TCP_KEEPCNT": 9,
    "TCP_STDURG": 0,
    "TCP_CORK": 0,
    "TCP_SYNCNT": 5,
}

#: IP-level options with their defaults.
IP_OPTIONS: Dict[str, Any] = {
    "IP_TTL": 64,
    "IP_TOS": 0,
}

#: Options that only make sense on TCP sockets.
_TCP_ONLY = set(TCP_OPTIONS)


def default_options(proto: str) -> Dict[str, Any]:
    """The full initial option table for a socket of ``proto``."""
    opts = dict(SOCKET_OPTIONS)
    opts.update(IP_OPTIONS)
    if proto == "tcp":
        opts.update(TCP_OPTIONS)
    return opts


def validate_option(proto: str, name: str, value: Any) -> Any:
    """Check an option assignment; returns the normalized value.

    Raises :class:`~repro.errors.SyscallError` with ``ENOPROTOOPT`` for
    unknown names or protocol mismatches, and ``EINVAL`` for bad values.
    """
    known = name in SOCKET_OPTIONS or name in IP_OPTIONS or name in TCP_OPTIONS
    if not known:
        raise SyscallError("ENOPROTOOPT", name)
    if name in _TCP_ONLY and proto != "tcp":
        raise SyscallError("ENOPROTOOPT", f"{name} on {proto}")
    if name in ("SO_RCVBUF", "SO_SNDBUF", "TCP_MAXSEG"):
        v = int(value)
        if v <= 0:
            raise SyscallError("EINVAL", f"{name}={value}")
        return v
    if name == "SO_LINGER":
        onoff, secs = value
        return (int(onoff), int(secs))
    return value
