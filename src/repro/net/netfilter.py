"""Per-node packet filtering (the simulated Netfilter).

The ZapC Agent "disables all network activity to and from the pod ...
by leveraging a standard network filtering service to block the links
listed in the table; Netfilter comes standard with Linux".  This module
is that service: DROP rules keyed by virtual address (all ports) or by
exact endpoint, checked on both ingress and egress by the node's network
stack.

Silently dropping (rather than erroring) is essential to the checkpoint
algorithm's correctness argument: in-flight data "will either be dropped
(for incoming packets) or blocked (for outgoing packets) ... reliable
protocols will eventually detect the loss and retransmit".
"""

from __future__ import annotations

from typing import Set, Tuple

from .packet import Packet


class Netfilter:
    """DROP-rule table for one node."""

    def __init__(self) -> None:
        #: virtual addresses fully blocked (any port, both directions).
        self._blocked_ips: Set[str] = set()
        #: exact (ip, port) endpoints blocked.
        self._blocked_endpoints: Set[Tuple[str, int]] = set()
        self.dropped = 0

    # ------------------------------------------------------------------
    def block_ip(self, ip: str) -> None:
        """Drop every packet to or from ``ip``."""
        self._blocked_ips.add(ip)

    def unblock_ip(self, ip: str) -> None:
        """Remove a full-address rule."""
        self._blocked_ips.discard(ip)

    def block_endpoint(self, ip: str, port: int) -> None:
        """Drop every packet to or from one endpoint."""
        self._blocked_endpoints.add((ip, port))

    def unblock_endpoint(self, ip: str, port: int) -> None:
        """Remove an endpoint rule."""
        self._blocked_endpoints.discard((ip, port))

    def clear(self) -> None:
        """Remove all rules."""
        self._blocked_ips.clear()
        self._blocked_endpoints.clear()

    @property
    def active(self) -> bool:
        """Whether any rule is installed."""
        return bool(self._blocked_ips or self._blocked_endpoints)

    # ------------------------------------------------------------------
    def permits(self, packet: Packet) -> bool:
        """True when ``packet`` passes the rule table."""
        for ep in (packet.src, packet.dst):
            if ep.ip in self._blocked_ips:
                self.dropped += 1
                return False
            if (ep.ip, ep.port) in self._blocked_endpoints:
                self.dropped += 1
                return False
        return True
