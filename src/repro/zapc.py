"""The ZapC command line: ``python -m repro.zapc``.

The paper's Manager "is the front-end client invoked by the user and can
be run from anywhere"; a checkpoint "is initiated by invoking the
Manager with a list of tuples of the form «node, pod, URI»".  This CLI
exposes that surface against a self-contained demo cluster: it launches
one of the evaluation applications, performs the requested operation
mid-run, and prints the Manager's timeline.

Examples::

    python -m repro.zapc snapshot --app CPI --nodes 4
    python -m repro.zapc snapshot --app BT/NAS --nodes 4 --incremental --checkpoints 3
    python -m repro.zapc snapshot --trace out.json --trace-format chrome --metrics
    python -m repro.zapc snapshot --app CPI --nodes 4 --managers 2
    python -m repro.zapc migrate  --app BT/NAS --nodes 4 --compress 6
    python -m repro.zapc recover  --app PETSc --nodes 2
    python -m repro.zapc fleet --nodes 100 --pods 1000 --evacuate 75 \\
        --max-inflight 16 --faults 4
    python -m repro.zapc fleet --audit --budget 0.5
    python -m repro.zapc trace --campaign --seed 18 --trace campaign.jsonl

``--managers 2`` demonstrates the HA Manager: the active Manager is
crashed at a ledger phase boundary mid-checkpoint and a standby replica
claims the orphaned op from the durable op ledger and finishes it.

``fleet`` runs the fleet orchestration demo instead of an application:
a cluster of idle pods is evacuated in bounded-concurrency waves, and
the wave table, per-pod downtime distribution, and any threshold or
budget trips are printed.  With ``--audit`` the run is traced and
metered, the campaign trace is assembled from the op ledger + span
dump, and an SLO audit (budgets from the campaign's own policy, e.g.
``--budget``) decides the exit code; the simulator's own wall-time
profile prints alongside.

``trace --campaign`` runs one traced fleet-chaos episode (same worlds
the chaos battery audits; seed 18 crashes the Manager mid-campaign) and
writes the failover-stitched campaign trace — one causal tree spanning
every Manager incarnation — as JSONL plus a Chrome ``trace_event`` view
and the SLO report.  Same seed → byte-identical artifacts.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .core.manager import Manager, OpResult
from .core.pipeline import parse_filter_args
from .core.streaming import (
    DEFAULT_DIRTY_THRESHOLD,
    DEFAULT_PRECOPY_ROUNDS,
    migrate_task,
)
from .harness import APPS, build_cluster, layout
from .middleware.daemon import checkpoint_targets
from .obs import MetricsRegistry, SpanTracer, export, phase_timeline


def _print_op(result, label: str) -> None:
    print(f"{label}: {result.status} in {result.duration * 1000:.0f} ms (simulated)")
    for pod_id, stats in sorted(result.pods.items()):
        line = f"  «{pod_id}»"
        if "image_bytes" in stats:
            line += f"  image {stats['image_bytes'] / 1e6:6.1f} MB"
        raw = stats.get("raw_image_bytes")
        if raw is not None and raw != stats.get("image_bytes"):
            line += f"  (raw {raw / 1e6:.1f} MB)"
        if "netstate_bytes" in stats:
            line += f"  netstate {stats['netstate_bytes']:6d} B"
        if "t_network" in stats:
            line += f"  network {stats['t_network'] * 1000:5.1f} ms"
        if "t_suspend_window" in stats:
            line += f"  suspend {stats['t_suspend_window'] * 1000:5.1f} ms"
        if stats.get("epoch"):
            line += f"  epoch {stats['epoch']}"
        print(line)
        chain = result.filters.get(pod_id) if hasattr(result, "filters") else None
        if chain:
            print("    pipeline: " + " | ".join(e["name"] for e in chain))
        rejected = getattr(result, "filters_rejected", {}).get(pod_id)
        if rejected:
            print("    rejected filters: "
                  + " | ".join(e.get("name", "?") for e in rejected))
    for err in result.errors:
        print(f"  error: {err}")


def run_demo(action: str, app: str, nodes: int, scale: float = 0.5,
             seed: int = 0, filters: Optional[List[dict]] = None,
             checkpoints: int = 1, trace: Optional[str] = None,
             trace_format: str = "chrome", metrics: bool = False,
             live: bool = False, precopy_rounds: int = DEFAULT_PRECOPY_ROUNDS,
             dirty_threshold: int = DEFAULT_DIRTY_THRESHOLD,
             managers: int = 1, async_ckpt: bool = False,
             cas: bool = False) -> bool:
    """Run one demo scenario; returns True when everything verified.

    ``trace`` writes a span trace of the whole run to a file
    (``trace_format``: ``chrome`` for ``chrome://tracing`` / Perfetto,
    ``jsonl`` for the deterministic line-delimited dump) and prints the
    phase timeline; ``metrics`` prints the metrics registry tables.
    ``live`` makes a migration pre-copy memory while the application
    keeps running (up to ``precopy_rounds`` rounds, stopping early once
    the residual falls to ``dirty_threshold`` bytes).

    ``async_ckpt`` takes zero-stall snapshots: the pods resume right
    after the short capture window and the encode + write-out overlap
    application time (the suspend window shrinks to capture only).

    ``cas`` routes the images through the content-addressed store
    instead of flat SAN containers (snapshot and recover actions): the
    chunk index dedups repeated bytes across epochs and pods, and the
    run ends with the store's cost accounting.

    ``managers`` > 1 turns a snapshot into the HA failover demo: the
    active Manager is crashed at the ``continue`` ledger crossing of the
    first checkpoint, and once its lease expires a standby replica scans
    the op ledger, claims the orphan, and resumes (or aborts) it.
    """
    spec = APPS[app]
    if nodes not in spec.node_counts:
        raise SystemExit(f"{app} supports node counts {spec.node_counts}")
    blades, _ = layout(nodes)
    cluster = build_cluster(nodes, seed=seed)
    tracer = SpanTracer(cluster.engine).install(cluster) if trace else None
    registry = MetricsRegistry().install(cluster) if metrics else None
    # migrations need destination blades: extend the cluster with spares
    if action == "migrate":
        from .cluster.node import Node
        from .net.addr import real_ip
        for i in range(blades, 2 * blades):
            cluster.nodes.append(Node(cluster.engine, i, f"blade{i}", real_ip(i),
                                      cluster.fabric, cluster.vnet, cluster.san))
    manager = Manager.deploy(cluster)
    if managers > 1 and action == "snapshot":
        from .cluster.faults import FaultInjector, FaultPlan, FaultSpec
        FaultInjector(cluster, FaultPlan(seed=seed, faults=[
            FaultSpec(kind="crash_manager", phase="manager.ledger.continue"),
        ])).install()
    handle = spec.launch_pods(cluster, nodes, scale)
    expected = spec.work_seconds(nodes, scale)
    print(f"{app} on {nodes} node(s) ({blades} blade(s)); "
          f"expected run ≈ {expected:.1f} s simulated")
    outcome = {}

    def orchestrate():
        yield cluster.engine.sleep(max(0.05, expected * 0.4))
        targets = checkpoint_targets(handle, cluster)
        if cas and action == "snapshot":
            targets = [(n, p, f"cas:/san/{p}.img") for n, p, _u in targets]
        if action == "snapshot":
            ops = []
            active = manager
            for i in range(max(1, checkpoints)):
                if i:
                    yield cluster.engine.sleep(max(0.02, expected * 0.05))
                if managers > 1 and i == 0:
                    lease_s = 3.0
                    task = active.checkpoint(targets, filters=filters,
                                             lease_s=lease_s,
                                             async_ckpt=async_ckpt)
                    yield cluster.engine.timeout(task.finished, 120.0)
                    if active.crashed:
                        print(f"{active.name} crashed mid-checkpoint; standby "
                              f"waits out the {lease_s:.0f} s ledger lease")
                        yield cluster.engine.sleep(lease_s + 1.0)
                        replica = Manager.deploy_replica(cluster, active.agents,
                                                         name="mgr1")
                        actions = yield from replica.takeover_task(
                            lease_s=lease_s)
                        for op_id, phase, what in actions:
                            print(f"  op {op_id}: orphaned at «{phase}» "
                                  f"-> {what}")
                        active = replica
                        result = replica.last_checkpoint
                        if result is None:
                            result = OpResult("checkpoint", "failed", 0.0,
                                              cluster.engine.now)
                    else:
                        result = task.finished.result
                else:
                    result = yield from active.checkpoint_task(
                        targets, filters=filters, async_ckpt=async_ckpt)
                ops.append((f"checkpoint #{i}" if checkpoints > 1 else "checkpoint",
                            result))
            outcome["ops"] = ops
        elif action == "migrate":
            moves = [(node, pod, f"blade{blades + i}")
                     for i, (node, pod, _u) in enumerate(targets)]
            print("migrating:", ", ".join(f"{p}:{s}->{d}" for s, p, d in moves))
            mig = yield from migrate_task(manager, moves, filters=filters,
                                          live=live, precopy_rounds=precopy_rounds,
                                          dirty_threshold=dirty_threshold)
            outcome["ops"] = [("checkpoint", mig.checkpoint), ("restart", mig.restart)]
            outcome["mig"] = mig
        elif action == "recover":
            scheme = "cas" if cas else "file"
            file_targets = [(n, p, f"{scheme}:/san/{p}.img")
                            for n, p, _u in targets]
            ops = []
            for i in range(max(1, checkpoints)):
                if i:
                    yield cluster.engine.sleep(max(0.02, expected * 0.05))
                ckpt = yield from manager.checkpoint_task(
                    file_targets, filters=filters, async_ckpt=async_ckpt)
                ops.append((f"checkpoint #{i}" if checkpoints > 1 else "checkpoint",
                            ckpt))
            # simulated crash of every pod, then recovery from the SAN
            for _n, pod_id, _u in targets:
                cluster.find_pod(pod_id).destroy()
            restart = yield from manager.restart_task(file_targets)
            outcome["ops"] = ops + [("restart", restart)]

    cluster.engine.spawn(orchestrate(), name="zapc-cli")
    cluster.engine.run(until=3600.0)
    for label, result in outcome.get("ops", []):
        _print_op(result, label)
    mig = outcome.get("mig")
    if mig is not None and mig.live:
        line = (f"live migration: downtime {mig.downtime * 1000:.1f} ms of "
                f"{mig.total_time * 1000:.0f} ms total; "
                f"{len(mig.rounds)} pre-copy round(s), "
                f"{mig.precopy_bytes / 1e6:.1f} MB pre-copied")
        if mig.bailout:
            line += f"; bailout: {mig.bailout}"
        print(line)
        for rnd in mig.rounds:
            print(f"  round {rnd['round']}: shipped {rnd['shipped_bytes'] / 1e6:6.1f} MB"
                  f" in {rnd['seconds'] * 1000:6.1f} ms"
                  f"  (dirty after: {rnd['dirty_bytes'] / 1e6:.1f} MB)")
    ok = all(r.ok for _l, r in outcome.get("ops", []))
    if cas:
        from .storage.cas import CasStore
        stats = CasStore.on(cluster.san).stats()
        print(f"cas: {stats['logical_bytes'] / 1e6:.1f} MB logical -> "
              f"{stats['stored_bytes'] / 1e6:.1f} MB stored "
              f"({stats['dedup_ratio']:.1f}x dedup); "
              f"footprint {stats['footprint_bytes'] / 1e6:.1f} MB, "
              f"gc reclaimed {stats['gc_reclaimed_bytes'] / 1e6:.1f} MB "
              f"over {stats['live_chunks']} live chunk(s)")
    finished = handle.ok(cluster)
    verified = finished and spec.verify(cluster, handle)
    print(f"application finished: {finished}; answer verified: {verified}")
    if tracer is not None:
        export(tracer, trace, fmt=trace_format)
        print(f"trace: {len(tracer.spans)} spans -> {trace} ({trace_format})")
        print(phase_timeline(tracer))
    if registry is not None:
        print(registry.render())
    return ok and verified


def run_campaign_trace(seed: int, out_path: str) -> bool:
    """Run one traced fleet-chaos episode; write the assembled artifacts.

    Writes the failover-stitched campaign trace as JSONL to
    ``out_path``, its Chrome ``trace_event`` view to
    ``out_path + ".chrome.json"`` and the SLO report to
    ``out_path + ".slo.json"``.  Deterministic: same seed, same bytes.
    """
    import json

    from .cluster.chaos import run_fleet_chaos
    from .obs import WallProfiler
    wall = WallProfiler()
    with wall.phase("simulate+assemble"):
        report = run_fleet_chaos(seed, trace_spans=True)
    print(f"fleet-chaos seed {seed}: scenario {report.scenario}"
          + (f" targeting {','.join(report.targets)}" if report.targets else "")
          + ("; Manager crashed mid-campaign and a replica finished the "
             "campaign" if report.manager_crashed else ""))
    if report.assembled is None:
        print("no campaign was assembled (no campaign records in the ledger)")
        return False
    header = json.loads(report.assembled.splitlines()[0])
    cov = header["coverage"]
    with wall.phase("write"):
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(report.assembled)
        with open(out_path + ".chrome.json", "w", encoding="utf-8") as fh:
            fh.write(report.assembled_chrome)
        with open(out_path + ".slo.json", "w", encoding="utf-8") as fh:
            json.dump(report.slo, fh, sort_keys=True, indent=2)
            fh.write("\n")
    print(f"assembled campaign {header['cid']} ({header['kind']}, "
          f"{header['status']}): {header['nodes']} nodes, "
          f"owners {','.join(header['owners'])}")
    print(f"coverage: {cov['in_tree']}/{cov['units']} pod-units in tree"
          + (f", {len(cov['adopted'])} adopted after takeover"
             if cov["adopted"] else "")
          + ("" if cov["complete"] else f"; MISSING: {cov['missing']}"))
    print(f"trace: {out_path} (+ .chrome.json, .slo.json)")
    for v in report.violations:
        print(f"  violation: {v}")
    wall.render()
    return not report.violations


def run_fleet(nodes: int, pods: int, evacuate: int, seed: int = 0,
              max_inflight: int = 8, wave_size: Optional[int] = None,
              wave_barrier: bool = True, threshold: float = 0.25,
              retries: int = 1, budget: Optional[float] = None,
              faults: int = 0, audit: bool = False) -> bool:
    """Run the fleet evacuation demo and print the campaign report.

    With ``audit``, the run is traced and metered, the op ledger + span
    dump are stitched into one campaign trace, and the SLO auditor
    checks it against the budgets the campaign's own policy declared
    (``--budget`` becomes the per-pod downtime budget) — a failed audit
    fails the command.
    """
    from .fleet import run_evacuation_demo
    from .obs import WallProfiler
    wall = WallProfiler()
    print(f"fleet: evacuating blades 1..{evacuate} of {nodes} "
          f"({pods} pods), max {max_inflight} in flight"
          + (f", {faults} seeded soft fault(s)" if faults else ""))
    with wall.phase("simulate"):
        out = run_evacuation_demo(n_nodes=nodes, n_pods=pods,
                                  n_evacuate=evacuate, seed=seed,
                                  max_inflight=max_inflight,
                                  wave_size=wave_size,
                                  wave_barrier=wave_barrier,
                                  failure_threshold=threshold,
                                  retries=retries,
                                  downtime_budget=budget, n_faults=faults,
                                  trace_spans=audit, metrics=audit)
    res = out["result"]
    if res is None:
        print("campaign did not finish before the simulation horizon")
        return False
    counts = res.counts()
    print(f"campaign #{res.cid}: {res.status} in "
          f"{res.duration * 1000:.0f} ms (simulated); "
          f"{counts['ok']} ok / {counts['failed']} failed / "
          f"{counts['skipped']} skipped; peak {res.peak_inflight} in flight")
    print(f"  {'wave':>4}  {'pods':>4}  {'ok':>4}  {'failed':>6}  "
          f"{'window (ms)':>14}  {'max downtime':>12}")
    for w in res.waves:
        print(f"  {w.index:>4}  {w.ok + w.failed + w.skipped:>4}  "
              f"{w.ok:>4}  {w.failed:>6}  "
              f"{(w.t_end - w.t_start) * 1000:>11.1f} ms  "
              f"{w.max_downtime * 1000:>9.1f} ms")
    times = res.downtimes()
    if times:
        print(f"per-pod downtime over {len(times)} move(s): "
              + "  ".join(f"p{q} {res.downtime_percentile(q) * 1000:.1f} ms"
                          for q in (50, 90, 99)))
    if res.threshold_tripped:
        print(f"failure threshold ({threshold:.0%}) tripped: "
              "campaign halted, tail skipped")
    if res.budget_trips:
        print(f"downtime budget tripped on {len(res.budget_trips)} pod(s): "
              + ", ".join(sorted(res.budget_trips)[:8])
              + (" ..." if len(res.budget_trips) > 8 else ""))
    for err in res.errors:
        print(f"  error: {err}")
    if out["injector"] is not None and out["injector"].fired:
        for (t, kind, phase, node, pod) in out["injector"].fired:
            where = node or pod or "-"
            print(f"  fault @ {t * 1000:8.1f} ms: {kind} at «{phase}» ({where})")
    evac = set(out["evacuated"])
    cluster = out["cluster"]
    emptied = all(not cluster.node_by_name(n).kernel.pods for n in evac)
    landed = sum(len(n.kernel.pods) for n in cluster.nodes
                 if n.name not in evac)
    print(f"evacuated blades empty: {emptied}; "
          f"pods running on survivors: {landed}/{pods}")
    verdict = True
    if audit:
        from .obs import assemble_campaign, audit_campaign
        from .storage.ledger import OpLedger
        with wall.phase("assemble"):
            trace = assemble_campaign(OpLedger(cluster.san),
                                      dumps=(out["tracer"],), cid=res.cid)
        series = out["metrics"].series.to_columns()
        with wall.phase("audit"):
            slo = audit_campaign(trace, series=series)
        slo.render()
        wall.render()
        verdict = slo.ok
    return res.ok and emptied and landed == pods and verdict


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.zapc", description=__doc__)
    parser.add_argument("action",
                        choices=["snapshot", "migrate", "recover", "fleet",
                                 "trace"])
    parser.add_argument("--app", choices=list(APPS), default="CPI")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compress", type=int, default=None, metavar="LEVEL",
                        choices=range(1, 10),
                        help="compress checkpoint images (zlib level 1-9)")
    parser.add_argument("--incremental", action="store_true",
                        help="delta-checkpoint against the previous epoch "
                             "(epoch 0 is full; later snapshots write dirty state)")
    parser.add_argument("--checkpoints", type=int, default=1,
                        help="snapshots to take (chains delta epochs)")
    parser.add_argument("--cas", action="store_true",
                        help="checkpoint through the content-addressed "
                             "store: chunked images, fleet-wide dedup, "
                             "refcounted GC (snapshot/recover actions)")
    parser.add_argument("--async", dest="async_ckpt", action="store_true",
                        help="zero-stall snapshots: resume the pods after "
                             "the capture window; encode and write-out "
                             "overlap application time")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a span trace of the run to PATH")
    parser.add_argument("--trace-format", choices=["jsonl", "chrome"],
                        default="chrome",
                        help="trace file format (default: chrome trace_event)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry after the run")
    parser.add_argument("--live", action="store_true",
                        help="migrate live: pre-copy memory while the app "
                             "runs, then stop-and-copy only the residual")
    parser.add_argument("--precopy-rounds", type=int,
                        default=DEFAULT_PRECOPY_ROUNDS, metavar="N",
                        help="max pre-copy rounds for --live "
                             f"(default: {DEFAULT_PRECOPY_ROUNDS})")
    parser.add_argument("--dirty-threshold", type=int,
                        default=DEFAULT_DIRTY_THRESHOLD, metavar="BYTES",
                        help="stop pre-copying once the residual dirty set "
                             f"falls to this (default: {DEFAULT_DIRTY_THRESHOLD})")
    parser.add_argument("--managers", type=int, default=1, metavar="N",
                        help="with N > 1, demo HA failover: crash the active "
                             "Manager mid-snapshot and let a standby replica "
                             "finish the op from the durable op ledger")
    fleet = parser.add_argument_group("fleet", "options for the fleet action")
    fleet.add_argument("--pods", type=int, default=96,
                       help="idle pods to populate (fleet action)")
    fleet.add_argument("--evacuate", type=int, default=None, metavar="N",
                       help="evacuate blades 1..N (default: 3/4 of --nodes)")
    fleet.add_argument("--max-inflight", type=int, default=8,
                       help="bounded concurrency: units in flight at once")
    fleet.add_argument("--wave-size", type=int, default=None,
                       help="units per wave (default: max-inflight)")
    fleet.add_argument("--no-barrier", action="store_true",
                       help="let waves overlap (no per-wave barrier)")
    fleet.add_argument("--threshold", type=float, default=0.25,
                       help="failed fraction that halts the campaign")
    fleet.add_argument("--retries", type=int, default=1,
                       help="per-pod retries before a unit counts failed")
    fleet.add_argument("--budget", type=float, default=None, metavar="S",
                       help="per-pod downtime budget in seconds (advisory)")
    fleet.add_argument("--faults", type=int, default=0, metavar="N",
                       help="inject N seeded soft faults at fleet phases")
    fleet.add_argument("--audit", action="store_true",
                       help="trace + meter the run, assemble the campaign "
                            "trace from the ledger, and SLO-audit it "
                            "against the policy's budgets (exit 1 on a "
                            "violated budget)")
    parser.add_argument("--campaign", action="store_true",
                        help="with the trace action: run a traced "
                             "fleet-chaos episode and write the assembled "
                             "failover-stitched campaign trace")
    args = parser.parse_args(argv)
    if args.action == "trace":
        if not args.campaign:
            raise SystemExit("the trace action requires --campaign")
        ok = run_campaign_trace(args.seed,
                                args.trace or "campaign-trace.jsonl")
        return 0 if ok else 1
    if args.action == "fleet":
        n_evac = args.evacuate if args.evacuate is not None \
            else max(1, (args.nodes * 3) // 4)
        ok = run_fleet(args.nodes, args.pods, n_evac, seed=args.seed,
                       max_inflight=args.max_inflight,
                       wave_size=args.wave_size,
                       wave_barrier=not args.no_barrier,
                       threshold=args.threshold, retries=args.retries,
                       budget=args.budget, faults=args.faults,
                       audit=args.audit)
        return 0 if ok else 1
    ok = run_demo(args.action, args.app, args.nodes, scale=args.scale,
                  seed=args.seed,
                  filters=parse_filter_args(args.compress, args.incremental) or None,
                  checkpoints=args.checkpoints, trace=args.trace,
                  trace_format=args.trace_format, metrics=args.metrics,
                  live=args.live, precopy_rounds=args.precopy_rounds,
                  dirty_threshold=args.dirty_threshold,
                  managers=args.managers, async_ckpt=args.async_ckpt,
                  cas=args.cas)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
