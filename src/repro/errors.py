"""Exception hierarchy shared across the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
The sub-hierarchies mirror the subsystems: simulation kernel, virtual OS,
network stack, pods, and the ZapC checkpoint-restart core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimError):
    """The event queue drained while tasks or processes were still blocked.

    Raised by :meth:`repro.sim.engine.Engine.run` when ``check_deadlock``
    is enabled; this is the simulated equivalent of a hung cluster.
    """


class VosError(ReproError):
    """Errors raised by the virtual operating system."""


class SyscallError(VosError):
    """A system call failed; carries a POSIX-like ``errno`` name.

    Syscall handlers raise this internally; the kernel converts it to a
    negative return value delivered to the calling process, mirroring how
    a real kernel reports errors to user space.
    """

    def __init__(self, errno: str, message: str = ""):
        super().__init__(f"[{errno}] {message}" if message else errno)
        self.errno = errno


class NoSuchProcessError(VosError):
    """Referenced a PID that does not exist in the target namespace."""


class NetError(ReproError):
    """Errors raised by the simulated network stack."""


class PodError(ReproError):
    """Errors raised by the pod virtualization layer."""


class CheckpointError(ReproError):
    """A checkpoint operation failed and was rolled back."""


class RestartError(ReproError):
    """A restart operation failed; the target pods were destroyed."""


class CodecError(ReproError):
    """Malformed data encountered while encoding/decoding a checkpoint image."""
