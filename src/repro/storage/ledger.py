"""The durable op ledger: a JSONL write-ahead log on the SAN.

The Manager is the protocol's lone unreplicated component — the paper's
coordinator "can be run from anywhere", which also means it can die
anywhere, stranding an in-flight coordinated operation.  The cure
(DMTCP's coordinator model, and the stateless-agent exemplars) is to
make the coordinator state *recoverable*: every operation appends a
record to this ledger at each phase boundary, so any replica Manager
can scan the log, reconstruct each op's last durable phase, and either
finish the op or abort it through the tombstone-GC path.

The ledger lives on the SAN (the one :class:`FileSystem` instance every
blade mounts), so durability and visibility come for free from the
shared-storage assumption the paper already makes.  Records are one
JSON object per line with sorted keys — byte-identical across same-seed
runs, which keeps the chaos determinism oracle intact.  Appends are
modeled as free (a ledger record is tens of bytes riding the SAN's
metadata path; charging FC latency per record would perturb every
existing latency figure for no modeling value).

Record schema (all records carry ``op``, ``t``, and ``rec``):

``{"rec": "op", "op": N, "phase": "begin", "kind": ..., "targets":
[[node, pod, uri], ...], "context": ..., "owner": mgr, "lease": T}``
    Opens op ``N``: the full request, who drives it, and a lease.

``{"rec": "phase", "op": N, "phase": P, "owner": mgr, "lease": T, ...}``
    Op ``N`` reached phase ``P``; extra keys carry per-phase payload
    (negotiated filters, per-pod stats, the restart plan).  Writing the
    record *renews the owner's lease*.

``{"rec": "claim", "op": N, "owner": mgr, "lease": T}``
    A replica claimed the orphaned op.  Claims are atomic by
    construction: the simulator is single-threaded and :meth:`claim`
    never yields between the lease check and the append.

Terminal phases are ``commit`` and ``aborted``; everything else is
in-flight and claimable once its lease expires.  A torn final line
(a writer that died mid-append) is ignored on scan, mirroring how a
real WAL discards a torn tail record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..vos.filesystem import FileSystem, ensure_dirs

#: conventional ledger path on the SAN (inner path, below the mount).
LEDGER_PATH = "/zapc/ops.jsonl"

#: phases after which an op needs no further work from anyone.
TERMINAL_PHASES = ("commit", "aborted")


@dataclass
class LedgerOp:
    """One op's state, folded from its ledger records (newest wins)."""

    op_id: int
    kind: str = "checkpoint"
    phase: str = "begin"
    targets: List[Tuple[str, str, str]] = field(default_factory=list)
    context: str = "snapshot"
    owner: Optional[str] = None
    lease_until: float = 0.0
    #: merged per-phase payload (negotiated filters, plan, stats, ...).
    fields: Dict[str, Any] = field(default_factory=dict)
    #: every owner that ever claimed the op, in order.
    claims: List[str] = field(default_factory=list)
    t_last: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES


class OpLedger:
    """Append/scan/claim interface over the JSONL ledger file."""

    def __init__(self, fs: FileSystem, path: str = LEDGER_PATH) -> None:
        self.fs = fs
        self.path = path
        #: scan bookkeeping: lines the last scan had to discard (the torn
        #: tail, or corruption injected by tests).
        self.skipped = 0

    # -- raw log ---------------------------------------------------------
    def _file(self):
        f = self.fs.files.get(self.path)
        if f is None:
            ensure_dirs(self.fs, self.path.rsplit("/", 1)[0] or "/")
            f = self.fs.create(self.path)
        return f

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record (sorted keys: deterministic bytes)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._file().data += (line + "\n").encode("ascii")

    def records(self) -> List[Dict[str, Any]]:
        """Parse the log, tolerating a torn (truncated) final line."""
        f = self.fs.files.get(self.path)
        self.skipped = 0
        if f is None:
            return []
        out: List[Dict[str, Any]] = []
        data = bytes(f.data)
        lines = data.split(b"\n")
        # data ending in "\n" leaves a legitimate empty tail; anything
        # else is a torn append and is discarded like a torn WAL record
        for raw in lines:
            if not raw:
                continue
            try:
                rec = json.loads(raw.decode("ascii"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if isinstance(rec, dict) and "op" in rec:
                out.append(rec)
            else:
                self.skipped += 1
        return out

    # -- folded state ----------------------------------------------------
    def replay(self) -> Dict[int, LedgerOp]:
        """Fold the log into per-op state, in op-id order."""
        ops: Dict[int, LedgerOp] = {}
        for rec in self.records():
            op_id = int(rec["op"])
            op = ops.get(op_id)
            if op is None:
                op = ops[op_id] = LedgerOp(op_id=op_id)
            kind = rec.get("rec", "phase")
            op.t_last = float(rec.get("t", op.t_last))
            if kind == "claim":
                op.owner = rec.get("owner")
                op.lease_until = float(rec.get("lease", 0.0))
                op.claims.append(rec.get("owner"))
                continue
            if kind == "op":
                op.kind = rec.get("kind", op.kind)
                op.context = rec.get("context", op.context)
                op.targets = [tuple(t) for t in rec.get("targets", [])]
            if rec.get("owner") is not None:
                op.owner = rec["owner"]
            if rec.get("lease") is not None:
                op.lease_until = float(rec["lease"])
            op.phase = rec.get("phase", op.phase)
            for key, value in rec.items():
                if key not in ("rec", "op", "phase", "owner", "lease", "t",
                               "kind", "context", "targets"):
                    op.fields[key] = value
        return ops

    def next_op_id(self) -> int:
        """Smallest op id no record has used yet."""
        return max((int(r["op"]) for r in self.records()), default=0) + 1

    def orphaned(self, now: float) -> List[LedgerOp]:
        """Non-terminal ops whose lease has expired, in op-id order —
        the set a takeover replica must resume or abort."""
        return [op for _id, op in sorted(self.replay().items())
                if not op.terminal and now >= op.lease_until]

    def claim(self, op_id: int, owner: str, now: float,
              lease_s: float) -> bool:
        """Atomically claim an orphaned op.

        Refuses when the op is unknown, already terminal, or still under
        another Manager's unexpired lease.  Single-threaded simulation
        plus no yield between check and append makes this atomic — the
        moral equivalent of an O_APPEND compare-and-swap record.
        """
        op = self.replay().get(op_id)
        if op is None or op.terminal:
            return False
        if op.owner is not None and op.owner != owner and now < op.lease_until:
            return False
        self.append({"rec": "claim", "op": op_id, "owner": owner,
                     "lease": now + lease_s, "t": now})
        return True

    def last_committed(self, kind: str = "checkpoint") -> Optional[LedgerOp]:
        """The newest committed op of ``kind`` (highest op id) — what a
        replica reconstructs ``last_checkpoint`` from."""
        best: Optional[LedgerOp] = None
        for _id, op in sorted(self.replay().items()):
            if op.kind == kind and op.phase == "commit":
                best = op
        return best
