"""The durable op ledger: a JSONL write-ahead log on the SAN.

The Manager is the protocol's lone unreplicated component — the paper's
coordinator "can be run from anywhere", which also means it can die
anywhere, stranding an in-flight coordinated operation.  The cure
(DMTCP's coordinator model, and the stateless-agent exemplars) is to
make the coordinator state *recoverable*: every operation appends a
record to this ledger at each phase boundary, so any replica Manager
can scan the log, reconstruct each op's last durable phase, and either
finish the op or abort it through the tombstone-GC path.

The ledger lives on the SAN (the one :class:`FileSystem` instance every
blade mounts), so durability and visibility come for free from the
shared-storage assumption the paper already makes.  Records are one
JSON object per line with sorted keys — byte-identical across same-seed
runs, which keeps the chaos determinism oracle intact.  Appends are
modeled as free (a ledger record is tens of bytes riding the SAN's
metadata path; charging FC latency per record would perturb every
existing latency figure for no modeling value).

Record schema (all records carry ``op``, ``t``, and ``rec``):

``{"rec": "op", "op": N, "phase": "begin", "kind": ..., "targets":
[[node, pod, uri], ...], "context": ..., "owner": mgr, "lease": T}``
    Opens op ``N``: the full request, who drives it, and a lease.

``{"rec": "phase", "op": N, "phase": P, "owner": mgr, "lease": T, ...}``
    Op ``N`` reached phase ``P``; extra keys carry per-phase payload
    (negotiated filters, per-pod stats, the restart plan).  Writing the
    record *renews the owner's lease*.

``{"rec": "claim", "op": N, "owner": mgr, "lease": T}``
    A replica claimed the orphaned op.  Claims are atomic by
    construction: the simulator is single-threaded and :meth:`claim`
    never yields between the lease check and the append.

Terminal phases are ``commit`` and ``aborted``; everything else is
in-flight and claimable once its lease expires.  A torn final line
(a writer that died mid-append) is ignored on scan, mirroring how a
real WAL discards a torn tail record.

The ``campaign`` record family journals fleet orchestration (rolling
checkpoint waves, node drains, evacuations) in the same log.  Campaign
records carry ``cid`` instead of ``op`` and fold with the same
newest-wins rule into :class:`LedgerCampaign`:

``{"rec": "campaign", "cid": C, "phase": "begin", "kind": ...,
"units": [[node, pod, arg], ...], "waves": [[pod, ...], ...],
"policy": {...}, "owner": mgr, "lease": T}``
    Opens campaign ``C``: every unit, the wave partition, and the
    policy knobs — enough for a replica to rebuild the whole plan.

``{"rec": "campaign", "cid": C, "phase": "wave", "wave": W, ...}``
    Wave ``W`` started.  The *first* claim of a wave wins; a duplicate
    wave record from a different owner (two Managers racing after a
    messy failover) is folded as a recorded-but-ignored claim.

``{"rec": "campaign", "cid": C, "phase": "pod", "wave": W, "pod": P,
"status": "ok"|"failed", "op": N, "downtime": D, ...}``
    Unit outcome for pod ``P`` (op ``N`` did the work).  A resuming
    replica skips every pod whose latest record says ``ok`` — completed
    pods are never re-checkpointed.

``{"rec": "campaign", "cid": C, "phase": "wave-done", "wave": W, ...}``
    Every unit of wave ``W`` reached an outcome.

``{"rec": "campaign-claim", "cid": C, "owner": mgr, "lease": T}``
    A replica claimed the orphaned campaign (same atomicity argument
    as op claims).

Campaign terminal phases are ``commit`` (all waves done), ``halted``
(failure threshold tripped), and ``aborted``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..vos.filesystem import FileSystem, ensure_dirs

#: conventional ledger path on the SAN (inner path, below the mount).
LEDGER_PATH = "/zapc/ops.jsonl"

#: phases after which an op needs no further work from anyone.
TERMINAL_PHASES = ("commit", "aborted")

#: phases after which a campaign needs no further work from anyone.
CAMPAIGN_TERMINAL_PHASES = ("commit", "halted", "aborted")


@dataclass
class LedgerOp:
    """One op's state, folded from its ledger records (newest wins)."""

    op_id: int
    kind: str = "checkpoint"
    phase: str = "begin"
    targets: List[Tuple[str, str, str]] = field(default_factory=list)
    context: str = "snapshot"
    owner: Optional[str] = None
    lease_until: float = 0.0
    #: merged per-phase payload (negotiated filters, plan, stats, ...).
    fields: Dict[str, Any] = field(default_factory=dict)
    #: every owner that ever claimed the op, in order.
    claims: List[str] = field(default_factory=list)
    t_last: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES


@dataclass
class LedgerCampaign:
    """One fleet campaign's state, folded from its ledger records."""

    cid: int
    kind: str = "checkpoint"
    phase: str = "begin"
    #: every unit as journaled at begin: (node, pod, arg) — the arg is a
    #: checkpoint URI or a migration destination ("" = pick by load).
    units: List[Tuple[str, str, str]] = field(default_factory=list)
    #: the wave partition journaled at begin: pod ids per wave, in order.
    waves: List[List[str]] = field(default_factory=list)
    #: the policy knobs journaled at begin (max_inflight, threshold, ...).
    policy: Dict[str, Any] = field(default_factory=dict)
    owner: Optional[str] = None
    lease_until: float = 0.0
    #: newest-wins unit outcome per pod: {"status", "op", "wave", ...}.
    pods: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: wave index -> the owner whose wave record landed *first*.
    wave_owners: Dict[int, str] = field(default_factory=dict)
    #: every wave record in append order (duplicates included), as
    #: (wave index, owner) — the audit trail of racing claims.
    wave_claims: List[Tuple[int, str]] = field(default_factory=list)
    #: wave indices whose wave-done record landed.
    waves_done: List[int] = field(default_factory=list)
    #: every owner that ever claimed the campaign, in order.
    claims: List[str] = field(default_factory=list)
    t_last: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.phase in CAMPAIGN_TERMINAL_PHASES

    @property
    def done_pods(self) -> List[str]:
        """Pods whose latest unit record is ``ok`` — the set a resuming
        replica must not drive again."""
        return sorted(p for p, rec in self.pods.items()
                      if rec.get("status") == "ok")


def fold_ops(records: List[Dict[str, Any]]) -> Dict[int, LedgerOp]:
    """Fold raw op records into per-op state (newest wins).

    Module-level so the campaign-trace assembler (:mod:`repro.obs.
    assemble`) can fold a record list it obtained elsewhere — a span
    dump's sidecar, a copied log — without a live :class:`FileSystem`.
    """
    ops: Dict[int, LedgerOp] = {}
    for rec in records:
        if "cid" in rec:
            continue  # campaign records fold via fold_campaigns()
        op_id = int(rec["op"])
        op = ops.get(op_id)
        if op is None:
            op = ops[op_id] = LedgerOp(op_id=op_id)
        kind = rec.get("rec", "phase")
        op.t_last = float(rec.get("t", op.t_last))
        if kind == "claim":
            op.owner = rec.get("owner")
            op.lease_until = float(rec.get("lease", 0.0))
            op.claims.append(rec.get("owner"))
            continue
        if kind == "op":
            op.kind = rec.get("kind", op.kind)
            op.context = rec.get("context", op.context)
            op.targets = [tuple(t) for t in rec.get("targets", [])]
        if rec.get("owner") is not None:
            op.owner = rec["owner"]
        if rec.get("lease") is not None:
            op.lease_until = float(rec["lease"])
        op.phase = rec.get("phase", op.phase)
        for key, value in rec.items():
            if key not in ("rec", "op", "phase", "owner", "lease", "t",
                           "kind", "context", "targets"):
                op.fields[key] = value
    return ops


def fold_campaigns(records: List[Dict[str, Any]]) -> Dict[int, LedgerCampaign]:
    """Fold raw campaign-family records into per-campaign state."""
    campaigns: Dict[int, LedgerCampaign] = {}
    for rec in records:
        if "cid" not in rec:
            continue
        cid = int(rec["cid"])
        camp = campaigns.get(cid)
        if camp is None:
            camp = campaigns[cid] = LedgerCampaign(cid=cid)
        kind = rec.get("rec", "campaign")
        camp.t_last = float(rec.get("t", camp.t_last))
        if kind == "campaign-claim":
            camp.owner = rec.get("owner")
            camp.lease_until = float(rec.get("lease", 0.0))
            camp.claims.append(rec.get("owner"))
            continue
        phase = rec.get("phase", camp.phase)
        if phase == "begin":
            camp.kind = rec.get("kind", camp.kind)
            camp.units = [tuple(u) for u in rec.get("units", [])]
            camp.waves = [list(w) for w in rec.get("waves", [])]
            camp.policy = dict(rec.get("policy", {}))
        elif phase == "wave":
            wave = int(rec.get("wave", -1))
            owner = rec.get("owner")
            camp.wave_claims.append((wave, owner))
            if wave in camp.wave_owners:
                # duplicate wave claim: first writer wins, the
                # duplicate stays on the audit trail only
                continue
            camp.wave_owners[wave] = owner
        elif phase == "pod":
            camp.pods[rec.get("pod")] = {
                k: v for k, v in rec.items()
                if k in ("status", "op", "wave", "downtime", "attempts",
                         "adopted", "t")}
        elif phase == "wave-done":
            wave = int(rec.get("wave", -1))
            if wave not in camp.waves_done:
                camp.waves_done.append(wave)
        if rec.get("owner") is not None:
            camp.owner = rec["owner"]
        if rec.get("lease") is not None:
            camp.lease_until = float(rec["lease"])
        camp.phase = phase
    return campaigns


class OpLedger:
    """Append/scan/claim interface over the JSONL ledger file."""

    def __init__(self, fs: FileSystem, path: str = LEDGER_PATH) -> None:
        self.fs = fs
        self.path = path
        #: scan bookkeeping: lines the last scan had to discard (the torn
        #: tail, or corruption injected by tests).
        self.skipped = 0
        #: id-allocation caches: highest op/campaign id seen, maintained
        #: incrementally by :meth:`append` after the first full scan, so
        #: allocating ids is O(1) instead of re-parsing the whole log per
        #: op (quadratic at fleet scale).  Per-instance only — a replica
        #: builds its own OpLedger and does its own first scan.
        self._max_op: Optional[int] = None
        self._max_cid: Optional[int] = None

    # -- raw log ---------------------------------------------------------
    def _file(self):
        f = self.fs.files.get(self.path)
        if f is None:
            ensure_dirs(self.fs, self.path.rsplit("/", 1)[0] or "/")
            f = self.fs.create(self.path)
        return f

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record (sorted keys: deterministic bytes)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._file().data += (line + "\n").encode("ascii")
        if self._max_op is not None and "op" in record and "cid" not in record:
            self._max_op = max(self._max_op, int(record["op"]))
        if self._max_cid is not None and "cid" in record:
            self._max_cid = max(self._max_cid, int(record["cid"]))

    def records(self) -> List[Dict[str, Any]]:
        """Parse the log, tolerating a torn (truncated) final line."""
        f = self.fs.files.get(self.path)
        self.skipped = 0
        if f is None:
            return []
        out: List[Dict[str, Any]] = []
        data = bytes(f.data)
        lines = data.split(b"\n")
        # data ending in "\n" leaves a legitimate empty tail; anything
        # else is a torn append and is discarded like a torn WAL record
        for raw in lines:
            if not raw:
                continue
            try:
                rec = json.loads(raw.decode("ascii"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if isinstance(rec, dict) and ("op" in rec or "cid" in rec):
                out.append(rec)
            else:
                self.skipped += 1
        return out

    # -- folded state ----------------------------------------------------
    def replay(self) -> Dict[int, LedgerOp]:
        """Fold the log into per-op state, in op-id order."""
        return fold_ops(self.records())

    def next_op_id(self) -> int:
        """Smallest op id no record has used yet."""
        if self._max_op is None:
            self._max_op = max(
                (int(r["op"]) for r in self.records()
                 if "op" in r and "cid" not in r), default=0)
        return self._max_op + 1

    def orphaned(self, now: float) -> List[LedgerOp]:
        """Non-terminal ops whose lease has expired, in op-id order —
        the set a takeover replica must resume or abort."""
        return [op for _id, op in sorted(self.replay().items())
                if not op.terminal and now >= op.lease_until]

    def claim(self, op_id: int, owner: str, now: float,
              lease_s: float) -> bool:
        """Atomically claim an orphaned op.

        Refuses when the op is unknown, already terminal, or still under
        another Manager's unexpired lease.  Single-threaded simulation
        plus no yield between check and append makes this atomic — the
        moral equivalent of an O_APPEND compare-and-swap record.
        """
        op = self.replay().get(op_id)
        if op is None or op.terminal:
            return False
        if op.owner is not None and op.owner != owner and now < op.lease_until:
            return False
        self.append({"rec": "claim", "op": op_id, "owner": owner,
                     "lease": now + lease_s, "t": now})
        return True

    def last_committed(self, kind: str = "checkpoint") -> Optional[LedgerOp]:
        """The newest committed op of ``kind`` (highest op id) — what a
        replica reconstructs ``last_checkpoint`` from."""
        best: Optional[LedgerOp] = None
        for _id, op in sorted(self.replay().items()):
            if op.kind == kind and op.phase == "commit":
                best = op
        return best

    # -- campaigns -------------------------------------------------------
    def replay_campaigns(self) -> Dict[int, LedgerCampaign]:
        """Fold the campaign record family into per-campaign state."""
        return fold_campaigns(self.records())

    def next_campaign_id(self) -> int:
        """Smallest campaign id no record has used yet."""
        if self._max_cid is None:
            self._max_cid = max(
                (int(r["cid"]) for r in self.records() if "cid" in r),
                default=0)
        return self._max_cid + 1

    def orphaned_campaigns(self, now: float) -> List[LedgerCampaign]:
        """Non-terminal campaigns whose lease has expired, in campaign-id
        order — what a takeover replica must resume."""
        return [c for _id, c in sorted(self.replay_campaigns().items())
                if not c.terminal and now >= c.lease_until]

    def claim_campaign(self, cid: int, owner: str, now: float,
                       lease_s: float) -> bool:
        """Atomically claim an orphaned campaign (same rule as ops:
        refused when unknown, terminal, or under a live foreign lease)."""
        camp = self.replay_campaigns().get(cid)
        if camp is None or camp.terminal:
            return False
        if (camp.owner is not None and camp.owner != owner
                and now < camp.lease_until):
            return False
        self.append({"rec": "campaign-claim", "cid": cid, "owner": owner,
                     "lease": now + lease_s, "t": now})
        return True
