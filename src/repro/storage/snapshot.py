"""File-system snapshots.

ZapC pairs its process checkpoints with "already available file system
snapshot functionality" (NetApp-style) rather than copying file data
into the image: "a file-system snapshot (if desired) may be taken
immediately prior to reactivating the pod".  This module provides that
functionality for the simulated file systems: cheap point-in-time
captures that can later be rolled back to.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import ReproError
from ..vos.filesystem import File, FileSystem


class Snapshot:
    """A point-in-time copy of one file system's contents."""

    def __init__(self, fs_name: str, files: Dict[str, bytes], dirs: Set[str], taken_at: float) -> None:
        self.fs_name = fs_name
        self.files = files
        self.dirs = dirs
        self.taken_at = taken_at

    @property
    def total_bytes(self) -> int:
        """Bytes captured (drives snapshot-flush cost accounting)."""
        return sum(len(d) for d in self.files.values())


class SnapshotManager:
    """Takes and restores snapshots of simulated file systems."""

    def __init__(self) -> None:
        self._snaps: List[Snapshot] = []

    def take(self, fs: FileSystem, now: float = 0.0) -> Snapshot:
        """Capture ``fs`` as of ``now`` and remember it."""
        snap = Snapshot(
            fs.name,
            {path: bytes(f.data) for path, f in fs.files.items()},
            set(fs.dirs),
            now,
        )
        self._snaps.append(snap)
        return snap

    def restore(self, fs: FileSystem, snap: Snapshot) -> None:
        """Roll ``fs`` back to ``snap`` (names must match)."""
        if fs.name != snap.fs_name:
            raise ReproError(f"snapshot of {snap.fs_name!r} cannot restore {fs.name!r}")
        fs.files = {path: File(data) for path, data in snap.files.items()}
        fs.dirs = set(snap.dirs)

    def latest(self, fs_name: str) -> Snapshot:
        """Most recent snapshot taken of ``fs_name``."""
        for snap in reversed(self._snaps):
            if snap.fs_name == fs_name:
                return snap
        raise ReproError(f"no snapshot of {fs_name!r}")

    def __len__(self) -> int:
        return len(self._snaps)
