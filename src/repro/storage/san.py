"""Shared storage: the SAN every blade mounts.

Models the paper's testbed (IBM FastT500 SAN over 2 Gb/s Fibre Channel,
GFS on every blade): one :class:`SharedStorage` file system instance is
mounted at the same path on every node, so a migrated pod finds its
files — the assumption that lets ZapC exclude file contents from
checkpoint images and makes checkpoint-to-disk flush time a pure
bandwidth question.
"""

from __future__ import annotations

from ..vos.filesystem import FileSystem

#: 2 Gb/s Fibre Channel, in usable bytes/second.
FC_BANDWIDTH = 200e6
#: SAN round-trip service latency, seconds.
FC_LATENCY = 0.5e-3

#: Conventional mount point on every node.
SAN_MOUNT = "/san"


class SharedStorage(FileSystem):
    """A SAN-backed file system (shared instance, FC bandwidth)."""

    def __init__(self, name: str = "san", bandwidth: float = FC_BANDWIDTH,
                 latency: float = FC_LATENCY) -> None:
        super().__init__(name, bandwidth=bandwidth, latency=latency)
        #: pending write-stall seconds (fault injection); consumed by the
        #: next flush that goes through :meth:`consume_stall`.
        self._stall_s = 0.0

    def inject_stall(self, seconds: float) -> None:
        """Queue ``seconds`` of write stall — models a SAN path hiccup
        (FC link reset, controller failover) delaying the next flush."""
        self._stall_s += float(seconds)

    def consume_stall(self) -> float:
        """Claim (and clear) the pending stall; the flushing Agent adds
        it to its write sleep so exactly one writer pays the penalty."""
        stall, self._stall_s = self._stall_s, 0.0
        return stall

    def flush_delay(self, nbytes: int) -> float:
        """Seconds to flush ``nbytes`` of checkpoint image to the SAN.

        The paper excludes this from checkpoint latency ("can be done
        after the application resumes execution and is largely dependent
        on the bandwidth available to secondary storage"); the harness
        reports it separately.
        """
        return self.transfer_delay(nbytes)

    def append_delay(self, nbytes: int) -> float:
        """Seconds to append ``nbytes`` to an existing image container.

        A delta epoch extends the checkpoint file in place, so only the
        new record crosses the FC link — earlier epochs are not
        rewritten.  GFS appends go straight to newly allocated blocks,
        skipping the read-modify-write a partial overwrite would pay, so
        an append costs pure transfer time with no service round-trip.
        """
        return nbytes / self.bandwidth
