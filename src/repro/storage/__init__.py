"""Storage substrate: the shared SAN, snapshots, the op ledger, and the
content-addressed checkpoint store."""

from .ledger import (
    CAMPAIGN_TERMINAL_PHASES,
    LEDGER_PATH,
    TERMINAL_PHASES,
    LedgerCampaign,
    LedgerOp,
    OpLedger,
)
from .san import FC_BANDWIDTH, FC_LATENCY, SAN_MOUNT, SharedStorage
from .snapshot import Snapshot, SnapshotManager

#: re-exported lazily (PEP 562): ``repro.storage`` is imported while the
#: cluster package bootstraps, and :mod:`repro.storage.cas` depends on
#: :mod:`repro.core` — an eager import here would close a cycle.
_CAS_EXPORTS = ("ACCT_BLOCK", "CHUNK_AVG", "CHUNK_MAX", "CHUNK_MIN",
                "CasSink", "CasStore", "chunk_bounds", "chunk_id",
                "split_chunks")


def __getattr__(name):
    if name in _CAS_EXPORTS:
        from . import cas
        return getattr(cas, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ACCT_BLOCK",
    "CAMPAIGN_TERMINAL_PHASES",
    "CHUNK_AVG",
    "CHUNK_MAX",
    "CHUNK_MIN",
    "CasSink",
    "CasStore",
    "FC_BANDWIDTH",
    "FC_LATENCY",
    "LEDGER_PATH",
    "LedgerCampaign",
    "LedgerOp",
    "OpLedger",
    "SAN_MOUNT",
    "SharedStorage",
    "Snapshot",
    "SnapshotManager",
    "TERMINAL_PHASES",
    "chunk_bounds",
    "chunk_id",
    "split_chunks",
]
