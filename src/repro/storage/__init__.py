"""Storage substrate: the shared SAN, snapshots, and the op ledger."""

from .ledger import (
    CAMPAIGN_TERMINAL_PHASES,
    LEDGER_PATH,
    TERMINAL_PHASES,
    LedgerCampaign,
    LedgerOp,
    OpLedger,
)
from .san import FC_BANDWIDTH, FC_LATENCY, SAN_MOUNT, SharedStorage
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "CAMPAIGN_TERMINAL_PHASES",
    "FC_BANDWIDTH",
    "FC_LATENCY",
    "LEDGER_PATH",
    "LedgerCampaign",
    "LedgerOp",
    "OpLedger",
    "SAN_MOUNT",
    "SharedStorage",
    "Snapshot",
    "SnapshotManager",
    "TERMINAL_PHASES",
]
