"""Storage substrate: the shared SAN, snapshots, and the op ledger."""

from .ledger import LEDGER_PATH, TERMINAL_PHASES, LedgerOp, OpLedger
from .san import FC_BANDWIDTH, FC_LATENCY, SAN_MOUNT, SharedStorage
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "FC_BANDWIDTH",
    "FC_LATENCY",
    "LEDGER_PATH",
    "LedgerOp",
    "OpLedger",
    "SAN_MOUNT",
    "SharedStorage",
    "Snapshot",
    "SnapshotManager",
    "TERMINAL_PHASES",
]
