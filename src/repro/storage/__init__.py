"""Storage substrate: the shared SAN and file-system snapshots."""

from .san import FC_BANDWIDTH, FC_LATENCY, SAN_MOUNT, SharedStorage
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "FC_BANDWIDTH",
    "FC_LATENCY",
    "SAN_MOUNT",
    "SharedStorage",
    "Snapshot",
    "SnapshotManager",
]
