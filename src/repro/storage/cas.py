"""Content-addressed checkpoint store (CAS) with cross-pod dedup.

The SAN-backed full-image model writes every generation of every pod in
full — the storage wall the fleet hits once thousands of pods checkpoint
on a cadence.  This module replaces the *container-per-path* layout of
:class:`repro.core.pipeline.FileSink` with a *chunk index* shared by the
whole fleet:

* **Content-defined chunking** — the materialized payload bytes are cut
  at gear-hash boundaries (:func:`chunk_bounds`), so an edit moves only
  the chunks it touches: boundaries resynchronize after the edit and the
  untouched tail dedups against the previous generation.
* **Accounted-memory blocks** — the resident-set bytes the simulation
  tracks by count (never materialized) are modeled as fixed blocks.
  Pristine blocks hash to fleet-shared ids — the application code and
  read-only data every pod maps is stored once fleet-wide — while blocks
  the pod has dirtied (from the Agent's measured dirty tables,
  ``PodImage.acct_dirty_bytes``) get per-generation unique ids.
* **Recipes** — a ``cas:<path>`` target stores a *recipe*: the ordered
  chunk-id lists of each chain entry plus the small per-entry metadata.
  A delta epoch appends one entry and carries the prior entries' ids
  verbatim — unchanged segments hit the index without being re-hashed.
* **Refcounted GC, op-keyed** — every recipe (published, retired, or a
  pending stage) holds one reference per chunk occurrence.  Publishing a
  generation retires the previous one (a one-deep undo mirroring
  :class:`MemorySink`); aborting an op rolls back exactly the recipes
  that op staged or published, so the tombstone GC of
  ``core.manager``/``core.agent`` releases exactly the aborted op's
  unshared chunks — chunks still referenced by a live generation chain
  or another pod survive any number of replayed aborts.

The write protocol is split so faults can land between the two durable
steps: :meth:`CasSink.stage` uploads the missing chunks and parks the
recipe as *pending* (a truncating fault uploads only a prefix, leaving
the staged recipe dangling until read-back or GC rejects it);
:meth:`CasSink.publish` atomically swaps the recipe in.  A crash between
the two leaves an orphaned stage that :meth:`CasStore.abort_op` or
:meth:`CasStore.sweep_orphans` reclaims.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.image import PodImage
from ..core.pipeline import StageCost, Sink, _chain_entry, _image_from_entry, \
    image_extends_chain
from ..errors import RestartError

# ---------------------------------------------------------------------------
# content-defined chunking (gear hash)
# ---------------------------------------------------------------------------

#: default chunk-size bounds for payload bytes (min, average, max); the
#: average must be a power of two (the boundary test masks the low bits).
CHUNK_MIN = 4096
CHUNK_AVG = 16384
CHUNK_MAX = 65536

#: accounted (non-materialized) resident-set bytes are modeled as fixed
#: blocks of this size — the dirty-table granularity of the dedup model.
ACCT_BLOCK = 65536

_MASK64 = (1 << 64) - 1


def _gear_table() -> Tuple[int, ...]:
    rng = random.Random(0x5EEDCA5)
    return tuple(rng.getrandbits(64) for _ in range(256))


_GEAR = _gear_table()


def chunk_bounds(data: bytes, min_size: int = CHUNK_MIN,
                 avg_size: int = CHUNK_AVG,
                 max_size: int = CHUNK_MAX) -> List[Tuple[int, int]]:
    """Content-defined ``(offset, length)`` chunk bounds of ``data``.

    The gear hash restarts at every cut, so a chunk's boundary depends
    only on its own bytes: every bound except a final one forced by
    end-of-data is stable under appends, and boundaries resynchronize a
    bounded distance after an edit.
    """
    mask = avg_size - 1
    bounds: List[Tuple[int, int]] = []
    n = len(data)
    start = 0
    while start < n:
        end = min(start + max_size, n)
        i = start
        h = 0
        cut = end
        while i < end:
            h = ((h << 1) + _GEAR[data[i]]) & _MASK64
            i += 1
            if i - start >= min_size and (h & mask) == 0:
                cut = i
                break
        bounds.append((start, cut - start))
        start = cut
    return bounds


def split_chunks(data: bytes, min_size: int = CHUNK_MIN,
                 avg_size: int = CHUNK_AVG,
                 max_size: int = CHUNK_MAX) -> List[bytes]:
    """``data`` cut into content-defined chunks (concatenation == data)."""
    return [bytes(data[off:off + ln])
            for off, ln in chunk_bounds(data, min_size, avg_size, max_size)]


def chunk_id(blob: bytes) -> str:
    """Content address of one payload chunk."""
    return "p!" + hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# the fleet-wide chunk store
# ---------------------------------------------------------------------------


@dataclass
class _Object:
    """One stored chunk: its size, and the bytes when materialized
    (payload chunks carry real data; accounted blocks are modeled)."""

    size: int
    blob: Optional[bytes] = None


def _recipe_cids(recipe: Dict[str, Any]) -> Iterable[str]:
    for entry in recipe["entries"]:
        for cid in entry["payload"]:
            yield cid
        for cid in entry["acct"]:
            yield cid


class CasStore:
    """The chunk index one SAN exports — shared by every pod and node.

    There is exactly one store per :class:`repro.storage.san.SharedStorage`
    (:meth:`on`), mirroring how every blade mounts the same SAN volume.
    """

    def __init__(self) -> None:
        #: chunk id -> stored object.
        self.objects: Dict[str, _Object] = {}
        #: chunk id -> reference count (one per recipe occurrence).
        self.refs: Dict[str, int] = {}
        #: path -> published recipe (the restartable generation).
        self.recipes: Dict[str, Dict[str, Any]] = {}
        #: path -> staged-but-unpublished recipe, keyed by the op that
        #: staged it; orphaned stages are reclaimed by op-id GC.
        self.pending: Dict[str, Dict[str, Any]] = {}
        #: path -> the previous published generation (one-deep undo,
        #: released at the *next* successful publish).  ``None`` marks
        #: "previous generation was nothing" — rollback unlinks.
        self.retired: Dict[str, Optional[Dict[str, Any]]] = {}
        # -- cumulative cost accounting ---------------------------------
        self.logical_bytes = 0       #: bytes clients asked to store
        self.stored_bytes = 0        #: bytes of newly created chunks
        self.stored_chunks = 0
        self.dup_hits = 0            #: new-entry chunks found in the index
        self.dup_bytes = 0
        self.carried_bytes = 0       #: chain-carried bytes (no re-hash)
        self.gc_reclaimed_bytes = 0
        self.gc_reclaimed_chunks = 0
        self.footprint_bytes = 0     #: live bytes on the SAN right now

    @classmethod
    def on(cls, san) -> "CasStore":
        store = getattr(san, "_cas_store", None)
        if store is None:
            store = cls()
            san._cas_store = store
        return store

    # -- refcounting ----------------------------------------------------
    def _ref(self, cid: str) -> None:
        self.refs[cid] = self.refs.get(cid, 0) + 1

    def _unref(self, cid: str) -> int:
        n = self.refs.get(cid, 0) - 1
        if n > 0:
            self.refs[cid] = n
            return 0
        self.refs.pop(cid, None)
        obj = self.objects.pop(cid, None)
        if obj is None:
            return 0
        self.gc_reclaimed_bytes += obj.size
        self.gc_reclaimed_chunks += 1
        self.footprint_bytes -= obj.size
        return obj.size

    def _put(self, cid: str, size: int, blob: Optional[bytes]) -> None:
        if cid in self.objects:
            return
        self.objects[cid] = _Object(size, blob)
        self.stored_bytes += size
        self.stored_chunks += 1
        self.footprint_bytes += size

    def _release(self, recipe: Dict[str, Any]) -> int:
        reclaimed = 0
        for cid in _recipe_cids(recipe):
            reclaimed += self._unref(cid)
        return reclaimed

    # -- accounted-memory dedup model -----------------------------------
    def acct_prev_state(self, path: str, pod_id: str) -> Optional[Dict[str, Any]]:
        """The accounted-block state of the published generation at
        ``path`` — the dedup baseline the next full image diffs against."""
        recipe = self.recipes.get(path)
        if recipe is not None and recipe.get("pod") == pod_id:
            return recipe.get("acct_state")
        return None

    @staticmethod
    def acct_entry_ids(pod_id: str, image: PodImage,
                       prev_state: Optional[Dict[str, Any]]
                       ) -> Tuple[List[Tuple[str, int]], Dict[str, Any]]:
        """Model the accounted bytes of ``image`` as block chunk ids.

        Returns ``(blocks, new_state)`` where ``blocks`` is the ordered
        ``(chunk_id, length)`` list the entry references and
        ``new_state`` is the state to embed in the staged recipe (it
        becomes the baseline only when that recipe publishes, so an
        aborted op leaves the baseline untouched).  Pure — safe to call
        for cost estimation without staging.
        """
        total = int(image.accounted_bytes)
        nb = (total + ACCT_BLOCK - 1) // ACCT_BLOCK
        lens = [ACCT_BLOCK] * nb
        if nb and total % ACCT_BLOCK:
            lens[-1] = total % ACCT_BLOCK
        seq = (int(prev_state["seq"]) if prev_state else 0) + 1
        if image_extends_chain(image):
            # delta epoch: the accounted bytes are the dirty bytes —
            # all-new content, unique per generation
            blocks = [(f"a!{pod_id}!{seq}!{k}!{lens[k]}", lens[k])
                      for k in range(nb)]
            prev_blocks = list(prev_state["blocks"]) if prev_state else []
            return blocks, {"blocks": prev_blocks, "seq": seq}
        prev_blocks = prev_state["blocks"] if prev_state else None
        if prev_blocks is None:
            # first sight of this pod: every block is pristine mapped
            # application code/data — shared fleet-wide by construction
            blocks = [(f"a!shared!{k}!{lens[k]}", lens[k]) for k in range(nb)]
        else:
            dirty = image.acct_dirty_bytes
            dirty_nb = nb if dirty is None \
                else min(nb, (int(dirty) + ACCT_BLOCK - 1) // ACCT_BLOCK)
            blocks = []
            for k in range(nb):
                ln = lens[k]
                if k < dirty_nb:
                    blocks.append((f"a!{pod_id}!{seq}!{k}!{ln}", ln))
                elif k < len(prev_blocks) and prev_blocks[k][1] == ln:
                    blocks.append(tuple(prev_blocks[k]))
                else:
                    blocks.append((f"a!shared!{k}!{ln}", ln))
        return blocks, {"blocks": list(blocks), "seq": seq}

    # -- op-keyed GC -----------------------------------------------------
    def rollback_path(self, path: str, op_id: int) -> bool:
        """Undo what op ``op_id`` did at ``path`` — drop its pending
        stage and/or restore the generation its publish replaced.

        Keyed by op id so a replayed tombstone GC (a takeover replica
        re-running a half-done abort) is a no-op once the rollback ran:
        the restored generation carries a different op id and is never
        dropped by the replay.
        """
        op_id = int(op_id)
        acted = False
        staged = self.pending.get(path)
        if staged is not None and int(staged.get("op_id", -1)) == op_id:
            self.pending.pop(path)
            self._release(staged)
            acted = True
        current = self.recipes.get(path)
        if current is not None and int(current.get("op_id", -1)) == op_id \
                and path in self.retired:
            previous = self.retired.pop(path)
            self._release(current)
            if previous is None:
                self.recipes.pop(path, None)
            else:
                self.recipes[path] = previous
            acted = True
        return acted

    def abort_op(self, op_id: int) -> int:
        """Tombstone-GC hook: release every recipe op ``op_id`` staged
        or published.  Idempotent.  Returns bytes reclaimed."""
        op_id = int(op_id)
        before = self.gc_reclaimed_bytes
        for path in [p for p, r in list(self.pending.items())
                     if int(r.get("op_id", -1)) == op_id]:
            self.rollback_path(path, op_id)
        for path in [p for p, r in list(self.recipes.items())
                     if int(r.get("op_id", -1)) == op_id]:
            self.rollback_path(path, op_id)
        return self.gc_reclaimed_bytes - before

    def sweep_orphans(self, live_ops: Iterable[int]) -> Tuple[int, int]:
        """Release pending stages whose op is no longer live (a Manager
        died between stage and publish and nobody aborted).  Returns
        ``(stages_dropped, bytes_reclaimed)``."""
        live = {int(o) for o in live_ops}
        before = self.gc_reclaimed_bytes
        dropped = 0
        for path, recipe in list(self.pending.items()):
            if int(recipe.get("op_id", -1)) not in live:
                self.pending.pop(path)
                self._release(recipe)
                dropped += 1
        return dropped, self.gc_reclaimed_bytes - before

    # -- invariants and accounting --------------------------------------
    def audit(self) -> List[str]:
        """Cross-check the index: refcounts must equal the recipe
        occurrences, no chunk may be leaked (stored or ref'd by nothing)
        and no *published* recipe may dangle (reference a chunk whose
        data never made it to the SAN)."""
        expected: Dict[str, int] = {}
        holders = list(self.recipes.values()) + list(self.pending.values()) \
            + [r for r in self.retired.values() if r is not None]
        for recipe in holders:
            for cid in _recipe_cids(recipe):
                expected[cid] = expected.get(cid, 0) + 1
        problems = []
        for cid, n in sorted(expected.items()):
            if self.refs.get(cid, 0) != n:
                problems.append(
                    f"refcount mismatch for {cid}: "
                    f"{self.refs.get(cid, 0)} != {n}")
        for cid in sorted(self.refs):
            if cid not in expected:
                problems.append(f"leaked ref {cid}")
        for cid in sorted(self.objects):
            if cid not in expected:
                problems.append(f"leaked chunk {cid}")
        for path in sorted(self.recipes):
            for cid in _recipe_cids(self.recipes[path]):
                if cid not in self.objects:
                    problems.append(
                        f"dangling ref {cid} in published recipe {path!r}")
        return problems

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes stored per byte of new chunk data written."""
        return self.logical_bytes / self.stored_bytes if self.stored_bytes \
            else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "logical_bytes": self.logical_bytes,
            "stored_bytes": self.stored_bytes,
            "stored_chunks": self.stored_chunks,
            "footprint_bytes": self.footprint_bytes,
            "live_chunks": len(self.objects),
            "dup_hits": self.dup_hits,
            "dup_bytes": self.dup_bytes,
            "carried_bytes": self.carried_bytes,
            "gc_reclaimed_bytes": self.gc_reclaimed_bytes,
            "gc_reclaimed_chunks": self.gc_reclaimed_chunks,
            "dedup_ratio": self.dedup_ratio,
        }


# ---------------------------------------------------------------------------
# the sink
# ---------------------------------------------------------------------------


class CasSink(Sink):
    """Flush a checkpoint into the SAN's content-addressed store.

    Drop-in peer of :class:`repro.core.pipeline.FileSink` for a
    ``cas:<path>`` target URI, with the write split in two so the Agent
    can place the commit point: :meth:`stage` uploads the chunks the
    index is missing and parks the recipe, :meth:`publish` swaps it in
    as the restartable generation.  :meth:`store` does both for callers
    that need FileSink's one-shot semantics.  Only the *new* bytes cross
    the FC link — dedup buys write time as well as SAN footprint.
    """

    kind = "cas"

    def __init__(self, san, vfs, path: str,
                 chunking: Tuple[int, int, int] = (CHUNK_MIN, CHUNK_AVG,
                                                   CHUNK_MAX)) -> None:
        self.san = san
        self.vfs = vfs  # unused; constructor parity with FileSink
        self.path = path
        self.chunking = chunking
        self.store_ = CasStore.on(san)

    # -- cost model ------------------------------------------------------
    def _entry_chunks(self, image: PodImage
                      ) -> Tuple[List[Tuple[str, int, Optional[bytes]]],
                                 Dict[str, Any]]:
        """The chunk references of the entry ``image`` would add, plus
        the accounted-block state to embed.  Pure."""
        store = self.store_
        pay = [(chunk_id(b), len(b), b)
               for b in split_chunks(bytes(image.data), *self.chunking)]
        prev_state = store.acct_prev_state(self.path, image.pod_id)
        acct, acct_state = store.acct_entry_ids(image.pod_id, image, prev_state)
        chunks = pay + [(cid, ln, None) for cid, ln in acct]
        return chunks, acct_state

    def _new_bytes(self, chunks: List[Tuple[str, int, Optional[bytes]]]) -> int:
        store = self.store_
        seen = set()
        total = 0
        for cid, ln, _blob in chunks:
            if cid in store.objects or cid in seen:
                continue
            seen.add(cid)
            total += ln
        return total

    def write_delay(self, image: PodImage) -> float:
        chunks, _state = self._entry_chunks(image)
        new = self._new_bytes(chunks)
        if image_extends_chain(image) and self.path in self.store_.recipes:
            return self.san.append_delay(new)
        return self.san.flush_delay(new)

    def write_cost(self, image: PodImage) -> StageCost:
        chunks, _state = self._entry_chunks(image)
        return StageCost(f"write:{self.kind}", self.write_delay(image),
                         image.total_bytes, self._new_bytes(chunks))

    # -- the two-step write ---------------------------------------------
    def stage(self, image: PodImage, op_id: int = 0,
              truncate: Optional[float] = None) -> None:
        """Upload the missing chunks and park the recipe as pending.

        ``truncate`` (a fraction in (0, 1)) simulates an upload cut
        short by a fault: references are taken for the full chunk set
        but only that prefix of the *new* chunks reaches the SAN, which
        read-back validation after :meth:`publish` must then reject.
        """
        store = self.store_
        chunks, acct_state = self._entry_chunks(image)
        prev = store.recipes.get(self.path)
        extends = image_extends_chain(image) and prev is not None
        meta = {k: v for k, v in _chain_entry(image).items() if k != "data"}
        entry = {
            "meta": meta,
            "payload": [cid for cid, _ln, blob in chunks if blob is not None],
            "acct": [cid for cid, _ln, blob in chunks if blob is None],
            "logical": image.total_bytes,
        }
        entries = (list(prev["entries"]) + [entry]) if extends else [entry]
        recipe = {"path": self.path, "pod": image.pod_id,
                  "op_id": int(op_id), "entries": entries,
                  "acct_state": acct_state}
        # chain-carried entries: their ids are reused verbatim from the
        # published recipe — referenced without re-chunking or re-hashing.
        # The byte count is parked on the recipe (de-duplicated by cid)
        # and folded into the store stats only when this stage publishes,
        # so a retried flush never inflates the carry-over stat.
        if extends:
            carried_cids = set()
            for carried in prev["entries"]:
                carried_cids.update(carried["payload"])
                carried_cids.update(carried["acct"])
            recipe["carried"] = sum(
                store.objects[cid].size for cid in carried_cids
                if cid in store.objects)
        new_chunks: List[Tuple[str, int, Optional[bytes]]] = []
        seen = set()
        for cid, ln, blob in chunks:
            if cid in store.objects or cid in seen:
                store.dup_hits += 1
                store.dup_bytes += ln
            else:
                seen.add(cid)
                new_chunks.append((cid, ln, blob))
        n_up = len(new_chunks) if truncate is None \
            else int(len(new_chunks) * float(truncate))
        for cid, ln, blob in new_chunks[:n_up]:
            store._put(cid, ln, blob)
        store.logical_bytes += image.total_bytes
        # take this recipe's references BEFORE releasing any stale stage
        # parked at the path (an op that crashed between stage and
        # publish): releasing first would drop chunks shared with the
        # stale recipe to refcount 0 and delete them from the store,
        # leaving the recipe about to be parked with dangling refs
        for entry_ in entries:
            for cid in list(entry_["payload"]) + list(entry_["acct"]):
                store._ref(cid)
        stale = store.pending.pop(self.path, None)
        if stale is not None:
            store._release(stale)
        store.pending[self.path] = recipe

    def publish(self, op_id: Optional[int] = None) -> bool:
        """Swap the staged recipe in as the restartable generation and
        retire the previous one (released at the *next* publish).

        When ``op_id`` is given, only a pending recipe staged by that
        very op is swapped in (mirroring :meth:`rollback`): if two ops
        interleave on one path, op A's publish must not promote op B's —
        possibly truncated — stage under A's read-back validation.
        Returns True iff a recipe was published.
        """
        store = self.store_
        staged = store.pending.get(self.path)
        if staged is None:
            return False
        if op_id is not None and int(staged.get("op_id", -1)) != int(op_id):
            return False
        store.pending.pop(self.path)
        if self.path in store.retired:
            previous = store.retired.pop(self.path)
            if previous is not None:
                store._release(previous)
        store.retired[self.path] = store.recipes.get(self.path)
        store.recipes[self.path] = staged
        store.carried_bytes += int(staged.pop("carried", 0))
        return True

    def store(self, image: PodImage, truncate: Optional[float] = None,
              op_id: int = 0) -> None:
        """One-shot write: :meth:`stage` then :meth:`publish`."""
        self.stage(image, op_id=op_id, truncate=truncate)
        self.publish(op_id)

    # -- FileSink-parallel surface --------------------------------------
    def exists(self) -> bool:
        return self.path in self.store_.recipes

    def rollback(self, op_id: int) -> bool:
        """Op-keyed GC of this path (see :meth:`CasStore.rollback_path`)."""
        return self.store_.rollback_path(self.path, int(op_id))

    def unlink(self) -> None:
        """Drop every generation at this path unconditionally — the
        blunt FileSink-style delete; the abort paths prefer
        :meth:`rollback`, which restores the retired generation."""
        store = self.store_
        for holder in (store.pending.pop(self.path, None),
                       store.recipes.pop(self.path, None),
                       store.retired.pop(self.path, None)):
            if holder is not None:
                store._release(holder)

    def load(self, pod_id: str) -> List[PodImage]:
        """Reassemble and validate the published chain at this path.

        A recipe whose chunk data never fully reached the SAN (a
        truncated stage) must never be visible as restartable: every
        missing chunk is converted into a clean :class:`RestartError`
        here, before any pod state is touched.
        """
        store = self.store_
        recipe = store.recipes.get(self.path)
        if recipe is None:
            raise RestartError(f"no image at {self.path!r}")
        chain: List[PodImage] = []
        for entry in recipe["entries"]:
            parts: List[bytes] = []
            for cid in entry["payload"]:
                obj = store.objects.get(cid)
                if obj is None or obj.blob is None:
                    raise RestartError(
                        f"partial or corrupt image at {self.path!r}: "
                        f"missing chunk {cid[:18]}…")
                parts.append(obj.blob)
            for cid in entry["acct"]:
                if cid not in store.objects:
                    raise RestartError(
                        f"partial or corrupt image at {self.path!r}: "
                        f"missing chunk {cid}")
            raw = dict(entry["meta"])
            raw["data"] = b"".join(parts)
            chain.append(_image_from_entry(pod_id, raw))
        if not chain:
            raise RestartError(f"empty image chain at {self.path!r}")
        return chain
