"""Mini-MPI: message-passing middleware built on the socket layer.

A miniature of MPICH-2 sufficient for the paper's workloads: full-mesh
TCP bootstrap, typed point-to-point messages, and tree collectives
(:mod:`~repro.middleware.collectives`).  Everything is emitted as
ordinary program instructions — applications using mini-MPI are
*unmodified* from the checkpointer's point of view, which is the whole
point: ZapC checkpoints MPI applications without any middleware
cooperation, unlike the checkpoint-aware MPI variants of Section 2.

Wire format: 4-byte big-endian length, then a codec-encoded
``(tag, value)`` pair.  Values are anything the intermediate format
supports (notably numpy arrays).

Bootstrap: rank *i* listens on ``base_port + i``; connects to every
lower rank (retrying until the peer listens) and accepts from every
higher rank, which identifies itself with a hello message.  Connect
completes at the transport level without the peer's accept, so the
scheme cannot deadlock.

All emitters take a :class:`~repro.vos.program.ProgramBuilder` and work
with register names; scratch registers are gensym'd so emitters nest.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional

from ..core import codec
from ..vos.program import Imm, ProgramBuilder, imm

#: first listening port used by rank 0.
DEFAULT_BASE_PORT = 11000

#: register holding the rank→fd connection table.
FDS = "__mpi_fds"
#: register holding this process's rank and the world size.
RANK = "__mpi_rank"
SIZE = "__mpi_size"
#: register holding the unexpected-message queues: src -> [(tag, value)].
UNEXP_REG = "__mpi_unexp"


# ---------------------------------------------------------------------------
# framing helpers (module-level so programs stay registry-rebuildable)
# ---------------------------------------------------------------------------


def _frame(tag: str, value: Any) -> bytes:
    body = codec.encode((tag, value))
    return struct.pack(">I", len(body)) + body


def _need(buf: bytes, n: int) -> bool:
    return len(buf) < n


def _concat(buf: bytes, chunk: bytes) -> bytes:
    if chunk == b"":
        raise ConnectionError("mini-MPI peer closed the connection mid-message")
    return buf + chunk


def _unframe(buf: bytes):
    return codec.decode(buf)


def emit_recv_exact(b: ProgramBuilder, fd_reg: str, nbytes, out_reg: str,
                    seed: Optional[str] = None) -> None:
    """Emit a loop reading exactly ``nbytes`` from a stream socket.

    ``seed`` optionally names a register holding bytes already read
    (counted against ``nbytes``).
    """
    s = b._fresh("rx")
    n = f"{s}_n"
    more = f"{s}_more"
    chunk = f"{s}_c"
    want = f"{s}_w"
    b.mov(n, nbytes if isinstance(nbytes, (Imm, str)) else imm(nbytes))
    if seed is None:
        b.mov(out_reg, imm(b""))
    else:
        b.mov(out_reg, seed)
    b.op(more, _need, out_reg, n)
    with b.while_(more):
        b.op(want, lambda buf, k: k - len(buf), out_reg, n)
        b.syscall(chunk, "recv", fd_reg, want, imm(0))
        b.op(out_reg, _concat, out_reg, chunk)
        b.op(more, _need, out_reg, n)


# ---------------------------------------------------------------------------
# init / finalize
# ---------------------------------------------------------------------------


def emit_init(b: ProgramBuilder, *, rank: int, nprocs: int, vips: List[str],
              base_port: int = DEFAULT_BASE_PORT) -> None:
    """Emit the bootstrap: full-mesh connections into the ``FDS`` table.

    ``vips`` lists every rank's (virtual) address, lowest rank first —
    what mpd distributes in the real system.
    """
    b.mov(RANK, imm(rank))
    b.mov(SIZE, imm(nprocs))
    b.op(FDS, dict)
    b.op(UNEXP_REG, dict)  # unexpected-message queues (matching layer)
    # listen on my well-known port
    lfd = b._fresh("lfd")
    b.syscall(lfd, "socket", imm("tcp"))
    b.syscall(None, "setsockopt", lfd, imm("SO_REUSEADDR"), imm(1))
    b.syscall(None, "bind", lfd, imm(("default", base_port + rank)))
    b.syscall(None, "listen", lfd, imm(max(4, nprocs)))
    b.mov("__mpi_lfd", lfd)
    # connect to all lower ranks (retry until their listener exists)
    for peer in range(rank):
        _emit_connect_to(b, rank, peer, vips[peer], base_port + peer)
    # accept from all higher ranks; each sends a hello naming its rank
    for _ in range(nprocs - 1 - rank):
        _emit_accept_one(b, lfd)


def _emit_connect_to(b: ProgramBuilder, my_rank: int, peer: int, vip: str, port: int) -> None:
    s = b._fresh("conn")
    fd, rc, ok = f"{s}_fd", f"{s}_rc", f"{s}_ok"
    top, done = b._fresh("ctop"), b._fresh("cdone")
    b.label(top)
    b.syscall(fd, "socket", imm("tcp"))
    b.syscall(rc, "connect", fd, imm((vip, port)))
    b.op(ok, lambda r: not hasattr(r, "name"), rc)  # Errno has .name
    with b.if_(ok):
        b.op(FDS, _dict_set(peer), FDS, fd)
        b.syscall(None, "send", fd, imm(_frame("hello", my_rank)), imm(0))
        b.jump(done)
    b.syscall(None, "close", fd)
    b.syscall(None, "sleep", imm(0.002))
    b.jump(top)
    b.label(done)


def _dict_set(key: Any):
    def setter(d: dict, value: Any, _k=key) -> dict:
        d = dict(d)
        d[_k] = value
        return d

    return setter


def _emit_accept_one(b: ProgramBuilder, lfd: str) -> None:
    s = b._fresh("acc")
    conn, fd, hdr, body, msg, peer = (f"{s}_conn", f"{s}_fd", f"{s}_h",
                                      f"{s}_b", f"{s}_m", f"{s}_p")
    b.syscall(conn, "accept", lfd)
    b.op(fd, lambda c: c[0], conn)
    emit_recv_exact(b, fd, imm(4), hdr)
    n = f"{s}_n"
    b.op(n, lambda h: struct.unpack(">I", h)[0], hdr)
    emit_recv_exact(b, fd, n, body)
    b.op(msg, _unframe, body)
    # hello value -1 means "derive my rank from my port"; the accepted
    # endpoint's source port is ephemeral, so the hello instead carries
    # the peer's rank explicitly when known
    b.op(peer, _peer_rank_from_hello, msg, conn)
    b.op(FDS, _dict_set_reg, FDS, peer, fd)


def _peer_rank_from_hello(msg: Any, conn: Any) -> int:
    tag, value = msg
    if tag != "hello":
        raise ConnectionError(f"expected hello, got {tag!r}")
    return int(value)


def _dict_set_reg(d: dict, key: Any, value: Any) -> dict:
    d = dict(d)
    d[key] = value
    return d


def emit_finalize(b: ProgramBuilder) -> None:
    """Emit teardown: close every connection and the listener."""
    s = b._fresh("fin")
    fds, n, i = f"{s}_fds", f"{s}_n", f"{s}_i"
    b.op(fds, lambda d: sorted(d.values()), FDS)
    b.op(n, len, fds)
    with b.for_range(i, imm(0), n):
        fd = f"{s}_fd"
        b.op(fd, lambda lst, k: lst[k], fds, i)
        b.syscall(None, "close", fd)
    b.syscall(None, "close", "__mpi_lfd")


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------


def emit_send(b: ProgramBuilder, dst_rank, value_reg: str, tag: str = "msg") -> None:
    """Emit a blocking typed send of a register's value to ``dst_rank``
    (an int or a register holding one)."""
    s = b._fresh("snd")
    fd, frame = f"{s}_fd", f"{s}_f"
    dst = dst_rank if isinstance(dst_rank, (str, Imm)) else imm(dst_rank)
    b.op(fd, lambda d, r: d[r], FDS, dst)
    b.op(frame, lambda v, t=tag: _frame(t, v), value_reg)
    b.syscall(None, "send", fd, frame, imm(0))


def emit_recv(b: ProgramBuilder, src_rank, out_reg: str, tag: str = "msg") -> None:
    """Emit a blocking typed receive from ``src_rank`` into ``out_reg``.

    MPI matching semantics: the unexpected-message queue is consulted
    first, and frames read off the wire with a *different* tag are
    parked there rather than treated as protocol errors — so blocking
    receives compose with the nonblocking progress engine.
    """
    s = b._fresh("rcv")
    fd, hdr, n, body, msg = f"{s}_fd", f"{s}_h", f"{s}_n", f"{s}_b", f"{s}_m"
    hit, done = f"{s}_hit", f"{s}_done"
    src = src_rank if isinstance(src_rank, (str, Imm)) else imm(src_rank)
    # anything already parked for (src, tag)?
    b.op(hit, _unexp_take(tag), UNEXP_REG, src)
    b.op(UNEXP_REG, lambda h: h[2], hit)
    b.op(done, lambda h: h[0], hit)
    with b.if_(done):
        b.op(out_reg, lambda h: h[1], hit)
    with b.if_(done, negate=True):
        b.op(fd, lambda d, r: d[r], FDS, src)
        # read frames until one carries the wanted tag; park the rest
        top, end = b._fresh("rtop"), b._fresh("rend")
        b.label(top)
        emit_recv_exact(b, fd, imm(4), hdr)
        b.op(n, lambda h: struct.unpack(">I", h)[0], hdr)
        emit_recv_exact(b, fd, n, body)
        b.op(msg, _unframe, body)
        b.op(f"{s}_match", lambda m, t=tag: m[0] == t, msg)
        with b.if_(f"{s}_match"):
            b.op(out_reg, lambda m: m[1], msg)
            b.jump(end)
        b.op(UNEXP_REG, _unexp_park, UNEXP_REG, src, msg)
        b.jump(top)
        b.label(end)


def _check_tag(expected: str):
    def checker(msg: Any, _t=expected) -> Any:
        tag, value = msg
        if tag != _t:
            raise ConnectionError(f"mini-MPI tag mismatch: wanted {_t!r}, got {tag!r}")
        return value

    return checker


def _unexp_take(tag: str):
    """Pop the first parked frame for (src, tag): (found, value, queues')."""

    def take(unexp: dict, src: Any, _t=tag):
        frames = unexp.get(src, [])
        for i, (ftag, value) in enumerate(frames):
            if ftag == _t:
                parked = dict(unexp)
                rest = frames[:i] + frames[i + 1:]
                if rest:
                    parked[src] = rest
                else:
                    parked.pop(src, None)
                return True, value, parked
        return False, None, unexp

    return take


def _unexp_park(unexp: dict, src: Any, msg: tuple) -> dict:
    """Append a mismatched frame to src's unexpected queue."""
    parked = dict(unexp)
    parked[src] = list(parked.get(src, [])) + [(msg[0], msg[1])]
    return parked


def _drop_fd(d: dict, fd: int) -> dict:
    return {k: v for k, v in d.items() if v != fd}


def emit_recv_any(b: ProgramBuilder, out_val: str, out_src: str, tag: str = "msg") -> None:
    """Emit MPI_ANY_SOURCE: poll all peers, read from the first ready.

    Consults the unexpected-message queues first and parks frames with
    other tags (matching semantics).  Peers that have disconnected (EOF)
    are dropped from the connection table and polling continues — a
    master must not wedge because one finished worker closed early.
    """
    s = b._fresh("any")
    spec, ready, fd, src = f"{s}_spec", f"{s}_r", f"{s}_fd", f"{s}_src"
    first, eof, pending, hit = f"{s}_first", f"{s}_eof", f"{s}_pending", f"{s}_hit"
    hdr, n, body, msg = f"{s}_h", f"{s}_n", f"{s}_b", f"{s}_m"
    # anything already parked with this tag, from any source?
    b.op(hit, _unexp_take_any(tag), UNEXP_REG)
    b.op(UNEXP_REG, lambda h: h[3], hit)
    b.op(pending, lambda h: not h[0], hit)
    with b.if_(pending, negate=True):
        b.op(out_val, lambda h: h[1], hit)
        b.op(out_src, lambda h: h[2], hit)
    with b.while_(pending):
        b.op(spec, lambda d: [(v, "r") for v in sorted(d.values())], FDS)
        b.op(None, _require_peers, spec)
        b.syscall(ready, "poll", spec, imm(None))
        b.op(fd, lambda r: r[0][0], ready)
        b.syscall(first, "recv", fd, imm(4), imm(0))
        b.op(eof, lambda c: c == b"", first)
        with b.if_(eof):
            b.op(FDS, _drop_fd, FDS, fd)
        with b.if_(eof, negate=True):
            b.op(src, lambda d, f: next(k for k, v in d.items() if v == f), FDS, fd)
            emit_recv_exact(b, fd, imm(4), hdr, seed=first)
            b.op(n, lambda h: struct.unpack(">I", h)[0], hdr)
            emit_recv_exact(b, fd, n, body)
            b.op(msg, _unframe, body)
            b.op(f"{s}_match", lambda m, t=tag: m[0] == t, msg)
            with b.if_(f"{s}_match"):
                b.op(out_val, lambda m: m[1], msg)
                b.mov(out_src, src)
                b.mov(pending, imm(False))
            with b.if_(f"{s}_match", negate=True):
                b.op(UNEXP_REG, _unexp_park, UNEXP_REG, src, msg)


def _require_peers(spec: list) -> None:
    if not spec:
        raise ConnectionError("recv_any with no connected peers left")


def _unexp_take_any(tag: str):
    """Pop the first parked frame with ``tag`` from any source:
    (found, value, src, queues')."""

    def take(unexp: dict, _t=tag):
        for src in sorted(unexp, key=str):
            for i, (ftag, value) in enumerate(unexp[src]):
                if ftag == _t:
                    parked = dict(unexp)
                    rest = unexp[src][:i] + unexp[src][i + 1:]
                    if rest:
                        parked[src] = rest
                    else:
                        parked.pop(src)
                    return True, value, src, parked
        return False, None, None, unexp

    return take
