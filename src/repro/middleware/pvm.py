"""Mini-PVM: master/worker messaging in the PVM style.

PVM applications (the paper's POV-Ray) are master/worker rather than
SPMD: a star topology where workers connect to the master and exchange
tagged messages, with the master consuming results from *any* worker as
they arrive.  Built on the same framing as mini-MPI but with its own
bootstrap (no full mesh) — the pvmd daemon's role of task naming is
played by worker ids carried in the hello message.
"""

from __future__ import annotations


from ..vos.program import ProgramBuilder, imm
from .mpi import (
    DEFAULT_BASE_PORT,
    FDS,
    UNEXP_REG,
    _emit_accept_one,
    _emit_connect_to,
    emit_recv,
    emit_recv_any,
    emit_send,
)

#: the master's task id.
MASTER = 0


def emit_master_init(b: ProgramBuilder, *, nworkers: int,
                     port: int = DEFAULT_BASE_PORT) -> None:
    """Emit the master's bootstrap: accept one connection per worker."""
    b.op(FDS, dict)
    b.op(UNEXP_REG, dict)
    lfd = b._fresh("pvml")
    b.syscall(lfd, "socket", imm("tcp"))
    b.syscall(None, "setsockopt", lfd, imm("SO_REUSEADDR"), imm(1))
    b.syscall(None, "bind", lfd, imm(("default", port)))
    b.syscall(None, "listen", lfd, imm(max(4, nworkers)))
    b.mov("__mpi_lfd", lfd)
    for _ in range(nworkers):
        _emit_accept_one(b, lfd)


def emit_worker_init(b: ProgramBuilder, *, task_id: int, master_vip: str,
                     port: int = DEFAULT_BASE_PORT) -> None:
    """Emit a worker's bootstrap: connect to the master and say hello."""
    b.op(FDS, dict)
    b.op(UNEXP_REG, dict)
    b.mov("__mpi_lfd", imm(None))
    _emit_connect_to(b, task_id, MASTER, master_vip, port)


def emit_pvm_send(b: ProgramBuilder, dst, value_reg: str, tag: str = "pvm") -> None:
    """Emit pvm_send: typed message to a task id."""
    emit_send(b, dst, value_reg, tag=tag)


def emit_pvm_recv(b: ProgramBuilder, src, out_reg: str, tag: str = "pvm") -> None:
    """Emit pvm_recv from a specific task."""
    emit_recv(b, src, out_reg, tag=tag)


def emit_pvm_recv_any(b: ProgramBuilder, out_val: str, out_src: str,
                      tag: str = "pvm") -> None:
    """Emit pvm_recv from whichever task sends first (master's pattern)."""
    emit_recv_any(b, out_val, out_src, tag=tag)


def emit_worker_close(b: ProgramBuilder) -> None:
    """Emit a worker's teardown (close the master connection)."""
    s = b._fresh("pvmfin")
    fd = f"{s}_fd"
    b.op(fd, lambda d: d[MASTER], FDS)
    b.syscall(None, "close", fd)
