"""Message-passing middleware: mini-MPI, mini-PVM, per-pod daemons."""

from .collectives import (
    REDUCE_OPS,
    emit_allreduce,
    emit_barrier,
    emit_bcast,
    emit_gather,
    emit_reduce,
    emit_scatter,
)
from .daemon import AppHandle, checkpoint_targets, launch_master_worker, launch_spmd
from .mpi import (
    DEFAULT_BASE_PORT,
    emit_finalize,
    emit_init,
    emit_recv,
    emit_recv_any,
    emit_send,
)
from .nonblocking import (
    emit_irecv,
    emit_isend,
    emit_req_list,
    emit_req_value,
    emit_waitall,
)
from .pvm import (
    emit_master_init,
    emit_pvm_recv,
    emit_pvm_recv_any,
    emit_pvm_send,
    emit_worker_close,
    emit_worker_init,
)

__all__ = [
    "AppHandle",
    "DEFAULT_BASE_PORT",
    "REDUCE_OPS",
    "checkpoint_targets",
    "emit_allreduce",
    "emit_barrier",
    "emit_bcast",
    "emit_finalize",
    "emit_gather",
    "emit_init",
    "emit_irecv",
    "emit_isend",
    "emit_master_init",
    "emit_pvm_recv",
    "emit_pvm_recv_any",
    "emit_pvm_send",
    "emit_recv",
    "emit_recv_any",
    "emit_req_list",
    "emit_req_value",
    "emit_reduce",
    "emit_scatter",
    "emit_send",
    "emit_waitall",
    "emit_worker_close",
    "emit_worker_init",
    "launch_master_worker",
    "launch_spmd",
]
