"""Nonblocking mini-MPI: irecv / buffered isend / waitall.

Real BT-class codes post all halo receives up front and let the library
complete them in *arrival* order; a progress engine matches incoming
frames to posted requests by (source, tag) and parks mismatches on an
unexpected-message queue.  This module adds that engine to mini-MPI —
entirely in registers, so it checkpoints transparently like everything
else an application owns.

Semantics:

* :func:`emit_irecv` posts a receive request into a request-list
  register (matched by source rank and tag);
* :func:`emit_isend` is a *buffered* send (MPI_Ibsend-flavored): the
  frame enters the socket send queue immediately, kernel buffering
  permitting — ZapC's send-queue capture covers whatever is still
  queued at a checkpoint;
* :func:`emit_waitall` runs the progress engine until every posted
  request has a value; completed values are read from the request list
  by posting order.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List

from ..vos.program import ProgramBuilder, imm
from .mpi import FDS, UNEXP_REG, _frame, _unframe, emit_recv_exact

#: alias of the shared unexpected-message queue register.
UNEXP = UNEXP_REG


def emit_req_list(b: ProgramBuilder, reqs_reg: str) -> None:
    """Initialize an empty request list.

    The unexpected-message queue (``UNEXP``) persists across exchanges;
    :func:`repro.middleware.mpi.emit_init` creates it once.
    """
    b.op(reqs_reg, list)


def emit_irecv(b: ProgramBuilder, reqs_reg: str, *, src: int, tag: str) -> None:
    """Post a receive request for (src, tag) on the request list."""
    b.op(reqs_reg, _post_recv(src, tag), reqs_reg)


def _post_recv(src: int, tag: str):
    def post(reqs: list, _s=src, _t=tag) -> list:
        return reqs + [{"src": _s, "tag": _t, "done": False, "value": None}]

    return post


def emit_isend(b: ProgramBuilder, dst: int, value_reg: str, tag: str = "msg") -> None:
    """Buffered send: the frame is handed to the kernel immediately."""
    s = b._fresh("isnd")
    fd, frame = f"{s}_fd", f"{s}_f"
    b.op(fd, lambda d, r=dst: d[r], FDS)
    b.op(frame, lambda v, t=tag: _frame(t, v), value_reg)
    b.syscall(None, "send", fd, frame, imm(0))


def emit_waitall(b: ProgramBuilder, reqs_reg: str) -> None:
    """Run the progress engine until every posted request completes."""
    s = b._fresh("wall")
    pending, spec, ready, fd, src = (f"{s}_p", f"{s}_spec", f"{s}_r",
                                     f"{s}_fd", f"{s}_src")
    hdr, n, body, frame = f"{s}_h", f"{s}_n", f"{s}_b", f"{s}_fr"
    # drain anything already parked on the unexpected queues
    b.op(f"{s}_st", _match_unexpected, reqs_reg, UNEXP)
    b.op(reqs_reg, lambda st: st[0], f"{s}_st")
    b.op(UNEXP, lambda st: st[1], f"{s}_st")
    b.op(pending, _any_pending, reqs_reg)
    with b.while_(pending):
        # poll the sources with outstanding requests
        b.op(spec, _poll_spec, reqs_reg, FDS)
        b.syscall(ready, "poll", spec, imm(None))
        b.op(fd, lambda r: r[0][0], ready)
        b.op(src, lambda d, f: next(k for k, v in d.items() if v == f), FDS, fd)
        # read exactly one frame from that source
        emit_recv_exact(b, fd, imm(4), hdr)
        b.op(n, lambda h: struct.unpack(">I", h)[0], hdr)
        emit_recv_exact(b, fd, n, body)
        b.op(frame, _unframe, body)
        # match it to a posted request, or park it as unexpected
        b.op(f"{s}_st2", _dispatch, reqs_reg, UNEXP, src, frame)
        b.op(reqs_reg, lambda st: st[0], f"{s}_st2")
        b.op(UNEXP, lambda st: st[1], f"{s}_st2")
        b.op(pending, _any_pending, reqs_reg)


def emit_req_value(b: ProgramBuilder, reqs_reg: str, index: int, out_reg: str) -> None:
    """Fetch a completed request's value by posting order."""
    b.op(out_reg, lambda reqs, _i=index: reqs[_i]["value"], reqs_reg)


# ---------------------------------------------------------------------------
# pure progress-engine steps (module-level: programs stay rebuildable)
# ---------------------------------------------------------------------------


def _any_pending(reqs: List[Dict[str, Any]]) -> bool:
    return any(not r["done"] for r in reqs)


def _poll_spec(reqs: List[Dict[str, Any]], fds: Dict[int, int]) -> list:
    wanted = sorted({fds[r["src"]] for r in reqs if not r["done"]})
    if not wanted:
        raise ConnectionError("waitall progress with nothing pending")
    return [(fd, "r") for fd in wanted]


def _match_one(reqs: List[Dict[str, Any]], src: int, tag: str, value: Any):
    """First pending request matching (src, tag) gets the value."""
    out = []
    matched = False
    for r in reqs:
        if not matched and not r["done"] and r["src"] == src and r["tag"] == tag:
            out.append({**r, "done": True, "value": value})
            matched = True
        else:
            out.append(r)
    return out, matched


def _dispatch(reqs, unexp, src, frame):
    tag, value = frame
    reqs2, matched = _match_one(reqs, src, tag, value)
    if matched:
        return reqs2, unexp
    parked = dict(unexp)
    parked[src] = list(parked.get(src, [])) + [(tag, value)]
    return reqs, parked


def _match_unexpected(reqs, unexp):
    reqs2 = list(reqs)
    parked = {s: list(frames) for s, frames in unexp.items()}
    for src, frames in list(parked.items()):
        remaining = []
        for tag, value in frames:
            reqs2, matched = _match_one(reqs2, src, tag, value)
            if not matched:
                remaining.append((tag, value))
        if remaining:
            parked[src] = remaining
        else:
            parked.pop(src)
    return reqs2, parked
