"""Per-pod middleware daemons and application launchers.

"Each pod is seen as an individual node so each pod runs one of the
respective daemons (mpd or pvmd)."  The daemon is itself an ordinary
pod process: it spawns the application endpoint inside the pod, waits
for it, and exits with its status — so every checkpoint exercises a
multi-process pod with a process blocked in ``waitpid``.

The launchers build one pod per application endpoint (the paper's
recommended deployment: "ideally placing each application endpoint in a
separate pod", including one pod per CPU on multiprocessor nodes) and
return handles the harness uses to detect completion and collect
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..cluster.builder import Cluster
from ..pod.pod import Pod
from ..vos.process import DEAD, Process
from ..vos.program import build_program, imm, program


@program("middleware.daemon")
def _daemon(b, *, app, params):
    """mpd/pvmd stand-in: spawn the endpoint, wait, propagate its status."""
    b.syscall("child", "spawn", imm(app), imm(params), imm({}))
    b.syscall("status", "waitpid", "child")
    b.halt("status")


@dataclass
class AppHandle:
    """A launched distributed application.

    Holds pod *ids*, not objects: after a migration the pods (and every
    process) are fresh objects on other nodes, so all queries resolve
    against the cluster's current state.
    """

    name: str
    pod_ids: List[str]
    rank_program: str

    def pods(self, cluster: Cluster) -> List[Pod]:
        """The application's pods wherever they currently live."""
        return [cluster.find_pod(pid) for pid in self.pod_ids]

    def _daemons_by_pod(self, cluster: Cluster) -> Dict[str, List[Process]]:
        out: Dict[str, List[Process]] = {pid: [] for pid in self.pod_ids}
        for node in cluster.nodes:
            for proc in node.kernel.procs.values():
                if proc.program.name == "middleware.daemon" and proc.pod_id in out:
                    out[proc.pod_id].append(proc)
        return out

    def ok(self, cluster: Cluster) -> bool:
        """True when every endpoint's daemon exited cleanly somewhere
        (the original pre-migration corpses killed with -9 don't count)."""
        by_pod = self._daemons_by_pod(cluster)
        return all(
            any(d.state == DEAD and d.exit_code == 0 for d in daemons)
            for daemons in by_pod.values()
        )

    def rank_procs(self, cluster: Cluster) -> List[Process]:
        """The application endpoint processes, wherever they now live."""
        procs: List[Process] = []
        for node in cluster.nodes:
            for proc in node.kernel.procs.values():
                if proc.program.name == self.rank_program:
                    procs.append(proc)
        return sorted(procs, key=lambda p: p.program.params.get(
            "rank", p.program.params.get("task_id", 0)))

    def results(self, cluster: Cluster, reg: str) -> List[Any]:
        """Collect a register from every completed endpoint (one entry
        per endpoint; duplicate pre-migration corpses are skipped)."""
        out: Dict[int, Any] = {}
        for proc in self.rank_procs(cluster):
            key = proc.program.params.get("rank", proc.program.params.get("task_id", 0))
            if proc.state == DEAD and proc.exit_code == 0 and reg in proc.regs:
                out[key] = proc.regs[reg]
        return [out[k] for k in sorted(out)]


def launch_spmd(cluster: Cluster, app_program: str, nprocs: int,
                params_of: Any, *, name: str, nodes: Optional[List[int]] = None,
                pods_per_node: int = 1) -> AppHandle:
    """Launch an SPMD (mini-MPI) application, one endpoint per pod.

    ``params_of(rank, vips)`` returns the rank's program params; the
    endpoint addresses (``vips``) are allocated here, before any program
    builds, so every rank knows the full address table — the role mpd's
    configuration plays in the paper's deployment.
    """
    if nodes is None:
        node_count = max(1, nprocs // pods_per_node)
        nodes = [i % node_count for i in range(nprocs)]
    pods: List[Pod] = []
    for rank in range(nprocs):
        node = cluster.node(nodes[rank])
        pods.append(cluster.create_pod(node, f"{name}-{rank}"))
    vips = [pod.vip for pod in pods]
    for rank in range(nprocs):
        node = cluster.node(nodes[rank])
        params = params_of(rank, vips)
        node.kernel.spawn(
            build_program("middleware.daemon", app=app_program, params=params),
            pod_id=pods[rank].id)
    return AppHandle(name, [pod.id for pod in pods], app_program)


def launch_master_worker(cluster: Cluster, master_program: str, worker_program: str,
                         nworkers: int, master_params: Any, worker_params_of: Any,
                         *, name: str, nodes: Optional[List[int]] = None,
                         pods_per_node: int = 1) -> AppHandle:
    """Launch a master/worker (mini-PVM) application.

    The master is endpoint 0; workers are 1..nworkers.  ``worker_params_of``
    receives ``(task_id, master_vip)``.
    """
    total = nworkers + 1
    if nodes is None:
        node_count = max(1, total // pods_per_node)
        nodes = [i % node_count for i in range(total)]
    pods = [cluster.create_pod(cluster.node(nodes[i]), f"{name}-{i}") for i in range(total)]
    master_vip = pods[0].vip
    cluster.node(nodes[0]).kernel.spawn(
        build_program("middleware.daemon", app=master_program, params=master_params),
        pod_id=pods[0].id)
    for task_id in range(1, total):
        node = cluster.node(nodes[task_id])
        node.kernel.spawn(
            build_program("middleware.daemon", app=worker_program,
                          params=worker_params_of(task_id, master_vip)),
            pod_id=pods[task_id].id)
    return AppHandle(name, [pod.id for pod in pods], worker_program)


def checkpoint_targets(handle: AppHandle, cluster: Cluster, uri: str = "mem") -> List[tuple]:
    """«node, pod, URI» tuples for every pod of an application, resolved
    to wherever each pod currently lives."""
    out = []
    for pod_id in handle.pod_ids:
        node = cluster.node_of_pod(pod_id)
        out.append((node.name, pod_id, uri))
    return out
