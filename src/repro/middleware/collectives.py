"""Collective operations for mini-MPI.

Binomial-tree broadcast, flat reduce (children stream to the root —
fine at the paper's ≤16 ranks), allreduce = reduce + bcast, gather,
scatter and barrier, all emitted as plain program instructions on top of
the point-to-point layer.  Reduction operators are module-level
functions so programs stay registry-rebuildable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from ..vos.program import ProgramBuilder, imm
from .mpi import emit_recv, emit_send

#: named reduction operators.
REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
}


def _tree_children(rank: int, size: int, root: int = 0):
    """Binomial-tree children/parent of ``rank`` in a 0-rooted tree,
    after relabeling so ``root`` is the tree root."""
    rel = (rank - root) % size
    children = []
    mask = 1
    while mask < size:
        if rel & (mask - 1) == 0 and rel | mask != rel and rel + mask < size:
            children.append(((rel + mask) + root) % size)
        if rel & mask:
            break
        mask <<= 1
    parent = None
    if rel != 0:
        mask = 1
        while not rel & mask:
            mask <<= 1
        parent = ((rel & ~mask) + root) % size
    return parent, children


def emit_bcast(b: ProgramBuilder, reg: str, *, rank: int, size: int, root: int = 0,
               tag: str = "bcast") -> None:
    """Emit a binomial-tree broadcast of ``reg`` from ``root``."""
    parent, children = _tree_children(rank, size, root)
    if parent is not None:
        emit_recv(b, parent, reg, tag=tag)
    for child in children:
        emit_send(b, child, reg, tag=tag)


def emit_reduce(b: ProgramBuilder, reg: str, out_reg: str, *, op: str, rank: int,
                size: int, root: int = 0, tag: str = "reduce") -> None:
    """Emit a reduction of ``reg`` into ``out_reg`` at ``root``.

    Non-root ranks leave ``out_reg`` holding None.
    """
    fn = REDUCE_OPS[op]
    if rank == root:
        b.mov(out_reg, reg)
        tmp = b._fresh("red")
        for peer in range(size):
            if peer == root:
                continue
            emit_recv(b, peer, tmp, tag=tag)
            b.op(out_reg, fn, out_reg, tmp)
    else:
        emit_send(b, root, reg, tag=tag)
        b.mov(out_reg, imm(None))


def emit_allreduce(b: ProgramBuilder, reg: str, out_reg: str, *, op: str, rank: int,
                   size: int, tag: str = "allred") -> None:
    """Emit reduce-to-0 followed by broadcast (the classic composition)."""
    emit_reduce(b, reg, out_reg, op=op, rank=rank, size=size, root=0, tag=tag + ".r")
    emit_bcast(b, out_reg, rank=rank, size=size, root=0, tag=tag + ".b")


def emit_gather(b: ProgramBuilder, reg: str, out_reg: str, *, rank: int, size: int,
                root: int = 0, tag: str = "gather") -> None:
    """Emit a gather: root receives a list indexed by rank."""
    if rank == root:
        b.op(out_reg, lambda n=size: [None] * n)
        b.op(out_reg, _list_set(root), out_reg, reg)
        tmp = b._fresh("gat")
        for peer in range(size):
            if peer == root:
                continue
            emit_recv(b, peer, tmp, tag=tag)
            b.op(out_reg, _list_set(peer), out_reg, tmp)
    else:
        emit_send(b, root, reg, tag=tag)
        b.mov(out_reg, imm(None))


def _list_set(index: int):
    def setter(lst: list, value: Any, _i=index) -> list:
        lst = list(lst)
        lst[_i] = value
        return lst

    return setter


def emit_scatter(b: ProgramBuilder, list_reg: str, out_reg: str, *, rank: int,
                 size: int, root: int = 0, tag: str = "scatter") -> None:
    """Emit a scatter: root holds a list, each rank gets its element."""
    if rank == root:
        tmp = b._fresh("sca")
        for peer in range(size):
            if peer == root:
                continue
            b.op(tmp, lambda lst, _i=peer: lst[_i], list_reg)
            emit_send(b, peer, tmp, tag=tag)
        b.op(out_reg, lambda lst, _i=root: lst[_i], list_reg)
    else:
        emit_recv(b, root, out_reg, tag=tag)


def emit_barrier(b: ProgramBuilder, *, rank: int, size: int, tag: str = "barrier") -> None:
    """Emit a barrier (an allreduce of nothing)."""
    token = b._fresh("bar")
    b.mov(token, imm(0))
    out = b._fresh("bar_out")
    emit_allreduce(b, token, out, op="sum", rank=rank, size=size, tag=tag)
