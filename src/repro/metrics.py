"""Result records and paper-style table/series formatting."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Fig5Cell:
    """One point of Figure 5: completion time for (app, nodes, system)."""

    app: str
    nodes: int
    base_time: float
    zapc_time: float

    @property
    def overhead_pct(self) -> float:
        if self.base_time == 0:
            return 0.0
        return 100.0 * (self.zapc_time - self.base_time) / self.base_time


@dataclass
class Fig6Cell:
    """One point of Figure 6: checkpoint/restart metrics for (app, nodes)."""

    app: str
    nodes: int
    checkpoint_times: List[float] = field(default_factory=list)
    network_ckpt_times: List[float] = field(default_factory=list)
    restart_time: Optional[float] = None
    network_restart_time: Optional[float] = None
    image_sizes: List[int] = field(default_factory=list)
    netstate_sizes: List[int] = field(default_factory=list)
    #: per-checkpoint image sizes *before* any pipeline filter ran —
    #: equals ``image_sizes`` when no filters are configured.
    raw_image_sizes: List[int] = field(default_factory=list)
    #: per-stage pipeline timing, stage name -> one sample per checkpoint
    #: (``serialize`` / ``filter`` / ``write``).
    stage_times: Dict[str, List[float]] = field(default_factory=dict)
    #: span-derived protocol-phase timing, phase name -> one sample per
    #: checkpoint (max across pods, like the end-to-end latency).
    phase_times: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def mean_checkpoint(self) -> float:
        return statistics.mean(self.checkpoint_times) if self.checkpoint_times else 0.0

    @property
    def mean_network_ckpt(self) -> float:
        return statistics.mean(self.network_ckpt_times) if self.network_ckpt_times else 0.0

    @property
    def mean_image_size(self) -> int:
        return int(statistics.mean(self.image_sizes)) if self.image_sizes else 0

    @property
    def max_netstate(self) -> int:
        return max(self.netstate_sizes, default=0)

    def add_stage_time(self, stage: str, seconds: float) -> None:
        self.stage_times.setdefault(stage, []).append(seconds)

    def mean_stage(self, stage: str) -> float:
        """Mean seconds one pipeline stage contributed per checkpoint."""
        samples = self.stage_times.get(stage)
        return statistics.mean(samples) if samples else 0.0

    def add_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_times.setdefault(phase, []).append(seconds)

    def mean_phase(self, phase: str) -> float:
        """Mean seconds one protocol phase contributed per checkpoint
        (from the span tracer's per-operation breakdown)."""
        samples = self.phase_times.get(phase)
        return statistics.mean(samples) if samples else 0.0

    @property
    def epoch0_image_size(self) -> int:
        """The first (full) checkpoint image — the delta filter's base."""
        return self.image_sizes[0] if self.image_sizes else 0

    @property
    def steady_state_image_size(self) -> int:
        """Mean image size once incremental checkpointing is warm
        (every epoch after the first full image)."""
        tail = self.image_sizes[1:]
        return int(statistics.mean(tail)) if tail else 0


@dataclass
class IncCell:
    """One mode of the incremental-generations study: a writing workload
    checkpointed every epoch under one image-pipeline configuration
    (``full`` / ``heuristic`` / ``delta`` / ``delta-async``)."""

    mode: str
    #: per-epoch largest-pod image bytes (epoch 0 is the full base).
    image_sizes: List[int] = field(default_factory=list)
    raw_image_sizes: List[int] = field(default_factory=list)
    #: per-epoch pod suspend window [s]: capture-only under async,
    #: the whole local checkpoint otherwise.
    suspend_windows: List[float] = field(default_factory=list)
    #: per-epoch end-to-end checkpoint time [s] (manager invoke→commit).
    ckpt_times: List[float] = field(default_factory=list)
    #: every committed delta chain reassembled byte-identical to the
    #: agent's full base (vacuously True for unchained modes).
    chain_ok: bool = True

    @property
    def epoch0_image_size(self) -> int:
        return self.image_sizes[0] if self.image_sizes else 0

    @property
    def steady_state_image_size(self) -> int:
        tail = self.image_sizes[1:]
        return int(statistics.mean(tail)) if tail else 0

    @property
    def mean_suspend(self) -> float:
        return statistics.mean(self.suspend_windows) if self.suspend_windows else 0.0

    @property
    def mean_checkpoint(self) -> float:
        return statistics.mean(self.ckpt_times) if self.ckpt_times else 0.0

    @property
    def shrink_factor(self) -> float:
        """Full-image bytes per steady-state incremental-image byte."""
        steady = self.steady_state_image_size
        return self.epoch0_image_size / steady if steady else 0.0


@dataclass
class CasCell:
    """One mode of the content-addressed-store study: the generational
    writer workload checkpointed to the SAN under one sink/pipeline
    configuration (``file-full`` / ``cas-full`` / ``cas-delta``)."""

    mode: str
    #: per-epoch logical image bytes (sum across pods — what a naive
    #: full-image store writes for the epoch).
    logical_sizes: List[int] = field(default_factory=list)
    #: per-epoch bytes that actually reached the SAN (new chunk data for
    #: the CAS modes; the full containers for ``file-full``).
    stored_sizes: List[int] = field(default_factory=list)
    #: per-epoch end-to-end checkpoint time [s].
    ckpt_times: List[float] = field(default_factory=list)
    #: final store counters (zero for the file baseline).
    footprint_bytes: int = 0
    dup_bytes: int = 0
    carried_bytes: int = 0
    gc_reclaimed_bytes: int = 0
    live_chunks: int = 0
    #: every restored chain byte-identical to the Agent's in-memory
    #: ground truth (and reassembling to the full base under filters).
    restore_ok: bool = True

    @property
    def logical_total(self) -> int:
        return sum(self.logical_sizes)

    @property
    def stored_total(self) -> int:
        return sum(self.stored_sizes)

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes per byte that reached the SAN."""
        return self.logical_total / self.stored_total if self.stored_total \
            else 0.0

    @property
    def mean_checkpoint(self) -> float:
        return statistics.mean(self.ckpt_times) if self.ckpt_times else 0.0


@dataclass
class MigrationCell:
    """One point of the live-migration study: downtime for a given
    pre-copy round cap (cap 0 is plain stop-and-copy)."""

    rounds_cap: int
    downtime: float
    total_time: float
    precopy_bytes: int
    bailout: Optional[str]
    #: per-round accounting dicts straight from ``MigrationResult.rounds``
    rounds: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def rounds_run(self) -> int:
        return len(self.rounds)

    @property
    def downtime_ratio(self) -> float:
        """Downtime as a fraction of the whole migration (1.0 when the
        application was stopped for all of it)."""
        if self.total_time == 0:
            return 0.0
        return self.downtime / self.total_time


def fmt_seconds(t: float) -> str:
    """Human-scale duration."""
    if t < 1.0:
        return f"{t * 1000:7.1f} ms"
    return f"{t:7.2f} s "


def fmt_bytes(n: int) -> str:
    """Human-scale byte count."""
    if n >= 1_000_000_000:
        return f"{n / 1e9:7.2f} GB"
    if n >= 1_000_000:
        return f"{n / 1e6:7.1f} MB"
    if n >= 1_000:
        return f"{n / 1e3:7.1f} KB"
    return f"{n:7d} B "


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render and print a fixed-width table; returns the text."""
    widths = [max([len(str(h))] + [len(str(r[i])) for r in rows])
              for i, h in enumerate(header)]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text
