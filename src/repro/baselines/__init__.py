"""Comparison baselines: vanilla Linux, Cruz-style peek, library-level."""

from .libckpt import LibCheckpoint, LibCkptRuntime, emit_ckpt_point
from .peek import PeekAgent, capture_socket_peek, deploy_peek_manager
from .vanilla import VanillaHandle, launch_master_worker_vanilla, launch_spmd_vanilla

__all__ = [
    "LibCheckpoint",
    "LibCkptRuntime",
    "PeekAgent",
    "VanillaHandle",
    "capture_socket_peek",
    "deploy_peek_manager",
    "emit_ckpt_point",
    "launch_master_worker_vanilla",
    "launch_spmd_vanilla",
]
