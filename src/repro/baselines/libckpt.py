"""A library-level (CoCheck/Condor-style) checkpointer — the §2 contrast.

Library-level distributed checkpointing requires applications to be
"well-behaved": they must be (re)linked against a checkpoint-aware
library, reach explicit safe points before a checkpoint can be taken,
flush communication channels cooperatively, and — crucially — "cannot
use common operating system services as system identifiers such as
process identifiers cannot be preserved after a restart".

This module implements that model faithfully enough to *measure its
restrictions* against ZapC:

* applications must emit :func:`emit_ckpt_point` calls; a checkpoint
  request only completes once **every** participating process reaches
  its next safe point (the request→capture latency is workload-phase
  dependent, vs ZapC's immediate SIGSTOP);
* the capture records each process's registers and program position —
  *application* state only; kernel state (sockets, pids, timers) is not
  captured, and restart gives processes fresh pids (so applications
  that stored a pre-checkpoint pid and ``kill`` it fail — the
  identifier-preservation restriction).

Scope note (documented in DESIGN.md): restart rebuilds processes at
their last safe point with fresh identifiers and no socket state; it is
a latency/restriction baseline, not a competing full system — the paper
itself compares against such systems only qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.builder import Cluster
from ..sim.tasks import Future
from ..vos.kernel import Kernel
from ..vos.process import Process
from ..vos.program import ProgramBuilder, build_program, imm
from ..vos.syscalls import BLOCK, Complete


def emit_ckpt_point(b: ProgramBuilder) -> None:
    """Emit a safe point: the process offers itself for checkpointing.

    Costs one syscall; blocks only while a checkpoint is in progress.
    """
    b.syscall(None, "lib_ckpt_point", imm(0))


@dataclass
class LibCheckpoint:
    """A completed library-level checkpoint."""

    requested_at: float
    completed_at: float
    #: (hostname, pid) -> application-visible state at the safe point.
    states: Dict[tuple, Dict[str, Any]] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Request→capture latency (the phase-dependent cost)."""
        return self.completed_at - self.requested_at


class LibCkptRuntime:
    """Coordinator for library-level checkpoints of one process group."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        #: (hostname, pid) -> kernel; pids are only node-unique.
        self._watched: Dict[tuple, Kernel] = {}
        self._pending: Optional[LibCheckpoint] = None
        self._parked: List[Any] = []
        self._future: Optional[Future] = None
        for node in cluster.nodes:
            node.kernel.register_syscall("lib_ckpt_point", self._sys_point)

    def watch(self, proc: Process, kernel: Kernel) -> None:
        """Add a process to the checkpointed group."""
        self._watched[(kernel.hostname, proc.pid)] = kernel

    def request(self) -> Future:
        """Ask for a checkpoint; resolves with a :class:`LibCheckpoint`
        once every watched process reaches a safe point."""
        if self._future is not None:
            raise RuntimeError("library checkpoint already in progress")
        self._pending = LibCheckpoint(self.engine.now, 0.0)
        self._future = Future("lib-ckpt")
        return self._future

    # -- syscall handler ------------------------------------------------
    def _sys_point(self, kernel: Kernel, proc: Any, args, restarted):
        key = (kernel.hostname, proc.pid)
        if self._pending is None or key not in self._watched:
            return Complete(0)
        if key in self._pending.states:
            return Complete(0)  # already captured this round
        self._pending.states[key] = {
            "regs": dict(proc.regs),
            "pc": proc.pc,
            "program": proc.program.name,
            "params": dict(proc.program.params),
        }
        self._parked.append((proc, kernel))
        if len(self._pending.states) == len(self._watched):
            self._finish(kernel)
            return Complete(0)  # last arriver continues immediately
        return BLOCK

    def _finish(self, kernel: Kernel) -> None:
        ckpt, self._pending = self._pending, None
        fut, self._future = self._future, None
        parked, self._parked = self._parked, []
        ckpt.completed_at = self.engine.now
        for proc, proc_kernel in parked:
            proc_kernel.complete_syscall(proc, 0)
        if fut is not None:
            fut.set_result(ckpt)

    # -- restart (restriction demo) --------------------------------------
    def restart_states(self, ckpt: LibCheckpoint, kernel: Kernel) -> List[Process]:
        """Recreate processes from a library checkpoint on ``kernel``.

        Processes come back at their safe point with their registers —
        but with **fresh pids and no kernel state**: any stored pid or
        fd in the registers now dangles, which is precisely why the
        paper says these systems suit only a narrow range of apps.
        """
        out = []
        for _old_pid, state in sorted(ckpt.states.items()):
            prog = build_program(state["program"], **state["params"])
            proc = Process(kernel.alloc_pid(), prog, regs=dict(state["regs"]))
            proc.pc = state["pc"]
            kernel.adopt_process(proc, enqueue=True)
            out.append(proc)
        return out
