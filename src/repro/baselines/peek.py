"""The Cruz-style *peek* network checkpointer (the §2 comparison).

Cruz "uses low-level details of the Linux TCP implementation to attempt
to save and restore network state ... in part by peeking at the data in
the receive queue.  This technique is incomplete and will fail to
capture all of the data in the network queues with TCP, including
crucial out-of-band, urgent, and backlog queue data."

This baseline reproduces that approach against the simulated stack: the
receive queue is captured with ``MSG_PEEK`` through the normal read path
*without* taking the socket lock first, so

* delivered-but-unprocessed **backlog** segments are missed, and
* **out-of-band/urgent** data is missed entirely

while everything else (options, send queue, PCB) matches ZapC.  The
:class:`PeekAgent` drops into the standard Manager/Agent machinery, so
the two capture strategies are compared end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..cluster.builder import Cluster
from ..core.agent import Agent
from ..core.manager import Manager
from ..core.netckpt import capture_socket
from ..net.sockets import NetStack, Socket
from ..pod.pod import Pod


def capture_socket_peek(stack: NetStack, sock: Socket) -> Dict[str, Any]:
    """Capture one socket the Cruz way.

    Reuses the complete capture for the parts Cruz also gets right, then
    *replaces* the receive-side data with what a lock-free peek sees —
    and puts back what the complete capture drained, so the comparison
    is apples to apples on a live socket.
    """
    if sock.proto != "tcp" or sock.listening:
        return capture_socket(stack, sock)
    conn = sock.conn
    # what a peek (no socket lock, no backlog drain) would see:
    peek_visible = bytes(conn.recv_q)
    # the full capture (drains backlog, reads OOB, installs an altqueue)
    rec = capture_socket(stack, sock)
    # Cruz's view: only the peeked prefix, no urgent data
    rec["recv_data"] = peek_visible
    rec["oob_data"] = b""
    return rec


def capture_pod_network_peek(pod: Pod) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Pod-level sweep using the peek capture (same shape as the real one)."""
    from ..core import netckpt

    original = netckpt.capture_socket
    netckpt.capture_socket = capture_socket_peek
    try:
        return netckpt.capture_pod_network(pod)
    finally:
        netckpt.capture_socket = original


class PeekAgent(Agent):
    """An Agent whose network-state capture peeks instead of reading."""

    def _capture_network(self, pod: Pod):
        return capture_pod_network_peek(pod)


def deploy_peek_manager(cluster: Cluster) -> Manager:
    """A Manager whose Agents all use the peek capture."""
    agents = {}
    for node in cluster.nodes:
        agent = PeekAgent(cluster, node)
        agent.start()
        agents[node.name] = agent
    return Manager(cluster, agents)
