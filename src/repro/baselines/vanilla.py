"""The *Base* configuration of Figure 5: vanilla Linux, no pods.

Applications run as plain processes on the node kernels — no namespace,
no syscall interposition, sockets bound to real node addresses.
Comparing completion times against the pod runs measures exactly the
virtualization overhead the paper reports as "almost indistinguishable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..cluster.builder import Cluster
from ..vos.process import DEAD, Process
from ..vos.program import build_program


@dataclass
class VanillaHandle:
    """A distributed application launched without pods."""

    name: str
    rank_program: str
    daemon_pids: List[tuple]  # (node index, pid)

    def _daemons(self, cluster: Cluster) -> List[Process]:
        return [cluster.node(i).kernel.procs[pid] for i, pid in self.daemon_pids]

    def ok(self, cluster: Cluster) -> bool:
        """True when every endpoint's daemon exited cleanly."""
        return all(d.state == DEAD and d.exit_code == 0 for d in self._daemons(cluster))

    def results(self, cluster: Cluster, reg: str) -> List[Any]:
        """Collect a register from every completed endpoint."""
        out: Dict[int, Any] = {}
        for node in cluster.nodes:
            for proc in node.kernel.procs.values():
                if proc.program.name == self.rank_program and proc.state == DEAD \
                        and proc.exit_code == 0 and reg in proc.regs:
                    key = proc.program.params.get(
                        "rank", proc.program.params.get("task_id", 0))
                    out[key] = proc.regs[reg]
        return [out[k] for k in sorted(out)]


def launch_spmd_vanilla(cluster: Cluster, app_program: str, nprocs: int,
                        params_of: Any, *, name: str,
                        nodes: Optional[List[int]] = None,
                        pods_per_node: int = 1) -> VanillaHandle:
    """Launch an SPMD app with no virtualization (endpoint addresses are
    the real node addresses; multiple endpoints per node share one)."""
    if nodes is None:
        node_count = max(1, nprocs // pods_per_node)
        nodes = [i % node_count for i in range(nprocs)]
    ips = [cluster.node(nodes[rank]).ip for rank in range(nprocs)]
    daemon_pids = []
    for rank in range(nprocs):
        node = cluster.node(nodes[rank])
        params = params_of(rank, ips)
        daemon = node.kernel.spawn(
            build_program("middleware.daemon", app=app_program, params=params))
        daemon_pids.append((nodes[rank], daemon.pid))
    return VanillaHandle(name, app_program, daemon_pids)


def launch_master_worker_vanilla(cluster: Cluster, master_program: str,
                                 worker_program: str, nworkers: int,
                                 master_params: dict, worker_params_of: Any,
                                 *, name: str, nodes: Optional[List[int]] = None,
                                 pods_per_node: int = 1) -> VanillaHandle:
    """Master/worker launch with no virtualization."""
    total = nworkers + 1
    if nodes is None:
        node_count = max(1, total // pods_per_node)
        nodes = [i % node_count for i in range(total)]
    master_ip = cluster.node(nodes[0]).ip
    daemon_pids = []
    d0 = cluster.node(nodes[0]).kernel.spawn(
        build_program("middleware.daemon", app=master_program, params=master_params))
    daemon_pids.append((nodes[0], d0.pid))
    for task_id in range(1, total):
        node = cluster.node(nodes[task_id])
        d = node.kernel.spawn(
            build_program("middleware.daemon", app=worker_program,
                          params=worker_params_of(task_id, master_ip)))
        daemon_pids.append((nodes[task_id], d.pid))
    return VanillaHandle(name, worker_program, daemon_pids)
