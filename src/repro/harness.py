"""Experiment harness: one function per paper figure.

Regenerates the evaluation of Section 6 on the simulated testbed:

* :func:`run_fig5_cell` — completion time of one (app, nodes, system)
  cell of Figure 5 (``system`` ∈ {"base", "zapc"});
* :func:`run_fig6_cell` — checkpoint metrics of Figure 6(a)/6(c): evenly
  spaced snapshots during a run, with per-checkpoint network share and
  largest-pod image sizes;
* :func:`run_fig6b_cell` — Figure 6(b): restart time from an image taken
  mid-execution (checkpoint → destroy → restart on the same blades, as
  the paper did with its limited node count);

plus the node-layout logic of the testbed (≤8 uniprocessor blades; the
16-"node" configuration is 8 dual-CPU blades with one pod per CPU).

``scale`` multiplies the *simulated* cycle costs only — problem sizes,
message sizes and memory footprints stay at paper scale, so image sizes
and network-state sizes are unaffected; only run duration shrinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .apps import btnas, cpi, petsc_bratu, povray
from .baselines.vanilla import launch_master_worker_vanilla, launch_spmd_vanilla
from .cluster.builder import Cluster
from .core.manager import Manager, OpResult
from .core.streaming import DEFAULT_DIRTY_THRESHOLD, migrate_task
from .metrics import CasCell, Fig5Cell, Fig6Cell, IncCell, MigrationCell
from .middleware.daemon import checkpoint_targets, launch_master_worker, launch_spmd
from .obs.tracer import PHASE, SpanTracer
from .vos import build_program, imm, program
from .vos.kernel import DEFAULT_HZ
from .vos.process import DEAD


# ---------------------------------------------------------------------------
# application specifications
# ---------------------------------------------------------------------------


@dataclass
class AppSpec:
    """Everything the harness needs to run one evaluation application."""

    name: str
    kind: str  # "spmd" | "master-worker"
    node_counts: Tuple[int, ...]
    launch_pods: Callable[[Cluster, int, float], Any]
    launch_vanilla: Callable[[Cluster, int, float], Any]
    work_seconds: Callable[[int, float], float]
    verify: Callable[[Cluster, Any], bool]


def _cpi_params(scale):
    return dict(intervals=1_000_000, cycles_per_interval=max(1, int(60_000 * scale)))


def _bt_params(scale):
    return dict(grid=48, iters=30, cycles_per_point=max(1, int(400_000 * scale)),
                face_pad=32_768)


def _bratu_params(scale):
    return dict(grid=48, outer=8, sweeps=12, cycles_per_point=max(1, int(120_000 * scale)))


def _pov_geometry():
    return dict(width=256, height=192, tile=64)


def _verify_cpi(cluster, handle) -> bool:
    vals = [v for v in handle.results(cluster, "pi") if v is not None]
    return len(vals) == 1 and abs(vals[0] - math.pi) < 1e-8


def _verify_bt(scale):
    def check(cluster, handle) -> bool:
        ref, _ = btnas.reference_btnas(G=48, iters=30)
        vals = [v for v in handle.results(cluster, "checksum") if v is not None]
        return len(vals) == 1 and abs(vals[0] - ref) < 1e-6 * max(1.0, abs(ref))
    return check


def _verify_bratu(scale):
    def check(cluster, handle) -> bool:
        ref, _ = petsc_bratu.reference_bratu(G=48, outer=8, sweeps=12)
        vals = [v for v in handle.results(cluster, "checksum") if v is not None]
        return len(vals) == 1 and abs(vals[0] - ref) < 1e-6 * max(1.0, abs(ref))
    return check


def _verify_pov(cluster, handle) -> bool:
    ref = povray.reference_image(**_pov_geometry())
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "apps.povray_master" and proc.state == DEAD \
                    and proc.exit_code == 0:
                return proc.regs["image"] == ref
    return False


def _make_specs() -> Dict[str, AppSpec]:
    def cpi_pods(cluster, n, scale):
        return launch_spmd(
            cluster, "apps.cpi", n,
            lambda rank, vips: cpi.params_of(rank, vips, nprocs=n, **_cpi_params(scale)),
            name="cpi", nodes=placement(n))

    def cpi_van(cluster, n, scale):
        return launch_spmd_vanilla(
            cluster, "apps.cpi", n,
            lambda rank, ips: cpi.params_of(rank, ips, nprocs=n, **_cpi_params(scale)),
            name="cpi", nodes=placement(n))

    def bt_pods(cluster, n, scale):
        return launch_spmd(
            cluster, "apps.btnas", n,
            lambda rank, vips: btnas.params_of(rank, vips, nprocs=n, **_bt_params(scale)),
            name="bt", nodes=placement(n))

    def bt_van(cluster, n, scale):
        return launch_spmd_vanilla(
            cluster, "apps.btnas", n,
            lambda rank, ips: btnas.params_of(rank, ips, nprocs=n, **_bt_params(scale)),
            name="bt", nodes=placement(n))

    def bratu_pods(cluster, n, scale):
        return launch_spmd(
            cluster, "apps.petsc_bratu", n,
            lambda rank, vips: petsc_bratu.params_of(rank, vips, nprocs=n, **_bratu_params(scale)),
            name="bratu", nodes=placement(n))

    def bratu_van(cluster, n, scale):
        return launch_spmd_vanilla(
            cluster, "apps.petsc_bratu", n,
            lambda rank, ips: petsc_bratu.params_of(rank, ips, nprocs=n, **_bratu_params(scale)),
            name="bratu", nodes=placement(n))

    def _pov_placement(n):
        # master + workers share the blades of the n-node configuration
        blades, _ = layout(n)
        total = max(1, n - 1) + 1
        return [i % blades for i in range(total)]

    def pov_pods(cluster, n, scale):
        workers = max(1, n - 1)
        return launch_master_worker(
            cluster, "apps.povray_master", "apps.povray_worker", workers,
            povray.master_params(nworkers=workers, **_pov_geometry()),
            lambda task_id, vip: povray.worker_params(
                task_id, vip, width=256, height=192,
                cycles_per_pixel=max(1, int(1_200_000 * scale))),
            name="pov", nodes=_pov_placement(n))

    def pov_van(cluster, n, scale):
        workers = max(1, n - 1)
        return launch_master_worker_vanilla(
            cluster, "apps.povray_master", "apps.povray_worker", workers,
            povray.master_params(nworkers=workers, **_pov_geometry()),
            lambda task_id, ip: povray.worker_params(
                task_id, ip, width=256, height=192,
                cycles_per_pixel=max(1, int(1_200_000 * scale))),
            name="pov", nodes=_pov_placement(n))

    hz = DEFAULT_HZ
    pov_total_cycles = lambda scale: sum(  # noqa: E731
        povray.tile_cycles(t, 256, 192, int(1_200_000 * scale))
        for t in povray.make_tiles(**_pov_geometry()))
    return {
        "CPI": AppSpec(
            "CPI", "spmd", (1, 2, 4, 8, 16), cpi_pods, cpi_van,
            lambda n, s: 1_000_000 * 60_000 * s / (hz * n), _verify_cpi),
        "BT/NAS": AppSpec(
            "BT/NAS", "spmd", (1, 4, 9, 16), bt_pods, bt_van,
            lambda n, s: 48 * 48 * 30 * 400_000 * s / (hz * n), _verify_bt(1.0)),
        "PETSc": AppSpec(
            "PETSc", "spmd", (1, 2, 4, 8, 16), bratu_pods, bratu_van,
            lambda n, s: 48 * 48 * 8 * 12 * 120_000 * s / (hz * n), _verify_bratu(1.0)),
        "POV-Ray": AppSpec(
            "POV-Ray", "master-worker", (1, 2, 4, 8, 16), pov_pods, pov_van,
            lambda n, s: pov_total_cycles(s) / (hz * max(1, n - 1)), _verify_pov),
    }


APPS: Dict[str, AppSpec] = _make_specs()


# ---------------------------------------------------------------------------
# testbed layout
# ---------------------------------------------------------------------------


def layout(nodes: int) -> Tuple[int, int]:
    """(physical blades, CPUs per blade) for an n-"node" configuration.

    Up to 9 nodes are uniprocessor blades; 16 "nodes" are 8 dual-CPU
    blades, one pod per CPU — the paper's configurations exactly.
    """
    if nodes <= 9:
        return nodes, 1
    if nodes == 16:
        return 8, 2
    raise ValueError(f"unsupported node count {nodes}")


def placement(endpoints: int) -> List[int]:
    """Endpoint→blade placement for an ``endpoints``-node configuration."""
    blades, ncpus = layout(endpoints) if endpoints in (1, 2, 4, 8, 9, 16) else (endpoints, 1)
    return [i % blades for i in range(endpoints)]


def build_cluster(nodes: int, seed: int = 0) -> Cluster:
    """A cluster sized for an n-node configuration."""
    blades, ncpus = layout(nodes)
    return Cluster.build(blades, ncpus=ncpus, seed=seed)


# ---------------------------------------------------------------------------
# figure runners
# ---------------------------------------------------------------------------


def _completion_time(cluster: Cluster, handle: Any) -> float:
    """When the last endpoint daemon exited (simulated seconds)."""
    times = []
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "middleware.daemon" and proc.state == DEAD \
                    and proc.exit_code == 0:
                times.append(proc.exit_time)
    return max(times) if times else float("nan")


def run_fig5_cell(app: str, nodes: int, system: str, scale: float = 1.0,
                  seed: int = 0, until: float = 3600.0) -> float:
    """Completion time of one Figure 5 cell; verifies the answer."""
    spec = APPS[app]
    cluster = build_cluster(nodes, seed=seed)
    if system == "base":
        handle = spec.launch_vanilla(cluster, nodes, scale)
    elif system == "zapc":
        handle = spec.launch_pods(cluster, nodes, scale)
    else:
        raise ValueError(f"unknown system {system!r}")
    cluster.engine.run(until=until)
    if not handle.ok(cluster):
        raise RuntimeError(f"{app} on {nodes} nodes ({system}) did not complete")
    if not spec.verify(cluster, handle):
        raise RuntimeError(f"{app} on {nodes} nodes ({system}) produced a wrong answer")
    return _completion_time(cluster, handle)


def run_fig5_row(app: str, nodes: int, scale: float = 1.0, seed: int = 0) -> Fig5Cell:
    """Base and ZapC completion times for one (app, nodes) pair."""
    base = run_fig5_cell(app, nodes, "base", scale=scale, seed=seed)
    zapc = run_fig5_cell(app, nodes, "zapc", scale=scale, seed=seed)
    return Fig5Cell(app, nodes, base, zapc)


def run_fig6_cell(app: str, nodes: int, scale: float = 1.0, seed: int = 0,
                  n_checkpoints: int = 10, until: float = 3600.0,
                  filters: Optional[List[Dict[str, Any]]] = None) -> Fig6Cell:
    """Evenly spaced snapshots during one run: Figure 6(a)/(c) metrics.

    ``filters`` requests an image-pipeline chain for every checkpoint
    (e.g. ``[{"name": "delta"}]`` makes epochs 1+ incremental); the cell
    records both post-filter and raw image sizes plus the per-stage
    serialize / filter / write timing split.  A span tracer rides along
    so the cell also carries the span-derived protocol-phase breakdown
    (``cell.phase_times``) the Figure 6(a) table prints.
    """
    spec = APPS[app]
    cluster = build_cluster(nodes, seed=seed)
    tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    handle = spec.launch_pods(cluster, nodes, scale)
    cell = Fig6Cell(app, nodes)
    expected = spec.work_seconds(nodes, scale)
    interval = max(expected / (n_checkpoints + 1), 0.02)

    def record_phases(result: OpResult) -> None:
        """Per-phase breakdown of one checkpoint: max across pods of each
        agent-side phase span under the operation (max, like the
        end-to-end latency, since the pods proceed in parallel)."""
        op_span = tracer.find(("op", result.op_id))
        if op_span is None:
            return
        worst: Dict[str, float] = {}
        for span in tracer.children_of(op_span):
            if span.category != PHASE or not span.name.startswith("agent.phase."):
                continue
            phase = span.name[len("agent.phase."):]
            worst[phase] = max(worst.get(phase, 0.0), span.duration)
        for phase, seconds in worst.items():
            cell.add_phase_time(phase, seconds)

    def ticker():
        for _ in range(n_checkpoints):
            yield cluster.engine.sleep(interval)
            if handle.ok(cluster):
                break
            try:
                targets = checkpoint_targets(handle, cluster)
            except Exception:
                break
            result: OpResult = yield from manager.checkpoint_task(targets,
                                                                  filters=filters)
            if result.ok:
                cell.checkpoint_times.append(result.duration)
                cell.network_ckpt_times.append(result.max_stat("t_network"))
                cell.image_sizes.append(result.max_image_bytes())
                cell.raw_image_sizes.append(int(result.max_stat("raw_image_bytes")))
                cell.netstate_sizes.append(int(result.max_stat("netstate_bytes")))
                for stage in ("serialize", "filter", "write"):
                    cell.add_stage_time(stage, result.max_stat(f"t_{stage}"))
                record_phases(result)

    cluster.engine.spawn(ticker(), name="fig6-ticker")
    cluster.engine.run(until=until)
    if not handle.ok(cluster) or not spec.verify(cluster, handle):
        raise RuntimeError(f"{app} on {nodes} nodes failed under periodic checkpoints")
    return cell


def run_fig6b_cell(app: str, nodes: int, scale: float = 1.0, seed: int = 0,
                   at_frac: float = 0.5, until: float = 3600.0,
                   filters: Optional[List[Dict[str, Any]]] = None,
                   n_checkpoints: int = 1) -> Fig6Cell:
    """Restart from a mid-execution image: Figure 6(b) metrics.

    Snapshot at ``at_frac`` of the expected run, kill the pods, restart
    from the in-memory images on the same blades, and let the run finish
    (with the answer verified) — "restarts were done using the same set
    of blades on which the checkpoints were performed".

    ``n_checkpoints`` > 1 takes that many closely spaced snapshots before
    the kill; with a delta filter this restarts from a multi-epoch chain,
    exercising chain reassembly end to end.
    """
    spec = APPS[app]
    cluster = build_cluster(nodes, seed=seed)
    manager = Manager.deploy(cluster)
    handle = spec.launch_pods(cluster, nodes, scale)
    cell = Fig6Cell(app, nodes)
    expected = spec.work_seconds(nodes, scale)

    def orchestrate():
        yield cluster.engine.sleep(max(expected * at_frac, 0.05))
        if handle.ok(cluster):
            return
        targets = checkpoint_targets(handle, cluster)
        interval = max(expected * (1.0 - at_frac) / (n_checkpoints + 1), 0.02)
        for i in range(n_checkpoints):
            if i:
                yield cluster.engine.sleep(interval)
            ckpt = yield from manager.checkpoint_task(targets, filters=filters)
            if not ckpt.ok:
                raise RuntimeError(f"fig6b checkpoint failed: {ckpt.errors}")
            cell.checkpoint_times.append(ckpt.duration)
            cell.image_sizes.append(ckpt.max_image_bytes())
        # the pods die; recovery restarts them from the images in place
        for _node_name, pod_id, _uri in targets:
            cluster.find_pod(pod_id).destroy()
        restart = yield from manager.restart_task(targets)
        if not restart.ok:
            raise RuntimeError(f"fig6b restart failed: {restart.errors}")
        cell.restart_time = restart.duration
        cell.network_restart_time = restart.max_stat("t_network")

    cluster.engine.spawn(orchestrate(), name="fig6b")
    cluster.engine.run(until=until)
    if not handle.ok(cluster) or not spec.verify(cluster, handle):
        raise RuntimeError(f"{app} on {nodes} nodes failed across restart")
    return cell


# ---------------------------------------------------------------------------
# live migration: downtime vs pre-copy rounds
# ---------------------------------------------------------------------------


@program("harness.writer")
def _writer(b, *, ballast, dirty_rate, chunk_cycles, chunks):
    """Compute loop that keeps rewriting its ballast in place — the
    writable-working-set workload of the live-migration study."""
    if dirty_rate:
        b.set_dirty_rate(dirty_rate)
    b.alloc(imm(ballast), "heap")
    with b.for_range("i", imm(0), imm(chunks)):
        b.compute(imm(chunk_cycles))
    b.halt(imm(0))


def run_migration_cell(precopy_rounds: int, *, ballast: int = 256_000_000,
                       dirty_rate: int = 40_000_000, migrate_at: float = 0.5,
                       work_seconds: float = 30.0, seed: int = 0,
                       until: float = 300.0,
                       dirty_threshold: int = DEFAULT_DIRTY_THRESHOLD) -> MigrationCell:
    """Migrate a writing pod under a given pre-copy round cap.

    A single pod holding ``ballast`` bytes rewrites ``dirty_rate`` bytes
    per CPU-second; at ``migrate_at`` it is moved blade0 → blade1 with up
    to ``precopy_rounds`` pre-copy rounds (0 = plain stop-and-copy).  The
    run must finish on the destination blade for the cell to count.
    """
    cluster = Cluster.build(2, seed=seed)
    manager = Manager.deploy(cluster)
    src, dst = cluster.node(0), cluster.node(1)
    cluster.create_pod(src, "mig-w")
    chunk = 30_000_000  # ~10 ms slices: frequent preemption points
    src.kernel.spawn(
        build_program("harness.writer", ballast=ballast, dirty_rate=dirty_rate,
                      chunk_cycles=chunk,
                      chunks=max(1, int(work_seconds * DEFAULT_HZ) // chunk)),
        pod_id="mig-w")
    out: Dict[str, Any] = {}

    def orchestrate():
        yield cluster.engine.sleep(migrate_at)
        out["mig"] = yield from migrate_task(
            manager, [(src.name, "mig-w", dst.name)],
            live=precopy_rounds > 0, precopy_rounds=max(1, precopy_rounds),
            dirty_threshold=dirty_threshold)

    cluster.engine.spawn(orchestrate(), name="mig-cell")
    cluster.engine.run(until=until)
    mig = out.get("mig")
    if mig is None or not mig.ok:
        errs = [] if mig is None else mig.checkpoint.errors + mig.restart.errors
        raise RuntimeError(f"migration (cap {precopy_rounds}) failed: {errs}")
    done = [p for p in dst.kernel.procs.values()
            if p.program.name == "harness.writer" and p.state == DEAD
            and p.exit_code == 0]
    if not done:
        raise RuntimeError(
            f"writer did not finish on {dst.name} (cap {precopy_rounds})")
    return MigrationCell(precopy_rounds, mig.downtime, mig.total_time,
                         mig.precopy_bytes, mig.bailout, list(mig.rounds))


# ---------------------------------------------------------------------------
# incremental generations: dirty-delta + zero-stall checkpoint study
# ---------------------------------------------------------------------------


#: pipeline configuration per mode of the generations study.
INC_MODES: Dict[str, Optional[List[Dict[str, Any]]]] = {
    "full": None,
    "heuristic": [{"name": "delta", "measured": False}],
    "delta": [{"name": "delta"}],
    "delta-async": [{"name": "delta"}],
}


def run_inc_cell(mode: str, *, n_pods: int = 2, ballast: int = 64_000_000,
                 dirty_rate: int = 8_000_000, n_checkpoints: int = 4,
                 interval: float = 0.5, seed: int = 0,
                 until: float = 300.0) -> IncCell:
    """Checkpoint a writing workload every epoch under one pipeline mode.

    ``n_pods`` writer pods (``ballast`` bytes each, rewriting
    ``dirty_rate`` bytes per CPU-second — the live-migration study's
    workload) are snapshotted ``n_checkpoints`` times, ``interval``
    apart.  Modes (:data:`INC_MODES`): ``full`` re-images everything
    every epoch; ``heuristic`` runs the delta filter on its modeled
    dirty fraction; ``delta`` charges the *measured* per-segment dirty
    bytes; ``delta-async`` adds the zero-stall path (pods resume after
    capture, encode/stream overlap application time).

    Besides per-epoch sizes and windows the cell audits chain
    integrity: every committed delta chain must reassemble
    byte-identical to the full base the Agent's pipeline state holds
    (``cell.chain_ok``).
    """
    filters = INC_MODES[mode]
    async_ckpt = mode == "delta-async"
    cluster = Cluster.build(2, seed=seed)
    manager = Manager.deploy(cluster)
    host = cluster.node(1)
    chunk = 30_000_000  # ~10 ms slices: frequent preemption points
    work_seconds = interval * (n_checkpoints + 2)
    targets = []
    for i in range(n_pods):
        pod_id = f"inc-w{i}"
        cluster.create_pod(host, pod_id)
        host.kernel.spawn(
            build_program("harness.writer", ballast=ballast,
                          dirty_rate=dirty_rate, chunk_cycles=chunk,
                          chunks=max(1, int(work_seconds * DEFAULT_HZ) // chunk)),
            pod_id=pod_id)
        targets.append((host.name, pod_id, "mem"))
    cell = IncCell(mode)

    def ticker():
        for _ in range(n_checkpoints):
            yield cluster.engine.sleep(interval)
            result: OpResult = yield from manager.checkpoint_task(
                targets, filters=filters, async_ckpt=async_ckpt)
            if not result.ok:
                raise RuntimeError(f"inc checkpoint ({mode}) failed: "
                                   f"{result.errors}")
            cell.ckpt_times.append(result.duration)
            cell.image_sizes.append(result.max_image_bytes())
            cell.raw_image_sizes.append(int(result.max_stat("raw_image_bytes")))
            cell.suspend_windows.append(max(
                stats.get("t_suspend_window", stats.get("t_local", 0.0))
                for stats in result.pods.values()))

    cluster.engine.spawn(ticker(), name="inc-ticker")
    cluster.engine.run(until=until)
    if len(cell.image_sizes) < n_checkpoints:
        raise RuntimeError(f"inc cell ({mode}) took "
                           f"{len(cell.image_sizes)}/{n_checkpoints} snapshots")
    if filters is not None:
        from .core.pipeline import ImagePipeline
        agent = manager.agents[host.name]
        for _node, pod_id, _uri in targets:
            chain = agent.pipeline_state.chains.get(pod_id)
            base = agent.pipeline_state.bases.get(pod_id)
            if not chain or base is None:
                cell.chain_ok = False
                continue
            reassembled = ImagePipeline.reassemble(list(chain))
            cell.chain_ok = cell.chain_ok and reassembled.raw == base
    return cell


# ---------------------------------------------------------------------------
# content-addressed store: dedup vs the full-image SAN path
# ---------------------------------------------------------------------------


#: (target URI scheme, pipeline filters) per mode of the CAS study.
CAS_MODES: Dict[str, Tuple[str, Optional[List[Dict[str, Any]]]]] = {
    "file-full": ("file", None),
    "cas-full": ("cas", None),
    "cas-delta": ("cas", [{"name": "delta"}]),
}


def run_cas_cell(mode: str, *, n_pods: int = 2, ballast: int = 64_000_000,
                 dirty_rate: int = 4_000_000, n_checkpoints: int = 8,
                 interval: float = 0.5, seed: int = 0,
                 until: float = 300.0) -> CasCell:
    """Checkpoint the generational writer workload to the SAN under one
    sink configuration (:data:`CAS_MODES`).

    ``file-full`` is the paper's baseline: every epoch flushes the whole
    container.  ``cas-full`` sends the same full images through the
    content-addressed sink — the chunk index dedups the clean blocks, so
    only the dirtied bytes reach the SAN after epoch 0.  ``cas-delta``
    adds the dirty-delta filter: a delta epoch appends one entry and the
    prior entries' chunk ids are carried without re-hashing.

    Besides the per-epoch byte accounting, the cell audits restores: the
    chain loaded back from the SAN must be byte-identical to the Agent's
    in-memory ground truth (and, under filters, reassemble to the full
    base) — ``cell.restore_ok``.
    """
    scheme, filters = CAS_MODES[mode]
    cluster = Cluster.build(2, seed=seed)
    manager = Manager.deploy(cluster)
    host = cluster.node(1)
    chunk = 30_000_000  # ~10 ms slices: frequent preemption points
    work_seconds = interval * (n_checkpoints + 2)
    targets = []
    for i in range(n_pods):
        pod_id = f"cas-w{i}"
        cluster.create_pod(host, pod_id)
        host.kernel.spawn(
            build_program("harness.writer", ballast=ballast,
                          dirty_rate=dirty_rate, chunk_cycles=chunk,
                          chunks=max(1, int(work_seconds * DEFAULT_HZ) // chunk)),
            pod_id=pod_id)
        targets.append((host.name, pod_id, f"{scheme}:/san/cas-cell-{pod_id}.img"))
    cell = CasCell(mode)
    from .storage.cas import CasStore
    store = CasStore.on(cluster.san)

    def ticker():
        for _ in range(n_checkpoints):
            yield cluster.engine.sleep(interval)
            stored_before = store.stored_bytes
            result: OpResult = yield from manager.checkpoint_task(
                targets, filters=filters)
            if not result.ok:
                raise RuntimeError(f"cas checkpoint ({mode}) failed: "
                                   f"{result.errors}")
            logical = sum(int(stats.get("image_bytes", 0))
                          for stats in result.pods.values())
            cell.logical_sizes.append(logical)
            cell.stored_sizes.append(store.stored_bytes - stored_before
                                     if scheme == "cas" else logical)
            cell.ckpt_times.append(result.duration)

    cluster.engine.spawn(ticker(), name="cas-ticker")
    cluster.engine.run(until=until)
    if len(cell.logical_sizes) < n_checkpoints:
        raise RuntimeError(f"cas cell ({mode}) took "
                           f"{len(cell.logical_sizes)}/{n_checkpoints} snapshots")
    stats = store.stats()
    cell.footprint_bytes = int(stats["footprint_bytes"])
    cell.dup_bytes = int(stats["dup_bytes"])
    cell.carried_bytes = int(stats["carried_bytes"])
    cell.gc_reclaimed_bytes = int(stats["gc_reclaimed_bytes"])
    cell.live_chunks = int(stats["live_chunks"])
    # restore audit: the SAN chain must match the in-memory ground truth
    agent = manager.agents[host.name]
    for _node, pod_id, uri in targets:
        sink = agent._sink_for(uri)
        try:
            loaded = sink.load(pod_id)
        except Exception:
            cell.restore_ok = False
            continue
        truth = agent.mem_sink.load(pod_id)
        same = len(loaded) == len(truth) and all(
            a.data == b.data and a.accounted_bytes == b.accounted_bytes
            and a.netstate_bytes == b.netstate_bytes and a.epoch == b.epoch
            and a.filters == b.filters
            for a, b in zip(loaded, truth))
        cell.restore_ok = cell.restore_ok and same
        if filters is not None:
            from .core.pipeline import ImagePipeline
            base = agent.pipeline_state.bases.get(pod_id)
            reassembled = ImagePipeline.reassemble(loaded)
            cell.restore_ok = (cell.restore_ok and base is not None
                               and reassembled.raw == base)
    if scheme == "cas" and store.audit():
        cell.restore_ok = False
    return cell


def run_timeline_series(n_nodes: int = 24, n_pods: int = 96,
                        n_evacuate: int = 18, seed: int = 0,
                        max_inflight: int = 8,
                        window_s: float = 0.05) -> Dict[str, Any]:
    """Timeline cell: one metered evacuation, exported as windowed series.

    Runs the fleet evacuation with a :class:`~repro.obs.series.SeriesBank`
    attached (window ``window_s`` simulated seconds) and returns
    ``{"columns": <deterministic columnar export>, "result":
    <CampaignResult>}`` (see
    :meth:`~repro.obs.series.SeriesBank.to_columns`).  Feeds
    ``figures --fig timeline``: per-pod downtime percentiles, in-flight
    occupancy, and checkpoint/restore byte rates over the campaign's
    lifetime.
    """
    from .fleet import run_evacuation_demo
    out = run_evacuation_demo(n_nodes=n_nodes, n_pods=n_pods,
                              n_evacuate=n_evacuate, seed=seed,
                              max_inflight=max_inflight,
                              metrics=True, series_window_s=window_s)
    return {"columns": out["metrics"].series.to_columns(),
            "result": out["result"]}
