"""repro — a full reproduction of *Transparent Checkpoint-Restart of
Distributed Applications on Commodity Clusters* (Laadan, Phung, Nieh;
IEEE CLUSTER 2005) on a simulated commodity cluster.

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.vos` — per-node virtual OS with checkpointable process
  images (programs are data; checkpointing needs no app cooperation);
* :mod:`repro.net` — packet-level TCP/UDP/raw-IP stack with the socket
  dispatch-vector the checkpointer interposes on;
* :mod:`repro.pod`, :mod:`repro.cluster`, :mod:`repro.storage` — pods
  (virtual namespaces), blades, the shared SAN;
* :mod:`repro.core` — **ZapC**: the coordinated Manager/Agent
  checkpoint-restart protocol and the transport-protocol-independent
  network-state mechanism;
* :mod:`repro.middleware`, :mod:`repro.apps` — mini-MPI/PVM and the four
  evaluation workloads;
* :mod:`repro.baselines`, :mod:`repro.harness` — comparison systems and
  the figure-regeneration harness.

Quick start::

    from repro import Cluster, Manager
    from repro.middleware import launch_spmd, checkpoint_targets
    from repro.apps import cpi

    cluster = Cluster.build(4, seed=7)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(cluster, "apps.cpi", 4,
                         lambda r, vips: cpi.params_of(r, vips, nprocs=4),
                         name="cpi")
    cluster.engine.schedule(0.3, lambda: manager.checkpoint(
        checkpoint_targets(handle, cluster)))
    cluster.engine.run()
"""

from .cluster import Cluster, Node, NodeSpec
from .core import Manager, MigrationResult, OpResult, migrate
from .errors import CheckpointError, ReproError, RestartError
from .pod import Pod, VNet
from .sim import Engine

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "Cluster",
    "Engine",
    "Manager",
    "MigrationResult",
    "Node",
    "NodeSpec",
    "OpResult",
    "Pod",
    "ReproError",
    "RestartError",
    "VNet",
    "migrate",
    "__version__",
]
