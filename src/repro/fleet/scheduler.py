"""Pure wave-scheduling primitives for fleet campaigns.

Everything here is deliberately free of the simulator: wave planning,
load-based target selection, and the bounded-concurrency gate's
accounting are plain functions over plain data, which is what makes
them property-testable (tests/fleet/test_scheduler_properties.py sweeps
arbitrary layouts with hypothesis).  The :class:`Campaign` engine in
:mod:`repro.fleet.campaign` composes these with the Manager's op
primitives; nothing in this module talks to a cluster.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..sim.tasks import Future

#: one campaign unit: (node, pod, arg) — the arg is a checkpoint URI or
#: a migration destination ("" = pick by load at launch time).
Unit = Tuple[str, str, str]


def plan_waves(units: Sequence[Unit], wave_size: int) -> List[List[Unit]]:
    """Partition ``units`` into waves of at most ``wave_size``, in order.

    The partition is journaled verbatim at campaign begin, so it must be
    a pure function of its inputs: no reordering, no balancing — chunk
    ``units`` as given.  ``wave_size`` < 1 degenerates to one wave.
    """
    if wave_size < 1:
        return [list(units)] if units else []
    return [list(units[i:i + wave_size])
            for i in range(0, len(units), wave_size)]


def pick_target(load: Dict[str, int], exclude: Iterable[str] = (),
                order: Optional[Dict[str, int]] = None) -> Optional[str]:
    """Least-loaded eligible node, deterministically tie-broken.

    ``load`` maps node name to its effective pod count (live pods plus
    in-flight reservations); ``exclude`` removes evacuating or crashed
    nodes from the draw.  Ties break by ``order`` (node index) when
    given, else by name — never by dict iteration order, which is what
    keeps same-seed campaigns byte-identical.
    """
    banned: Set[str] = set(exclude)
    eligible = [n for n in load if n not in banned]
    if not eligible:
        return None
    if order is not None:
        return min(eligible, key=lambda n: (load[n], order.get(n, 0), n))
    return min(eligible, key=lambda n: (load[n], n))


def plan_placements(units: Sequence[Unit], load: Dict[str, int],
                    exclude: Iterable[str] = (),
                    order: Optional[Dict[str, int]] = None,
                    ) -> Dict[str, Optional[str]]:
    """Resolve every unit's destination up front, reserving as it goes.

    Units whose arg already names a destination keep it; units with an
    empty arg draw the least-loaded eligible node, and each draw bumps
    that node's load so a burst of placements spreads instead of piling
    onto one blade.  Pods that cannot be placed map to ``None``.
    """
    working = dict(load)
    out: Dict[str, Optional[str]] = {}
    for _node, pod, arg in units:
        if arg:
            dest: Optional[str] = arg
        else:
            dest = pick_target(working, exclude=exclude, order=order)
        if dest is not None:
            working[dest] = working.get(dest, 0) + 1
        out[pod] = dest
    return out


class InflightGate:
    """Counting gate bounding concurrent in-flight units.

    ``yield from gate.acquire()`` parks the caller on a FIFO of futures
    until a slot frees; :meth:`release` wakes exactly one waiter.  FIFO
    hand-off keeps the launch order a pure function of completion order,
    which the chaos determinism oracle depends on.
    """

    def __init__(self, limit: int) -> None:
        self.limit = max(1, int(limit))
        self.active = 0
        #: high-water mark of concurrently held slots, for audits.
        self.peak = 0
        self._waiters: deque = deque()

    def acquire(self):
        while self.active >= self.limit:
            fut = Future("gate-wait")
            self._waiters.append(fut)
            yield fut
        self.active += 1
        self.peak = max(self.peak, self.active)

    def release(self) -> None:
        self.active -= 1
        if self._waiters:
            self._waiters.popleft().set_result(None)
