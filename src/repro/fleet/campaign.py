"""The fleet campaign engine: bounded-concurrency rolling waves.

A :class:`Campaign` runs one Manager op per pod — a single-pod
coordinated checkpoint, or a single-move live migration — across many
pods, in waves.  The runbook knobs live in :class:`FleetPolicy`:

* ``max_inflight`` bounds concurrent in-flight units (a counting gate,
  :class:`~repro.fleet.scheduler.InflightGate`);
* ``wave_size``/``wave_barrier`` partition the units and optionally
  synchronize between waves;
* ``failure_threshold`` halts the whole campaign once the failed
  fraction *exceeds* it (a halted campaign stops launching units but
  lets in-flight ones finish);
* ``retries``/``retry_backoff`` re-drive a failed unit;
* ``downtime_budget`` flags pods whose outage exceeded the budget
  (``budget_as_failure`` makes a trip count toward the threshold).

Campaign progress is journaled to the op ledger as the ``campaign``
record family (see :mod:`repro.storage.ledger`): the full plan at
begin, every wave start, every unit outcome, every wave completion, and
a terminal record.  Because completed pods are durable in the log, a
replica Manager that claims an orphaned campaign
(:func:`resume_campaigns_task`) finishes the half-done wave without
re-checkpointing pods that already committed — the DMTCP-style
"coordinator state lives outside the coordinator" discipline applied to
fleet orchestration.

Every campaign/wave emits obs spans keyed by campaign id, and the wave
loop crosses ``fleet.*`` trace points
(:data:`repro.cluster.faults.FLEET_PHASES`), so seeded fault plans can
fire mid-wave and the chaos battery can replay the exact schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import percentile
from ..sim.tasks import Future
from .scheduler import InflightGate, Unit, pick_target, plan_waves

#: default fraction of failed units that halts a campaign.
DEFAULT_FAILURE_THRESHOLD = 0.25


@dataclass
class FleetPolicy:
    """Runbook knobs for one campaign (journaled at campaign begin)."""

    max_inflight: int = 8
    #: units per wave; None = one wave per ``max_inflight`` units.
    wave_size: Optional[int] = None
    #: wait for a wave to fully finish before starting the next.
    wave_barrier: bool = True
    #: halt once failed/total strictly exceeds this fraction.
    failure_threshold: float = DEFAULT_FAILURE_THRESHOLD
    #: re-drives per unit after its first failed attempt.
    retries: int = 1
    retry_backoff: float = 0.5
    #: per-pod outage budget in seconds (None = unbudgeted).
    downtime_budget: Optional[float] = None
    #: a budget trip counts as a failure for the threshold.
    budget_as_failure: bool = False
    #: live pre-copy for migrations (stop-and-copy when False).
    live: bool = True
    precopy_rounds: int = 2
    dirty_threshold: int = 65536
    #: per-unit op deadline in seconds.
    deadline: float = 60.0
    #: image-pipeline filter chain for checkpoint units (e.g.
    #: ``[{"name": "delta"}]`` for dirty-delta incremental waves).
    filters: Optional[List[Dict[str, Any]]] = None
    #: zero-stall checkpoints: pods resume after the capture window and
    #: the encode/stream overlaps application time.
    async_ckpt: bool = False
    #: checkpoint units target the content-addressed store (``cas:``
    #: URIs): identical chunks dedup across the whole fleet.
    cas: bool = False
    #: campaign ledger lease; None = the Manager default.
    lease_s: Optional[float] = None

    def effective_wave_size(self) -> int:
        return self.wave_size if self.wave_size else max(1, self.max_inflight)

    def to_fields(self) -> Dict[str, Any]:
        """The journaled form (plain JSON scalars only)."""
        fields_ = {
            "max_inflight": self.max_inflight,
            "wave_size": self.effective_wave_size(),
            "wave_barrier": self.wave_barrier,
            "failure_threshold": self.failure_threshold,
            "retries": self.retries,
            "retry_backoff": self.retry_backoff,
            "downtime_budget": self.downtime_budget,
            "budget_as_failure": self.budget_as_failure,
            "live": self.live,
            "precopy_rounds": self.precopy_rounds,
            "dirty_threshold": self.dirty_threshold,
            "deadline": self.deadline,
        }
        # only journaled when set: default campaigns keep the exact
        # record bytes (and thus schedules) they had before these knobs
        if self.filters is not None:
            fields_["filters"] = self.filters
        if self.async_ckpt:
            fields_["async_ckpt"] = True
        if self.cas:
            fields_["cas"] = True
        return fields_

    @classmethod
    def from_fields(cls, fields_: Dict[str, Any]) -> "FleetPolicy":
        known = {k: v for k, v in fields_.items()
                 if k in cls.__dataclass_fields__}
        return cls(**known)


@dataclass
class PodOutcome:
    """Final state of one unit."""

    pod: str
    node: str
    wave: int
    status: str                      # ok | failed | skipped
    dest: Optional[str] = None       # migration destination, if any
    op_id: int = 0
    attempts: int = 0
    downtime: float = 0.0
    error: Optional[str] = None
    #: True when a resumed campaign found this pod already durable-ok.
    resumed: bool = False
    #: True when a resumed campaign found the move already committed at
    #: the op level (the dead Manager's unit record never landed) and
    #: adopted it instead of re-driving the stale source.
    adopted: bool = False


@dataclass
class WaveSummary:
    """One wave's aggregate, for reports and figures."""

    index: int
    pods: int
    ok: int = 0
    failed: int = 0
    skipped: int = 0
    t_start: float = 0.0
    t_end: float = 0.0
    max_downtime: float = 0.0
    budget_trips: int = 0


@dataclass
class CampaignResult:
    """Everything a caller (or auditor) needs from one campaign run."""

    cid: int
    kind: str
    status: str                      # ok | partial | halted | excluded | crashed
    t_start: float
    t_end: float
    pods: Dict[str, PodOutcome] = field(default_factory=dict)
    waves: List[WaveSummary] = field(default_factory=list)
    #: per-attempt audit log: (pod, wave, attempt, t_start, t_end, status).
    events: List[Tuple[str, int, int, float, float, str]] = field(
        default_factory=list)
    threshold_tripped: bool = False
    budget_trips: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: the ledger phase this run resumed from (None for a fresh run).
    resumed_from: Optional[str] = None
    #: gate high-water mark: concurrently in-flight units.
    peak_inflight: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def downtimes(self) -> List[float]:
        """Per-pod outage of every unit that completed ok this run."""
        return sorted(o.downtime for o in self.pods.values()
                      if o.status == "ok" and not o.resumed
                      and not o.adopted)

    def downtime_percentile(self, q: float) -> float:
        return percentile(self.downtimes(), q)

    def counts(self) -> Dict[str, int]:
        out = {"ok": 0, "failed": 0, "skipped": 0}
        for o in self.pods.values():
            out[o.status] = out.get(o.status, 0) + 1
        return out


class Campaign:
    """One rolling fleet operation over many pods (see module doc)."""

    def __init__(self, manager, kind: str, units: Sequence[Unit],
                 policy: Optional[FleetPolicy] = None,
                 cid: Optional[int] = None,
                 exclude: Sequence[str] = (),
                 timeouts=None,
                 resumed_from: Optional[str] = None) -> None:
        self.manager = manager
        self.cluster = manager.cluster
        self.ledger = manager.ledger
        self.kind = kind                       # checkpoint | drain | evacuate
        self.units: List[Unit] = [tuple(u) for u in units]
        self.policy = policy if policy is not None else FleetPolicy()
        self.cid = cid if cid is not None else self.ledger.next_campaign_id()
        #: nodes units may never land on (the evacuated/drained set).
        self.exclude: Tuple[str, ...] = tuple(exclude)
        self.timeouts = timeouts
        self.resumed_from = resumed_from
        from ..core.manager import DEFAULT_LEASE_S
        self.lease_s = (DEFAULT_LEASE_S if self.policy.lease_s is None
                        else float(self.policy.lease_s))
        self.waves: List[List[Unit]] = plan_waves(
            self.units, self.policy.effective_wave_size())
        #: pods already durable-ok before this run (filled on resume).
        self.completed: Dict[str, Dict[str, Any]] = {}
        self._gate = InflightGate(self.policy.max_inflight)
        self._stop: Optional[str] = None
        self._failures = 0
        self._reserved: Dict[str, int] = {}
        self._order = {n.name: n.index for n in self.cluster.nodes}
        from ..obs.tracer import NULL_SPAN
        #: campaign + wave spans, kept so a mid-wave halt can register
        #: its terminal status on spans it cannot end (see
        #: :meth:`_check_threshold` and Span.finalize_with).
        self._span = NULL_SPAN
        self._wave_spans: List[Any] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_ledger(cls, manager, lc) -> "Campaign":
        """Rebuild a campaign from its folded ledger state (resume path).

        The journaled wave partition is authoritative; pods whose latest
        unit record says ``ok`` are pre-marked complete and never driven
        again.
        """
        policy = FleetPolicy.from_fields(lc.policy)
        exclude = tuple(lc.policy.get("exclude", ()))
        camp = cls(manager, lc.kind, lc.units, policy, cid=lc.cid,
                   exclude=exclude, resumed_from=lc.phase)
        by_pod = {pod: unit for unit in lc.units for pod in [unit[1]]}
        camp.waves = [[by_pod[p] for p in wave if p in by_pod]
                      for wave in lc.waves]
        camp.completed = {pod: rec for pod, rec in lc.pods.items()
                          if rec.get("status") == "ok"}
        camp._failures = sum(1 for rec in lc.pods.values()
                             if rec.get("status") == "failed")
        return camp

    # ------------------------------------------------------------------
    def _append(self, phase: str, **fields_: Any) -> None:
        now = self.cluster.engine.now
        rec = dict({"rec": "campaign", "cid": self.cid,
                    "phase": phase, "owner": self.manager.name,
                    "lease": now + self.lease_s, "t": now}, **fields_)
        # span context rides the record: the campaign span id joins this
        # durable fact to the incarnation's trace dump for the assembler
        sid = getattr(self._span, "span_id", None)
        if sid is not None:
            rec.setdefault("span", sid)
        self.ledger.append(rec)

    def _check_threshold(self) -> None:
        total = max(1, len(self.units))
        if self._stop is None and \
                self._failures / total > self.policy.failure_threshold:
            self._stop = "threshold"
            self.cluster.count("fleet.threshold_trips")
            # the campaign and any open wave spans may never be ended by
            # their (about to be abandoned) tasks: register the terminal
            # status close_open() must apply instead of "unclosed"
            self._span.finalize_with("halted", stop="threshold")
            for wspan in self._wave_spans:
                if getattr(wspan, "open", False):
                    wspan.finalize_with("halted")

    def _dest_for(self, pod: str) -> Optional[str]:
        """Least-loaded eligible destination, reservation-aware.

        Eligible: not crashed, not in the campaign's exclusion set, not
        node-claimed by a foreign op (a concurrent recover's claim makes
        its nodes ineligible rather than racing them).
        """
        label = f"campaign:{self.cid}"
        load: Dict[str, int] = {}
        for node in self.cluster.nodes:
            if node.crashed or node.name in self.exclude:
                continue
            holder = self.manager.node_claim_holder(node.name)
            if holder is not None and holder != label:
                continue
            load[node.name] = (len(node.kernel.pods)
                               + self._reserved.get(node.name, 0))
        return pick_target(load, order=self._order)

    # ------------------------------------------------------------------
    def run(self):
        """Spawn the campaign; the Task resolves to a CampaignResult."""
        return self.manager._spawn(self.run_task(),
                                   name=f"fleet-campaign-c{self.cid}")

    def run_task(self):
        """Generator driving the whole campaign (run as a host task)."""
        engine = self.cluster.engine
        mgr = self.manager
        result = CampaignResult(cid=self.cid, kind=self.kind, status="ok",
                                t_start=engine.now, t_end=engine.now,
                                resumed_from=self.resumed_from)
        for pod, rec in sorted(self.completed.items()):
            unit = next((u for u in self.units if u[1] == pod), None)
            result.pods[pod] = PodOutcome(
                pod=pod, node=unit[0] if unit else "?",
                wave=int(rec.get("wave", -1)), status="ok",
                op_id=int(rec.get("op", 0)),
                downtime=float(rec.get("downtime", 0.0)), resumed=True)
        if mgr.crashed:
            result.status = "crashed"
            return result

        # drains and evacuations own their source nodes for the whole
        # campaign: a concurrent recover of the same node is refused
        # instead of racing the migrations pod by pod
        label = f"campaign:{self.cid}"
        claimed_nodes: List[str] = []
        if self.exclude:
            if not mgr.claim_nodes(self.exclude, label):
                result.status = "excluded"
                holders = {n: mgr.node_claim_holder(n) for n in self.exclude
                           if mgr.node_claim_holder(n) not in (None, label)}
                result.errors.append(
                    f"node claim refused: {sorted(holders.items())}")
                result.t_end = engine.now
                return result
            claimed_nodes = list(self.exclude)

        span = self.cluster.span(f"fleet.{self.kind}", category="op",
                                 key=("campaign", self.cid),
                                 campaign=self.cid, units=len(self.units),
                                 waves=len(self.waves),
                                 max_inflight=self.policy.max_inflight)
        self._span = span
        if self.resumed_from is None:
            self._append("begin", kind=self.kind,
                         units=[list(u) for u in self.units],
                         waves=[[u[1] for u in wave] for wave in self.waves],
                         policy=dict(self.policy.to_fields(),
                                     exclude=list(self.exclude)))

        pending_total = {"n": 0}
        all_done = Future(f"campaign-c{self.cid}-done")
        for w, wave in enumerate(self.waves):
            pending = [u for u in wave if u[1] not in result.pods]
            if not pending:
                continue
            if mgr.crashed or self._stop is not None:
                break
            summary = WaveSummary(index=w, pods=len(pending),
                                  t_start=engine.now)
            result.waves.append(summary)
            self._append("wave", wave=w, pods=len(pending))
            yield from self.cluster.trace("fleet.wave_start",
                                          pod=f"c{self.cid}w{w}")
            wspan = self.cluster.span("fleet.wave", parent=span,
                                      campaign=self.cid, wave=w,
                                      pods=len(pending))
            self._wave_spans.append(wspan)
            wave_state = {"remaining": len(pending), "summary": summary,
                          "span": wspan, "barrier": Future(f"wave-{w}")}
            pending_total["n"] += len(pending)
            for unit in pending:
                mgr._spawn(
                    self._unit_task(unit, w, wave_state, pending_total,
                                    all_done, result),
                    name=f"fleet-c{self.cid}-{unit[1]}")
            if self.policy.wave_barrier:
                yield wave_state["barrier"]
        if not self.policy.wave_barrier and pending_total["n"] > 0:
            yield all_done

        # units never launched are recorded as skipped
        for wave_idx, wave in enumerate(self.waves):
            for unit in wave:
                if unit[1] not in result.pods:
                    result.pods[unit[1]] = PodOutcome(
                        pod=unit[1], node=unit[0], wave=wave_idx,
                        status="skipped", error=self._stop)

        if mgr.crashed:
            result.status = "crashed"
            result.t_end = engine.now
            for wspan in self._wave_spans:
                if getattr(wspan, "open", False):
                    wspan.end(status="crashed")
            span.end(status=result.status)
            return result
        counts = result.counts()
        result.threshold_tripped = self._stop == "threshold"
        if result.threshold_tripped:
            result.status = "halted"
            self._append("halted", failed=counts["failed"],
                         skipped=counts["skipped"], ok=counts["ok"])
        else:
            result.status = "ok" if counts["failed"] == 0 else "partial"
            self._append("commit", ok=counts["ok"], failed=counts["failed"])
        result.t_end = engine.now
        result.peak_inflight = self._gate.peak
        mgr.release_nodes(claimed_nodes, label)
        span.end(status=result.status, ok=counts["ok"],
                 failed=counts["failed"], duration_s=result.duration)
        self.cluster.observe("fleet.campaign_seconds", result.duration)
        return result

    # ------------------------------------------------------------------
    def _unit_task(self, unit: Unit, wave: int, wave_state: Dict[str, Any],
                   pending_total: Dict[str, int], all_done: Future,
                   result: CampaignResult):
        node, pod, arg = unit
        policy = self.policy
        engine = self.cluster.engine
        yield from self._gate.acquire()
        self.cluster.gauge_set("fleet.inflight", self._gate.active)
        outcome = PodOutcome(pod=pod, node=node, wave=wave, status="skipped")
        if self._stop is None and not self.manager.crashed:
            yield from self.cluster.trace("fleet.pod_start", node=node,
                                          pod=pod)
            for attempt in range(1, policy.retries + 2):
                if self._stop is not None and attempt > 1:
                    break           # a tripped threshold stops re-drives
                outcome.attempts = attempt
                t0 = engine.now
                ok, downtime, op_id, err = yield from self._run_unit(
                    unit, outcome)
                result.events.append((pod, wave, attempt, t0, engine.now,
                                      "ok" if ok else "failed"))
                outcome.status = "ok" if ok else "failed"
                outcome.op_id = op_id
                outcome.downtime = downtime
                outcome.error = err
                if ok or err == "source node crashed":
                    break
                if attempt <= policy.retries:
                    self.cluster.count("fleet.retries")
                    yield engine.sleep(policy.retry_backoff)
            # bookkeeping must land before the gate slot frees: the next
            # unit's launch decision sees this unit's failure
            self._record_outcome(outcome, wave_state["summary"], result)
            self._gate.release()
            self.cluster.gauge_set("fleet.inflight", self._gate.active)
            yield from self.cluster.trace("fleet.pod_done", node=node,
                                          pod=pod)
        else:
            outcome.error = self._stop or "manager crashed"
            result.pods[pod] = outcome
            wave_state["summary"].skipped += 1
            self._gate.release()
            self.cluster.gauge_set("fleet.inflight", self._gate.active)
        wave_state["remaining"] -= 1
        pending_total["n"] -= 1
        if wave_state["remaining"] == 0:
            summary = wave_state["summary"]
            summary.t_end = engine.now
            self._append("wave-done", wave=summary.index, ok=summary.ok,
                         failed=summary.failed)
            wave_state["span"].end(ok=summary.ok, failed=summary.failed,
                                   max_downtime=summary.max_downtime)
            yield from self.cluster.trace("fleet.wave_done",
                                          pod=f"c{self.cid}w{summary.index}")
            wave_state["barrier"].set_result(None)
        if pending_total["n"] == 0 and not all_done.done:
            all_done.set_result(None)

    def _record_outcome(self, outcome: PodOutcome, summary: WaveSummary,
                        result: CampaignResult) -> None:
        policy = self.policy
        result.pods[outcome.pod] = outcome
        tripped_budget = (policy.downtime_budget is not None
                          and outcome.status == "ok"
                          and outcome.downtime > policy.downtime_budget)
        if tripped_budget:
            result.budget_trips.append(outcome.pod)
            summary.budget_trips += 1
            self.cluster.count("fleet.budget_trips")
        if outcome.status == "ok":
            summary.ok += 1
            summary.max_downtime = max(summary.max_downtime,
                                       outcome.downtime)
            self.cluster.observe("fleet.pod_downtime", outcome.downtime)
        else:
            summary.failed += 1
        if outcome.status == "failed" or \
                (tripped_budget and policy.budget_as_failure):
            self._failures += 1
            self._check_threshold()
        extra = {"adopted": True} if outcome.adopted else {}
        self._append("pod", wave=outcome.wave, pod=outcome.pod,
                     status=outcome.status, op=outcome.op_id,
                     downtime=round(outcome.downtime, 9),
                     attempts=outcome.attempts, **extra)

    def _run_unit(self, unit: Unit, outcome: PodOutcome):
        """One attempt of one unit; returns (ok, downtime, op_id, err)."""
        from ..core.streaming import migrate_task
        node, pod, arg = unit
        mgr = self.manager
        src = self.cluster.node_by_name(node)
        if src is None or src.crashed:
            return False, 0.0, 0, "source node crashed"
        if self.kind in ("drain", "evacuate"):
            if self.resumed_from is not None and pod not in src.kernel.pods:
                found = self._adopt_move(pod)
                if found is not None:
                    outcome.dest, op_id = found
                    outcome.adopted = True
                    return True, 0.0, op_id, None
            dest = arg or self._dest_for(pod)
            if dest is None:
                return False, 0.0, 0, "no eligible destination"
            outcome.dest = dest
            self._reserved[dest] = self._reserved.get(dest, 0) + 1
            mig = yield from migrate_task(
                mgr, [(node, pod, dest)], live=self.policy.live,
                precopy_rounds=self.policy.precopy_rounds,
                dirty_threshold=self.policy.dirty_threshold,
                deadline=self.policy.deadline, timeouts=self.timeouts)
            self._reserved[dest] = max(0, self._reserved.get(dest, 1) - 1)
            err = None
            if not mig.ok:
                errs = mig.checkpoint.errors + mig.restart.errors
                err = errs[0] if errs else (mig.checkpoint.status
                                            if not mig.checkpoint.ok
                                            else mig.restart.status)
            return (mig.ok, mig.downtime if mig.ok else 0.0,
                    mig.checkpoint.op_id, err)
        # flat SAN namespace: the shared vfs has no mkdir, so fleet
        # images live beside the per-op ones as /san/fleet-c<cid>-<pod>
        scheme = "cas" if self.policy.cas else "file"
        uri = arg or f"{scheme}:/san/fleet-c{self.cid}-{pod}.img"
        # "snapshot" context: the pod resumes in place after commit (any
        # other context is a migration and the agent destroys the pod)
        res = yield from mgr.checkpoint_task(
            [(node, pod, uri)], context="snapshot",
            deadline=self.policy.deadline, timeouts=self.timeouts,
            filters=self.policy.filters, async_ckpt=self.policy.async_ckpt)
        err = res.errors[0] if res.errors else (
            None if res.ok else res.status)
        return res.ok, res.duration if res.ok else 0.0, res.op_id, err

    def _adopt_move(self, pod_id: str):
        """Adoption check for a resumed move whose source lost the pod.

        The dead Manager's migrate op can commit (pod destroyed at the
        source, restarted at the destination) moments before the unit
        record would have landed; re-driving such a unit from the begin
        record's source node can only fail.  If the pod is already
        running on a node off the excluded set, the move's goal is met:
        return ``(host, op_id)`` of the committed op so the unit records
        as ok, else None (a genuinely lost pod stays a failure).
        """
        for host in self.cluster.nodes:
            if host.crashed or host.name in self.exclude:
                continue
            live = host.kernel.pods.get(pod_id)
            if live is not None and not live.suspended:
                op_id = 0
                for oid, op in sorted(self.ledger.replay().items()):
                    if op.phase == "commit" and any(
                            p == pod_id for (_n, p, _u) in op.targets):
                        op_id = oid
                return host.name, op_id
        return None


def resume_campaigns_task(manager, timeouts=None,
                          lease_s: Optional[float] = None,
                          collect: Optional[List[CampaignResult]] = None):
    """Claim and finish every orphaned campaign (generator).

    The campaign-level analogue of
    :meth:`~repro.core.manager.Manager.takeover_task`: scan the ledger
    for non-terminal campaigns with expired leases, claim each, rebuild
    the plan from its begin record, and run it — completed pods are
    skipped, so only the half-done tail of the fleet is driven.  Returns
    ``[(cid, phase_at_claim, status), ...]``; when ``collect`` is given,
    each resumed run's :class:`CampaignResult` is appended to it (the
    chaos auditor uses this to merge attempt logs across the failover).
    """
    from ..core.manager import DEFAULT_LEASE_S
    engine = manager.cluster.engine
    lease = DEFAULT_LEASE_S if lease_s is None else float(lease_s)
    actions: List[Tuple[int, str, str]] = []
    for lc in manager.ledger.orphaned_campaigns(engine.now):
        span = manager.cluster.span("fleet.claim", category="op",
                                    key=("campaign", lc.cid),
                                    campaign=lc.cid, owner=manager.name,
                                    at_phase=lc.phase)
        if not manager.ledger.claim_campaign(lc.cid, manager.name,
                                             engine.now, lease):
            span.end(status="refused")
            actions.append((lc.cid, lc.phase, "refused"))
            continue
        span.end(status="claimed")
        yield from manager.cluster.trace("fleet.resume", pod=f"c{lc.cid}")
        camp = Campaign.from_ledger(manager, lc)
        camp.policy.lease_s = lease
        camp.lease_s = lease
        if timeouts is not None:
            camp.timeouts = timeouts
        res = yield from camp.run_task()
        if collect is not None:
            collect.append(res)
        actions.append((lc.cid, lc.phase, res.status))
    return actions
