"""Fleet orchestration: rolling waves, node drain, cluster evacuation.

ROADMAP item 2: batched rolling checkpoint/migrate operations across
many pods with the runbook controls of a datacenter operation —
bounded concurrency, optional wave barriers, a percentage failure
threshold that halts the campaign, per-pod retries, downtime budgets —
built on the Manager's per-op primitives (coordinated checkpoint, PR 5
live pre-copy migration) and journaled to the PR 6 op ledger so a
replica Manager can resume a half-finished wave after failover.
"""

from .campaign import (
    DEFAULT_FAILURE_THRESHOLD,
    Campaign,
    CampaignResult,
    FleetPolicy,
    PodOutcome,
    WaveSummary,
    resume_campaigns_task,
)
from .drain import (
    checkpoint_fleet_task,
    drain,
    drain_campaign,
    drain_task,
    evacuate,
    evacuate_campaign,
    evacuate_task,
)
from .scenario import (
    FLEET_TIMEOUTS,
    SOFT_FAULT_KINDS,
    build_fleet_world,
    run_cas_fleet_demo,
    run_evacuation_demo,
)
from .scheduler import InflightGate, Unit, pick_target, plan_placements, plan_waves

__all__ = [
    "Campaign",
    "CampaignResult",
    "DEFAULT_FAILURE_THRESHOLD",
    "FLEET_TIMEOUTS",
    "FleetPolicy",
    "InflightGate",
    "PodOutcome",
    "SOFT_FAULT_KINDS",
    "Unit",
    "WaveSummary",
    "build_fleet_world",
    "checkpoint_fleet_task",
    "drain",
    "drain_campaign",
    "drain_task",
    "evacuate",
    "evacuate_campaign",
    "evacuate_task",
    "pick_target",
    "plan_placements",
    "plan_waves",
    "resume_campaigns_task",
    "run_cas_fleet_demo",
    "run_evacuation_demo",
]
