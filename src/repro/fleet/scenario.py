"""Shared fleet scenarios: the idle-pod world and the evacuation demo.

Fleet tests, benchmarks, ``zapc fleet`` and ``figures --fig fleet`` all
drive the same world: a cluster of blades populated with *idle* pods —
a server parked in ``accept()`` with a heap ballast sized per pod.  An
idle pod costs zero events while undisturbed, which is what makes the
100-node / 1000-pod evacuation simulate in seconds; its ballast still
has to move, so migrations pay real transfer time and the per-pod
downtime distribution is non-trivial.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..cluster.builder import Cluster
from ..cluster.faults import FLEET_PHASES, FaultInjector, FaultPlan
from ..core.manager import Manager, PhaseTimeouts
from .campaign import FleetPolicy
from .drain import evacuate_task

#: fault kinds safe for the *deterministic-completion* fleet scenarios
#: (stalls and latency, no crashes: every pod must arrive).
SOFT_FAULT_KINDS = ("hang", "link_delay")


def _register_idle_program() -> None:
    from ..vos import imm, program
    from ..vos.program import _REGISTRY

    if "fleet.idle" in _REGISTRY:
        return

    @program("fleet.idle")
    def _idle(b, *, port=9900, ballast=0):  # noqa: ANN001 - builder DSL
        if ballast:
            b.alloc(imm(ballast), "heap")
        b.syscall("lfd", "socket", imm("tcp"))
        b.syscall(None, "bind", "lfd", imm(("default", port)))
        b.syscall(None, "listen", "lfd", imm(8))
        b.syscall("conn", "accept", "lfd")
        b.halt(imm(0))


def build_fleet_world(n_nodes: int, n_pods: int, seed: int = 0,
                      first_node: int = 1, last_node: Optional[int] = None,
                      ballast: int = 262_144, ballast_step: int = 65_536,
                      port: int = 9900,
                      ) -> Tuple[Cluster, Manager, List[Tuple[str, str]]]:
    """A cluster with ``n_pods`` idle pods round-robined over the blades
    ``first_node..last_node`` (inclusive; default: every blade but 0,
    where the Manager lives).  Pod ``i`` carries a ballast of
    ``ballast + (i % 7) * ballast_step`` bytes, so image sizes — and
    per-pod downtimes — spread deterministically.

    Returns ``(cluster, manager, [(node, pod), ...])``.
    """
    from ..vos import build_program
    _register_idle_program()
    cluster = Cluster.build(n_nodes, seed=seed)
    manager = Manager.deploy(cluster)
    last = (n_nodes - 1) if last_node is None else last_node
    hosts = [cluster.node(i) for i in range(first_node, last + 1)]
    pods: List[Tuple[str, str]] = []
    for i in range(n_pods):
        node = hosts[i % len(hosts)]
        pod_id = f"fp{i:04d}"
        cluster.create_pod(node, pod_id)
        size = ballast + (i % 7) * ballast_step
        node.kernel.spawn(build_program("fleet.idle", port=port,
                                        ballast=size), pod_id=pod_id)
        pods.append((node.name, pod_id))
    return cluster, manager, pods


#: tight per-phase deadlines for fleet scenarios (idle pods suspend
#: instantly; generous defaults would only slow fault detection).
FLEET_TIMEOUTS = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                               flush=20.0, load=5.0, restart_done=15.0,
                               drain=2.0)


def run_cas_fleet_demo(n_nodes: int = 8, n_pods: int = 32, seed: int = 0,
                       max_inflight: int = 8,
                       until: float = 14400.0) -> Dict[str, Any]:
    """Fleet-scale content-addressed checkpointing: snapshot every idle
    pod of the evacuation world into the CAS, then re-run the identical
    world against the plain file sink and compare SAN footprints.

    The idle pods run the same program image and their ballasts repeat
    every seven pods, so most of what each pod would write is bytes some
    other pod already stored — the chunk index stores them once
    fleet-wide.  Besides the footprint comparison the demo audits
    restores: every pod's chain loaded back from the store must be
    byte-identical to its Agent's in-memory ground truth.

    Returns ``{"n_pods", "logical_bytes", "stored_bytes",
    "cross_pod_dup_bytes", "dedup_ratio", "san_file_bytes",
    "restore_ok", "result"}``.
    """
    from ..storage.cas import CasStore
    from .drain import checkpoint_fleet_task

    def _campaign(prefix: str, policy: FleetPolicy):
        cluster, manager, pods = build_fleet_world(n_nodes, n_pods,
                                                   seed=seed)
        state: Dict[str, Any] = {}

        def driver():
            state["result"] = yield from checkpoint_fleet_task(
                manager, prefix, policy=policy, timeouts=FLEET_TIMEOUTS)

        cluster.engine.spawn(driver(), name="cas-fleet-demo")
        cluster.engine.run(until=until)
        return cluster, manager, pods, state.get("result")

    cluster, manager, pods, result = _campaign(
        "cas:/san/fleet", FleetPolicy(max_inflight=max_inflight, cas=True))
    store = CasStore.on(cluster.san)
    restore_ok = result is not None and result.ok
    for node_name, pod_id in pods:
        agent = manager.agents.get(node_name)
        recipe = next((r for path, r in store.recipes.items()
                       if r.get("pod") == pod_id), None)
        if agent is None or recipe is None:
            restore_ok = False
            continue
        sink = agent._sink_for(f"cas:{recipe['path']}")
        try:
            loaded = sink.load(pod_id)
        except Exception:
            restore_ok = False
            continue
        truth = agent.mem_sink.load(pod_id)
        restore_ok = restore_ok and len(loaded) == len(truth) and all(
            a.data == b.data and a.accounted_bytes == b.accounted_bytes
            and a.netstate_bytes == b.netstate_bytes and a.epoch == b.epoch
            for a, b in zip(loaded, truth))
    restore_ok = restore_ok and not store.audit()
    # cross-pod dedup: bytes some *other* pod's published recipe already
    # pinned (payload chunks and shared accounted blocks alike) — each
    # extra referencing pod counts the chunk once.
    owners: Dict[str, set] = {}
    for path, recipe in store.recipes.items():
        for entry in recipe["entries"]:
            for cid in list(entry["payload"]) + list(entry["acct"]):
                owners.setdefault(cid, set()).add(path)
    cross = sum(store.objects[cid].size * (len(paths) - 1)
                for cid, paths in owners.items()
                if len(paths) > 1 and cid in store.objects)
    # baseline: the identical world through the plain file sink — the
    # SAN keeps every pod's full container side by side, so its modeled
    # footprint is the sum of the full image sizes.
    base_cluster, base_mgr, base_pods, base_result = _campaign(
        "file:/san/fleet", FleetPolicy(max_inflight=max_inflight))
    san_file_bytes = 0
    for node_name, pod_id in base_pods:
        agent = base_mgr.agents.get(node_name)
        chain = agent.mem_sink.load(pod_id) if agent is not None else None
        san_file_bytes += sum(img.total_bytes for img in chain or [])
    if base_result is None or not base_result.ok:
        restore_ok = False
    return {"n_pods": len(pods),
            "logical_bytes": store.logical_bytes,
            "stored_bytes": store.stored_bytes,
            "cross_pod_dup_bytes": cross,
            "dedup_ratio": store.dedup_ratio,
            "san_file_bytes": san_file_bytes,
            "restore_ok": restore_ok,
            "result": result}


def run_evacuation_demo(n_nodes: int = 24, n_pods: int = 96,
                        n_evacuate: int = 18, seed: int = 0,
                        max_inflight: int = 8,
                        wave_size: Optional[int] = None,
                        wave_barrier: bool = True,
                        failure_threshold: float = 0.25,
                        retries: int = 1,
                        downtime_budget: Optional[float] = None,
                        n_faults: int = 0,
                        trace_spans: bool = False,
                        metrics: bool = False,
                        series_window_s: Optional[float] = None,
                        until: float = 14400.0) -> Dict[str, Any]:
    """One deterministic evacuation: populate blades ``1..n_evacuate``,
    then evacuate them all onto the spares (and blade 0).

    ``n_faults`` > 0 injects that many seeded soft faults (hangs, link
    delays — never crashes, so completion stays deterministic) at the
    ``fleet.*`` phase boundaries.  ``metrics`` installs a registry with
    a windowed series bank (window ``series_window_s``), so the run
    streams ``fleet.*`` timeseries usable by the timeline figure and the
    SLO auditor.  Returns a dict with the ``CampaignResult``
    (``"result"``), the world, the injector, and the instruments.
    """
    cluster, manager, pods = build_fleet_world(
        n_nodes, n_pods, seed=seed, first_node=1, last_node=n_evacuate)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer
        tracer = SpanTracer(cluster.engine).install(cluster)
    registry = None
    if metrics:
        from ..obs import MetricsRegistry
        registry = MetricsRegistry().install(cluster)
        registry.enable_series(cluster.engine, window_s=series_window_s)
    injector = None
    if n_faults > 0:
        plan = FaultPlan.random(seed, [n.name for n in cluster.nodes],
                                n_faults=n_faults, phases=FLEET_PHASES,
                                kinds=SOFT_FAULT_KINDS)
        injector = FaultInjector(cluster, plan).install()
    policy = FleetPolicy(max_inflight=max_inflight, wave_size=wave_size,
                         wave_barrier=wave_barrier,
                         failure_threshold=failure_threshold,
                         retries=retries, downtime_budget=downtime_budget)
    evac = [f"blade{i}" for i in range(1, n_evacuate + 1)]
    state: Dict[str, Any] = {}

    def driver():
        state["result"] = yield from evacuate_task(
            manager, evac, policy=policy, timeouts=FLEET_TIMEOUTS)

    cluster.engine.spawn(driver(), name="fleet-demo")
    cluster.engine.run(until=until)
    return {"cluster": cluster, "manager": manager, "pods": pods,
            "evacuated": evac, "result": state.get("result"),
            "injector": injector, "tracer": tracer, "metrics": registry}
