"""Node drain and datacenter evacuation, as campaigns.

``drain(node)`` live-migrates every pod off one blade (PR 5 pre-copy,
one single-move migration per pod), with destinations drawn least-
loaded-first from the blades that remain; ``evacuate(nodes)`` composes
the same mechanism across a whole rack or datacenter slice — all the
doomed nodes are excluded from target selection up front, so a pod
never hops from one evacuating blade to another.

Both are thin planners over :class:`~repro.fleet.campaign.Campaign`:
they enumerate the pods (sorted, for determinism), build the unit list
with an empty destination (resolved by load at launch time), and hand
the policy through.  The campaign claims the drained nodes in the
Manager's per-node op exclusion table for its whole lifetime, so a
concurrent ``recover()`` cannot destroy-and-restart the very pods the
drain is migrating (and vice versa).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .campaign import Campaign, CampaignResult, FleetPolicy
from .scheduler import Unit


def _units_for_nodes(cluster, node_names: Sequence[str]) -> List[Unit]:
    units: List[Unit] = []
    for name in node_names:
        node = cluster.node_by_name(name)
        for pod_id in sorted(node.kernel.pods):
            units.append((name, pod_id, ""))
    return units


def drain_campaign(manager, node_name: str,
                   policy: Optional[FleetPolicy] = None,
                   timeouts=None) -> Campaign:
    """Build (but do not run) the drain campaign for one node."""
    units = _units_for_nodes(manager.cluster, [node_name])
    return Campaign(manager, "drain", units, policy=policy,
                    exclude=(node_name,), timeouts=timeouts)


def drain_task(manager, node_name: str,
               policy: Optional[FleetPolicy] = None, timeouts=None):
    """Generator: live-migrate every pod off ``node_name``.

    Returns the :class:`CampaignResult`; an empty node yields an
    immediately-ok empty campaign.  The node is claimed against
    concurrent recovers for the duration.
    """
    camp = drain_campaign(manager, node_name, policy=policy,
                          timeouts=timeouts)
    result = yield from camp.run_task()
    return result


def drain(manager, node_name: str, **kw):
    """Spawn a drain; the Task resolves to a CampaignResult."""
    return manager._spawn(drain_task(manager, node_name, **kw),
                          name=f"fleet-drain-{node_name}")


def evacuate_campaign(manager, node_names: Sequence[str],
                      policy: Optional[FleetPolicy] = None,
                      timeouts=None) -> Campaign:
    """Build (but do not run) the evacuation campaign for many nodes.

    Units are ordered node by node (the order given), pods sorted within
    each node; every named node is excluded from target selection for
    every move.
    """
    units = _units_for_nodes(manager.cluster, node_names)
    return Campaign(manager, "evacuate", units, policy=policy,
                    exclude=tuple(node_names), timeouts=timeouts)


def evacuate_task(manager, node_names: Sequence[str],
                  policy: Optional[FleetPolicy] = None, timeouts=None):
    """Generator: evacuate every pod off every node in ``node_names``."""
    camp = evacuate_campaign(manager, node_names, policy=policy,
                             timeouts=timeouts)
    result = yield from camp.run_task()
    return result


def evacuate(manager, node_names: Sequence[str], **kw):
    """Spawn an evacuation; the Task resolves to a CampaignResult."""
    return manager._spawn(evacuate_task(manager, node_names, **kw),
                          name="fleet-evacuate")


def checkpoint_fleet_task(manager, uri_prefix: str = "file:/san/fleet",
                          policy: Optional[FleetPolicy] = None,
                          timeouts=None, pods: Optional[Sequence[str]] = None):
    """Generator: rolling coordinated checkpoint of every pod (or the
    named subset), one single-pod op per unit, in waves.

    Each pod's image lands at ``<uri_prefix>-c<cid>-<pod>.img`` (a flat
    SAN namespace — the shared vfs has no mkdir).
    """
    cluster = manager.cluster
    cid = manager.ledger.next_campaign_id()
    units: List[Unit] = []
    wanted = set(pods) if pods is not None else None
    for node in cluster.nodes:
        if node.crashed:
            continue
        for pod_id in sorted(node.kernel.pods):
            if wanted is not None and pod_id not in wanted:
                continue
            units.append((node.name, pod_id,
                          f"{uri_prefix}-c{cid}-{pod_id}.img"))
    camp = Campaign(manager, "checkpoint", units, policy=policy, cid=cid,
                    timeouts=timeouts)
    result = yield from camp.run_task()
    return result


__all__ = [
    "CampaignResult",
    "checkpoint_fleet_task",
    "drain",
    "drain_campaign",
    "drain_task",
    "evacuate",
    "evacuate_campaign",
    "evacuate_task",
]
