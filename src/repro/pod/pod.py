"""The pod (PrOcess Domain): Zap's migratable virtual execution unit.

A pod groups processes behind a private namespace — virtual pids, a
virtual network address, a chroot'd file-system view, and a virtual
clock — and interposes on every member syscall (charging the small
per-syscall cycle cost whose aggregate is the Figure 5 virtualization
overhead, and translating identifier arguments between namespaces).

Pods are "the minimal unit of migration": dual-CPU nodes typically host
two pods, one per application endpoint, which can later migrate to
*different* nodes independently (the N→M migration of Section 3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import NoSuchProcessError, PodError
from ..vos.filesystem import ensure_dirs
from ..vos.kernel import Kernel
from ..vos.process import BLOCKED, Process, RUNNABLE, RUNNING, SyscallRequest
from ..vos.signals import SIGCONT, SIGKILL, SIGSTOP
from .namespace import PidNamespace

#: Extra cycles charged per interposed syscall (~0.13 µs at 3 GHz): the
#: thin-virtualization-layer overhead the paper measures as negligible.
INTERPOSE_CYCLES = 400

#: Syscalls whose first argument is a pid needing vpid→host translation.
_PID_ARG_SYSCALLS = {"waitpid", "kill"}
#: Syscalls whose first argument is a virtual timer id.
_TIMER_ARG_SYSCALLS = {"waittimer", "canceltimer"}


class Pod:
    """One process domain on one node."""

    def __init__(self, kernel: Kernel, pod_id: str, vip: str, vnet: Any) -> None:
        self.kernel = kernel
        self.id = pod_id
        #: the constant virtual address applications see.
        self.vip = vip
        self.vnet = vnet
        self.namespace = PidNamespace()
        #: the pod's file-system root lives on shared storage, so a
        #: migrated pod finds its files (the paper's shared-SAN assumption)
        self.chroot = f"/san/pods/{pod_id}"
        #: virtual-clock bias: vtime = engine.now + time_offset.
        self.time_offset = 0.0
        #: whether restart rebases the virtual clock (Section 5, optional).
        self.time_virtualization = True
        self.pids: set = set()
        self.suspended = False
        self._installed = False
        #: virtual timer-id namespace (same rationale as vpids: timer ids
        #: must stay constant across migration while kernel ids change).
        self._vtimer_to_real: Dict[int, int] = {}
        self._real_to_vtimer: Dict[int, int] = {}
        self._next_vtimer = 1
        #: exited-but-unreaped children: vpid -> exit code.  Zombies are
        #: namespace state, so they checkpoint and restore with the pod —
        #: a restored parent's waitpid must still collect the status.
        self.zombies: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, kernel: Kernel, pod_id: str, vip: str, vnet: Any) -> "Pod":
        """Create a pod on ``kernel``'s node and wire it into the system."""
        if pod_id in kernel.pods:
            raise PodError(f"pod {pod_id!r} already exists on {kernel.hostname}")
        pod = cls(kernel, pod_id, vip, vnet)
        kernel.pods[pod_id] = pod
        kernel.register_interposer(pod._interpose)
        pod._installed = True
        # home the virtual address on this node
        stack = getattr(kernel, "netstack", None)
        if stack is not None:
            stack.nic.add_address(vip)
        vnet.place(vip, stack.primary_ip if stack is not None else vip)
        fs, inner = kernel.vfs.resolve(pod.chroot)
        ensure_dirs(fs, inner)
        return pod

    def destroy(self) -> None:
        """Kill members, release the virtual address, unhook interposition."""
        stack0 = getattr(self.kernel, "netstack", None)
        if stack0 is not None:
            # silence the pod's sockets first: nothing (FIN, retransmit)
            # may leak from a destroyed pod toward its restored peers
            stack0.abort_sockets_of(self.vip)
        device = getattr(self.kernel, "gm_device", None)
        if device is not None:
            device.abort_ports_of(self.vip)
        for pid in list(self.pids):
            try:
                self.kernel.send_signal(pid, SIGKILL)
            except NoSuchProcessError:
                pass
        stack = getattr(self.kernel, "netstack", None)
        if stack is not None and self.vip in stack.nic.addresses:
            stack.nic.drop_address(self.vip)
        if self.vnet.where(self.vip) is not None:
            self.vnet.remove(self.vip)
        if self._installed:
            self.kernel.unregister_interposer(self._interpose)
            self._installed = False
        self.kernel.pods.pop(self.id, None)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def adopt(self, proc: Process, vpid: Optional[int] = None) -> int:
        """Bring a process into the pod namespace.

        New processes get the next vpid; restored processes pass their
        checkpointed ``vpid`` to keep identifiers constant across
        migration — the property the namespace exists to provide.
        """
        proc.pod_id = self.id
        if vpid is None:
            proc.vpid = self.namespace.assign(proc.pid)
        else:
            self.namespace.rebind(vpid, proc.pid)
            proc.vpid = vpid
        self.pids.add(proc.pid)
        return proc.vpid

    def on_proc_exit(self, proc: Process) -> None:
        """Kernel callback when a member dies: it becomes a zombie until
        someone waits for it (or forever; pods are small)."""
        self.namespace.drop_host(proc.pid)
        self.pids.discard(proc.pid)
        if proc.vpid is not None and proc.exit_code != -9:
            self.zombies[proc.vpid] = proc.exit_code

    def note_zombie(self, vpid: int, exit_code: int) -> None:
        """Register a restored zombie, keeping vpid allocation above it."""
        self.zombies[int(vpid)] = int(exit_code)
        self.namespace._next_vpid = max(self.namespace._next_vpid, int(vpid) + 1)

    def processes(self) -> List[Process]:
        """Live member processes, ordered by vpid (stable for images)."""
        procs = [self.kernel.procs[pid] for pid in self.pids]
        return sorted(procs, key=lambda p: p.vpid or 0)

    # ------------------------------------------------------------------
    # syscall interposition
    # ------------------------------------------------------------------
    def _interpose(self, proc: Any, req: SyscallRequest) -> Tuple[SyscallRequest, int]:
        if getattr(proc, "pod_id", None) != self.id:
            return req, 0
        if req.name in _PID_ARG_SYSCALLS and req.args:
            vpid = req.args[0]
            try:
                real = self.namespace.to_real(int(vpid))
            except NoSuchProcessError:
                if req.name == "waitpid" and int(vpid) in self.zombies:
                    # the child exited (possibly on another node, before a
                    # migration): deliver the preserved status
                    return (SyscallRequest("zombie_wait",
                                           (self.zombies[int(vpid)],), req.dst),
                            INTERPOSE_CYCLES)
                real = -1  # let the handler fail with ESRCH
            req = SyscallRequest(req.name, (real,) + tuple(req.args[1:]), req.dst)
        elif req.name in _TIMER_ARG_SYSCALLS and req.args:
            real_tid = self._vtimer_to_real.get(int(req.args[0]), -1)
            req = SyscallRequest(req.name, (real_tid,) + tuple(req.args[1:]), req.dst)
        return req, INTERPOSE_CYCLES

    def translate_result(self, proc: Any, syscall_name: str, value: Any) -> Any:
        """Map syscall results carrying real identifiers into the pod
        namespace (kernel callback at syscall completion)."""
        if syscall_name == "settimer" and isinstance(value, int) and value > 0:
            return self.bind_timer(value)
        return value

    def bind_timer(self, real_tid: int, vtid: Optional[int] = None) -> int:
        """Record a virtual↔real timer-id pair; returns the virtual id."""
        if vtid is None:
            vtid = self._next_vtimer
            self._next_vtimer += 1
        else:
            self._next_vtimer = max(self._next_vtimer, vtid + 1)
        self._vtimer_to_real[vtid] = real_tid
        self._real_to_vtimer[real_tid] = vtid
        return vtid

    def vtimer_of(self, real_tid: int) -> Optional[int]:
        """Reverse timer-id lookup (used by the checkpoint sweep)."""
        return self._real_to_vtimer.get(real_tid)

    # ------------------------------------------------------------------
    # freeze / thaw (used by the checkpoint Agent)
    # ------------------------------------------------------------------
    def suspend(self) -> None:
        """SIGSTOP every member — step 1 of the checkpoint algorithm."""
        for pid in sorted(self.pids):
            self.kernel.send_signal(pid, SIGSTOP)
        self.suspended = True

    def resume(self) -> None:
        """SIGCONT every member — the snapshot-case final step."""
        for pid in sorted(self.pids):
            self.kernel.send_signal(pid, SIGCONT)
        self.suspended = False

    def quiescent(self) -> bool:
        """True when no member can mutate state (all stopped/parked)."""
        for pid in self.pids:
            proc = self.kernel.procs[pid]
            if proc.state == RUNNING or proc.stop_requested:
                return False
            if proc.state == RUNNABLE and not proc.stopped:
                return False
            if proc.state == BLOCKED and not proc.stopped:
                return False
            # a dispatched-but-not-yet-run syscall handler will still
            # mutate kernel state (e.g. push bytes into the network
            # stack); capturing across that window splits the syscall's
            # effects between the image and the doomed source node
            if proc.syscall_dispatching:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pod({self.id!r} on {self.kernel.hostname}, vip={self.vip}, procs={len(self.pids)})"
