"""Pod virtualization: namespaces, virtual addresses, interposition."""

from .namespace import PidNamespace
from .pod import INTERPOSE_CYCLES, Pod
from .vnet import VNet

__all__ = ["INTERPOSE_CYCLES", "PidNamespace", "Pod", "VNet"]
