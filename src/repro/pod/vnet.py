"""Cluster-wide virtual→real address mapping.

"ZapC only allows applications in pods to see virtual network addresses
which are transparently remapped to underlying real network addresses as
a pod migrates among different machines."  The :class:`VNet` is that
remapping: virtual pod addresses resolve to whichever node currently
hosts the pod.  Real (node) addresses resolve to themselves, so host
sockets work through the same code path.

On migration the Manager rewrites these placements — deriving "a new
network connectivity map by substituting the destination network
addresses in place of the original addresses".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import PodError


class VNet:
    """The virtual address plane shared by every node's network stack."""

    def __init__(self) -> None:
        #: virtual ip -> real (node) ip currently hosting it.
        self._placements: Dict[str, str] = {}

    def place(self, vip: str, real: str) -> None:
        """Map virtual address ``vip`` onto node address ``real``."""
        self._placements[vip] = real

    def remove(self, vip: str) -> None:
        """Drop a virtual address (pod destroyed or mid-migration)."""
        self._placements.pop(vip, None)

    def where(self, vip: str) -> Optional[str]:
        """The real address hosting ``vip``, or None if unplaced."""
        return self._placements.get(vip)

    def resolve(self, ip: str) -> str:
        """Routing resolution: virtual → real, identity for real addresses."""
        return self._placements.get(ip, ip)

    def move(self, vip: str, new_real: str) -> None:
        """Re-home a virtual address (the migration step)."""
        if vip not in self._placements:
            raise PodError(f"virtual address {vip} is not placed")
        self._placements[vip] = new_real

    def snapshot(self) -> Dict[str, str]:
        """Copy of the placement table (for the Manager's meta-data)."""
        return dict(self._placements)
