"""Private virtual PID namespaces.

"Names within a pod are trivially assigned in a unique manner in the
same way that traditional operating systems assign names, but such names
are localized to the pod. ... there is no need for it to change when the
pod is migrated, ensuring that identifiers remain constant throughout
the life of the process."

The namespace maps virtual pids (stable, checkpointed) to host pids
(reassigned on every restart).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import NoSuchProcessError, PodError


class PidNamespace:
    """vpid ↔ host-pid translation table for one pod."""

    def __init__(self) -> None:
        self._v2r: Dict[int, int] = {}
        self._r2v: Dict[int, int] = {}
        self._next_vpid = 1

    def assign(self, host_pid: int) -> int:
        """Allocate the next vpid for a new process."""
        vpid = self._next_vpid
        self._next_vpid += 1
        self._bind(vpid, host_pid)
        return vpid

    def rebind(self, vpid: int, host_pid: int) -> None:
        """Attach a restored process to its checkpointed vpid.

        Keeps future allocations above every restored vpid so identifiers
        stay unique after restart.
        """
        self._bind(vpid, host_pid)
        self._next_vpid = max(self._next_vpid, vpid + 1)

    def _bind(self, vpid: int, host_pid: int) -> None:
        if vpid in self._v2r:
            raise PodError(f"vpid {vpid} already bound")
        if host_pid in self._r2v:
            raise PodError(f"host pid {host_pid} already in namespace")
        self._v2r[vpid] = host_pid
        self._r2v[host_pid] = vpid

    def drop_host(self, host_pid: int) -> None:
        """Remove a (dead) process from the namespace."""
        vpid = self._r2v.pop(host_pid, None)
        if vpid is not None:
            del self._v2r[vpid]

    def to_real(self, vpid: int) -> int:
        """Translate a vpid to the current host pid."""
        try:
            return self._v2r[vpid]
        except KeyError:
            raise NoSuchProcessError(f"vpid {vpid}") from None

    def to_virtual(self, host_pid: int) -> int:
        """Translate a host pid to its vpid."""
        try:
            return self._r2v[host_pid]
        except KeyError:
            raise NoSuchProcessError(f"host pid {host_pid}") from None

    def vpids(self) -> List[int]:
        """All live vpids, sorted."""
        return sorted(self._v2r)

    def __len__(self) -> int:
        return len(self._v2r)
