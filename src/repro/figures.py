"""Command-line figure regeneration: ``python -m repro.figures``.

Prints every table of the paper's Section 6 (Figures 5, 6a, 6b, 6c and
the network-state size claim) from fresh simulation runs.  Options::

    python -m repro.figures                # everything, paper scale
    python -m repro.figures --fig 5       # one figure
    python -m repro.figures --scale 0.2   # shorter runs (sizes unchanged)
    python -m repro.figures --app CPI     # one application
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional

from .core.pipeline import parse_filter_args
from .harness import (APPS, run_fig5_row, run_fig6_cell, run_fig6b_cell,
                      run_migration_cell)
from .metrics import print_table

Filters = Optional[List[Dict[str, Any]]]


def fig5(apps: List[str], scale: float, filters: Filters = None) -> None:
    rows = []
    for app in apps:
        for nodes in APPS[app].node_counts:
            cell = run_fig5_row(app, nodes, scale=scale)
            rows.append((app, nodes, f"{cell.base_time:.3f}", f"{cell.zapc_time:.3f}",
                         f"{cell.overhead_pct:.4f}"))
    print_table("Figure 5 — completion time [s], Base vs ZapC",
                ("app", "nodes", "base", "zapc", "overhead %"), rows)


def fig6a(apps: List[str], scale: float, filters: Filters = None) -> None:
    rows = []
    phase_rows = []
    for app in apps:
        for nodes in APPS[app].node_counts:
            cell = run_fig6_cell(app, nodes, scale=scale, filters=filters)
            share = 100 * cell.mean_network_ckpt / cell.mean_checkpoint
            rows.append((app, nodes, len(cell.checkpoint_times),
                         f"{cell.mean_checkpoint * 1000:.0f}",
                         f"{cell.mean_network_ckpt * 1000:.2f}", f"{share:.1f}",
                         f"{cell.mean_stage('serialize') * 1000:.2f}",
                         f"{cell.mean_stage('filter') * 1000:.2f}",
                         f"{cell.mean_stage('write') * 1000:.2f}"))
            phase_rows.append((app, nodes,
                               f"{cell.mean_phase('suspend') * 1000:.2f}",
                               f"{cell.mean_phase('netstate') * 1000:.2f}",
                               f"{cell.mean_phase('meta_report') * 1000:.2f}",
                               f"{cell.mean_phase('standalone') * 1000:.2f}",
                               f"{cell.mean_phase('barrier') * 1000:.2f}",
                               f"{cell.mean_phase('commit') * 1000:.2f}"))
    print_table("Figure 6(a) — checkpoint time (with pipeline stage split)",
                ("app", "nodes", "ckpts", "mean [ms]", "network [ms]", "net share %",
                 "serialize [ms]", "filter [ms]", "write [ms]"),
                rows)
    print_table("Figure 6(a) — protocol phase breakdown from spans [ms, "
                "mean of per-checkpoint max across pods]",
                ("app", "nodes", "suspend", "netstate", "meta", "standalone",
                 "barrier", "commit"),
                phase_rows)


def fig6b(apps: List[str], scale: float, filters: Filters = None) -> None:
    rows = []
    for app in apps:
        for nodes in APPS[app].node_counts:
            cell = run_fig6b_cell(app, nodes, scale=scale, filters=filters)
            rows.append((app, nodes, f"{cell.restart_time * 1000:.0f}",
                         f"{cell.network_restart_time * 1000:.1f}"))
    print_table("Figure 6(b) — restart time from a mid-execution image",
                ("app", "nodes", "restart [ms]", "network restore [ms]"), rows)


def fig6c(apps: List[str], scale: float, filters: Filters = None) -> None:
    rows = []
    for app in apps:
        for nodes in APPS[app].node_counts:
            cell = run_fig6_cell(app, nodes, scale=scale, n_checkpoints=5,
                                 filters=filters)
            rows.append((app, nodes, f"{cell.mean_image_size / 1e6:.1f}",
                         f"{statistics_mean_mb(cell.raw_image_sizes):.1f}",
                         f"{cell.max_netstate}"))
    print_table("Figure 6(c) — largest-pod checkpoint image size",
                ("app", "nodes", "image [MB]", "raw [MB]", "network state [B]"),
                rows)


def figmig(apps: List[str], scale: float, filters: Filters = None) -> None:
    """Live migration: downtime vs pre-copy round cap (not a paper
    figure — the downtime study the paper's direct-migration section
    motivates).  A 256 MB pod rewriting 40 MB/s moves between blades;
    cap 0 is plain stop-and-copy."""
    rows = []
    for cap in (0, 1, 2, 4, 8):
        cell = run_migration_cell(cap)
        rows.append((cap, cell.rounds_run,
                     f"{cell.downtime * 1000:.1f}",
                     f"{cell.total_time * 1000:.0f}",
                     f"{100 * cell.downtime_ratio:.1f}",
                     f"{cell.precopy_bytes / 1e6:.1f}",
                     cell.bailout or "-"))
    print_table("Live migration — downtime vs pre-copy rounds "
                "(256 MB pod, 40 MB/s writes)",
                ("round cap", "rounds run", "downtime [ms]", "total [ms]",
                 "downtime %", "pre-copied [MB]", "bailout"), rows)


def figinc(apps: List[str], scale: float, filters: Filters = None) -> None:
    """Incremental generations: image bytes, suspend window and
    end-to-end time per epoch, by pipeline mode (not a paper figure —
    the dirty-delta / zero-stall study; the same writing workload is
    checkpointed under each configuration)."""
    from .harness import INC_MODES, run_inc_cell
    rows = []
    for mode in INC_MODES:
        cell = run_inc_cell(mode)
        for epoch, (img, raw, susp, e2e) in enumerate(zip(
                cell.image_sizes, cell.raw_image_sizes,
                cell.suspend_windows, cell.ckpt_times)):
            rows.append((mode, epoch, f"{img / 1e6:.2f}", f"{raw / 1e6:.1f}",
                         f"{susp * 1000:.1f}", f"{e2e * 1000:.1f}",
                         "ok" if cell.chain_ok else "BROKEN"))
    print_table("Incremental generations — 2 writer pods, 64 MB ballast, "
                "8 MB/s writes (epoch 0 is the full base)",
                ("mode", "epoch", "image [MB]", "raw [MB]", "suspend [ms]",
                 "end-to-end [ms]", "chain"), rows)


def figcas(apps: List[str], scale: float, filters: Filters = None) -> None:
    """Content-addressed store: SAN bytes by sink mode (not a paper
    figure — the dedup study; the generational writer workload is
    checkpointed to the SAN under each sink configuration, and a fleet
    checkpoint over the evacuation world shows the cross-pod dedup)."""
    from .harness import CAS_MODES, run_cas_cell
    rows = []
    baseline = None
    for mode in CAS_MODES:
        cell = run_cas_cell(mode)
        if mode == "file-full":
            baseline = cell.stored_total
        reduction = baseline / cell.stored_total if cell.stored_total else 0.0
        for epoch, (logical, stored) in enumerate(zip(cell.logical_sizes,
                                                      cell.stored_sizes)):
            rows.append((mode, epoch, f"{logical / 1e6:.1f}",
                         f"{stored / 1e6:.2f}", f"{cell.dedup_ratio:.1f}",
                         f"{reduction:.1f}",
                         "ok" if cell.restore_ok else "BROKEN"))
    print_table("Content-addressed store — 2 writer pods, 64 MB ballast, "
                "4 MB/s writes, 8 generations",
                ("mode", "epoch", "logical [MB]", "to SAN [MB]",
                 "dedup ratio", "vs full", "restore"), rows)
    from .fleet import run_cas_fleet_demo
    out = run_cas_fleet_demo()
    rows = [(out["n_pods"], f"{out['logical_bytes'] / 1e6:.1f}",
             f"{out['stored_bytes'] / 1e6:.1f}",
             f"{out['cross_pod_dup_bytes'] / 1e6:.1f}",
             f"{out['dedup_ratio']:.1f}",
             f"{out['san_file_bytes'] / 1e6:.1f}")]
    print_table("Fleet checkpoint through the CAS — cross-pod dedup "
                "(evacuation world)",
                ("pods", "logical [MB]", "stored [MB]", "cross-pod dup [MB]",
                 "dedup ratio", "file-mode SAN [MB]"), rows)


def figfailover(apps: List[str], scale: float, filters: Filters = None) -> None:
    """HA Manager failover: one chaos episode per ledger crash point
    (not a paper figure — the Manager is the paper's lone unreplicated
    component; this table shows a standby replica resolving the orphan
    left at every phase boundary)."""
    from .cluster.chaos import run_failover_chaos
    from .cluster.faults import MANAGER_PHASES
    rows = []
    for crash_phase in MANAGER_PHASES:
        rep = run_failover_chaos(0, crash_phase)
        claimed = rep.takeover or []
        rows.append((crash_phase.split("manager.ledger.")[-1],
                     ", ".join(f"op{o}@{p}" for o, p, _w in claimed) or "-",
                     ", ".join(w for _o, _p, w in claimed) or "none orphaned",
                     len(rep.ops),
                     "yes" if rep.app_finished else "no",
                     "ok" if not rep.violations else f"{len(rep.violations)}!"))
    print_table("Manager failover — replica takeover per ledger crash point "
                "(seed 0)",
                ("crash at", "orphan claimed", "outcome", "ops run",
                 "app done", "invariants"), rows)


def figfleet(apps: List[str], scale: float, filters: Filters = None) -> None:
    """Fleet orchestration: evacuation sweep over the in-flight cap (not
    a paper figure — rolling waves over the paper's per-pod ops; the
    table shows the concurrency/downtime trade at a fixed fleet)."""
    from .fleet import run_evacuation_demo
    rows = []
    for max_inflight in (1, 2, 4, 8, 16):
        out = run_evacuation_demo(n_nodes=24, n_pods=96, n_evacuate=18,
                                  seed=0, max_inflight=max_inflight)
        res = out["result"]
        counts = res.counts()
        rows.append((max_inflight, len(res.waves),
                     f"{res.duration:.3f}",
                     f"{res.downtime_percentile(50) * 1000:.1f}",
                     f"{res.downtime_percentile(99) * 1000:.1f}",
                     f"{counts['ok']}/{len(res.pods)}",
                     res.peak_inflight))
    print_table("Fleet evacuation — 18 of 24 blades, 96 pods, by in-flight "
                "cap (seed 0)",
                ("max inflight", "waves", "campaign [s]", "p50 downtime [ms]",
                 "p99 downtime [ms]", "pods ok", "peak inflight"), rows)


def figtimeline(apps: List[str], scale: float, filters: Filters = None) -> None:
    """Fleet timeline: downtime / in-flight / bytes over simulated time
    (not a paper figure — the windowed-series view of the evacuation the
    fleet figure summarizes; each row is one window of the campaign)."""
    from .harness import run_timeline_series
    out = run_timeline_series()
    cols = out["columns"]
    series = cols["series"]
    window_ms = cols["window_s"] * 1000

    def col(name, i, fmt="{:.1f}", scale_by=1.0):
        v = series.get(name, [None] * len(cols["t"]))[i]
        return "-" if v is None else fmt.format(v * scale_by)

    rows = []
    for i, t in enumerate(cols["t"]):
        moved = series.get("fleet.pod_downtime.count", [0] * len(cols["t"]))[i]
        bytes_rate = sum(
            (series.get(f"agent.{k}.bytes.rate", [0.0] * len(cols["t"]))[i]
             or 0.0) for k in ("netstate", "flush", "restore"))
        rows.append((f"{t * 1000:.0f}", col("fleet.inflight.max", i, "{:.0f}"),
                     moved,
                     col("fleet.pod_downtime.p50", i, "{:.1f}", 1000),
                     col("fleet.pod_downtime.p99", i, "{:.1f}", 1000),
                     f"{bytes_rate / 1e6:.1f}"))
    res = out["result"]
    print_table(
        f"Fleet timeline — campaign #{res.cid} ({res.status}), "
        f"{window_ms:.0f} ms windows",
        ("t [ms]", "inflight", "moved", "downtime p50 [ms]",
         "downtime p99 [ms]", "bytes [MB/s]"), rows)


def statistics_mean_mb(sizes: List[int]) -> float:
    return (sum(sizes) / len(sizes) / 1e6) if sizes else 0.0


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fig", choices=["5", "6a", "6b", "6c", "mig", "inc",
                                          "cas", "failover", "fleet",
                                          "timeline", "all"],
                        default="all")
    parser.add_argument("--app", choices=list(APPS), default=None)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="duration scale (image sizes unaffected)")
    parser.add_argument("--compress", type=int, default=None, metavar="LEVEL",
                        choices=range(1, 10),
                        help="compress images through the pipeline (zlib level 1-9)")
    parser.add_argument("--incremental", action="store_true",
                        help="delta-checkpoint against the previous epoch")
    args = parser.parse_args(argv)
    apps = [args.app] if args.app else list(APPS)
    filters = parse_filter_args(args.compress, args.incremental) or None
    runners = {"5": fig5, "6a": fig6a, "6b": fig6b, "6c": fig6c, "mig": figmig,
               "inc": figinc, "cas": figcas, "failover": figfailover,
               "fleet": figfleet, "timeline": figtimeline}
    for name, fn in runners.items():
        if args.fig in (name, "all"):
            fn(apps, args.scale, filters)


if __name__ == "__main__":
    main()
