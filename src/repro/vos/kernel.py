"""The per-node kernel: process table, syscall dispatch, signals, timers.

One :class:`Kernel` models one cluster node's operating system instance.
It owns the process table, the scheduler, the VFS, the timer table and
the syscall dispatch table.  Subsystems extend it at node-build time:
the network stack registers its socket syscalls, and pods register
*interposers* — the paper's "thin virtualization layer based on system
call interposition" — which may rewrite syscall arguments/results
(namespace translation) and charge extra cycles (the virtualization
overhead measured in Figure 5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import NoSuchProcessError, SyscallError, VosError
from ..sim.engine import Engine
from ..sim.tasks import Future
from .filesystem import VFS
from .memory import Memory
from .process import BLOCKED, DEAD, Process, RUNNABLE, SyscallRequest
from .program import Program, build_program
from .scheduler import Scheduler
from .signals import SIGCONT, SIGKILL, SIGSTOP
from .syscalls import BLOCK, Block, Complete, CompleteAfter, Errno, HostChannel
from .timers import TimerTable

#: Default CPU frequency — the paper's 3.06 GHz Xeon blades.
DEFAULT_HZ = 3.06e9
#: Default scheduler quantum (1 ms keeps SIGSTOP latency low).
DEFAULT_QUANTUM_S = 1e-3
#: Base syscall overhead in cycles (~0.65 µs at 3 GHz).
DEFAULT_SYSCALL_CYCLES = 2000

SyscallHandler = Callable[["Kernel", Any, Tuple[Any, ...], bool], Any]
Interposer = Callable[[Any, SyscallRequest], Tuple[SyscallRequest, int]]


class Kernel:
    """One node's operating system instance."""

    def __init__(
        self,
        engine: Engine,
        hostname: str,
        ncpus: int = 1,
        hz: float = DEFAULT_HZ,
        quantum_s: float = DEFAULT_QUANTUM_S,
        syscall_overhead_cycles: int = DEFAULT_SYSCALL_CYCLES,
        vfs: Optional[VFS] = None,
    ) -> None:
        self.engine = engine
        self.hostname = hostname
        self.hz = float(hz)
        self.ncpus = ncpus
        self.syscall_overhead_cycles = int(syscall_overhead_cycles)
        self.scheduler = Scheduler(self, ncpus, int(quantum_s * hz))
        self.vfs = vfs if vfs is not None else VFS()
        self.timers = TimerTable()
        self.procs: Dict[int, Process] = {}
        self._next_pid = 100
        self._next_host_pid = 10_000
        #: pod_id -> pod object (duck-typed; see repro.pod.pod.Pod).
        self.pods: Dict[str, Any] = {}
        #: syscall name -> handler.
        self._handlers: Dict[str, SyscallHandler] = {}
        #: per-proc interposition, consulted via proc.pod_id.
        self._interposers: List[Interposer] = []
        #: subsystem hooks to purge a process from wait queues on kill.
        self.wait_cancellers: List[Callable[[Any], None]] = []
        #: pid -> futures/process-waiters for waitpid.
        self._exit_waiters: Dict[int, List[Any]] = {}
        self.nic: Optional[Any] = None  # attached by the network layer
        install_core_syscalls(self)
        engine.blocked_probes.append(self._blocked_probe)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_syscall(self, name: str, handler: SyscallHandler) -> None:
        """Install (or override) the handler for syscall ``name``."""
        self._handlers[name] = handler

    def register_interposer(self, fn: Interposer) -> None:
        """Install a syscall interposer (pods use this)."""
        self._interposers.append(fn)

    def unregister_interposer(self, fn: Interposer) -> None:
        """Remove a previously installed interposer."""
        self._interposers.remove(fn)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def alloc_pid(self) -> int:
        """Allocate a fresh host pid."""
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def spawn(
        self,
        prog: Program,
        regs: Optional[Dict[str, Any]] = None,
        memory: Optional[Memory] = None,
        pod_id: Optional[str] = None,
    ) -> Process:
        """Create and enqueue a new process running ``prog``."""
        proc = Process(self.alloc_pid(), prog, regs=regs, memory=memory)
        proc.pod_id = pod_id
        self.procs[proc.pid] = proc
        if pod_id is not None:
            pod = self.pods.get(pod_id)
            if pod is None:
                raise VosError(f"unknown pod {pod_id!r} on {self.hostname}")
            pod.adopt(proc)
        self.scheduler.enqueue(proc)
        return proc

    def adopt_process(self, proc: Process, enqueue: bool = False) -> None:
        """Insert a restored process into the table (restart path)."""
        if proc.pid in self.procs:
            raise VosError(f"pid {proc.pid} already present on {self.hostname}")
        self.procs[proc.pid] = proc
        if enqueue:
            self.scheduler.enqueue(proc)

    def get_proc(self, pid: int) -> Process:
        """Look up a live process by host pid."""
        proc = self.procs.get(pid)
        if proc is None or proc.state == DEAD:
            raise NoSuchProcessError(f"pid {pid} on {self.hostname}")
        return proc

    def exit_process(self, proc: Process, code: int) -> None:
        """Terminate ``proc``: close fds, fire waiters, notify its pod."""
        if proc.state == DEAD:
            return
        proc.state = DEAD
        proc.exit_code = code
        proc.exit_time = self.engine.now
        for canceller in self.wait_cancellers:
            canceller(proc)
        for fd in sorted(proc.fds):
            self._release_fd(proc, fd)
        proc.fds.clear()
        for timer in self.timers.owned_by({proc.pid}):
            if timer.handle is not None:
                timer.handle.cancel()
            self.timers.remove(timer.tid)
        for waiter in self._exit_waiters.pop(proc.pid, []):
            self.complete_syscall(waiter, code)
        if proc.pod_id is not None:
            pod = self.pods.get(proc.pod_id)
            if pod is not None:
                pod.on_proc_exit(proc)

    def _release_fd(self, proc: Any, fd: int) -> None:
        obj = proc.fds.get(fd)
        if obj is None:
            return
        release = getattr(obj, "release", None)
        if release is not None:
            # Sockets route through their dispatch vector so checkpoint
            # interposition (the alternate receive queue) sees the close.
            release(self, proc)
        del proc.fds[fd]

    # ------------------------------------------------------------------
    # scheduling callbacks
    # ------------------------------------------------------------------
    def on_slice_end(self, proc: Process, reason: str, payload: Any) -> None:
        """Scheduler callback after a slice's simulated time elapsed."""
        if proc.state == DEAD:
            return
        if proc.stop_requested:
            proc.stopped = True
            proc.stop_requested = False
        if reason == "halt":
            self.exit_process(proc, int(payload))
            return
        if reason == "syscall":
            self.do_syscall(proc, payload)
            return
        # quantum expired
        proc.state = RUNNABLE
        self.scheduler.enqueue(proc)

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------
    def do_syscall(self, proc: Any, req: SyscallRequest, restarted: bool = False) -> None:
        """Charge overhead, run interposers, then execute the handler.

        ``blocked_on`` keeps the *pre-interposition* request: namespace
        translations (vpid→pid, virtual timer ids) are recomputed when a
        restored process re-issues the syscall on a different node, where
        the real identifiers differ.
        """
        orig = req
        extra = 0
        for interposer in self._interposers:
            req, cycles = interposer(proc, req)
            extra += cycles
        overhead = (self.syscall_overhead_cycles + extra) / self.hz
        proc.state = BLOCKED
        proc.blocked_on = orig
        proc.syscall_dispatching = True
        self.engine.schedule(overhead, self._run_handler, proc, req, restarted)

    def _run_handler(self, proc: Any, req: SyscallRequest, restarted: bool) -> None:
        # the handler's side effects land now (or it parks the process in
        # a re-issuable blocked state), so the dispatch window is over
        proc.syscall_dispatching = False
        if getattr(proc, "state", None) == DEAD:
            return
        handler = self._handlers.get(req.name)
        if handler is None:
            self.complete_syscall(proc, Errno("ENOSYS", req.name))
            return
        try:
            outcome = handler(self, proc, req.args, restarted)
        except SyscallError as err:
            self.complete_syscall(proc, Errno(err.errno, str(err)))
            return
        if isinstance(outcome, Complete):
            self.complete_syscall(proc, outcome.value)
        elif isinstance(outcome, CompleteAfter):
            self.engine.schedule(outcome.delay, self.complete_syscall, proc, outcome.value)
        elif isinstance(outcome, Block):
            pass  # handler parked the proc and will complete later
        else:
            raise VosError(f"handler for {req.name!r} returned {outcome!r}")

    def complete_syscall(self, proc: Any, value: Any) -> None:
        """Deliver a syscall result, honoring SIGSTOP parking."""
        if getattr(proc, "state", None) == DEAD:
            return
        if isinstance(proc, HostChannel):
            fut, proc.waiting = proc.waiting, None
            proc.blocked_on = None
            if fut is not None and not fut.done:
                fut.set_result(value)
            return
        if proc.blocked_on is None:
            return  # duplicate completion (e.g. racing cancel)
        dst = proc.blocked_on.dst
        name = proc.blocked_on.name
        proc.blocked_on = None
        # pods translate results carrying real identifiers back into the
        # virtual namespace (e.g. timer ids)
        if getattr(proc, "pod_id", None) is not None:
            pod = self.pods.get(proc.pod_id)
            if pod is not None:
                value = pod.translate_result(proc, name, value)
        if proc.stopped:
            proc.pending_result = (dst, value)
            proc.state = RUNNABLE
            return
        if dst is not None:
            proc.regs[dst] = value
        proc.state = RUNNABLE
        self.scheduler.enqueue(proc)

    # ------------------------------------------------------------------
    # host task interface
    # ------------------------------------------------------------------
    def host_channel(self, name: str = "host") -> HostChannel:
        """Create a host syscall channel (one in-flight call at a time)."""
        chan = HostChannel(self._next_host_pid, name)
        self._next_host_pid += 1
        return chan

    def host_call(self, chan: HostChannel, name: str, *args: Any) -> Future:
        """Issue syscall ``name`` from a host task; yields the result.

        Raises if the channel already has an in-flight call — host code
        needing concurrency opens more channels (e.g. the restart Agent's
        two "threads", one accepting and one connecting).
        """
        if chan.waiting is not None:
            raise VosError(f"host channel {chan.name!r} already in a syscall")
        fut = Future(f"{chan.name}:{name}")
        chan.waiting = fut
        self.do_syscall(chan, SyscallRequest(name, args, None))
        return fut

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def send_signal(self, pid: int, sig: str) -> None:
        """Deliver a signal to a process by host pid."""
        proc = self.get_proc(pid)
        if sig == SIGKILL:
            self.scheduler.preempt_burn(proc)
            self.exit_process(proc, -9)
        elif sig == SIGSTOP:
            if proc.state == "running":
                # a pure-compute burn can be preempted exactly; an
                # interpreter slice finishes first (boundary delivery)
                if self.scheduler.preempt_burn(proc):
                    proc.state = RUNNABLE
                    proc.stopped = True
                else:
                    proc.stop_requested = True
            else:
                proc.stopped = True
        elif sig == SIGCONT:
            if not proc.stopped and not proc.stop_requested:
                return
            proc.stop_requested = False
            proc.stopped = False
            if proc.pending_result is not None:
                dst, value = proc.pending_result
                proc.pending_result = None
                if dst is not None:
                    proc.regs[dst] = value
                proc.state = RUNNABLE
            if proc.state == RUNNABLE:
                self.scheduler.enqueue(proc)
        else:
            raise VosError(f"unknown signal {sig!r}")

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def vnow(self, proc: Any) -> float:
        """Virtual time as seen by ``proc`` (pod clock offset applied)."""
        offset = 0.0
        if getattr(proc, "pod_id", None) is not None:
            pod = self.pods.get(proc.pod_id)
            if pod is not None:
                offset = pod.time_offset
        return self.engine.now + offset

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def _blocked_probe(self) -> List[str]:
        stuck = []
        for proc in self.procs.values():
            if proc.state == BLOCKED and not proc.stopped:
                req = proc.blocked_on.name if proc.blocked_on else "?"
                stuck.append(f"{self.hostname}/pid{proc.pid}:{req}")
        return stuck

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Kernel({self.hostname!r}, procs={len(self.procs)})"


# ---------------------------------------------------------------------------
# core syscall handlers (process / time / fs)
# ---------------------------------------------------------------------------


def install_core_syscalls(kernel: Kernel) -> None:
    """Register the process, time, timer and file-system syscalls."""
    for name, handler in _CORE_HANDLERS.items():
        kernel.register_syscall(name, handler)


def _sys_getpid(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    return Complete(proc.vpid if getattr(proc, "vpid", None) is not None else proc.pid)


def _sys_gettime(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    return Complete(kernel.vnow(proc))

def _sys_gethostname(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    return Complete(kernel.hostname)


def _sys_spawn(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    prog_name, params, regs = args
    try:
        prog = build_program(prog_name, **dict(params))
    except VosError as err:
        # exec of a nonexistent/unbuildable program is a caller error,
        # not a kernel fault
        raise SyscallError("ENOENT", str(err))
    child = kernel.spawn(prog, regs=dict(regs), pod_id=getattr(proc, "pod_id", None))
    return Complete(child.vpid if child.vpid is not None else child.pid)


def _sys_waitpid(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (pid,) = args
    try:
        child = kernel.get_proc(pid)
    except NoSuchProcessError:
        # Already dead and reaped — look for a recorded corpse.
        corpse = kernel.procs.get(pid)
        if corpse is not None and corpse.state == DEAD:
            return Complete(corpse.exit_code)
        raise SyscallError("ESRCH", f"pid {pid}")
    if child.state == DEAD:
        return Complete(child.exit_code)
    kernel._exit_waiters.setdefault(pid, []).append(proc)
    return BLOCK


def _sys_zombie_wait(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    """waitpid on a preserved zombie: the status was recorded in the pod
    namespace (see Pod.zombies); deliver it immediately."""
    (exit_code,) = args
    return Complete(int(exit_code))


def _sys_kill(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    pid, sig = args
    try:
        kernel.send_signal(pid, sig)
    except NoSuchProcessError:
        raise SyscallError("ESRCH", f"pid {pid}")
    return Complete(0)


def _sys_sleep(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (duration,) = args
    vdeadline = kernel.vnow(proc) + float(duration)
    # Canonicalize the blocked record so a checkpoint taken mid-sleep
    # resumes with the *remaining* time, not the full duration.
    proc.blocked_on = SyscallRequest("sleep_until", (vdeadline,), proc.blocked_on.dst)
    return CompleteAfter(float(duration), 0)


def _sys_sleep_until(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (vdeadline,) = args
    remaining = max(0.0, float(vdeadline) - kernel.vnow(proc))
    return CompleteAfter(remaining, 0)


def _sys_settimer(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (delay,) = args
    vexpiry = kernel.vnow(proc) + float(delay)
    timer = kernel.timers.create(proc.pid, vexpiry)
    timer.handle = kernel.engine.schedule(float(delay), _fire_timer, kernel, timer.tid)
    return Complete(timer.tid)


def _fire_timer(kernel: Kernel, tid: int) -> None:
    timer = kernel.timers.maybe_get(tid)
    if timer is None:
        return
    timer.fired = True
    timer.handle = None
    if timer.waiter is not None:
        waiter, timer.waiter = timer.waiter, None
        kernel.complete_syscall(waiter, True)


def _sys_waittimer(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (tid,) = args
    timer = kernel.timers.maybe_get(tid)
    if timer is None:
        raise SyscallError("EINVAL", f"timer {tid}")
    if timer.fired:
        return Complete(True)
    timer.waiter = proc
    return BLOCK


def _sys_canceltimer(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (tid,) = args
    timer = kernel.timers.maybe_get(tid)
    if timer is not None:
        if timer.handle is not None:
            timer.handle.cancel()
        if timer.waiter is not None:
            kernel.complete_syscall(timer.waiter, False)
        kernel.timers.remove(tid)
    return Complete(0)


def _chroot_of(kernel: Kernel, proc: Any) -> str:
    pod_id = getattr(proc, "pod_id", None)
    if pod_id is None:
        return "/"
    pod = kernel.pods.get(pod_id)
    return pod.chroot if pod is not None else "/"


def _alloc_fd(proc: Any, obj: Any) -> int:
    fd = proc.next_fd
    proc.next_fd += 1
    proc.fds[fd] = obj
    return fd


def _sys_open(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    path, mode = args
    handle = kernel.vfs.open(path, mode, chroot=_chroot_of(kernel, proc))
    return Complete(_alloc_fd(proc, handle))


def _get_fd(proc: Any, fd: int) -> Any:
    obj = proc.fds.get(fd)
    if obj is None:
        raise SyscallError("EBADF", f"fd {fd}")
    return obj


def _sys_read(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    fd, n = args
    obj = _get_fd(proc, fd)
    if getattr(obj, "kind", None) == "socket":
        # read(2) on a socket is recv with no flags.
        return kernel._handlers["recv"](kernel, proc, (fd, n, 0), restarted)
    data = obj.read(int(n))
    return CompleteAfter(obj.fs.transfer_delay(len(data)), data)


def _sys_write(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    fd, data = args
    obj = _get_fd(proc, fd)
    if getattr(obj, "kind", None) == "socket":
        return kernel._handlers["send"](kernel, proc, (fd, data, 0), restarted)
    count = obj.write(bytes(data))
    return CompleteAfter(obj.fs.transfer_delay(count), count)


def _sys_close(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (fd,) = args
    _get_fd(proc, fd)  # EBADF check
    kernel._release_fd(proc, fd)
    return Complete(0)


def _sys_mkdir(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (path,) = args
    fs, inner = kernel.vfs.resolve(path, chroot=_chroot_of(kernel, proc))
    fs.mkdir(inner)
    return Complete(0)


def _sys_unlink(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (path,) = args
    fs, inner = kernel.vfs.resolve(path, chroot=_chroot_of(kernel, proc))
    fs.unlink(inner)
    return Complete(0)


def _sys_listdir(kernel: Kernel, proc: Any, args: Tuple, restarted: bool):
    (path,) = args
    fs, inner = kernel.vfs.resolve(path, chroot=_chroot_of(kernel, proc))
    return Complete(fs.listdir(inner))


_CORE_HANDLERS: Dict[str, SyscallHandler] = {
    "getpid": _sys_getpid,
    "gettime": _sys_gettime,
    "gethostname": _sys_gethostname,
    "spawn": _sys_spawn,
    "waitpid": _sys_waitpid,
    "zombie_wait": _sys_zombie_wait,
    "kill": _sys_kill,
    "sleep": _sys_sleep,
    "sleep_until": _sys_sleep_until,
    "settimer": _sys_settimer,
    "waittimer": _sys_waittimer,
    "canceltimer": _sys_canceltimer,
    "open": _sys_open,
    "read": _sys_read,
    "write": _sys_write,
    "close": _sys_close,
    "mkdir": _sys_mkdir,
    "unlink": _sys_unlink,
    "listdir": _sys_listdir,
}
