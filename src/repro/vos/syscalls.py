"""Syscall dispatch plumbing shared by the kernel and its subsystems.

A syscall handler is a callable::

    handler(kernel, proc, args, restarted) -> Outcome

where ``proc`` is either a real :class:`~repro.vos.process.Process` or a
:class:`HostChannel` (the stand-in used by host tasks such as the ZapC
Agent, which issue syscalls on a node without being schedulable,
checkpointable processes).  ``restarted`` is True when the kernel
re-issues a blocking syscall captured in a checkpoint — handlers must be
idempotent under re-issue, the simulated analogue of ``ERESTARTSYS``.

Outcomes:

* :class:`Complete` — result available immediately.
* :class:`CompleteAfter` — result after a simulated delay (models I/O
  service time; the caller stays blocked meanwhile).
* :class:`Block` — the handler parked the caller on some wait queue and
  will later call ``kernel.complete_syscall(proc, value)``.

Errors are delivered *as values* of type :class:`Errno` so that programs
can branch on them; handlers may equivalently raise
:class:`~repro.errors.SyscallError`, which the kernel converts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..sim.tasks import Future


@dataclass(frozen=True)
class Errno:
    """A syscall error result (falsy-free by design: test with is_errno)."""

    name: str
    detail: str = ""

    def __repr__(self) -> str:
        return f"Errno({self.name})"


def is_errno(value: Any, name: Optional[str] = None) -> bool:
    """True when ``value`` is a syscall error (optionally a specific one).

    Registered for use inside programs via ``b.op(dst, is_errno, src)``.
    """
    if not isinstance(value, Errno):
        return False
    return name is None or value.name == name


@dataclass
class Complete:
    """Handler outcome: result available now."""

    value: Any = None


@dataclass
class CompleteAfter:
    """Handler outcome: result available after ``delay`` sim-seconds."""

    delay: float
    value: Any = None


class Block:
    """Handler outcome: caller parked; subsystem will complete later."""


BLOCK = Block()


class HostChannel:
    """Process stand-in letting host tasks issue syscalls on a node.

    It carries just enough of the Process surface for handlers (an fd
    table, a pid, no pod) and converts ``complete_syscall`` into resolving
    a :class:`Future` the host task can wait on.  Host channels are never
    scheduled and never checkpointed — they model the paper's user-level
    Manager/Agent tools running outside any pod.
    """

    is_host = True

    def __init__(self, pid: int, name: str = "host") -> None:
        self.pid = pid
        self.name = name
        self.pod_id: Optional[str] = None
        self.fds: Dict[int, Any] = {}
        self.next_fd = 3
        self.blocked_on = None
        self.stopped = False
        #: Future for the in-flight blocking syscall, if any.
        self.waiting: Optional[Future] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HostChannel(pid={self.pid}, name={self.name!r})"
