"""Process images and the instruction interpreter.

A :class:`Process` is everything the kernel knows about one running
program: program identity, program counter, register file, call stack,
accounted memory, file-descriptor table, signal/stop state and the
record of an in-flight blocking syscall.  Checkpointing a process is
serializing this image; the program itself never cooperates.

The interpreter (:meth:`Process.step`) executes instructions against a
cycle *budget* (the scheduler quantum).  Large ``compute`` instructions
are split across quanta via :attr:`Process.compute_remaining`, which is
also part of the checkpointed image — a process frozen mid-computation
resumes exactly where it left off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import VosError
from .memory import Memory
from .program import Imm, INSTR_BASE_CYCLES, Program, build_program

# Process lifecycle states.
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
DEAD = "dead"

# Reasons a scheduler slice can end.
REASON_QUANTUM = "quantum"
REASON_SYSCALL = "syscall"
REASON_HALT = "halt"


@dataclass
class SyscallRequest:
    """A trap raised by the interpreter for the kernel to service.

    ``args`` are fully resolved values (not operands), so the record is
    serializable — which is exactly what lets a checkpoint capture a
    process blocked inside a syscall and re-issue it on restart, the
    moral equivalent of Linux's ``ERESTARTSYS``.
    """

    name: str
    args: Tuple[Any, ...]
    dst: Optional[str]

    def to_image(self) -> Dict[str, Any]:
        """Serializable form."""
        return {"name": self.name, "args": list(self.args), "dst": self.dst}

    @classmethod
    def from_image(cls, image: Dict[str, Any]) -> "SyscallRequest":
        """Rebuild from :meth:`to_image` output."""
        return cls(image["name"], tuple(image["args"]), image["dst"])


class Process:
    """One simulated process: pure data plus an interpreter.

    Created only by the kernel (:meth:`repro.vos.kernel.Kernel.spawn`).
    """

    def __init__(self, pid: int, prog: Program, regs: Optional[Dict[str, Any]] = None,
                 memory: Optional[Memory] = None) -> None:
        self.pid = pid
        self.program = prog
        self.pc = 0
        self.regs: Dict[str, Any] = dict(regs or {})
        self.callstack: List[int] = []
        self.memory = memory if memory is not None else Memory(text=64 * 1024, stack=128 * 1024)
        self.compute_remaining = 0
        self.state = RUNNABLE
        #: SIGSTOP semantics: an out-of-band freeze orthogonal to ``state``;
        #: a stopped process stays off the run queue even when its blocking
        #: syscall completes (the wakeup is parked in ``pending_result``).
        self.stopped = False
        self.stop_requested = False
        self.exit_code: Optional[int] = None
        #: The in-flight blocking syscall, when ``state == BLOCKED``.
        self.blocked_on: Optional[SyscallRequest] = None
        #: A syscall result that arrived while the process was stopped.
        self.pending_result: Optional[Tuple[Optional[str], Any]] = None
        #: True between syscall dispatch and the handler actually running
        #: (the syscall-overhead window).  A checkpoint must not cut here:
        #: the handler's side effects (e.g. a send's bytes entering the
        #: network stack) have not happened yet, so the pod is not
        #: quiescent.  Never serialized — quiesce drains it first.
        self.syscall_dispatching = False
        #: fd -> kernel object (socket, open file).  Owned by the kernel;
        #: reconstructed on restart by the checkpoint machinery.
        self.fds: Dict[int, Any] = {}
        self.next_fd = 3  # 0/1/2 notionally reserved
        # accounting
        self.cpu_cycles = 0
        self.syscalls_made = 0
        #: simulated time of death (set by the kernel; harness metric).
        self.exit_time: Optional[float] = None
        # identity within a pod namespace (set by the pod layer)
        self.pod_id: Optional[str] = None
        self.vpid: Optional[int] = None

    # ------------------------------------------------------------------
    # interpreter
    # ------------------------------------------------------------------
    def _resolve(self, operand: Any) -> Any:
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, str):
            try:
                return self.regs[operand]
            except KeyError:
                raise VosError(
                    f"pid {self.pid} ({self.program.name}) pc={self.pc}: unset register {operand!r}"
                ) from None
        raise VosError(f"bad operand {operand!r} (wrap literals with imm())")

    def step(self, budget_cycles: int) -> Tuple[int, str, Any]:
        """Run up to ``budget_cycles`` of instructions.

        Returns ``(cycles_used, reason, payload)`` where reason is one of
        ``quantum`` (budget exhausted), ``syscall`` (payload is the
        :class:`SyscallRequest`) or ``halt`` (payload is the exit code).
        """
        if self.state == DEAD:
            raise VosError(f"stepping dead pid {self.pid}")
        used = 0
        prog = self.program.instrs
        while True:
            if self.compute_remaining > 0:
                take = min(self.compute_remaining, budget_cycles - used)
                self.compute_remaining -= take
                used += take
                if self.compute_remaining > 0:
                    return self._retire(used, REASON_QUANTUM, None)
                continue
            if used >= budget_cycles:
                return self._retire(used, REASON_QUANTUM, None)
            if self.pc >= len(prog):
                # Falling off the end is an implicit clean exit.
                return self._retire(used, REASON_HALT, 0)
            instr = prog[self.pc]
            base = INSTR_BASE_CYCLES[instr.kind]
            # Never split a non-compute instruction across quanta, but always
            # make progress: the first instruction of a slice runs regardless.
            if used > 0 and used + base > budget_cycles:
                return self._retire(used, REASON_QUANTUM, None)
            used += base
            kind = instr.kind
            if kind == "op":
                values = [self._resolve(s) for s in instr.srcs]
                result = instr.fn(*values)
                if instr.dst is not None:
                    self.regs[instr.dst] = result
                self.pc += 1
            elif kind == "compute":
                cycles = int(self._resolve(instr.srcs[0]))
                if cycles < 0:
                    raise VosError(f"pid {self.pid}: negative compute {cycles}")
                self.compute_remaining += cycles
                self.pc += 1
            elif kind == "alloc":
                self.memory.alloc(int(self._resolve(instr.srcs[0])), instr.name)
                self.pc += 1
            elif kind == "free":
                self.memory.free(int(self._resolve(instr.srcs[0])), instr.name)
                self.pc += 1
            elif kind == "syscall":
                args = tuple(self._resolve(s) for s in instr.srcs)
                self.pc += 1
                self.syscalls_made += 1
                return self._retire(used, REASON_SYSCALL, SyscallRequest(instr.name, args, instr.dst))
            elif kind == "jump":
                self.pc = instr.target
            elif kind == "branch":
                value = self._resolve(instr.srcs[0])
                self.pc = instr.target if bool(value) == instr.sense else self.pc + 1
            elif kind == "call":
                self.callstack.append(self.pc + 1)
                self.pc = instr.target
            elif kind == "ret":
                if not self.callstack:
                    raise VosError(f"pid {self.pid}: ret with empty call stack")
                self.pc = self.callstack.pop()
            elif kind == "halt":
                code = int(self._resolve(instr.srcs[0]))
                return self._retire(used, REASON_HALT, code)
            else:  # pragma: no cover - builder cannot emit unknown kinds
                raise VosError(f"unknown instruction kind {kind!r}")

    def _retire(self, used: int, reason: str, payload: Any) -> Tuple[int, str, Any]:
        self.cpu_cycles += used
        return used, reason, payload

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def to_image(self) -> Dict[str, Any]:
        """Serializable process image, *excluding* the fd table contents.

        File descriptors reference kernel objects (sockets, files) whose
        state is captured by the dedicated checkpoint passes; the image
        records only the descriptor numbers and ``next_fd`` so the table
        shape survives.
        """
        return {
            "program_name": self.program.name,
            "program_params": dict(self.program.params),
            "pc": self.pc,
            "regs": dict(self.regs),
            "callstack": list(self.callstack),
            "memory": self.memory.to_image(),
            "compute_remaining": self.compute_remaining,
            "state": self.state,
            "stopped": False,  # images are restored in the resumed state
            "exit_code": self.exit_code,
            "blocked_on": self.blocked_on.to_image() if self.blocked_on else None,
            "pending_result": list(self.pending_result) if self.pending_result else None,
            "fd_numbers": sorted(self.fds),
            "next_fd": self.next_fd,
            "cpu_cycles": self.cpu_cycles,
            "syscalls_made": self.syscalls_made,
            "vpid": self.vpid,
        }

    @classmethod
    def from_image(cls, pid: int, image: Dict[str, Any]) -> "Process":
        """Rebuild a process from an image (program re-derived by name)."""
        prog = build_program(image["program_name"], **image["program_params"])
        proc = cls(pid, prog, regs=dict(image["regs"]), memory=Memory.from_image(image["memory"]))
        proc.pc = int(image["pc"])
        proc.callstack = [int(x) for x in image["callstack"]]
        proc.compute_remaining = int(image["compute_remaining"])
        proc.state = image["state"] if image["state"] != RUNNING else RUNNABLE
        proc.exit_code = image["exit_code"]
        if image["blocked_on"] is not None:
            proc.blocked_on = SyscallRequest.from_image(image["blocked_on"])
        if image.get("pending_result") is not None:
            dst, value = image["pending_result"]
            proc.pending_result = (dst, value)
        proc.next_fd = int(image["next_fd"])
        proc.cpu_cycles = int(image["cpu_cycles"])
        proc.syscalls_made = int(image["syscalls_made"])
        proc.vpid = image.get("vpid")
        return proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Process(pid={self.pid}, prog={self.program.name!r}, pc={self.pc}, "
            f"state={self.state}{', stopped' if self.stopped else ''})"
        )
