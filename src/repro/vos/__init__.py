"""The virtual operating system substrate.

One :class:`~repro.vos.kernel.Kernel` per simulated node: process table,
multi-CPU scheduler, syscall dispatch with interposition hooks, signals,
virtual-time timers and a small VFS.  Processes are pure-data images
executing registered :mod:`~repro.vos.program` programs, which is what
makes OS-level transparent checkpointing meaningful in simulation.
"""

from .filesystem import FileSystem, VFS, ensure_dirs
from .kernel import Kernel
from .memory import Memory
from .process import BLOCKED, DEAD, Process, RUNNABLE, RUNNING, SyscallRequest
from .program import Imm, Program, ProgramBuilder, build_program, imm, program, registered_programs
from .signals import SIGCONT, SIGKILL, SIGSTOP
from .syscalls import Block, Complete, CompleteAfter, Errno, HostChannel, is_errno

__all__ = [
    "BLOCKED",
    "Block",
    "Complete",
    "CompleteAfter",
    "DEAD",
    "Errno",
    "FileSystem",
    "HostChannel",
    "Imm",
    "Kernel",
    "Memory",
    "Process",
    "Program",
    "ProgramBuilder",
    "RUNNABLE",
    "RUNNING",
    "SIGCONT",
    "SIGKILL",
    "SIGSTOP",
    "SyscallRequest",
    "VFS",
    "build_program",
    "ensure_dirs",
    "imm",
    "is_errno",
    "program",
    "registered_programs",
]
