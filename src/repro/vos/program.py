"""Programs: the mini-ISA that simulated application processes execute.

Transparency is the heart of the paper — the OS checkpoints processes
that know nothing about checkpointing.  To make that property *real* in
a simulation, a process must be pure data.  Programs are immutable
instruction lists; all mutable state (program counter, registers, call
stack, memory accounting) lives in the :class:`~repro.vos.process.Process`
image, which the checkpointer serializes without any cooperation from
the program.

Programs are built once and **registered by name**; a checkpoint stores
only ``(program name, build params, pc, ...)`` — exactly as a real
checkpoint stores the executable path rather than its machine code — and
restart rebuilds the program from the registry.

Instruction set
---------------
``op``       apply a pure Python function to operand values, store result
``compute``  burn CPU cycles (split across scheduler quanta if large)
``alloc``/``free``  grow/shrink accounted memory segments
``syscall``  trap into the node kernel (may block the process)
``jump``/``branch``  control flow (labels resolved at build time)
``call``/``ret``     subroutine linkage via the process call stack
``halt``     terminate with an exit code

Operands are register names (``str``) or immediates (wrap literals in
:func:`imm` — in particular string literals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import VosError

# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Imm:
    """An immediate (literal) operand; use :func:`imm` to construct."""

    value: Any


def imm(value: Any) -> Imm:
    """Wrap a literal so it is not mistaken for a register name."""
    return Imm(value)


Operand = Any  # str (register) | Imm


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------

#: Base cycle cost charged per executed instruction, by kind.  COMPUTE adds
#: its operand on top.  These are coarse but sufficient: fine-grained time
#: comes from explicit ``compute`` instructions in the workloads.
INSTR_BASE_CYCLES: Dict[str, int] = {
    "op": 20,
    "compute": 5,
    "alloc": 50,
    "free": 50,
    "syscall": 0,  # syscall overhead is charged by the kernel (pods add more)
    "jump": 2,
    "branch": 4,
    "call": 10,
    "ret": 10,
    "halt": 5,
}


@dataclass(frozen=True)
class Instr:
    """One decoded instruction.  ``fields`` vary by ``kind`` (see module doc)."""

    kind: str
    fn: Optional[Callable[..., Any]] = None
    dst: Optional[str] = None
    srcs: Tuple[Operand, ...] = ()
    name: Optional[str] = None  # syscall name / segment name
    target: int = -1  # resolved jump target pc
    sense: bool = True  # branch taken when truthiness == sense


@dataclass(frozen=True)
class Program:
    """An immutable, registry-rebuildable instruction sequence."""

    name: str
    params: Dict[str, Any]
    instrs: Tuple[Instr, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    #: Bytes of working-set memory the program rewrites per CPU-second
    #: (drives the scheduler's dirty-page accounting for live migration).
    #: Not serialized — rebuilt with the program on restore.
    dirty_rate: float = 0.0

    def __len__(self) -> int:
        return len(self.instrs)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., None]] = {}


def program(name: str) -> Callable[[Callable[..., None]], Callable[..., None]]:
    """Decorator registering a program-builder function under ``name``.

    The decorated function receives a fresh :class:`ProgramBuilder` plus
    the build params as keyword arguments and emits instructions::

        @program("demo.spin")
        def _build(b, *, loops):
            b.for_range("i", 0, loops)
            ...
    """

    def deco(fn: Callable[..., None]) -> Callable[..., None]:
        if name in _REGISTRY:
            raise VosError(f"program {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def build_program(name: str, **params: Any) -> Program:
    """Instantiate registered program ``name`` with ``params``.

    Deterministic: the same name+params always yield the same instruction
    sequence, which is what lets a checkpoint record just the pair.
    """
    builder_fn = _REGISTRY.get(name)
    if builder_fn is None:
        raise VosError(f"no program registered under {name!r}")
    b = ProgramBuilder(name, params)
    builder_fn(b, **params)
    return b.build()


def registered_programs() -> List[str]:
    """Names of all registered programs (diagnostics)."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


class _Block:
    """Bookkeeping for a structured-control-flow region."""

    def __init__(self, builder: "ProgramBuilder", top: str, end: str, step: Optional[Callable[[], None]] = None):
        self._b = builder
        self.top = top
        self.end = end
        self._step = step

    def __enter__(self) -> "_Block":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        if self._step is not None:
            self._step()
        if self.top:
            self._b.jump(self.top)
        self._b.label(self.end)


class ProgramBuilder:
    """Emit instructions with structured control flow, then :meth:`build`.

    All emit methods return ``self`` so short sequences can chain.
    """

    def __init__(self, name: str = "anonymous", params: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.params = dict(params or {})
        self._instrs: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str]] = []  # (instr index, label)
        self._gensym = 0
        self._dirty_rate = 0.0

    # -- label plumbing -------------------------------------------------
    def _fresh(self, stem: str) -> str:
        self._gensym += 1
        return f"__{stem}_{self._gensym}"

    def label(self, name: str) -> "ProgramBuilder":
        """Define label ``name`` at the current position."""
        if name in self._labels:
            raise VosError(f"duplicate label {name!r} in program {self.name!r}")
        self._labels[name] = len(self._instrs)
        return self

    def _emit(self, instr: Instr, target_label: Optional[str] = None) -> "ProgramBuilder":
        if target_label is not None:
            self._fixups.append((len(self._instrs), target_label))
        self._instrs.append(instr)
        return self

    # -- data & compute ---------------------------------------------------
    def op(self, dst: Optional[str], fn: Callable[..., Any], *srcs: Operand) -> "ProgramBuilder":
        """``dst = fn(*operand values)``; ``dst=None`` discards the result."""
        return self._emit(Instr("op", fn=fn, dst=dst, srcs=tuple(srcs)))

    def mov(self, dst: str, src: Operand) -> "ProgramBuilder":
        """Copy an operand into a register."""
        return self.op(dst, _identity, src)

    def compute(self, cycles: Operand) -> "ProgramBuilder":
        """Burn CPU cycles (an int operand; may span scheduler quanta)."""
        return self._emit(Instr("compute", srcs=(cycles,)))

    def alloc(self, nbytes: Operand, segment: str = "heap") -> "ProgramBuilder":
        """Grow an accounted memory segment."""
        return self._emit(Instr("alloc", srcs=(nbytes,), name=segment))

    def free(self, nbytes: Operand, segment: str = "heap") -> "ProgramBuilder":
        """Shrink an accounted memory segment."""
        return self._emit(Instr("free", srcs=(nbytes,), name=segment))

    # -- kernel interface -------------------------------------------------
    def syscall(self, dst: Optional[str], name: str, *args: Operand) -> "ProgramBuilder":
        """Trap into the kernel; the result lands in ``dst`` (or is dropped)."""
        return self._emit(Instr("syscall", dst=dst, srcs=tuple(args), name=name))

    def halt(self, code: Operand = Imm(0)) -> "ProgramBuilder":
        """Terminate the process with an exit code."""
        return self._emit(Instr("halt", srcs=(code,)))

    # -- raw control flow ---------------------------------------------------
    def jump(self, label: str) -> "ProgramBuilder":
        """Unconditional jump to ``label``."""
        return self._emit(Instr("jump"), target_label=label)

    def branch_if(self, src: Operand, label: str) -> "ProgramBuilder":
        """Jump to ``label`` when operand is truthy."""
        return self._emit(Instr("branch", srcs=(src,), sense=True), target_label=label)

    def branch_ifnot(self, src: Operand, label: str) -> "ProgramBuilder":
        """Jump to ``label`` when operand is falsy."""
        return self._emit(Instr("branch", srcs=(src,), sense=False), target_label=label)

    def call(self, label: str) -> "ProgramBuilder":
        """Push return pc on the call stack and jump to ``label``."""
        return self._emit(Instr("call"), target_label=label)

    def ret(self) -> "ProgramBuilder":
        """Return to the pc on top of the call stack."""
        return self._emit(Instr("ret"))

    # -- structured control flow -------------------------------------------
    def while_(self, src: Operand) -> _Block:
        """``with b.while_("cond"):`` — loop while the operand is truthy.

        The condition is re-read from the operand at the top of each
        iteration, so the body must update it.
        """
        top, end = self._fresh("while"), self._fresh("wend")
        self.label(top)
        self.branch_ifnot(src, end)
        return _Block(self, top, end)

    def if_(self, src: Operand, negate: bool = False) -> _Block:
        """``with b.if_("flag"):`` — run the body when operand is truthy."""
        end = self._fresh("fi")
        if negate:
            self.branch_if(src, end)
        else:
            self.branch_ifnot(src, end)
        return _Block(self, "", end)

    def for_range(self, var: str, start: Operand, stop: Operand, step: int = 1) -> _Block:
        """``with b.for_range("i", 0, imm(10)):`` — a counted loop.

        ``var`` holds the loop index; mutating it inside the body is
        allowed (the increment applies to whatever value it holds).
        """
        top, end = self._fresh("for"), self._fresh("rof")
        self.mov(var, start)
        self.label(top)
        if step > 0:
            self.op("__cc", _lt, var, stop)
        else:
            self.op("__cc", _gt, var, stop)
        self.branch_ifnot("__cc", end)

        def _step() -> None:
            self.op(var, _add_const(step), var)

        return _Block(self, top, end, step=_step)

    # -- memory write behavior ----------------------------------------------
    def set_dirty_rate(self, bytes_per_cpu_s: float) -> "ProgramBuilder":
        """Declare how many bytes the program rewrites per CPU-second.

        The scheduler charges this against the process's memory as dirty
        pages while it consumes cycles (live-migration working set).
        """
        if bytes_per_cpu_s < 0:
            raise VosError(f"negative dirty rate {bytes_per_cpu_s}")
        self._dirty_rate = float(bytes_per_cpu_s)
        return self

    # -- finalize -----------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and freeze the program."""
        instrs = list(self._instrs)
        for idx, label in self._fixups:
            target = self._labels.get(label)
            if target is None:
                raise VosError(f"undefined label {label!r} in program {self.name!r}")
            old = instrs[idx]
            instrs[idx] = Instr(
                kind=old.kind, fn=old.fn, dst=old.dst, srcs=old.srcs,
                name=old.name, target=target, sense=old.sense,
            )
        return Program(self.name, dict(self.params), tuple(instrs),
                       dict(self._labels), dirty_rate=self._dirty_rate)


# ---------------------------------------------------------------------------
# tiny op library (module-level so programs stay reconstructible)
# ---------------------------------------------------------------------------


def _identity(x: Any) -> Any:
    return x


def _lt(a: Any, b: Any) -> bool:
    return a < b


def _gt(a: Any, b: Any) -> bool:
    return a > b


_ADD_CONST_CACHE: Dict[int, Callable[[Any], Any]] = {}


def _add_const(k: int) -> Callable[[Any], Any]:
    fn = _ADD_CONST_CACHE.get(k)
    if fn is None:
        def fn(x: Any, _k: int = k) -> Any:
            return x + _k

        _ADD_CONST_CACHE[k] = fn
    return fn
