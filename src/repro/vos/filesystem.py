"""A small virtual file system with mounts and chroot.

Each node owns a :class:`VFS` with a memory-backed root; shared storage
(the SAN of the paper's blade cluster) is a :class:`FileSystem` instance
mounted at the same path on every node, so pods see their files after
migrating — the paper's "shared storage infrastructure" assumption that
lets ZapC exclude file contents from checkpoint images.

Pods get their own namespace via a chroot prefix, mirroring Zap's
"chroot utility with file system stacking".
"""

from __future__ import annotations

import posixpath
from typing import Dict, List, Optional, Tuple

from ..errors import SyscallError, VosError


def normalize(path: str) -> str:
    """Normalize to an absolute, ``..``-free POSIX path."""
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return "/" if norm == "//" else norm


class File:
    """Regular file contents."""

    __slots__ = ("data",)

    def __init__(self, data: bytes = b"") -> None:
        self.data = bytearray(data)


class FileSystem:
    """One mountable file system: a flat path→file map plus a dir set.

    ``bandwidth`` (bytes/sec of simulated time) and ``latency`` model the
    backing store; the kernel charges them per read/write syscall.  A
    memory-backed root uses high bandwidth; the SAN uses Fibre-Channel
    figures.
    """

    def __init__(self, name: str, bandwidth: float = 4e9, latency: float = 0.0) -> None:
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.files: Dict[str, File] = {}
        self.dirs = {"/"}

    def transfer_delay(self, nbytes: int) -> float:
        """Simulated seconds to move ``nbytes`` to/from this store."""
        return self.latency + nbytes / self.bandwidth

    # -- structure ------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create a directory (parents must exist)."""
        path = normalize(path)
        parent = posixpath.dirname(path)
        if parent not in self.dirs:
            raise SyscallError("ENOENT", f"parent of {path} missing")
        if path in self.files:
            raise SyscallError("EEXIST", path)
        self.dirs.add(path)

    def exists(self, path: str) -> bool:
        """True when ``path`` names a file or directory."""
        path = normalize(path)
        return path in self.files or path in self.dirs

    def listdir(self, path: str) -> List[str]:
        """Names of entries directly under directory ``path``."""
        path = normalize(path)
        if path not in self.dirs:
            raise SyscallError("ENOTDIR", path)
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for candidate in list(self.files) + list(self.dirs):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    # -- file ops --------------------------------------------------------
    def create(self, path: str) -> File:
        """Create (or truncate) a regular file."""
        path = normalize(path)
        parent = posixpath.dirname(path)
        if parent not in self.dirs:
            raise SyscallError("ENOENT", f"parent of {path} missing")
        f = File()
        self.files[path] = f
        return f

    def lookup(self, path: str) -> File:
        """Return the file at ``path``; ENOENT if missing."""
        path = normalize(path)
        f = self.files.get(path)
        if f is None:
            raise SyscallError("ENOENT", path)
        return f

    def unlink(self, path: str) -> None:
        """Remove a regular file."""
        path = normalize(path)
        if path not in self.files:
            raise SyscallError("ENOENT", path)
        del self.files[path]


class OpenFile:
    """A file descriptor's view of an open regular file."""

    kind = "file"

    def __init__(self, fs: FileSystem, path: str, file: File, mode: str) -> None:
        self.fs = fs
        self.path = path
        self.file = file
        self.mode = mode
        self.pos = 0

    def read(self, n: int) -> bytes:
        """Read up to ``n`` bytes from the current position."""
        if "r" not in self.mode and "+" not in self.mode:
            raise SyscallError("EBADF", f"{self.path} not open for reading")
        data = bytes(self.file.data[self.pos:self.pos + n])
        self.pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write at the current position (overwrites then extends)."""
        if "w" not in self.mode and "a" not in self.mode and "+" not in self.mode:
            raise SyscallError("EBADF", f"{self.path} not open for writing")
        if "a" in self.mode:
            self.pos = len(self.file.data)
        end = self.pos + len(data)
        self.file.data[self.pos:end] = data
        self.pos = end
        return len(data)


class VFS:
    """Per-node view: a root file system plus mounted file systems."""

    def __init__(self, root: Optional[FileSystem] = None) -> None:
        self.root = root if root is not None else FileSystem("rootfs")
        #: mount point -> file system, longest-prefix wins.
        self.mounts: Dict[str, FileSystem] = {}

    def mount(self, path: str, fs: FileSystem) -> None:
        """Attach ``fs`` at ``path`` (which is created on the root)."""
        path = normalize(path)
        if path != "/" and not self.root.exists(path):
            # auto-create the mount point directory chain
            parts = path.strip("/").split("/")
            cur = ""
            for part in parts:
                cur += "/" + part
                if not self.root.exists(cur):
                    self.root.mkdir(cur)
        self.mounts[path] = fs

    def resolve(self, path: str, chroot: str = "/") -> Tuple[FileSystem, str]:
        """Map a (possibly chrooted) path to ``(filesystem, inner path)``."""
        if chroot != "/":
            path = normalize(chroot) + "/" + path.lstrip("/")
        path = normalize(path)
        best: Tuple[str, FileSystem] = ("/", self.root)
        for mp, fs in self.mounts.items():
            if (path == mp or path.startswith(mp + "/")) and len(mp) > len(best[0]):
                best = (mp, fs)
        mp, fs = best
        inner = path[len(mp):] if mp != "/" else path
        return fs, normalize(inner or "/")

    def open(self, path: str, mode: str, chroot: str = "/") -> OpenFile:
        """Open (creating for ``w``/``a``) and return an OpenFile."""
        fs, inner = self.resolve(path, chroot)
        if "w" in mode:
            f = fs.create(inner)
        elif "a" in mode:
            f = fs.files.get(inner) or fs.create(inner)
        else:
            f = fs.lookup(inner)
        return OpenFile(fs, inner, f, mode)


def ensure_dirs(fs: FileSystem, path: str) -> None:
    """mkdir -p equivalent for tests and pod setup."""
    path = normalize(path)
    if path == "/":
        return
    cur = ""
    for part in path.strip("/").split("/"):
        cur += "/" + part
        if cur not in fs.dirs:
            if cur in fs.files:
                raise VosError(f"{cur} is a file")
            fs.mkdir(cur)
