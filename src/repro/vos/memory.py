"""Accounted process memory.

A simulated process's resident set is *accounted*, not materialized: the
image records how many bytes each segment holds, and checkpoint sizes and
serialization times are derived from those byte counts.  Small amounts of
*real* data (the register file) live outside this class.  This mirrors
how the paper reports checkpoint image sizes that are dominated by
application memory (hundreds of MB) without us allocating hundreds of MB
per simulated process.
"""

from __future__ import annotations

from typing import Dict

from ..errors import VosError

#: Segment names every process starts with.
DEFAULT_SEGMENTS = ("text", "data", "stack", "heap")


class Memory:
    """Byte-accounted address space of one process.

    Segments are named (``text``, ``data``, ``stack``, ``heap`` by
    default, apps may add more, e.g. ``grid``).  ``alloc``/``free``
    adjust a segment; the total drives checkpoint image size.

    Alongside each segment's size the class keeps a *dirty counter*:
    bytes modified since the last :meth:`clear_dirty`.  The counter is
    runtime-only bookkeeping for pre-copy live migration — it is clamped
    to the segment size (a byte can only be dirty once) and it is never
    serialized, so checkpoint images are byte-identical whether or not
    anything tracks writes.
    """

    __slots__ = ("_segments", "_dirty")

    def __init__(self, text: int = 0, data: int = 0, stack: int = 0, heap: int = 0) -> None:
        self._segments: Dict[str, int] = {
            "text": int(text),
            "data": int(data),
            "stack": int(stack),
            "heap": int(heap),
        }
        # a freshly created address space has never been copied anywhere
        self._dirty: Dict[str, int] = dict(self._segments)

    @property
    def rss(self) -> int:
        """Total resident bytes across all segments."""
        return sum(self._segments.values())

    @property
    def dirty_bytes(self) -> int:
        """Total bytes written since the last :meth:`clear_dirty`."""
        return sum(self._dirty.values())

    def segment(self, name: str) -> int:
        """Bytes currently accounted to segment ``name`` (0 if absent)."""
        return self._segments.get(name, 0)

    def dirty_table(self) -> Dict[str, int]:
        """Per-segment dirty byte counts (a copy; zero entries included)."""
        return dict(self._dirty)

    def clear_dirty(self) -> None:
        """Mark every segment clean — call when a copy round starts."""
        for name in self._dirty:
            self._dirty[name] = 0

    def touch(self, nbytes: int, segment: str = None) -> None:
        """Record ``nbytes`` of in-place writes to ``segment``.

        With ``segment=None`` the writes land on the largest segment —
        the working set of a program that never named one (the scheduler's
        dirty-rate charging uses this).  Dirtiness saturates at the
        segment size; touching an absent or empty segment is a no-op
        (there is nothing to re-copy).
        """
        if nbytes <= 0:
            return
        if segment is None:
            if not self._segments:
                return
            segment = max(self._segments, key=lambda k: (self._segments[k], k))
        size = self._segments.get(segment, 0)
        if size <= 0:
            return
        self._dirty[segment] = min(size, self._dirty.get(segment, 0) + int(nbytes))

    def alloc(self, nbytes: int, segment: str = "heap") -> None:
        """Grow ``segment`` by ``nbytes`` (must be >= 0)."""
        if nbytes < 0:
            raise VosError(f"alloc of negative size {nbytes}")
        size = self._segments.get(segment, 0) + int(nbytes)
        self._segments[segment] = size
        # new pages are dirty: they exist only on this node
        self._dirty[segment] = min(size, self._dirty.get(segment, 0) + int(nbytes))

    def free(self, nbytes: int, segment: str = "heap") -> None:
        """Shrink ``segment`` by ``nbytes``; cannot go below zero."""
        current = self._segments.get(segment, 0)
        if nbytes < 0 or nbytes > current:
            raise VosError(f"free({nbytes}) from segment {segment!r} holding {current}")
        size = current - int(nbytes)
        self._segments[segment] = size
        # released pages need no copy; keep the invariant dirty <= size
        self._dirty[segment] = min(size, self._dirty.get(segment, 0))

    def resize(self, nbytes: int, segment: str = "heap") -> None:
        """Set ``segment`` to exactly ``nbytes``."""
        if nbytes < 0:
            raise VosError(f"resize to negative size {nbytes}")
        old = self._segments.get(segment, 0)
        size = int(nbytes)
        self._segments[segment] = size
        # a resize rewrites the delta in place (grow maps new pages,
        # shrink is covered by the clamp)
        delta = abs(size - old)
        self._dirty[segment] = min(size, self._dirty.get(segment, 0) + delta)

    # -- checkpoint support -------------------------------------------
    def to_image(self) -> Dict[str, int]:
        """Serializable snapshot of the segment table."""
        return dict(self._segments)

    @classmethod
    def from_image(cls, image: Dict[str, int]) -> "Memory":
        """Rebuild a Memory from :meth:`to_image` output."""
        mem = cls()
        mem._segments = {str(k): int(v) for k, v in image.items()}
        # a restored address space is fully dirty relative to any future
        # migration target — no round has copied it anywhere yet
        mem._dirty = dict(mem._segments)
        return mem

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Memory(rss={self.rss})"
