"""Accounted process memory.

A simulated process's resident set is *accounted*, not materialized: the
image records how many bytes each segment holds, and checkpoint sizes and
serialization times are derived from those byte counts.  Small amounts of
*real* data (the register file) live outside this class.  This mirrors
how the paper reports checkpoint image sizes that are dominated by
application memory (hundreds of MB) without us allocating hundreds of MB
per simulated process.
"""

from __future__ import annotations

from typing import Dict

from ..errors import VosError

#: Segment names every process starts with.
DEFAULT_SEGMENTS = ("text", "data", "stack", "heap")


class Memory:
    """Byte-accounted address space of one process.

    Segments are named (``text``, ``data``, ``stack``, ``heap`` by
    default, apps may add more, e.g. ``grid``).  ``alloc``/``free``
    adjust a segment; the total drives checkpoint image size.
    """

    __slots__ = ("_segments",)

    def __init__(self, text: int = 0, data: int = 0, stack: int = 0, heap: int = 0) -> None:
        self._segments: Dict[str, int] = {
            "text": int(text),
            "data": int(data),
            "stack": int(stack),
            "heap": int(heap),
        }

    @property
    def rss(self) -> int:
        """Total resident bytes across all segments."""
        return sum(self._segments.values())

    def segment(self, name: str) -> int:
        """Bytes currently accounted to segment ``name`` (0 if absent)."""
        return self._segments.get(name, 0)

    def alloc(self, nbytes: int, segment: str = "heap") -> None:
        """Grow ``segment`` by ``nbytes`` (must be >= 0)."""
        if nbytes < 0:
            raise VosError(f"alloc of negative size {nbytes}")
        self._segments[segment] = self._segments.get(segment, 0) + int(nbytes)

    def free(self, nbytes: int, segment: str = "heap") -> None:
        """Shrink ``segment`` by ``nbytes``; cannot go below zero."""
        current = self._segments.get(segment, 0)
        if nbytes < 0 or nbytes > current:
            raise VosError(f"free({nbytes}) from segment {segment!r} holding {current}")
        self._segments[segment] = current - int(nbytes)

    def resize(self, nbytes: int, segment: str = "heap") -> None:
        """Set ``segment`` to exactly ``nbytes``."""
        if nbytes < 0:
            raise VosError(f"resize to negative size {nbytes}")
        self._segments[segment] = int(nbytes)

    # -- checkpoint support -------------------------------------------
    def to_image(self) -> Dict[str, int]:
        """Serializable snapshot of the segment table."""
        return dict(self._segments)

    @classmethod
    def from_image(cls, image: Dict[str, int]) -> "Memory":
        """Rebuild a Memory from :meth:`to_image` output."""
        mem = cls()
        mem._segments = {str(k): int(v) for k, v in image.items()}
        return mem

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Memory(rss={self.rss})"
