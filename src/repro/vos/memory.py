"""Accounted process memory.

A simulated process's resident set is *accounted*, not materialized: the
image records how many bytes each segment holds, and checkpoint sizes and
serialization times are derived from those byte counts.  Small amounts of
*real* data (the register file) live outside this class.  This mirrors
how the paper reports checkpoint image sizes that are dominated by
application memory (hundreds of MB) without us allocating hundreds of MB
per simulated process.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import VosError

#: Segment names every process starts with.
DEFAULT_SEGMENTS = ("text", "data", "stack", "heap")

#: The consumer name behind the bare dirty API (``dirty_bytes``,
#: ``clear_dirty()``), kept for the pre-generational callers and tests.
DEFAULT_CONSUMER = "default"


class Memory:
    """Byte-accounted address space of one process.

    Segments are named (``text``, ``data``, ``stack``, ``heap`` by
    default, apps may add more, e.g. ``grid``).  ``alloc``/``free``
    adjust a segment; the total drives checkpoint image size.

    Alongside each segment's size the class keeps *generational dirty
    counters*: bytes modified since a named **consumer** last cleared its
    baseline.  Consumers are independent — incremental checkpoints
    (``"ckpt"``) and live-migration pre-copy rounds (``"precopy"``) each
    see the writes since *their own* last generation, so one clearing its
    baseline cannot make the other undercount.  A consumer that has never
    cleared sees everything dirty (nothing was ever copied on its
    behalf); that is also why no consumer table is materialized until the
    first :meth:`clear_dirty` — absence *is* the fully-dirty baseline.

    Counters are runtime-only bookkeeping: each is clamped to the segment
    size (a byte can only be dirty once per generation) and none is ever
    serialized, so checkpoint images are byte-identical whether or not
    anything tracks writes.

    Baseline clears can be *transactional* (:meth:`begin_clear` /
    :meth:`commit_clear` / :meth:`abort_clear`): a copy round stages the
    clear when it starts — writes landing mid-flight accrue to the next
    generation — and only an acknowledged round commits it.  An aborted
    round folds the staged dirtiness back in, so bytes the destination
    never acknowledged stay dirty.
    """

    __slots__ = ("_segments", "_dirty", "_staged")

    def __init__(self, text: int = 0, data: int = 0, stack: int = 0, heap: int = 0) -> None:
        self._segments: Dict[str, int] = {
            "text": int(text),
            "data": int(data),
            "stack": int(stack),
            "heap": int(heap),
        }
        # no consumer has cleared yet: every baseline is the implicit
        # fully-dirty one (a fresh address space was never copied anywhere)
        self._dirty: Dict[str, Dict[str, int]] = {}
        #: staged (uncommitted) clears: consumer -> dirty table at stage time.
        self._staged: Dict[str, Dict[str, int]] = {}

    @property
    def rss(self) -> int:
        """Total resident bytes across all segments."""
        return sum(self._segments.values())

    @property
    def dirty_bytes(self) -> int:
        """Default consumer's total dirty bytes (bare / legacy API)."""
        return self.dirty_in(DEFAULT_CONSUMER)

    def dirty_in(self, consumer: str) -> int:
        """Total bytes written since ``consumer`` last cleared its baseline."""
        return sum(self.dirty_table(consumer).values())

    def segment(self, name: str) -> int:
        """Bytes currently accounted to segment ``name`` (0 if absent)."""
        return self._segments.get(name, 0)

    def dirty_table(self, consumer: str = DEFAULT_CONSUMER) -> Dict[str, int]:
        """Per-segment dirty byte counts for ``consumer`` (a copy; zero
        entries included).  A consumer that never cleared sees every
        segment fully dirty."""
        table = self._dirty.get(consumer)
        if table is None:
            return dict(self._segments)
        return {name: table.get(name, 0) for name in self._segments}

    def clear_dirty(self, consumer: str = DEFAULT_CONSUMER) -> None:
        """Mark every segment clean for ``consumer`` — call when that
        consumer's copy round starts (unconditional form; see
        :meth:`begin_clear` for the ack-gated variant)."""
        self._dirty[consumer] = {name: 0 for name in self._segments}
        self._staged.pop(consumer, None)

    # -- transactional (ack-gated) clears ------------------------------
    def begin_clear(self, consumer: str) -> int:
        """Stage a baseline clear for ``consumer``; returns the dirty
        byte total being staged.  Writes from here on accrue to the new
        generation; :meth:`commit_clear` makes the clear final,
        :meth:`abort_clear` folds the staged dirtiness back in."""
        staged = self.dirty_table(consumer)
        self._staged[consumer] = staged
        self._dirty[consumer] = {name: 0 for name in self._segments}
        return sum(staged.values())

    def commit_clear(self, consumer: str) -> None:
        """The copy round was acknowledged: drop the staged dirtiness."""
        self._staged.pop(consumer, None)

    def abort_clear(self, consumer: str) -> None:
        """The copy round failed: bytes the destination never
        acknowledged are still dirty — merge the staged table back
        (saturating at segment size, like any write)."""
        staged = self._staged.pop(consumer, None)
        if staged is None:
            return
        table = self._dirty.setdefault(consumer, {})
        for name, size in self._segments.items():
            merged = table.get(name, 0) + staged.get(name, 0)
            table[name] = min(size, merged)

    def reset_dirty(self, consumer: str) -> None:
        """Forget ``consumer``'s baseline entirely — back to fully dirty.

        The conservative rollback for a *committed* clear that later has
        to be undone (a garbage-collected checkpoint after local commit):
        the exact pre-clear counters are gone, so the next generation
        charges everything rather than undercounting."""
        self._dirty.pop(consumer, None)
        self._staged.pop(consumer, None)

    def touch(self, nbytes: int, segment: Optional[str] = None) -> None:
        """Record ``nbytes`` of in-place writes to ``segment``.

        With ``segment=None`` the writes land on the largest segment —
        the working set of a program that never named one (the scheduler's
        dirty-rate charging uses this).  Dirtiness saturates at the
        segment size; touching an absent or empty segment is a no-op
        (there is nothing to re-copy).  Every materialized consumer
        baseline advances; implicit (never-cleared) baselines are already
        fully dirty.
        """
        if nbytes <= 0:
            return
        if segment is None:
            if not self._segments:
                return
            segment = max(self._segments, key=lambda k: (self._segments[k], k))
        size = self._segments.get(segment, 0)
        if size <= 0:
            return
        for table in self._dirty.values():
            table[segment] = min(size, table.get(segment, 0) + int(nbytes))

    def alloc(self, nbytes: int, segment: str = "heap") -> None:
        """Grow ``segment`` by ``nbytes`` (must be >= 0)."""
        if nbytes < 0:
            raise VosError(f"alloc of negative size {nbytes}")
        size = self._segments.get(segment, 0) + int(nbytes)
        self._segments[segment] = size
        # new pages are dirty for every consumer: they exist only here
        for table in self._dirty.values():
            table[segment] = min(size, table.get(segment, 0) + int(nbytes))

    def free(self, nbytes: int, segment: str = "heap") -> None:
        """Shrink ``segment`` by ``nbytes``; cannot go below zero."""
        current = self._segments.get(segment, 0)
        if nbytes < 0 or nbytes > current:
            raise VosError(f"free({nbytes}) from segment {segment!r} holding {current}")
        size = current - int(nbytes)
        self._segments[segment] = size
        # released pages need no copy; keep the invariant dirty <= size
        for table in self._dirty.values():
            table[segment] = min(size, table.get(segment, 0))

    def resize(self, nbytes: int, segment: str = "heap") -> None:
        """Set ``segment`` to exactly ``nbytes``."""
        if nbytes < 0:
            raise VosError(f"resize to negative size {nbytes}")
        old = self._segments.get(segment, 0)
        size = int(nbytes)
        self._segments[segment] = size
        # a resize rewrites the delta in place (grow maps new pages,
        # shrink is covered by the clamp)
        delta = abs(size - old)
        for table in self._dirty.values():
            table[segment] = min(size, table.get(segment, 0) + delta)

    # -- checkpoint support -------------------------------------------
    def to_image(self) -> Dict[str, int]:
        """Serializable snapshot of the segment table."""
        return dict(self._segments)

    @classmethod
    def from_image(cls, image: Dict[str, int]) -> "Memory":
        """Rebuild a Memory from :meth:`to_image` output."""
        mem = cls()
        mem._segments = {str(k): int(v) for k, v in image.items()}
        # a restored address space is fully dirty relative to every
        # consumer — no round has copied it anywhere yet (the empty
        # consumer map *is* the implicit fully-dirty baseline)
        mem._dirty = {}
        mem._staged = {}
        return mem

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Memory(rss={self.rss})"
