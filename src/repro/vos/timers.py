"""Per-process OS timers, expressed in *virtual* time.

Timers are the second half of the paper's time-virtualization story: at
restart, "standard operating system timers owned by the application are
also virtualized — their expiry time is set by calculating the delta
between the original clock and the current one".  To support that, every
timer records its expiry in the owning pod's virtual clock; the
checkpoint stores the *remaining* virtual duration, and restart re-arms
the timer with that remainder (when virtualization is on) or with the
original absolute expiry (when off, which may fire immediately — the
"undesired effect" the paper describes).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import VosError


class Timer:
    """One armed (or fired) timer owned by a process."""

    __slots__ = ("tid", "pid", "vexpiry", "fired", "handle", "waiter")

    def __init__(self, tid: int, pid: int, vexpiry: float) -> None:
        self.tid = tid
        self.pid = pid
        #: Expiry in the owner's *virtual* clock.
        self.vexpiry = vexpiry
        self.fired = False
        #: Engine event handle (so re-arming/cancel can cancel it).
        self.handle: Optional[Any] = None
        #: Process blocked in ``waittimer``, if any.
        self.waiter: Optional[Any] = None

    def to_image(self, vnow: float) -> Dict[str, Any]:
        """Checkpoint record: remaining virtual time, not absolute expiry."""
        return {
            "tid": self.tid,
            "pid": self.pid,
            "vexpiry": self.vexpiry,
            "remaining": max(0.0, self.vexpiry - vnow),
            "fired": self.fired,
        }


class TimerTable:
    """All timers on one node, keyed by timer id."""

    def __init__(self) -> None:
        self._timers: Dict[int, Timer] = {}
        self._next_tid = 1

    def create(self, pid: int, vexpiry: float) -> Timer:
        """Allocate and record a new timer."""
        timer = Timer(self._next_tid, pid, vexpiry)
        self._next_tid += 1
        self._timers[timer.tid] = timer
        return timer

    def adopt(self, timer: Timer) -> None:
        """Insert a restored timer, keeping tid allocation ahead of it."""
        if timer.tid in self._timers:
            raise VosError(f"timer id {timer.tid} already present")
        self._timers[timer.tid] = timer
        self._next_tid = max(self._next_tid, timer.tid + 1)

    def get(self, tid: int) -> Timer:
        """Look up a timer; raises VosError if absent."""
        timer = self._timers.get(tid)
        if timer is None:
            raise VosError(f"no timer {tid}")
        return timer

    def maybe_get(self, tid: int) -> Optional[Timer]:
        """Look up a timer, returning None if absent."""
        return self._timers.get(tid)

    def remove(self, tid: int) -> None:
        """Drop a timer (cancelling is the caller's job)."""
        self._timers.pop(tid, None)

    def owned_by(self, pids: set) -> List[Timer]:
        """All timers owned by any pid in ``pids`` (checkpoint sweep)."""
        return [t for t in self._timers.values() if t.pid in pids]
