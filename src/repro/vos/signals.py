"""Signal constants and semantics notes.

Only the signals the paper's mechanisms rely on are modelled:

* ``SIGSTOP`` — freezes a process at its next scheduler-slice boundary
  (or immediately when it is blocked/runnable).  The ZapC Agent sends it
  to every process in a pod as the first step of a checkpoint, "to
  prevent those processes from being altered during checkpoint".
* ``SIGCONT`` — resumes a stopped process; if a blocking syscall
  completed while the process was stopped, the parked result is
  delivered at that point.
* ``SIGKILL`` — terminates the process, releasing its descriptors (used
  when a pod is destroyed after a migration checkpoint).

Delivery is implemented by :class:`repro.vos.kernel.Kernel.send_signal`.
"""

from __future__ import annotations

SIGSTOP = "SIGSTOP"
SIGCONT = "SIGCONT"
SIGKILL = "SIGKILL"

ALL_SIGNALS = (SIGSTOP, SIGCONT, SIGKILL)
