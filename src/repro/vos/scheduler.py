"""Round-robin multi-CPU scheduler for one node.

Each node has ``ncpus`` CPUs; runnable processes share a single run
queue.  A dispatched process executes up to one quantum of cycles
*eagerly* (the interpreter mutates its registers immediately) and the
CPU is then held busy for the corresponding simulated duration; effects
visible to other actors — syscalls, exits — are applied only when the
slice's simulated time has elapsed.  Signals (SIGSTOP in particular)
take effect at slice boundaries, as in a real kernel where signal
delivery happens on the user/kernel boundary.

Dual-processor blades in the paper's testbed map to ``ncpus=2`` here.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, TYPE_CHECKING

from .process import Process, RUNNABLE, RUNNING

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


#: Longest pure-compute burn executed as a single event when the CPU has
#: no competition (seconds * hz set at scheduler construction).
BURN_SLICE_S = 0.25


class Scheduler:
    """Run queue + CPUs for one :class:`~repro.vos.kernel.Kernel`.

    Two kinds of slices:

    * *interpreter slices* — up to one quantum of instructions, executed
      eagerly (never preempted mid-slice; signals land at the boundary);
    * *burn slices* — when a process's ``compute_remaining`` is pending,
      cycles are consumed as a single long event (up to
      :data:`BURN_SLICE_S` when the run queue is empty).  Burning has no
      side effects, so a burn **can** be preempted exactly: a signal
      cancels the event and refunds the unburned cycles.  This keeps
      event counts low for compute-bound workloads without inflating
      SIGSTOP latency.
    """

    def __init__(self, kernel: "Kernel", ncpus: int, quantum_cycles: int) -> None:
        self.kernel = kernel
        self.ncpus = ncpus
        self.quantum_cycles = int(quantum_cycles)
        self.runq: Deque[Process] = deque()
        self._queued: set = set()
        #: CPU slots; each holds the pid it is running or None when idle.
        self.cpus: List[Optional[int]] = [None] * ncpus
        #: Total busy cycles per CPU (utilization accounting).
        self.busy_cycles: List[int] = [0] * ncpus
        #: pid -> (cpu, event handle, start time, burn cycles) for
        #: in-flight burn slices (preemption bookkeeping).
        self._burns: dict = {}

    # ------------------------------------------------------------------
    def enqueue(self, proc: Process) -> None:
        """Make ``proc`` eligible to run (idempotent)."""
        if proc.state != RUNNABLE or proc.stopped or proc.pid in self._queued:
            return
        self.runq.append(proc)
        self._queued.add(proc.pid)
        self.kick()

    def kick(self) -> None:
        """Dispatch queued processes onto idle CPUs."""
        while self.runq and None in self.cpus:
            proc = self.runq.popleft()
            self._queued.discard(proc.pid)
            # Stale entries: the process may have been stopped or killed
            # while waiting in the queue.
            if proc.state != RUNNABLE or proc.stopped:
                continue
            cpu = self.cpus.index(None)
            self._dispatch(cpu, proc)

    def _dispatch(self, cpu: int, proc: Process) -> None:
        proc.state = RUNNING
        self.cpus[cpu] = proc.pid
        if proc.compute_remaining > 0:
            cap = int(BURN_SLICE_S * self.kernel.hz) if not self.runq else self.quantum_cycles
            burn = min(proc.compute_remaining, max(cap, self.quantum_cycles))
            handle = self.kernel.engine.schedule(
                burn / self.kernel.hz, self._burn_done, cpu, proc, burn)
            self._burns[proc.pid] = (cpu, handle, self.kernel.engine.now, burn)
            return
        used, reason, payload = proc.step(self.quantum_cycles)
        self.busy_cycles[cpu] += used
        self._charge_dirty(proc, used)
        delay = used / self.kernel.hz
        self.kernel.engine.schedule(delay, self._slice_done, cpu, proc, reason, payload)

    def _charge_dirty(self, proc: Process, cycles: int) -> None:
        """Account memory writes for ``cycles`` of execution.

        Pure bookkeeping against the process's dirty counters — consumes
        no simulated time, so dirty tracking never perturbs schedules.
        """
        rate = proc.program.dirty_rate
        if rate > 0.0 and cycles > 0:
            proc.memory.touch(int(cycles * rate / self.kernel.hz))

    def _burn_done(self, cpu: int, proc: Process, burn: int) -> None:
        self._burns.pop(proc.pid, None)
        proc.compute_remaining -= burn
        proc.cpu_cycles += burn
        self.busy_cycles[cpu] += burn
        self._charge_dirty(proc, burn)
        self._slice_done(cpu, proc, "quantum", None)

    def preempt_burn(self, proc: Process) -> bool:
        """Interrupt an in-flight burn slice exactly at the current time.

        Returns True when the process was burning (it is off-CPU with its
        cycle accounts settled when this returns).
        """
        entry = self._burns.pop(proc.pid, None)
        if entry is None:
            return False
        cpu, handle, start, burn = entry
        handle.cancel()
        elapsed = int(round((self.kernel.engine.now - start) * self.kernel.hz))
        consumed = min(burn, max(0, elapsed))
        proc.compute_remaining -= consumed
        proc.cpu_cycles += consumed
        self.busy_cycles[cpu] += consumed
        self._charge_dirty(proc, consumed)
        self.cpus[cpu] = None
        self.kick()
        return True

    def _slice_done(self, cpu: int, proc: Process, reason: str, payload: object) -> None:
        self.cpus[cpu] = None
        self.kernel.on_slice_end(proc, reason, payload)
        self.kick()

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no CPU is running anything and the queue is empty."""
        return not self.runq and all(slot is None for slot in self.cpus)
