"""Network-state checkpoint and restore (Section 5 of the paper).

Capture, per socket:

* **socket parameters** — the entire option set, through the same
  key/value surface ``getsockopt``/``setsockopt`` expose;
* **receive queue** — a *destructive read through the standard
  interface* (which takes the socket lock, draining the backlog — the
  data peek-based approaches miss) while simultaneously re-injecting the
  data into an :class:`~repro.core.altqueue.AltQueue`, so an application
  that resumes after a snapshot still reads it first; urgent/OOB data is
  captured the same way via ``MSG_OOB``;
* **send queue** — a non-destructive walk of the in-kernel send buffers;
* **protocol-specific state** — for reliable protocols, exactly the PCB
  sequence numbers (*sent*, *acked*, *recv*); for unreliable protocols,
  nothing beyond the queues (datagram queues are directly inspectable).

Restore (on the already re-established connection): options first, then
the alternate receive queue, then the send queue re-sent by ordinary
writes after discarding the overlap the Manager computed, then the
half-duplex/closed shutdown state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import CheckpointError
from ..net.sockets import MSG_OOB, NetStack, Socket
from . import codec
from ..net.sockopt import validate_option
from ..net.tcp import ESTABLISHED, TcpConn
from ..pod.pod import Pod
from .altqueue import AltQueue, install

#: chunk size for the capture read loop.
_READ_CHUNK = 65536
#: per-record fixed share of the netstate accounting: endpoints, flags
#: and shutdown state (small scalars the record always carries).
_ENDPOINT_OVERHEAD = 48


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------


def capture_socket(stack: NetStack, sock: Socket) -> Dict[str, Any]:
    """Capture one socket's full state into a serializable record."""
    rec: Dict[str, Any] = {
        "sock_id": sock.sock_id,
        "proto": sock.proto,
        "local": tuple(sock.local) if sock.local else None,
        "remote": tuple(sock.remote) if sock.remote else None,
        "listening": sock.listening,
        "origin": ("accepted" if sock.listener is not None else "initiated"),
        "options": dict(sock.options),
        "rd_closed": sock.rd_closed,
        "meta_state": None,
        "recv_data": b"",
        "oob_data": b"",
        "send_data": b"",
        "pcb": None,
        "fin_sent": False,
        "fin_rcvd": False,
        "datagrams": [],
        "peeked": False,
        "default_peer": None,
        "pending_accept_of": None,
    }
    if sock.proto == "tcp":
        _capture_tcp(stack, sock, rec)
    else:
        _capture_datagram(sock, rec)
    return rec


def _capture_tcp(stack: NetStack, sock: Socket, rec: Dict[str, Any]) -> None:
    conn: TcpConn = sock.conn
    if sock.listening:
        return
    # Take the socket lock FIRST: draining the backlog can advance
    # rcv_nxt, and the PCB snapshot must reflect everything the queues
    # will contain.  (Snapshotting the PCB before the drain understates
    # ``recv``, shrinking the peer's overlap discard and duplicating
    # exactly the backlogged bytes after restart.)
    conn.process_backlog()
    rec["meta_state"] = conn.meta_state()
    rec["pcb"] = conn.pcb.snapshot()
    rec["fin_sent"] = conn.fin_sent
    rec["fin_rcvd"] = conn.fin_rcvd
    rec["peeked"] = conn.peeked

    # Destructive read through the dispatch vector.  Reading through the
    # standard path (a) takes the socket lock, draining the backlog, and
    # (b) consumes any live alternate queue first, which is exactly the
    # "checkpoint must save the state of the alternate queue" case.
    chunks: List[bytes] = []
    while True:
        value = sock.dispatch["recvmsg"](stack, sock, _READ_CHUNK, 0)
        if not isinstance(value, (bytes, bytearray)) or value == b"":
            break
        chunks.append(bytes(value))
    data = b"".join(chunks)

    oob_chunks: List[bytes] = []
    while True:
        value = sock.dispatch["recvmsg"](stack, sock, _READ_CHUNK, MSG_OOB)
        if not isinstance(value, (bytes, bytearray)) or value == b"":
            break
        oob_chunks.append(bytes(value))
    oob = b"".join(oob_chunks)

    rec["recv_data"] = data
    rec["oob_data"] = oob
    # ... while at the same time injecting it back: the application (if
    # this checkpoint is a snapshot rather than a migration) must still
    # read this data before anything newly arriving.
    if data or oob:
        install(sock, AltQueue(data, oob))

    # Send queue: non-destructive in-kernel walk.
    rec["send_data"] = conn.walk_send_queue()


def _capture_datagram(sock: Socket, rec: Dict[str, Any]) -> None:
    dconn = sock.conn
    # Datagram queues are plain lists of buffers: directly inspectable
    # without side effects (no reinjection dance needed).
    rec["datagrams"] = [(bytes(d), tuple(src)) for d, src in dconn.recv_q]
    rec["peeked"] = dconn.peeked
    rec["default_peer"] = tuple(dconn.default_peer) if dconn.default_peer else None


def capture_pod_network(pod: Pod) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Capture every socket reachable from a pod's processes.

    Returns ``(socket_records, fd_table)`` where the fd table rows are
    ``{"vpid", "fd", "sock_id"}`` links used at restart to transplant
    restored sockets back into process fd tables.  Sockets parked in a
    listener's accept queue (established but never accepted) are captured
    too, flagged with ``pending_accept_of``.
    """
    stack: NetStack = pod.kernel.netstack
    records: List[Dict[str, Any]] = []
    fd_table: List[Dict[str, Any]] = []
    seen: set = set()
    for proc, fd, sock in stack.sockets_of(pod.processes()):
        if sock.sock_id not in seen:
            seen.add(sock.sock_id)
            records.append(capture_socket(stack, sock))
        fd_table.append({"vpid": proc.vpid, "fd": fd, "sock_id": sock.sock_id})
        if sock.listening:
            for child in sock.accept_q:
                if child.sock_id in seen:
                    continue
                seen.add(child.sock_id)
                child_rec = capture_socket(stack, child)
                child_rec["pending_accept_of"] = sock.sock_id
                records.append(child_rec)
    return records, fd_table


def netstate_nbytes(records: List[Dict[str, Any]]) -> int:
    """Bytes of captured network state (queues + options), the quantity
    the paper reports as "only a few kilobytes"."""
    total = 0
    for rec in records:
        total += len(rec["recv_data"]) + len(rec["oob_data"]) + len(rec["send_data"])
        total += sum(len(d) for d, _ in rec["datagrams"])
        # socket parameters and protocol control block, measured exactly
        # in the intermediate format (the counting writer never builds
        # the buffer, so this stays cheap per sample)
        total += codec.encoded_size(rec["options"]) + codec.encoded_size(rec["pcb"])
        total += _ENDPOINT_OVERHEAD
    return total


# ---------------------------------------------------------------------------
# network block window
# ---------------------------------------------------------------------------


def block_pod_network(cluster, stack: NetStack, pod: Pod, node: str = None,
                      parent=None):
    """Raise the netfilter around a pod and open its trace window.

    The paper's protocol keeps the pod's network silent from suspend
    until the Manager's ``continue`` — this helper pairs the filter rule
    with an ``agent.net_block`` window span so an exported trace shows
    exactly how long every pod was dark.  Returns the window span (a
    no-op object when no tracer is installed); close it with
    :func:`unblock_pod_network`.
    """
    stack.netfilter.block_ip(pod.vip)
    return cluster.span("agent.net_block", node=node, pod=pod.id,
                        parent=parent, category="window")


def unblock_pod_network(stack: NetStack, pod: Pod, window,
                        status: str = "ok") -> None:
    """Drop the netfilter rule and close the block-window span."""
    stack.netfilter.unblock_ip(pod.vip)
    window.end(status=status)


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------


def restore_socket_state(
    stack: NetStack,
    sock: Socket,
    rec: Dict[str, Any],
    send_discard: int = 0,
    redirect_extra: bytes = b"",
) -> None:
    """Reinstate one socket's checkpointed state on a live socket.

    ``sock`` is the freshly re-established connection (or re-created
    datagram socket); ``send_discard`` is the overlap trim the Manager
    computed; ``redirect_extra`` is the peer's migrated send-queue data
    to append to the alternate queue (the Section 5 optimization),
    already trimmed by the peer's own discard.
    """
    # socket parameters, the full set, via the standard interface
    for name, value in rec["options"].items():
        sock.options[name] = validate_option(sock.proto, name, value)
    sock.rd_closed = rec["rd_closed"]

    if sock.proto != "tcp":
        dconn = sock.conn
        for data, src in rec["datagrams"]:
            dconn.recv_q.append((bytes(data), _ep(src)))
        dconn.peeked = rec["peeked"]
        if rec["default_peer"] is not None:
            dconn.default_peer = _ep(rec["default_peer"])
        if rec["datagrams"]:
            sock.on_readable()
        return

    if sock.listening or rec["listening"]:
        return  # listeners have no queue state

    conn: TcpConn = sock.conn
    conn.peeked = rec["peeked"]
    # alternate receive queue: restored data is read before new data
    alt_data = rec["recv_data"] + redirect_extra
    if alt_data or rec["oob_data"]:
        install(sock, AltQueue(alt_data, rec["oob_data"]))
        sock.on_readable()

    # send queue: discard the overlap, re-send the rest by plain writes
    send_data = rec["send_data"]
    if redirect_extra_consumed(rec):
        send_data = b""  # travelled inside the peer's checkpoint stream
    elif send_discard:
        if send_discard > len(send_data):
            raise CheckpointError(
                f"overlap {send_discard} exceeds send queue {len(send_data)}"
            )
        send_data = send_data[send_discard:]
    if send_data and not redirect_extra_consumed(rec):
        if conn.state != ESTABLISHED:
            raise CheckpointError(f"send-queue restore on unconnected socket {sock!r}")
        conn.app_write(bytes(send_data))

    # connection status: half-duplex/closed get their shutdown applied
    # "after the rest of its state has been recovered"
    if rec["fin_sent"]:
        conn.app_close()


def redirect_extra_consumed(rec: Dict[str, Any]) -> bool:
    """True when this socket's send queue was shipped to the peer's
    alternate queue instead (migration redirect optimization)."""
    return bool(rec.get("send_redirected", False))


def _ep(pair: Any):
    from ..net.addr import Endpoint

    return Endpoint(pair[0], int(pair[1]))
