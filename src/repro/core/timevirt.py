"""Time virtualization across checkpoint-restart.

"During restart we compute the delta between the current time and the
current time as recorded during checkpoint.  Responses to subsequent
inquiries of the time are then biased by that delay.  Standard operating
system timers owned by the application are also virtualized ... We note
that this sort of virtualization is optional, and can be turned on or
off per application as necessary."

Pods already report virtual time (``engine.now + pod.time_offset``);
this module computes the offset at restart and re-arms checkpointed
timers — with their *remaining* duration when virtualization is on, or
at their original absolute expiry (possibly already past — the
"undesired effect") when off.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..pod.pod import Pod
from ..vos.kernel import _fire_timer


def apply_clock(pod: Pod, vtime_at_checkpoint: float, enabled: bool) -> float:
    """Set the pod's clock offset after a restart.

    Returns the delta (checkpoint→restart gap) for reporting.  With
    virtualization the pod's virtual clock continues from the checkpoint
    instant; without it the pod sees real time jump forward.
    """
    now = pod.kernel.engine.now
    delta = now - vtime_at_checkpoint
    pod.time_offset = (vtime_at_checkpoint - now) if enabled else 0.0
    pod.time_virtualization = enabled
    return delta


def capture_timers(pod: Pod) -> List[Dict[str, Any]]:
    """Checkpoint every timer owned by the pod's processes.

    Records virtual timer ids (stable across migration) and remaining
    virtual durations.
    """
    kernel = pod.kernel
    sample = next(iter(pod.processes()), None)
    vnow = kernel.vnow(sample) if sample is not None else kernel.engine.now
    images = []
    for timer in kernel.timers.owned_by(set(pod.pids)):
        image = timer.to_image(vnow)
        image["vtid"] = pod.vtimer_of(timer.tid)
        image["vpid"] = kernel.procs[timer.pid].vpid
        images.append(image)
    return images


def restore_timers(pod: Pod, timer_images: List[Dict[str, Any]], enabled: bool) -> None:
    """Re-arm checkpointed timers on the restart node.

    * virtualization on: expiry = now + checkpointed remaining time;
    * virtualization off: expiry = the original *virtual* instant read
      against the un-biased clock — if that is already past, the timer
      fires immediately (the behaviour applications with their own
      timeout layers experience without ZapC's virtualization).
    """
    kernel = pod.kernel
    for image in timer_images:
        owner = kernel.procs[pod.namespace.to_real(image["vpid"])]
        if enabled:
            delay = float(image["remaining"])
            vexpiry = kernel.vnow(owner) + delay
        else:
            vexpiry = float(image["vexpiry"])
            delay = max(0.0, vexpiry - kernel.engine.now)
        timer = kernel.timers.create(owner.pid, vexpiry)
        if image["vtid"] is not None:
            pod.bind_timer(timer.tid, vtid=int(image["vtid"]))
        if image["fired"]:
            timer.fired = True
        else:
            timer.handle = kernel.engine.schedule(delay, _fire_timer, kernel, timer.tid)
