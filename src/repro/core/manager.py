"""The ZapC Manager: the coordination front-end.

"Our coordinated checkpointing scheme consists of a Manager client that
orchestrates the operation and a set of Agents, one on each node. ...
It accepts a user's checkpoint or restart request and translates it into
a set of commands to the Agents."  Requests are lists of
``«node, pod, URI»`` tuples.

The Manager enforces the protocol's **single synchronization point**: it
broadcasts ``checkpoint``, collects every Agent's meta-data, and only
then broadcasts ``continue`` — the sync that prevents any pod from
resuming network activity before every pod has frozen its state.  On
restart there is no barrier at all: each Agent proceeds as soon as it
has the merged connectivity plan; synchronization is induced only by
connection establishment itself.

Failure semantics: the Manager keeps reliable connections to all Agents
for the duration of an operation.  Each protocol phase (connect, meta,
continue-barrier, done, flush) carries its own timeout
(:class:`PhaseTimeouts`), so a single stalled Agent is detected at the
phase where it stalls rather than at a coarse global deadline;
idempotent phases (connect, restart image load) are retried with
exponential backoff.  A failed operation is aborted gracefully: every
still-running protocol task is reaped, every reachable Agent is told to
abort (resuming its pod), partial checkpoint images are garbage
collected from the SAN and from destination Agents' stores, and the
Manager verifies that the pods actually resumed.  :meth:`Manager.recover`
closes the loop of the paper's motivating use case: detect a crashed
node and restart its pods elsewhere from the last good checkpoint.

**HA Manager.**  The Manager itself is stateless across phases: each
operation is an explicit state machine (:class:`OpMachine`) whose every
phase transition is appended to the durable op ledger
(:class:`repro.storage.ledger.OpLedger`, a JSONL write-ahead log on the
SAN) *before* the phase's actions run, and announced as a
``manager.ledger.*`` trace crossing.  If the Manager fail-stops
(:meth:`Manager.crash`), a replica deployed with
:meth:`Manager.deploy_replica` scans the ledger, claims each orphaned
op once its owner's lease expires, and — per op — resumes from the
last durable phase (checkpoints past the continue broadcast are
finished and committed; restarts with a durable plan are re-driven for
the missing pods) or aborts through the same tombstone-GC path a
normal failure takes.  Agents cooperate via the continue-wait
re-attach: a session parked at the barrier can be completed or aborted
by a *different* Manager connection (see ``continue_op`` / ``gc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.builder import Cluster
from ..cluster.node import Node
from ..sim.tasks import Future, Task, all_of
from ..storage.ledger import OpLedger
from ..vos.syscalls import Errno
from . import codec
from .agent import AGENT_PORT, Agent, deploy_agents
from .meta import derive_restart_plan
from .pipeline import FileSink
from .wire import recv_msg, send_msg

#: «node, pod, URI» — the request tuple of Section 4.
Target = Tuple[str, str, str]

#: how long one ledger record keeps an op owned before a replica may
#: claim it.  Each phase record renews the lease, so a live Manager
#: never loses an op; a dead one loses it one lease after its last
#: durable phase.
DEFAULT_LEASE_S = 30.0


@dataclass
class PhaseTimeouts:
    """Per-phase failure-detection deadlines and the retry policy.

    The global ``deadline`` argument of the operations remains a hard
    cap; these bound each protocol phase individually so a hang is
    detected at the phase where it happens.  ``connect`` and the restart
    image ``load`` are idempotent and retried with exponential backoff
    (``backoff_base * backoff_factor**attempt``); the checkpoint command
    itself is not idempotent (it suspends the pod) and is never retried.
    ``drain`` bounds how long a failed operation waits for its remaining
    protocol tasks (and abort acknowledgements) before reaping them.
    """

    connect: float = 5.0
    meta: float = 15.0
    barrier: float = 15.0
    done: float = 30.0
    flush: float = 120.0
    load: float = 20.0
    restart_done: float = 60.0
    drain: float = 10.0
    connect_retries: int = 2
    load_retries: int = 2
    backoff_base: float = 0.2
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * (self.backoff_factor ** attempt)


@dataclass
class OpResult:
    """Outcome of one coordinated operation, as measured by the Manager.

    ``duration`` is invocation → all pods reported done — the quantity
    Figures 6(a)/6(b) plot.
    """

    kind: str
    status: str
    t_start: float
    t_end: float
    pods: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    metas: Dict[str, List[dict]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: per-pod filter chain the Agents actually applied (negotiation
    #: outcome — may be shorter than the requested chain).
    filters: Dict[str, List[dict]] = field(default_factory=dict)
    #: per-pod filter specs the Agents rejected during negotiation;
    #: informational, not an operation failure.
    filters_rejected: Dict[str, List[dict]] = field(default_factory=dict)
    #: the request this operation served (recorded so recovery can
    #: replay it from the last good checkpoint).
    targets: List[Target] = field(default_factory=list)
    #: operation sequence number (stamps Agent-side stores so a
    #: garbage-collected op cannot publish a late image).
    op_id: int = 0
    #: abort-path bookkeeping: SAN paths garbage-collected, and the
    #: per-pod "is it running again?" verification outcome.
    gc_paths: List[str] = field(default_factory=list)
    resumed: Dict[str, bool] = field(default_factory=dict)
    #: last durable state-machine phase this op reached (ledger mirror).
    phase: str = "begin"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def max_stat(self, name: str) -> float:
        """Max of a per-pod stat (pods proceed in parallel, so the max
        is what the end-to-end time reflects)."""
        return max((stats.get(name, 0) for stats in self.pods.values()), default=0)

    def max_image_bytes(self) -> int:
        """The largest pod image — the Figure 6(c) metric."""
        return int(self.max_stat("image_bytes"))


class OpMachine:
    """The durable per-op state machine.

    Every transition appends a ledger record *first* and then crosses
    the matching ``manager.ledger.<phase>`` trace point, followed by an
    explicit scheduling boundary (``yield None``).  The boundary is the
    point of the design: a ``crash_manager`` fault scheduled at the
    crossing lands exactly between "the record is durable" and "the
    next phase's actions run" — the worst case a takeover replica must
    handle, and the case :data:`repro.cluster.faults.MANAGER_PHASES`
    enumerates.  Each record also renews the owner's lease.
    """

    def __init__(self, manager: "Manager", result: OpResult,
                 lease_s: Optional[float] = None, span=None) -> None:
        self.manager = manager
        self.result = result
        self.lease_s = DEFAULT_LEASE_S if lease_s is None else float(lease_s)
        #: the driving incarnation's op span; its id rides every ledger
        #: record so the campaign-trace assembler can join durable facts
        #: back to the span dump that timed them.
        self.span = span

    def _append(self, phase: str, rec: str = "phase", **fields) -> None:
        mgr = self.manager
        now = mgr.cluster.engine.now
        self.result.phase = phase
        record = dict({"rec": rec, "op": self.result.op_id,
                       "phase": phase, "owner": mgr.name,
                       "lease": now + self.lease_s, "t": now}, **fields)
        sid = getattr(self.span, "span_id", None)
        if sid is not None:
            record.setdefault("span", sid)
        mgr.ledger.append(record)

    def _transition(self, phase: str, rec: str = "phase", **fields):
        self._append(phase, rec=rec, **fields)
        yield from self.manager.cluster.trace(f"manager.ledger.{phase}",
                                              pod=f"op{self.result.op_id}")
        yield None  # let a crash scheduled at the crossing land here

    def begin(self, **fields):
        """Open the op: the full request, durable before any Agent hears
        about it."""
        yield from self._transition(
            "begin", rec="op", kind=self.result.kind,
            targets=[list(t) for t in self.result.targets], **fields)

    def advance(self, phase: str, **fields):
        """One phase boundary: durable record, crossing, boundary."""
        yield from self._transition(phase, **fields)

    def commit(self, **fields):
        """Terminal success (also re-records the targets, so a replica
        can reconstruct ``last_checkpoint`` from the commit alone)."""
        yield from self._transition(
            "commit", targets=[list(t) for t in self.result.targets], **fields)

    def aborted(self, reason: str = "") -> None:
        """Terminal failure — synchronous: the abort path just finished
        and there is nothing after this record to crash before."""
        self._append("aborted", reason=reason)


class Manager:
    """Front-end client for coordinated checkpoint-restart."""

    def __init__(self, cluster: Cluster, agents: Dict[str, Agent],
                 home: Optional[Node] = None, name: str = "mgr0",
                 ledger: Optional[OpLedger] = None) -> None:
        self.cluster = cluster
        self.agents = agents
        #: the node the Manager runs on ("can be run from anywhere,
        #: inside or outside the cluster" — we put it on blade 0, as the
        #: paper's evaluation does).
        self.home = home if home is not None else cluster.node(0)
        self.name = name
        #: the durable op ledger on the SAN — shared by construction
        #: with every other Manager of this cluster.
        self.ledger = ledger if ledger is not None else OpLedger(cluster.san)
        self.last_checkpoint: Optional[OpResult] = None
        #: fail-stop flag: a crashed Manager drives nothing ever again.
        self.crashed = False
        self._next_op_id = 1
        #: live protocol tasks this Manager spawned (reaped on crash).
        self._tracked: List[Task] = []
        #: per-node op exclusion: node name -> label of the op holding
        #: it.  A recover and a drain racing over one node's pods would
        #: destroy what the other is migrating; the claim table makes
        #: the loser fail fast instead (see claim_nodes).
        self._node_claims: Dict[str, str] = {}
        cluster.manager = self

    @classmethod
    def deploy(cls, cluster: Cluster, name: str = "mgr0") -> "Manager":
        """Start an Agent on every node and return a Manager."""
        return cls(cluster, deploy_agents(cluster), name=name)

    @classmethod
    def deploy_replica(cls, cluster: Cluster, agents: Dict[str, Agent],
                       home: Optional[Node] = None,
                       name: str = "mgr1") -> "Manager":
        """A fresh Manager against the *existing* Agents and ledger.

        The replica starts stateless: its ``last_checkpoint`` is
        reconstructed from the newest durable commit record, and
        :meth:`takeover_task` then claims whatever the dead Manager
        left in flight.
        """
        replica = cls(cluster, agents, home=home, name=name)
        last = replica.ledger.last_committed("checkpoint")
        if last is not None:
            rebuilt = OpResult("checkpoint", "ok", last.t_last, last.t_last,
                               targets=[tuple(t) for t in last.targets],
                               op_id=last.op_id, phase="commit")
            replica.last_checkpoint = rebuilt
        return replica

    def new_op_id(self) -> int:
        """Allocate the next op id, never below what the ledger has seen
        (two Managers over one ledger must not collide)."""
        op_id = max(self._next_op_id, self.ledger.next_op_id())
        self._next_op_id = op_id + 1
        return op_id

    def _spawn(self, gen, name: str) -> Task:
        """Spawn a protocol task and track it for fail-stop reaping."""
        task = self.cluster.engine.spawn(gen, name=name)
        if len(self._tracked) > 64:
            self._tracked = [t for t in self._tracked if not t.done]
        self._tracked.append(task)
        return task

    def crash(self) -> None:
        """Fail-stop crash of this Manager (the process, not its node).

        Every in-flight protocol task dies mid-phase; connections to
        Agents go dead (their sessions see EOF or wait out the barrier
        deadline, unless a replica re-attaches first).  The ledger is
        the only thing that survives.
        """
        if self.crashed:
            return
        self.crashed = True
        if getattr(self.cluster, "manager", None) is self:
            self.cluster.manager = None
        tracked, self._tracked = self._tracked, []
        for task in tracked:
            if not task.done:
                task.cancel()
        self._node_claims.clear()
        self.cluster.count("manager.crashes")

    # ------------------------------------------------------------------
    # per-node op exclusion
    # ------------------------------------------------------------------
    def claim_nodes(self, nodes, label: str) -> bool:
        """Claim every node in ``nodes`` for the op tagged ``label``.

        All-or-nothing: if any node is already held by a *different*
        label, nothing is claimed and the caller must fail fast — this
        is what keeps a ``recover()`` from destroying pods a concurrent
        ``drain()`` is mid-migrating (and vice versa).  Re-claiming your
        own label is a no-op success.  Synchronous (no yield), so the
        check-then-claim is atomic in the single-threaded simulation.
        """
        names = list(nodes)
        for name in names:
            holder = self._node_claims.get(name)
            if holder is not None and holder != label:
                self.cluster.count("manager.node_claim_conflicts")
                return False
        for name in names:
            self._node_claims[name] = label
        return True

    def release_nodes(self, nodes, label: str) -> None:
        """Release claims held by ``label`` (foreign claims untouched)."""
        for name in nodes:
            if self._node_claims.get(name) == label:
                del self._node_claims[name]

    def node_claim_holder(self, node_name: str):
        """The label holding ``node_name``, or None when unclaimed."""
        return self._node_claims.get(node_name)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _reset_chan(self, chan) -> None:
        """Abandon a channel's in-flight syscall so it can be reused.

        A phase timeout leaves the channel mid-recv; the kernel's late
        completion resolves into nothing (the abandoned future), and the
        channel is free to carry the abort message.
        """
        chan.waiting = None
        chan.blocked_on = None

    def _open_attempt(self, node_name: str, connect_timeout: float):
        """One connection attempt to a node's Agent; yields (chan, fd)
        or None on refusal/timeout."""
        kernel = self.home.kernel
        node = self.cluster.node_by_name(node_name)
        chan = kernel.host_channel(f"mgr->{node_name}")
        fd = yield kernel.host_call(chan, "socket", "tcp")
        ok, rc = yield self.cluster.engine.timeout(
            kernel.host_call(chan, "connect", fd, (node.ip, AGENT_PORT)),
            connect_timeout)
        if not ok:
            # abandon the stuck connect; the socket (if it ever
            # completes) is simply never used
            self._reset_chan(chan)
            return None
        if isinstance(rc, Errno):
            return None
        return chan, fd

    def _open_retry(self, node_name: str, timeouts: PhaseTimeouts,
                    attempts: Optional[int] = None):
        """Connect with bounded retries + exponential backoff (connect
        is idempotent)."""
        n = attempts if attempts is not None else timeouts.connect_retries + 1
        for attempt in range(n):
            opened = yield from self._open_attempt(node_name, timeouts.connect)
            if opened is not None:
                return opened
            if attempt + 1 < n:
                self.cluster.count("manager.connect_retries")
                self.cluster.observe("manager.backoff_s", timeouts.backoff(attempt))
                yield self.cluster.engine.sleep(timeouts.backoff(attempt))
        return None

    def _recv_timed(self, chan, fd, timeout_s: float):
        """recv_msg bounded by a phase timeout; None on timeout/EOF/error."""
        engine = self.cluster.engine
        kernel = self.home.kernel
        task = self._spawn(recv_msg(kernel, chan, fd), name="mgr-recv")
        try:
            ok, msg = yield engine.timeout(task.finished, timeout_s)
        except Exception:
            return None
        if not ok:
            task.cancel()
            self._reset_chan(chan)
            return None
        return msg

    def _close_conn(self, chan, fd):
        kernel = self.home.kernel
        self._reset_chan(chan)
        try:
            yield kernel.host_call(chan, "close", fd)
        except Exception:
            pass

    def _probe_node(self, node_name: str, timeouts: PhaseTimeouts):
        """Ping a node's Agent; yields True when it answers in time."""
        kernel = self.home.kernel
        opened = yield from self._open_retry(node_name, timeouts, attempts=1)
        if opened is None:
            return False
        chan, fd = opened
        yield from send_msg(kernel, chan, fd, {"cmd": "ping"})
        reply = yield from self._recv_timed(chan, fd, timeouts.connect)
        yield from self._close_conn(chan, fd)
        return reply is not None and reply.get("type") == "pong"

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, targets: List[Target], **kw) -> Task:
        """Spawn a coordinated checkpoint; returns the Task (its
        ``finished`` future resolves to an :class:`OpResult`)."""
        return self._spawn(self.checkpoint_task(targets, **kw),
                           name="manager-checkpoint")

    def checkpoint_task(self, targets: List[Target], context: str = "snapshot",
                        deadline: float = 60.0, order: str = "net-first",
                        redirect_moves: Optional[Dict[str, str]] = None,
                        fs_snapshot: bool = False,
                        filters: Optional[List[Dict[str, Any]]] = None,
                        timeouts: Optional[PhaseTimeouts] = None,
                        gc_on_failure: bool = True,
                        verify_resume: bool = True,
                        live: bool = False,
                        async_ckpt: bool = False,
                        lease_s: Optional[float] = None):
        """The Manager side of Figure 1 (generator; run as a host task).

        ``redirect_moves`` (pod → destination node) activates the §5
        send-queue redirect during a migration: the Manager, which alone
        knows where every pod is headed, attaches per-connection redirect
        destinations to each Agent's ``continue`` message.

        ``filters`` requests an image-pipeline chain (e.g.
        ``[{"name": "delta"}, {"name": "compress", "level": 6}]``); each
        Agent negotiates it down to the stages it supports and reports
        the applied chain back with its meta-data (recorded per pod in
        ``OpResult.filters`` / ``filters_rejected``).

        ``timeouts`` bounds each protocol phase; ``deadline`` stays the
        global cap.  On failure the abort path garbage-collects partial
        images (``gc_on_failure``) and verifies pods resumed
        (``verify_resume``).

        ``live`` marks the final stop-and-copy pass of a live migration:
        Agents then charge the stream for the pre-copy *residual* only
        and report suspend-instant / residual stats for downtime
        accounting (see :mod:`repro.core.streaming`).

        ``async_ckpt`` requests the zero-stall pipelined path: each
        Agent resumes its pod right after the continue barrier and runs
        serialize/filter/write-out against the frozen capture tables
        while the application runs on (snapshot context only; direct
        migration falls back to serial).  Per-pod suspend windows come
        back as ``t_suspend_window`` in the done stats.

        ``lease_s`` bounds how long each ledger record keeps the op
        owned by this Manager before a takeover replica may claim it.
        """
        engine = self.cluster.engine
        kernel = self.home.kernel
        timeouts = timeouts if timeouts is not None else PhaseTimeouts()
        op_id = self.new_op_id()
        result = OpResult("checkpoint", "ok", engine.now, engine.now,
                          targets=list(targets), op_id=op_id)
        # operation span, registered under ("op", op_id) so Agent-side
        # spans on other nodes can attach themselves as children
        op_span = self.cluster.span("manager.checkpoint", category="op",
                                    key=("op", op_id), op=op_id,
                                    pods=len(targets), context=context,
                                    owner=self.name)
        # span context for the Agents: in a real deployment the span id
        # would ride the checkpoint command; here message bytes are
        # timing-bearing, so context propagates through the shared
        # tracer's key registry instead (same joinability, zero bytes)
        self.cluster.span_context(("op", op_id), mspan=op_span.span_id,
                                  owner=self.name)
        machine = OpMachine(self, result, lease_s, span=op_span)
        conns: Dict[str, Tuple[Any, int]] = {}
        meta_count = [0]
        done_count = [0]
        flush_count = [0]
        all_meta = Future("all-meta")
        op_failed = Future(f"ckpt-{op_id}-failed")
        expect_stream = {pod for (_n, pod, uri) in targets if uri.startswith("agent://")}
        expect_flush = {pod for (_n, pod, uri) in targets
                        if uri.startswith(("file:", "cas:"))}
        flush_needed = expect_stream | expect_flush
        fail = self._op_failer(result, all_meta, op_failed)

        def redirect_out_for(pod_id: str) -> List[dict]:
            if not redirect_moves:
                return []
            plan = derive_restart_plan(result.metas)
            out = []
            for entry in plan.get(pod_id, {}).get("schedule", []):
                peer_pod = entry.get("peer_pod")
                if peer_pod is None or peer_pod not in redirect_moves:
                    continue
                out.append({
                    "sock_id": entry["sock_id"],
                    "discard": entry["send_discard"],
                    "peer_pod": peer_pod,
                    "peer_sock_id": entry["peer_sock_id"],
                    "dst_node": redirect_moves[peer_pod],
                })
            return out

        def pod_task(node_name: str, pod_id: str, uri: str):
            phase = self.cluster.span("manager.phase.connect", node=node_name,
                                      pod=pod_id, parent=op_span)
            yield from self.cluster.trace("manager.connect", node=node_name, pod=pod_id)
            opened = yield from self._open_retry(node_name, timeouts)
            if opened is None:
                phase.end(status="failed")
                fail(f"{pod_id}: cannot reach agent on {node_name}")
                return
            chan, fd = opened
            conns[pod_id] = (chan, fd)
            # 1. broadcast checkpoint command
            cmd_msg = {
                "cmd": "checkpoint", "pod": pod_id, "uri": uri,
                "context": context, "order": order,
                "fs_snapshot": fs_snapshot,
                "filters": list(filters or []),
                "op_id": op_id,
                # the Agent's own unilateral-abort deadline while it
                # waits for 'continue' (covers a dead/partitioned
                # Manager that can never deliver abort either)
                "wait_timeout": timeouts.barrier + timeouts.done,
            }
            if live:
                # key present only for live migration so the non-live
                # wire traffic (and every existing schedule) is unchanged
                cmd_msg["live"] = True
            if async_ckpt:
                # same conditional-key discipline for the zero-stall path
                cmd_msg["async_ckpt"] = True
            sent = yield from send_msg(kernel, chan, fd, cmd_msg)
            if not sent:
                phase.end(status="failed")
                fail(f"{pod_id}: agent connection lost")
                return
            phase.end()
            # 2. receive meta-data (plus the negotiated filter chain)
            phase = self.cluster.span("manager.phase.meta", node=node_name,
                                      pod=pod_id, parent=op_span)
            msg = yield from self._recv_timed(chan, fd, timeouts.meta)
            if msg is None or msg.get("type") != "meta":
                detail = msg.get("error") if msg else "meta phase timed out or connection lost"
                phase.end(status="failed")
                fail(f"{pod_id}: {detail}")
                return
            result.metas[pod_id] = msg["meta"]
            result.filters[pod_id] = list(msg.get("filters") or [])
            if msg.get("filters_rejected"):
                result.filters_rejected[pod_id] = list(msg["filters_rejected"])
            yield from self.cluster.trace("manager.meta_recv", node=node_name, pod=pod_id)
            phase.end()
            meta_count[0] += 1
            if meta_count[0] == len(targets) and not all_meta.done:
                # the durable sync point: every pod froze and reported.
                # Both records land *before* the barrier is released, so
                # once "continue" is in the ledger the broadcast is
                # inevitable — a Manager that dies after this instant
                # leaves an op a replica can finish, not only abort.
                yield from machine.advance("meta", pods=sorted(result.metas))
                yield from machine.advance("continue")
                if not all_meta.done:
                    all_meta.set_result(True)
            # 3. the single synchronization point (bounded per phase)
            t_wait = engine.now
            phase = self.cluster.span("manager.phase.barrier", node=node_name,
                                      pod=pod_id, parent=op_span)
            try:
                barrier_ok, _ = yield engine.timeout(all_meta, timeouts.barrier)
            except RuntimeError:
                barrier_ok = False   # a sibling failed; op already marked
            else:
                if not barrier_ok:
                    fail(f"{pod_id}: continue-barrier timed out")
            self.cluster.observe("manager.barrier_wait_s", engine.now - t_wait)
            if not barrier_ok:
                phase.end(status="aborted")
                yield from send_msg(kernel, chan, fd, {"cmd": "abort"})
                yield from self._recv_timed(chan, fd, timeouts.drain)
                return
            yield from self.cluster.trace("manager.continue_sent", node=node_name, pod=pod_id)
            yield from send_msg(kernel, chan, fd, {
                "cmd": "continue",
                "redirect_out": redirect_out_for(pod_id),
            })
            phase.end()
            # 4. receive status
            phase = self.cluster.span("manager.phase.commit", node=node_name,
                                      pod=pod_id, parent=op_span)
            done = yield from self._recv_timed(chan, fd, timeouts.done)
            if done is None or done.get("status") != "ok":
                phase.end(status="failed")
                fail(f"{pod_id}: checkpoint failed")
                return
            result.pods[pod_id] = done["stats"]
            # checkpoint time is measured to the last 'done' — the flush
            # to storage (below) happens after the application resumed
            result.t_end = max(result.t_end, engine.now)
            phase.end()
            yield from self.cluster.trace("manager.done_recv", node=node_name, pod=pod_id)
            done_count[0] += 1
            if done_count[0] == len(targets):
                yield from machine.advance("done", pods=sorted(result.pods))
            # direct-migration streaming / file flush acknowledgements
            if pod_id in expect_stream:
                post = self.cluster.span("manager.post.stream", node=node_name,
                                         pod=pod_id, parent=op_span,
                                         category="post")
                ack = yield from self._recv_timed(chan, fd, timeouts.flush)
                if ack is None or ack.get("type") != "streamed":
                    post.end(status="failed")
                    fail(f"{pod_id}: image streaming failed")
                    return
                post.end()
            elif pod_id in expect_flush:
                post = self.cluster.span("manager.post.flush", node=node_name,
                                         pod=pod_id, parent=op_span,
                                         category="post")
                ack = yield from self._recv_timed(chan, fd, timeouts.flush)
                if ack is None or ack.get("type") != "flushed":
                    post.end(status="failed")
                    fail(f"{pod_id}: image flush failed or timed out")
                    return
                post.end()
            else:
                return
            flush_count[0] += 1
            if flush_count[0] == len(flush_needed):
                yield from machine.advance("flush")

        yield from self.cluster.trace("manager.op_start", pod=f"op{op_id}")
        yield from machine.begin(context=context,
                                 filters_requested=list(filters or []))
        tasks = [self._spawn(pod_task(n, p, u), name=f"ckpt-{p}")
                 for n, p, u in targets]
        all_done = all_of([t.finished for t in tasks])
        race = Future(f"ckpt-{op_id}-race")
        all_done.add_done_callback(
            lambda _f: race.set_result("done") if not race.done else None)
        op_failed.add_done_callback(
            lambda _f: race.set_result("failed") if not race.done else None)
        ok, outcome = yield engine.timeout(race, deadline)
        if self.crashed:
            # fail-stop: a dead Manager neither cleans up nor commits —
            # finishing this op is the takeover replica's job, driven by
            # whatever the ledger durably recorded above
            result.status = "crashed"
            op_span.end(status=result.status)
            return result
        if not ok:
            result.status = "timeout"
            result.errors.append("deadline expired; aborted")
        elif outcome == "failed":
            result.status = "failed"
            # give in-flight pod tasks a bounded window to run their own
            # graceful aborts before reaping them
            yield engine.timeout(all_done, timeouts.drain)
        elif result.errors:
            result.status = "failed"
        if result.status != "ok":
            yield from self._finish_failed_op(
                result, tasks, timeouts, machine, conns=conns,
                targets=targets, gc_on_failure=gc_on_failure,
                verify_resume=verify_resume)
        for chan, fd in conns.values():
            yield from self._close_conn(chan, fd)
        if len(result.pods) != len(targets):
            result.t_end = engine.now  # failed/partial ops report full elapsed time
        if result.ok:
            yield from machine.commit(duration_s=result.duration)
            self.last_checkpoint = result
        yield from self.cluster.trace("manager.op_end", pod=f"op{op_id}")
        # the span closes after cleanup; the protocol latency the paper
        # plots travels in ``duration_s`` (invocation → last pod done)
        op_span.end(status=result.status, duration_s=result.duration)
        return result

    # ------------------------------------------------------------------
    # abort path: reap, abort, garbage-collect, verify
    # ------------------------------------------------------------------
    def _op_failer(self, result: OpResult, barrier: Future, op_failed: Future):
        """The one failure closure every coordinated op's pod tasks
        share: record the reason, release the barrier with an exception
        (so sibling tasks resume their pods instead of waiting out the
        phase timeout), and trip the op-failed race."""
        def fail(reason: str) -> None:
            result.errors.append(reason)
            if not barrier.done:
                barrier.set_exception(RuntimeError(reason))
            if not op_failed.done:
                op_failed.set_result(reason)
        return fail

    def _finish_failed_op(self, result: OpResult, tasks: List[Task],
                          timeouts: PhaseTimeouts, machine: OpMachine,
                          conns: Optional[Dict[str, Tuple[Any, int]]] = None,
                          targets: Optional[List[Target]] = None,
                          gc_on_failure: bool = False,
                          verify_resume: bool = False):
        """The one abort path every failed op funnels through: reap,
        abort, garbage-collect, verify, then the terminal record.

        The ``manager.ledger.abort`` crossing sits between the durable
        abort intent and the cleanup actions, so a Manager that crashes
        mid-abort leaves an op a takeover replica re-aborts through this
        same (idempotent) path.
        """
        kernel = self.home.kernel
        reason = result.errors[-1] if result.errors else result.status
        # 1. no orphaned protocol tasks: reap whatever is still in flight
        for task in tasks:
            if not task.done:
                task.cancel()
        yield from machine.advance("abort", reason=reason)
        # 2. tell every connected-but-incomplete Agent to abort (resume
        #    its pod); completed pods already resumed on 'continue'
        if conns:
            for pod_id, (chan, fd) in conns.items():
                if pod_id in result.pods:
                    continue
                self._reset_chan(chan)
                sent = yield from send_msg(kernel, chan, fd, {"cmd": "abort"})
                if sent:
                    yield from self._recv_timed(chan, fd, timeouts.drain)
        # 3. garbage-collect partial images: a failed coordinated
        #    checkpoint must leave nothing restartable behind
        if gc_on_failure and targets:
            yield from self._gc_partial_images(targets, result, timeouts)
        # 4. verify the pods the operation touched are running again
        if verify_resume and targets:
            yield from self._verify_resumed(targets, result, timeouts)
        machine.aborted(reason)

    def _gc_partial_images(self, targets: List[Target], result: OpResult,
                           timeouts: PhaseTimeouts):
        """Remove every image this failed operation may have written.

        Even a *complete* per-pod image from a failed operation is one
        half of an inconsistent cut and must not be restartable.  SAN
        containers are unlinked (never the ones the last good checkpoint
        points at); Agents are told to roll their stores back and to
        suppress any late store by a still-hung session (the op-id
        tombstone).
        """
        protected = set()
        if self.last_checkpoint is not None:
            protected = {uri for (_n, _p, uri) in self.last_checkpoint.targets
                         if uri.startswith("file:")}
        by_node: Dict[str, List[str]] = {}
        for node_name, pod_id, uri in targets:
            if uri.startswith("file:") and uri not in protected:
                path = uri[len("file:"):]
                fs, inner = self.home.kernel.vfs.resolve(path)
                if inner in fs.files:
                    fs.files.pop(inner, None)
                    result.gc_paths.append(path)
                    self.cluster.count("manager.gc_partial_images")
            if uri.startswith("cas:"):
                # content-addressed target: op-keyed rollback restores
                # the previous published generation (no protected-set
                # check needed — a committed generation carries a
                # different op id and is never touched)
                from ..storage.cas import CasStore
                path = uri[len("cas:"):]
                yield from self.cluster.trace("cas.gc", node=node_name,
                                              pod=pod_id)
                span = self.cluster.span("cas.gc", node=node_name,
                                         pod=pod_id, category="cas",
                                         parent=("op", result.op_id))
                acted = CasStore.on(self.cluster.san).rollback_path(
                    path, result.op_id)
                span.end(status="rolled-back" if acted else "clean")
                if acted:
                    result.gc_paths.append(path)
                    self.cluster.count("manager.gc_partial_images")
            if uri.startswith("agent://"):
                by_node.setdefault(uri[len("agent://"):], []).append(pod_id)
            else:
                by_node.setdefault(node_name, []).append(pod_id)
        for node_name, pods in by_node.items():
            node = self.cluster.node_by_name(node_name)
            if node.crashed:
                continue
            yield from self._send_simple(node_name, {
                "cmd": "gc", "op_id": result.op_id, "pods": pods,
            }, timeouts)

    def _verify_resumed(self, targets: List[Target], result: OpResult,
                        timeouts: PhaseTimeouts):
        """Ask each surviving Agent whether the pod is running again."""
        for node_name, pod_id, _uri in targets:
            node = self.cluster.node_by_name(node_name)
            if node.crashed:
                continue
            reply = yield from self._send_simple(node_name, {
                "cmd": "query_pod", "pod": pod_id,
            }, timeouts)
            if reply is not None and reply.get("type") == "pod_status":
                result.resumed[pod_id] = bool(reply.get("running"))

    def _send_simple(self, node_name: str, msg: Dict[str, Any],
                     timeouts: PhaseTimeouts):
        """One-shot request/reply to a node's Agent (best effort)."""
        kernel = self.home.kernel
        opened = yield from self._open_retry(node_name, timeouts, attempts=1)
        if opened is None:
            return None
        chan, fd = opened
        yield from send_msg(kernel, chan, fd, msg)
        reply = yield from self._recv_timed(chan, fd, timeouts.drain)
        yield from self._close_conn(chan, fd)
        return reply

    # ------------------------------------------------------------------
    # pre-copy live migration
    # ------------------------------------------------------------------
    def precopy_round(self, moves: List[Target], round_no: int, op_id: int = 0,
                      timeouts: Optional[PhaseTimeouts] = None,
                      deadline: float = 120.0):
        """Drive one pre-copy round across every migrating pod.

        ``moves`` is ``(src_node, pod_id, dst_node)`` triples.  Each
        source Agent ships the pod's current dirty working set to the
        destination Agent while the pod keeps running; the reply wait
        uses the flush-scale timeout because a round-1 transfer moves
        the full resident set.  Returns ``(stats, errors)`` where
        ``stats`` maps pod → per-round byte accounting.
        """
        engine = self.cluster.engine
        kernel = self.home.kernel
        timeouts = timeouts if timeouts is not None else PhaseTimeouts()
        stats: Dict[str, Dict[str, Any]] = {}
        errors: List[str] = []

        def pod_round(src: str, pod_id: str, dst: str):
            phase = self.cluster.span("manager.phase.precopy-round", node=src,
                                      pod=pod_id, parent=("op", op_id),
                                      round=round_no)
            yield from self.cluster.trace("manager.precopy_round", node=src,
                                          pod=pod_id)
            opened = yield from self._open_retry(src, timeouts)
            if opened is None:
                phase.end(status="failed")
                errors.append(f"{pod_id}: cannot reach agent on {src}")
                return
            chan, fd = opened
            sent = yield from send_msg(kernel, chan, fd, {
                "cmd": "precopy", "pod": pod_id, "dst": dst,
                "round": round_no, "op_id": op_id,
            })
            reply = (yield from self._recv_timed(chan, fd, timeouts.flush)) \
                if sent else None
            yield from self._close_conn(chan, fd)
            if reply is None or reply.get("status") != "ok":
                phase.end(status="failed")
                detail = (reply or {}).get("error", "no reply")
                errors.append(f"{pod_id}: precopy round {round_no} failed ({detail})")
                return
            stats[pod_id] = reply["stats"]
            phase.end(shipped_bytes=reply["stats"]["shipped_bytes"],
                      dirty_bytes=reply["stats"]["dirty_bytes"])

        tasks = [engine.spawn(pod_round(s, p, d), name=f"precopy-{p}")
                 for s, p, d in moves]
        ok, _ = yield engine.timeout(all_of([t.finished for t in tasks]), deadline)
        if not ok:
            for task in tasks:
                if not task.done:
                    task.cancel()
            errors.append(f"precopy round {round_no}: deadline expired")
        return stats, errors

    # ------------------------------------------------------------------
    # restart
    # ------------------------------------------------------------------
    def restart(self, targets: List[Target], **kw) -> Task:
        """Spawn a coordinated restart; Task resolves to an OpResult."""
        return self._spawn(self.restart_task(targets, **kw),
                           name="manager-restart")

    def restart_task(self, targets: List[Target], time_virtualization: bool = True,
                     deadline: float = 60.0, recovery_mode: str = "two-thread",
                     timeouts: Optional[PhaseTimeouts] = None,
                     lease_s: Optional[float] = None):
        """The Manager side of Figure 3 (generator; run as a host task).

        The restart's durable sync point is the merged connectivity
        plan: the ``plan`` ledger record carries it (codec-encoded), so
        a takeover replica can re-drive exactly the pods the restart
        commands never reached (see :meth:`_redrive_restart`).
        """
        engine = self.cluster.engine
        kernel = self.home.kernel
        timeouts = timeouts if timeouts is not None else PhaseTimeouts()
        op_id = self.new_op_id()
        result = OpResult("restart", "ok", engine.now, engine.now,
                          targets=list(targets), op_id=op_id)
        op_span = self.cluster.span("manager.restart", category="op",
                                    key=("op", op_id), op=op_id,
                                    pods=len(targets), owner=self.name)
        self.cluster.span_context(("op", op_id), mspan=op_span.span_id,
                                  owner=self.name)
        machine = OpMachine(self, result, lease_s, span=op_span)
        metas: Dict[str, List[dict]] = {}
        vips: Dict[str, str] = {}
        meta_count = [0]
        all_meta = Future("all-restart-meta")
        plan_ready = Future("restart-plan")
        op_failed = Future(f"restart-{op_id}-failed")
        fail = self._op_failer(result, all_meta, op_failed)

        def load_meta_phase(node_name: str, pod_id: str, uri: str):
            """Connect + image load: idempotent, retried with backoff."""
            for attempt in range(timeouts.load_retries + 1):
                opened = yield from self._open_attempt(node_name, timeouts.connect)
                if opened is None:
                    if attempt < timeouts.load_retries:
                        self.cluster.count("manager.load_retries")
                        self.cluster.observe("manager.backoff_s",
                                             timeouts.backoff(attempt))
                        yield engine.sleep(timeouts.backoff(attempt))
                    continue
                chan, fd = opened
                yield from send_msg(kernel, chan, fd,
                                    {"cmd": "load_meta", "pod": pod_id,
                                     "uri": uri, "op_id": op_id})
                msg = yield from self._recv_timed(chan, fd, timeouts.load)
                if msg is None:
                    # transient (timeout / connection lost): retry
                    yield from self._close_conn(chan, fd)
                    if attempt < timeouts.load_retries:
                        self.cluster.count("manager.load_retries")
                        self.cluster.observe("manager.backoff_s",
                                             timeouts.backoff(attempt))
                        yield engine.sleep(timeouts.backoff(attempt))
                    continue
                return chan, fd, msg
            return None

        def pod_task(node_name: str, pod_id: str, uri: str):
            # phase 0: have the agent load the image and report meta-data
            phase = self.cluster.span("manager.phase.load_meta", node=node_name,
                                      pod=pod_id, parent=op_span)
            yield from self.cluster.trace("manager.load_meta", node=node_name, pod=pod_id)
            loaded = yield from load_meta_phase(node_name, pod_id, uri)
            if loaded is None:
                phase.end(status="failed")
                fail(f"{pod_id}: cannot load image meta from {node_name}")
                return
            chan, fd, msg = loaded
            if msg.get("type") != "meta":
                phase.end(status="failed")
                fail(f"{pod_id}: {msg.get('error', 'image load failed')}")
                return
            metas[pod_id] = msg["meta"]
            vips[pod_id] = msg["vip"]
            result.filters[pod_id] = list(msg.get("filters") or [])
            phase.end()
            meta_count[0] += 1
            if meta_count[0] == len(targets) and not all_meta.done:
                all_meta.set_result(True)
            phase = self.cluster.span("manager.phase.plan", node=node_name,
                                      pod=pod_id, parent=op_span)
            try:
                plan_ok, plan = yield engine.timeout(plan_ready, timeouts.barrier)
            except RuntimeError:
                phase.end(status="aborted")
                return
            if not plan_ok:
                phase.end(status="failed")
                fail(f"{pod_id}: restart plan timed out")
                return
            pod_plan = plan[pod_id]
            phase.end()
            # 1. send restart command + (modified) meta-data
            phase = self.cluster.span("manager.phase.commit", node=node_name,
                                      pod=pod_id, parent=op_span)
            yield from self.cluster.trace("manager.restart_sent", node=node_name, pod=pod_id)
            yield from send_msg(kernel, chan, fd, {
                "cmd": "restart",
                "pod": pod_id,
                "vip": vips[pod_id],
                "uri": uri,
                "op_id": op_id,
                "listeners": pod_plan["listeners"],
                "schedule": pod_plan["schedule"],
                "time_virtualization": time_virtualization,
                "recovery_mode": recovery_mode,
            })
            # 2. receive status
            done = yield from self._recv_timed(chan, fd, timeouts.restart_done)
            if done is None or done.get("status") != "ok":
                detail = done.get("error", "restart failed") if done else \
                    "restart timed out or agent connection lost"
                phase.end(status="failed")
                fail(f"{pod_id}: {detail}")
                return
            result.pods[pod_id] = done["stats"]
            phase.end()
            yield from self._close_conn(chan, fd)

        def planner():
            try:
                yield all_meta
            except RuntimeError as err:
                if not plan_ready.done:
                    plan_ready.set_exception(err)
                return
            plan = derive_restart_plan(metas)
            # the plan may carry bytes (send-queue data), so it rides
            # the ledger codec-encoded rather than as raw JSON
            yield from machine.advance(
                "plan",
                plan_hex=codec.encode({"plan": plan, "vips": dict(vips)}).hex(),
                time_virtualization=time_virtualization,
                recovery_mode=recovery_mode)
            if not plan_ready.done:
                plan_ready.set_result(plan)

        yield from self.cluster.trace("manager.op_start", pod=f"op{op_id}")
        yield from machine.begin()
        self._spawn(planner(), name="restart-planner")
        tasks = [self._spawn(pod_task(n, p, u), name=f"restart-{p}")
                 for n, p, u in targets]
        all_done = all_of([t.finished for t in tasks])
        race = Future(f"restart-{op_id}-race")
        all_done.add_done_callback(
            lambda _f: race.set_result("done") if not race.done else None)
        op_failed.add_done_callback(
            lambda _f: race.set_result("failed") if not race.done else None)
        ok, outcome = yield engine.timeout(race, deadline)
        if self.crashed:
            result.status = "crashed"
            op_span.end(status=result.status)
            return result
        if not ok:
            result.status = "timeout"
            result.errors.append("deadline expired")
        elif outcome == "failed":
            result.status = "failed"
            yield engine.timeout(all_done, timeouts.drain)
        elif result.errors:
            result.status = "failed"
        if result.status != "ok":
            yield from self._finish_failed_op(result, tasks, timeouts, machine)
        else:
            for task in tasks:
                if not task.done:
                    task.cancel()
        result.t_end = engine.now
        result.metas = metas
        if result.ok:
            yield from machine.commit(duration_s=result.duration)
        yield from self.cluster.trace("manager.op_end", pod=f"op{op_id}")
        op_span.end(status=result.status, duration_s=result.duration)
        return result

    # ------------------------------------------------------------------
    # recovery: the paper's motivating use case
    # ------------------------------------------------------------------
    def recover(self, **kw) -> Task:
        """Spawn a crash recovery; Task resolves to an OpResult."""
        return self._spawn(self.recover_task(**kw), name="manager-recover")

    def recover_task(self, deadline: float = 120.0,
                     timeouts: Optional[PhaseTimeouts] = None,
                     placement: Optional[Dict[str, str]] = None,
                     time_virtualization: bool = True,
                     recovery_mode: str = "two-thread"):
        """Detect crashed nodes and restart the application from
        ``last_checkpoint``, placing lost pods on surviving blades.

        The whole application rolls back to the consistent checkpoint:
        surviving instances of the checkpointed pods are destroyed, then
        every pod is restarted — on its original node when that node
        still answers, elsewhere (least-loaded surviving blade, or the
        caller's ``placement`` overrides) when it does not.  In-memory
        images died with their node and make the pod unrecoverable; the
        operation then fails *before* touching any surviving pod.
        """
        engine = self.cluster.engine
        timeouts = timeouts if timeouts is not None else PhaseTimeouts()
        op_id = self.new_op_id()
        result = OpResult("recover", "ok", engine.now, engine.now, op_id=op_id)
        op_span = self.cluster.span("manager.recover", category="op",
                                    key=("op", op_id), op=op_id,
                                    owner=self.name)
        self.cluster.span_context(("op", op_id), mspan=op_span.span_id,
                                  owner=self.name)
        machine = OpMachine(self, result, span=op_span)
        last = self.last_checkpoint
        if last is None or not last.ok or not last.targets:
            result.status = "failed"
            result.errors.append("no usable checkpoint to recover from")
            result.t_end = engine.now
            op_span.end(status=result.status, duration_s=result.duration)
            return result
        result.targets = list(last.targets)
        # per-node op exclusion: a recover destroys surviving instances
        # of every involved pod, so it must own the involved nodes — a
        # concurrent drain/evacuation campaign holding any of them makes
        # this recover fail fast instead of racing it pod by pod
        claim_label = f"recover:op{op_id}"
        involved_nodes = sorted({n for (n, _p, _u) in last.targets})
        if not self.claim_nodes(involved_nodes, claim_label):
            held = {n: self.node_claim_holder(n) for n in involved_nodes
                    if self.node_claim_holder(n) not in (None, claim_label)}
            result.status = "failed"
            result.errors.append(
                f"node exclusion refused: {sorted(held.items())}")
            result.t_end = engine.now
            op_span.end(status=result.status, duration_s=result.duration)
            return result
        # the begin record lands only once the early-out checks passed,
        # so a recover that never started driving anything leaves no
        # claimable orphan behind; every later return path below writes
        # a terminal record for the same reason
        yield from machine.begin()

        # 1. failure detection: fail-stop flags plus a liveness probe of
        #    every node the checkpoint involves
        phase = self.cluster.span("manager.phase.detect", parent=op_span)
        crashed = {node.name for node in self.cluster.nodes if node.crashed}
        involved = {n for (n, _p, _u) in last.targets}
        for name in sorted(involved - crashed):
            alive = yield from self._probe_node(name, timeouts)
            if not alive:
                crashed.add(name)
        yield from self.cluster.trace("manager.recover_detect",
                                      pod=",".join(sorted(crashed)) or None)
        phase.end(crashed=",".join(sorted(crashed)))
        yield from machine.advance("detect", crashed=sorted(crashed))
        survivors = [n for n in self.cluster.nodes if n.name not in crashed]
        if not survivors:
            result.status = "failed"
            result.errors.append("no surviving nodes to recover onto")
            result.t_end = engine.now
            machine.aborted(result.errors[-1])
            self.release_nodes(involved_nodes, claim_label)
            op_span.end(status=result.status, duration_s=result.duration)
            return result

        # 2. placement — checked for feasibility before any destruction.
        #    Nodes another op holds (a drain emptying a blade) are not
        #    placement targets unless nothing else survives.
        unclaimed = [n for n in survivors
                     if self.node_claim_holder(n.name) in (None, claim_label)]
        candidates = unclaimed if unclaimed else survivors
        load = {n.name: len(n.kernel.pods) for n in survivors}
        new_targets: List[Target] = []
        for node_name, pod_id, uri in last.targets:
            if uri.startswith("agent://"):
                # migration image: it lives in the destination Agent's
                # memory store
                node_name, uri = uri[len("agent://"):], "mem"
            if uri.startswith(("file:", "cas:")):
                # shared-storage image (SAN container or CAS recipe):
                # restartable from any surviving node
                if placement and pod_id in placement:
                    dest = placement[pod_id]
                elif node_name not in crashed:
                    dest = node_name
                else:
                    dest = min(candidates, key=lambda n: (load[n.name], n.index)).name
            else:
                # an in-memory image is only loadable on the node that
                # holds it
                if node_name in crashed:
                    result.errors.append(
                        f"{pod_id}: in-memory image lost with {node_name}")
                    continue
                dest = node_name
            load[dest] = load.get(dest, 0) + 1
            new_targets.append((dest, pod_id, uri))
        if result.errors:
            result.status = "failed"
            result.t_end = engine.now
            machine.aborted(result.errors[-1])
            self.release_nodes(involved_nodes, claim_label)
            op_span.end(status=result.status, duration_s=result.duration)
            return result

        # 3. roll the survivors back: the restart restores the whole
        #    application to the consistent cut
        for _node_name, pod_id, _uri in last.targets:
            for node in survivors:
                pod = node.kernel.pods.get(pod_id)
                if pod is not None:
                    pod.destroy()

        # 4. restart everywhere
        restart = yield from self.restart_task(
            new_targets, time_virtualization=time_virtualization,
            deadline=deadline, recovery_mode=recovery_mode, timeouts=timeouts)
        result.status = restart.status
        result.errors.extend(restart.errors)
        result.pods = restart.pods
        result.metas = restart.metas
        result.filters = restart.filters
        result.targets = new_targets
        result.t_end = engine.now
        if result.ok:
            yield from machine.commit(duration_s=result.duration)
        else:
            machine.aborted(result.errors[-1] if result.errors else restart.status)
        self.release_nodes(involved_nodes, claim_label)
        op_span.end(status=result.status, duration_s=result.duration)
        return result

    # ------------------------------------------------------------------
    # replica takeover: claim, then resume / re-drive / abort orphans
    # ------------------------------------------------------------------
    def takeover(self, **kw) -> Task:
        """Spawn a ledger takeover; Task resolves to the action list."""
        return self._spawn(self.takeover_task(**kw), name="manager-takeover")

    def takeover_task(self, timeouts: Optional[PhaseTimeouts] = None,
                      lease_s: Optional[float] = None):
        """Recover every op the dead Manager left in flight.

        Scans the ledger for orphans (non-terminal ops whose lease
        expired), claims each with an atomic claim record, then — per
        op, by its last durable phase:

        * checkpoint past the ``continue`` record: the barrier release
          was inevitable, so every Agent either committed or is parked
          waiting — re-attach (``continue_op``), verify every image is
          durable and every pod resumed, and *commit* the op;
        * restart with a durable plan: re-drive exactly the pods the
          restart commands never reached;
        * anything else: abort through the normal tombstone-GC path.

        Returns ``[(op_id, phase_at_claim, outcome), ...]``.
        """
        engine = self.cluster.engine
        timeouts = timeouts if timeouts is not None else PhaseTimeouts()
        lease = DEFAULT_LEASE_S if lease_s is None else float(lease_s)
        actions: List[Tuple[int, str, str]] = []
        for op in self.ledger.orphaned(engine.now):
            span = self.cluster.span("manager.claim", parent=("op", op.op_id),
                                     category="op", op=op.op_id,
                                     owner=self.name, at_phase=op.phase)
            if not self.ledger.claim(op.op_id, self.name, engine.now, lease):
                span.end(status="refused")
                actions.append((op.op_id, op.phase, "refused"))
                continue
            span.end(status="claimed")
            yield from self.cluster.trace("manager.takeover_claim",
                                          pod=f"op{op.op_id}")
            if op.kind == "checkpoint" and op.phase in ("continue", "done", "flush"):
                outcome = yield from self._resume_orphan(op, timeouts)
            elif op.kind == "restart" and op.fields.get("plan_hex"):
                outcome = yield from self._redrive_restart(op, timeouts)
            else:
                outcome = yield from self._abort_orphan(op, timeouts)
            actions.append((op.op_id, op.phase, outcome))
        # orphaned-chunk sweep: a Manager that died between a CAS stage
        # and its publish left pending recipes holding references; every
        # op this takeover aborted releases exactly its unshared chunks
        # (op-keyed, so live generations and other pods are untouched)
        aborted = [op_id for op_id, _phase, outcome in actions
                   if outcome == "aborted"]
        if aborted:
            from ..storage.cas import CasStore
            store = CasStore.on(self.cluster.san)
            for op_id in aborted:
                reclaimed = store.abort_op(op_id)
                if reclaimed:
                    self.cluster.count("cas.sweep_orphans.bytes", reclaimed)
        return actions

    def _resume_orphan(self, op, timeouts: PhaseTimeouts):
        """Finish a checkpoint whose continue broadcast was durable."""
        engine = self.cluster.engine
        span = self.cluster.span("manager.resume", parent=("op", op.op_id),
                                 category="op", op=op.op_id, at_phase=op.phase,
                                 owner=self.name)
        self.cluster.span_context(("op", op.op_id), mspan=span.span_id,
                                  owner=self.name)
        # re-attach: complete the barrier of any session still parked on
        # the dead Manager's connection (idempotent for the rest)
        for node_name in sorted({n for (n, _p, _u) in op.targets}):
            if self.cluster.node_by_name(node_name).crashed:
                continue
            yield from self._send_simple(node_name, {
                "cmd": "continue_op", "op_id": op.op_id}, timeouts)
        verified = yield from self._verify_op_images(op, timeouts)
        resumed = True
        if verified and op.context == "snapshot":
            probe = OpResult(op.kind, "ok", engine.now, engine.now,
                             targets=[tuple(t) for t in op.targets],
                             op_id=op.op_id)
            yield from self._verify_resumed(op.targets, probe, timeouts)
            for node_name, pod_id, _uri in op.targets:
                if self.cluster.node_by_name(node_name).crashed:
                    continue
                if not probe.resumed.get(pod_id, False):
                    resumed = False
        if not (verified and resumed):
            span.end(status="unverified")
            return (yield from self._abort_orphan(op, timeouts))
        result = OpResult("checkpoint", "ok", op.t_last, engine.now,
                          targets=[tuple(t) for t in op.targets],
                          op_id=op.op_id)
        machine = OpMachine(self, result, span=span)
        yield from machine.commit(resumed_by=self.name)
        self.last_checkpoint = result
        span.end(status="resumed")
        return "resumed"

    def _verify_op_images(self, op, timeouts: PhaseTimeouts):
        """Poll until every target image of ``op`` is durably loadable
        (bounded by the flush-scale timeout: an in-flight session that
        got its continue is still writing)."""
        engine = self.cluster.engine
        deadline = engine.now + timeouts.flush
        pending = sorted(tuple(t) for t in op.targets)
        while pending:
            still = []
            for node_name, pod_id, uri in pending:
                ready = yield from self._image_ready(op, node_name, pod_id, uri,
                                                     timeouts)
                if not ready:
                    still.append((node_name, pod_id, uri))
            pending = still
            if not pending or engine.now >= deadline:
                break
            yield engine.sleep(min(0.25, timeouts.drain))
        return not pending

    def _image_ready(self, op, node_name: str, pod_id: str, uri: str,
                     timeouts: PhaseTimeouts):
        """Is this one image durable and attributable to op ``op``?"""
        if uri.startswith("file:"):
            sink = FileSink(self.cluster.san, self.home.kernel.vfs,
                            uri[len("file:"):])
            if not sink.exists():
                return False
            try:
                sink.load(pod_id)
            except Exception:
                return False
            return True
        if uri.startswith("cas:"):
            from ..storage.cas import CasSink, CasStore
            path = uri[len("cas:"):]
            recipe = CasStore.on(self.cluster.san).recipes.get(path)
            if recipe is None or int(recipe.get("op_id", -1)) != op.op_id:
                # absent, or a different generation is published (the
                # rollback of a failed flush restores the previous op's)
                return False
            try:
                CasSink(self.cluster.san, self.home.kernel.vfs,
                        path).load(pod_id)
            except Exception:
                return False
            return True
        dest = uri[len("agent://"):] if uri.startswith("agent://") else node_name
        if self.cluster.node_by_name(dest).crashed:
            return False
        reply = yield from self._send_simple(dest, {
            "cmd": "query_image", "pod": pod_id, "op_id": op.op_id}, timeouts)
        return bool(reply and reply.get("exists") and reply.get("op_ok"))

    def _abort_orphan(self, op, timeouts: PhaseTimeouts):
        """Abort an orphan through the normal tombstone-GC path.

        The gc broadcast doubles as the re-attach for parked sessions
        (the Agent signals their barrier futures with an abort), and the
        tombstone suppresses any late store.  Aborting is idempotent —
        re-running it after a half-done abort by the dead Manager rolls
        nothing back twice (the Agents' gc guard) and re-unlinking a
        gone SAN container is a no-op.
        """
        engine = self.cluster.engine
        span = self.cluster.span("manager.abort", parent=("op", op.op_id),
                                 category="op", op=op.op_id, at_phase=op.phase,
                                 owner=self.name)
        self.cluster.span_context(("op", op.op_id), mspan=span.span_id,
                                  owner=self.name)
        reason = f"orphaned at {op.phase}; aborted by {self.name}"
        result = OpResult(op.kind, "failed", engine.now, engine.now,
                          targets=[tuple(t) for t in op.targets],
                          op_id=op.op_id, errors=[reason])
        machine = OpMachine(self, result, span=span)
        yield from machine.advance("abort", reason=reason)
        if op.kind == "checkpoint" and op.targets:
            yield from self._gc_partial_images(op.targets, result, timeouts)
            # signalled sessions resume their pods within a few events;
            # the drain window bounds the wait before the verify probe
            yield engine.sleep(timeouts.drain)
            yield from self._verify_resumed(op.targets, result, timeouts)
        machine.aborted(reason)
        span.end(status="aborted", gc_paths=len(result.gc_paths))
        return "aborted"

    def _redrive_restart(self, op, timeouts: PhaseTimeouts):
        """Finish an orphaned restart from its durable plan.

        Pods whose restart command never went out are re-driven on
        fresh sessions — concurrently, because connectivity recovery
        only completes when every peer participates; pods that already
        exist (restored, or mid-restore by a surviving Agent session)
        are left to finish on their own.
        """
        engine = self.cluster.engine
        kernel = self.home.kernel
        span = self.cluster.span("manager.redrive", parent=("op", op.op_id),
                                 category="op", op=op.op_id, owner=self.name)
        self.cluster.span_context(("op", op.op_id), mspan=span.span_id,
                                  owner=self.name)
        decoded = codec.decode(bytes.fromhex(op.fields["plan_hex"]))
        plan, vips = decoded["plan"], decoded["vips"]
        tv = bool(op.fields.get("time_virtualization", True))
        mode = op.fields.get("recovery_mode", "two-thread")
        failures: List[str] = []
        redriven = [0]

        def redrive_pod(node_name: str, pod_id: str, uri: str):
            reply = yield from self._send_simple(node_name, {
                "cmd": "query_pod", "pod": pod_id}, timeouts)
            if reply is not None and reply.get("exists"):
                return
            opened = yield from self._open_retry(node_name, timeouts)
            if opened is None:
                failures.append(f"{pod_id}: cannot reach agent on {node_name}")
                return
            chan, fd = opened
            yield from send_msg(kernel, chan, fd, {
                "cmd": "load_meta", "pod": pod_id, "uri": uri,
                "op_id": op.op_id})
            msg = yield from self._recv_timed(chan, fd, timeouts.load)
            if msg is None or msg.get("type") != "meta":
                failures.append(f"{pod_id}: image reload failed")
                yield from self._close_conn(chan, fd)
                return
            pod_plan = plan.get(pod_id, {})
            yield from send_msg(kernel, chan, fd, {
                "cmd": "restart", "pod": pod_id,
                "vip": vips.get(pod_id, msg.get("vip")),
                "uri": uri, "op_id": op.op_id,
                "listeners": pod_plan.get("listeners", []),
                "schedule": pod_plan.get("schedule", []),
                "time_virtualization": tv,
                "recovery_mode": mode,
            })
            done = yield from self._recv_timed(chan, fd, timeouts.restart_done)
            yield from self._close_conn(chan, fd)
            if done is None or done.get("status") != "ok":
                failures.append(f"{pod_id}: re-driven restart failed")
                return
            redriven[0] += 1

        tasks = [self._spawn(redrive_pod(n, p, u), name=f"redrive-{p}")
                 for n, p, u in op.targets]
        if tasks:
            ok, _ = yield engine.timeout(
                all_of([t.finished for t in tasks]),
                timeouts.connect + timeouts.load + timeouts.restart_done)
            if not ok:
                for task in tasks:
                    if not task.done:
                        task.cancel()
                failures.append("redrive deadline expired")
        result = OpResult("restart", "failed" if failures else "ok",
                          op.t_last, engine.now,
                          targets=[tuple(t) for t in op.targets],
                          op_id=op.op_id, errors=list(failures))
        machine = OpMachine(self, result, span=span)
        if failures:
            machine.aborted("; ".join(failures))
            span.end(status="failed")
            return "aborted"
        yield from machine.commit(resumed_by=self.name, redriven=redriven[0])
        span.end(status="redriven", redriven=redriven[0])
        return "redriven"
