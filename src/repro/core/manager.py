"""The ZapC Manager: the coordination front-end.

"Our coordinated checkpointing scheme consists of a Manager client that
orchestrates the operation and a set of Agents, one on each node. ...
It accepts a user's checkpoint or restart request and translates it into
a set of commands to the Agents."  Requests are lists of
``«node, pod, URI»`` tuples.

The Manager enforces the protocol's **single synchronization point**: it
broadcasts ``checkpoint``, collects every Agent's meta-data, and only
then broadcasts ``continue`` — the sync that prevents any pod from
resuming network activity before every pod has frozen its state.  On
restart there is no barrier at all: each Agent proceeds as soon as it
has the merged connectivity plan; synchronization is induced only by
connection establishment itself.

Failure semantics: the Manager keeps reliable connections to all Agents
for the duration of an operation; a broken connection or a deadline
expiry aborts the operation gracefully (Agents resume their pods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.builder import Cluster
from ..cluster.node import Node
from ..sim.tasks import Future, Task, all_of
from ..vos.syscalls import Errno
from .agent import AGENT_PORT, Agent, deploy_agents
from .meta import derive_restart_plan
from .wire import recv_msg, send_msg

#: «node, pod, URI» — the request tuple of Section 4.
Target = Tuple[str, str, str]


@dataclass
class OpResult:
    """Outcome of one coordinated operation, as measured by the Manager.

    ``duration`` is invocation → all pods reported done — the quantity
    Figures 6(a)/6(b) plot.
    """

    kind: str
    status: str
    t_start: float
    t_end: float
    pods: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    metas: Dict[str, List[dict]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: per-pod filter chain the Agents actually applied (negotiation
    #: outcome — may be shorter than the requested chain).
    filters: Dict[str, List[dict]] = field(default_factory=dict)
    #: per-pod filter specs the Agents rejected during negotiation;
    #: informational, not an operation failure.
    filters_rejected: Dict[str, List[dict]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def max_stat(self, name: str) -> float:
        """Max of a per-pod stat (pods proceed in parallel, so the max
        is what the end-to-end time reflects)."""
        return max((stats.get(name, 0) for stats in self.pods.values()), default=0)

    def max_image_bytes(self) -> int:
        """The largest pod image — the Figure 6(c) metric."""
        return int(self.max_stat("image_bytes"))


class Manager:
    """Front-end client for coordinated checkpoint-restart."""

    def __init__(self, cluster: Cluster, agents: Dict[str, Agent],
                 home: Optional[Node] = None) -> None:
        self.cluster = cluster
        self.agents = agents
        #: the node the Manager runs on ("can be run from anywhere,
        #: inside or outside the cluster" — we put it on blade 0, as the
        #: paper's evaluation does).
        self.home = home if home is not None else cluster.node(0)
        self.last_checkpoint: Optional[OpResult] = None

    @classmethod
    def deploy(cls, cluster: Cluster) -> "Manager":
        """Start an Agent on every node and return a Manager."""
        return cls(cluster, deploy_agents(cluster))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _open(self, node_name: str):
        """Open a control connection to a node's Agent; yields (chan, fd)."""
        kernel = self.home.kernel
        node = self.cluster.node_by_name(node_name)
        chan = kernel.host_channel(f"mgr->{node_name}")
        fd = yield kernel.host_call(chan, "socket", "tcp")
        rc = yield kernel.host_call(chan, "connect", fd, (node.ip, AGENT_PORT))
        if isinstance(rc, Errno):
            return None
        return chan, fd

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, targets: List[Target], **kw) -> Task:
        """Spawn a coordinated checkpoint; returns the Task (its
        ``finished`` future resolves to an :class:`OpResult`)."""
        return self.cluster.engine.spawn(self.checkpoint_task(targets, **kw),
                                         name="manager-checkpoint")

    def checkpoint_task(self, targets: List[Target], context: str = "snapshot",
                        deadline: float = 60.0, order: str = "net-first",
                        redirect_moves: Optional[Dict[str, str]] = None,
                        fs_snapshot: bool = False,
                        filters: Optional[List[Dict[str, Any]]] = None):
        """The Manager side of Figure 1 (generator; run as a host task).

        ``redirect_moves`` (pod → destination node) activates the §5
        send-queue redirect during a migration: the Manager, which alone
        knows where every pod is headed, attaches per-connection redirect
        destinations to each Agent's ``continue`` message.

        ``filters`` requests an image-pipeline chain (e.g.
        ``[{"name": "delta"}, {"name": "compress", "level": 6}]``); each
        Agent negotiates it down to the stages it supports and reports
        the applied chain back with its meta-data (recorded per pod in
        ``OpResult.filters`` / ``filters_rejected``).
        """
        engine = self.cluster.engine
        kernel = self.home.kernel
        result = OpResult("checkpoint", "ok", engine.now, engine.now)
        conns: Dict[str, Tuple[Any, int]] = {}
        meta_count = [0]
        all_meta = Future("all-meta")
        expect_stream = {pod for (_n, pod, uri) in targets if uri.startswith("agent://")}
        expect_flush = {pod for (_n, pod, uri) in targets if uri.startswith("file:")}

        def redirect_out_for(pod_id: str) -> List[dict]:
            if not redirect_moves:
                return []
            plan = derive_restart_plan(result.metas)
            out = []
            for entry in plan.get(pod_id, {}).get("schedule", []):
                peer_pod = entry.get("peer_pod")
                if peer_pod is None or peer_pod not in redirect_moves:
                    continue
                out.append({
                    "sock_id": entry["sock_id"],
                    "discard": entry["send_discard"],
                    "peer_pod": peer_pod,
                    "peer_sock_id": entry["peer_sock_id"],
                    "dst_node": redirect_moves[peer_pod],
                })
            return out

        def pod_task(node_name: str, pod_id: str, uri: str):
            opened = yield from self._open(node_name)
            if opened is None:
                result.errors.append(f"{pod_id}: cannot reach agent on {node_name}")
                return
            chan, fd = opened
            conns[pod_id] = (chan, fd)
            # 1. broadcast checkpoint command
            yield from send_msg(kernel, chan, fd, {
                "cmd": "checkpoint", "pod": pod_id, "uri": uri,
                "context": context, "order": order,
                "fs_snapshot": fs_snapshot,
                "filters": list(filters or []),
            })
            # 2. receive meta-data (plus the negotiated filter chain)
            msg = yield from recv_msg(kernel, chan, fd)
            if msg is None or msg.get("type") != "meta":
                result.errors.append(f"{pod_id}: {msg.get('error') if msg else 'agent connection lost'}")
                if not all_meta.done:
                    all_meta.set_exception(RuntimeError(f"meta failed for {pod_id}"))
                return
            result.metas[pod_id] = msg["meta"]
            result.filters[pod_id] = list(msg.get("filters") or [])
            if msg.get("filters_rejected"):
                result.filters_rejected[pod_id] = list(msg["filters_rejected"])
            meta_count[0] += 1
            if meta_count[0] == len(targets) and not all_meta.done:
                all_meta.set_result(True)
            # 3. the single synchronization point
            try:
                yield all_meta
            except RuntimeError:
                yield from send_msg(kernel, chan, fd, {"cmd": "abort"})
                yield from recv_msg(kernel, chan, fd)
                return
            yield from send_msg(kernel, chan, fd, {
                "cmd": "continue",
                "redirect_out": redirect_out_for(pod_id),
            })
            # 4. receive status
            done = yield from recv_msg(kernel, chan, fd)
            if done is None or done.get("status") != "ok":
                result.errors.append(f"{pod_id}: checkpoint failed")
                return
            result.pods[pod_id] = done["stats"]
            # checkpoint time is measured to the last 'done' — the flush
            # to storage (below) happens after the application resumed
            result.t_end = max(result.t_end, engine.now)
            # direct-migration streaming / file flush acknowledgements
            if pod_id in expect_stream:
                ack = yield from recv_msg(kernel, chan, fd)
                if ack is None or ack.get("type") != "streamed":
                    result.errors.append(f"{pod_id}: image streaming failed")
            elif pod_id in expect_flush:
                yield from recv_msg(kernel, chan, fd)  # "flushed"

        tasks = [engine.spawn(pod_task(n, p, u), name=f"ckpt-{p}") for n, p, u in targets]
        ok, _ = yield engine.timeout(all_of([t.finished for t in tasks]), deadline)
        if not ok:
            result.status = "timeout"
            for pod_id, (chan, fd) in conns.items():
                if pod_id not in result.pods:
                    yield from send_msg(kernel, chan, fd, {"cmd": "abort"})
            result.errors.append("deadline expired; aborted")
        elif result.errors:
            result.status = "failed"
        for chan, fd in conns.values():
            yield kernel.host_call(chan, "close", fd)
        if len(result.pods) != len(targets):
            result.t_end = engine.now  # failed/partial ops report full elapsed time
        if result.ok:
            self.last_checkpoint = result
        return result

    # ------------------------------------------------------------------
    # restart
    # ------------------------------------------------------------------
    def restart(self, targets: List[Target], **kw) -> Task:
        """Spawn a coordinated restart; Task resolves to an OpResult."""
        return self.cluster.engine.spawn(self.restart_task(targets, **kw),
                                         name="manager-restart")

    def restart_task(self, targets: List[Target], time_virtualization: bool = True,
                     deadline: float = 60.0, recovery_mode: str = "two-thread"):
        """The Manager side of Figure 3 (generator; run as a host task)."""
        engine = self.cluster.engine
        kernel = self.home.kernel
        result = OpResult("restart", "ok", engine.now, engine.now)
        metas: Dict[str, List[dict]] = {}
        vips: Dict[str, str] = {}
        meta_count = [0]
        all_meta = Future("all-restart-meta")
        plan_ready = Future("restart-plan")

        def pod_task(node_name: str, pod_id: str, uri: str):
            opened = yield from self._open(node_name)
            if opened is None:
                result.errors.append(f"{pod_id}: cannot reach agent on {node_name}")
                if not all_meta.done:
                    all_meta.set_exception(RuntimeError("agent unreachable"))
                return
            chan, fd = opened
            # phase 0: have the agent load the image and report meta-data
            yield from send_msg(kernel, chan, fd, {"cmd": "load_meta", "pod": pod_id, "uri": uri})
            msg = yield from recv_msg(kernel, chan, fd)
            if msg is None or msg.get("type") != "meta":
                result.errors.append(f"{pod_id}: {msg.get('error') if msg else 'agent connection lost'}")
                if not all_meta.done:
                    all_meta.set_exception(RuntimeError(f"load failed for {pod_id}"))
                return
            metas[pod_id] = msg["meta"]
            vips[pod_id] = msg["vip"]
            result.filters[pod_id] = list(msg.get("filters") or [])
            meta_count[0] += 1
            if meta_count[0] == len(targets) and not all_meta.done:
                all_meta.set_result(True)
            plan = yield plan_ready
            pod_plan = plan[pod_id]
            # 1. send restart command + (modified) meta-data
            yield from send_msg(kernel, chan, fd, {
                "cmd": "restart",
                "pod": pod_id,
                "vip": vips[pod_id],
                "uri": uri,
                "listeners": pod_plan["listeners"],
                "schedule": pod_plan["schedule"],
                "time_virtualization": time_virtualization,
                "recovery_mode": recovery_mode,
            })
            # 2. receive status
            done = yield from recv_msg(kernel, chan, fd)
            if done is None or done.get("status") != "ok":
                detail = done.get("error", "restart failed") if done else "agent connection lost"
                result.errors.append(f"{pod_id}: {detail}")
                return
            result.pods[pod_id] = done["stats"]
            yield kernel.host_call(chan, "close", fd)

        def planner():
            try:
                yield all_meta
            except RuntimeError as err:
                plan_ready.set_exception(err)
                return
            plan_ready.set_result(derive_restart_plan(metas))

        engine.spawn(planner(), name="restart-planner")
        tasks = [engine.spawn(pod_task(n, p, u), name=f"restart-{p}") for n, p, u in targets]
        ok, _ = yield engine.timeout(all_of([t.finished for t in tasks]), deadline)
        if not ok:
            result.status = "timeout"
            result.errors.append("deadline expired")
        elif result.errors:
            result.status = "failed"
        result.t_end = engine.now
        result.metas = metas
        return result
